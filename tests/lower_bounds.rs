//! Randomized tests of the lower-bounding lemma across every summarization
//! technique.
//!
//! Lower-bounding is the invariant that makes index pruning exact ("no false
//! dismissals"): for any pair of series, the distance computed in the reduced
//! space must never exceed the true Euclidean distance. These suites generate
//! seeded pseudo-random series pairs and check the invariant for PAA, DFT,
//! DHWT, EAPCA, SAX/iSAX at every cardinality, SFA with both binning methods,
//! and the VA+ quantizer.
//!
//! (The seed repo expressed these as `proptest` properties; the offline build
//! replays the same invariants over a deterministic seeded case stream.)

use hydra_core::distance::euclidean;
use hydra_core::series::z_normalize;
use hydra_transforms::eapca::{uniform_segmentation, Eapca};
use hydra_transforms::fft::{dft_lower_bound, dft_summary};
use hydra_transforms::sax::SaxParams;
use hydra_transforms::sfa::{BinningMethod, SfaParams, SfaQuantizer};
use hydra_transforms::vaplus::VaPlusQuantizer;
use hydra_transforms::{HaarTransform, Paa};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random cases for the cheap per-pair properties.
const CASES: u64 = 64;
/// Number of random cases for properties that train a quantizer per case.
const QUANTIZER_CASES: u64 = 16;

/// A Z-normalized pseudo-random series of the given length.
fn series(rng: &mut StdRng, len: usize) -> Vec<f32> {
    let mut v: Vec<f32> = (0..len)
        .map(|_| (rng.gen_range(-100.0..100.0)) as f32)
        .collect();
    z_normalize(&mut v);
    v
}

#[test]
fn paa_lower_bound_never_exceeds_distance() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x9AA0 + case);
        let a = series(&mut rng, 64);
        let b = series(&mut rng, 64);
        let segments = rng.gen_range(1..=16usize);
        let paa = Paa::new(64, segments);
        let lb = paa.lower_bound(&paa.transform(&a), &paa.transform(&b));
        assert!(
            lb <= euclidean(&a, &b) + 1e-3,
            "case {case}: PAA bound {lb} above distance with {segments} segments"
        );
    }
}

#[test]
fn dft_lower_bound_never_exceeds_distance() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xDF70 + case);
        let a = series(&mut rng, 96);
        let b = series(&mut rng, 96);
        let coefficients = rng.gen_range(1..=32usize);
        let lb = dft_lower_bound(
            &dft_summary(&a, coefficients),
            &dft_summary(&b, coefficients),
        );
        assert!(
            lb <= euclidean(&a, &b) + 1e-3,
            "case {case}: DFT bound {lb} above distance with {coefficients} coefficients"
        );
    }
}

#[test]
fn haar_prefix_bounds_bracket_the_distance() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x4AA2 + case);
        let a = series(&mut rng, 100);
        let b = series(&mut rng, 100);
        let level = rng.gen_range(0..=7usize);
        let t = HaarTransform::new(100);
        let ca = t.transform(&a);
        let cb = t.transform(&b);
        let prefix = t.prefix_len_for_level(level);
        let ed = euclidean(&a, &b);
        let lb = HaarTransform::prefix_lower_bound(&ca, &cb, prefix);
        let ub = HaarTransform::prefix_upper_bound(&ca, &cb, prefix);
        assert!(
            lb <= ed + 1e-3,
            "case {case}: lower bound {lb} above distance {ed}"
        );
        assert!(
            ub + 1e-3 >= ed,
            "case {case}: upper bound {ub} below distance {ed}"
        );
    }
}

#[test]
fn eapca_lower_bound_never_exceeds_distance() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xEA9C + case);
        let a = series(&mut rng, 64);
        let b = series(&mut rng, 64);
        let segments = rng.gen_range(1..=16usize);
        let segmentation = uniform_segmentation(64, segments);
        let ea = Eapca::compute(&a, &segmentation);
        let eb = Eapca::compute(&b, &segmentation);
        assert!(
            ea.lower_bound(&eb, &segmentation) <= euclidean(&a, &b) + 1e-3,
            "case {case}: EAPCA bound above distance with {segments} segments"
        );
    }
}

#[test]
fn isax_mindist_never_exceeds_distance_at_any_cardinality() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x15A8 + case);
        let a = series(&mut rng, 64);
        let b = series(&mut rng, 64);
        let bits = rng.gen_range(1..=8i32) as u8;
        let params = SaxParams::new(64, 16, 8);
        let q_paa = params.paa().transform(&a);
        let word = params.sax_word(&b).to_isax(bits, 8);
        assert!(
            params.mindist_paa_to_isax(&q_paa, &word) <= euclidean(&a, &b) + 1e-3,
            "case {case}: iSAX mindist above distance at {bits} bits"
        );
    }
}

/// A fixed random-walk sample for training quantizers (matches the seed suite).
fn walk_sample(seed_base: u64) -> Vec<Vec<f32>> {
    (0..60u64)
        .map(|i| {
            let g = hydra_data::RandomWalkGenerator::new(seed_base + i, 64);
            g.series(i).into_values()
        })
        .collect()
}

#[test]
fn sfa_mindist_never_exceeds_distance() {
    // Training the quantizer is expensive, so this property uses fewer cases.
    let sample = walk_sample(900);
    for case in 0..QUANTIZER_CASES {
        let mut rng = StdRng::seed_from_u64(0x5FA0 + case);
        let queries: Vec<Vec<f32>> = (0..3).map(|_| series(&mut rng, 64)).collect();
        let binning = if rng.gen_bool(0.5) {
            BinningMethod::EquiDepth
        } else {
            BinningMethod::EquiWidth
        };
        let quantizer = SfaQuantizer::train(
            SfaParams::new(64, 16)
                .with_alphabet_size(8)
                .with_binning(binning),
            sample.iter().map(|s| s.as_slice()),
        );
        for pair in queries.windows(2) {
            let q = &pair[0];
            let c = &pair[1];
            let lb = quantizer.mindist(&quantizer.dft(q), &quantizer.word(c));
            assert!(
                lb <= euclidean(q, c) + 1e-3,
                "case {case}: SFA mindist {lb} above distance with {binning:?} binning"
            );
        }
    }
}

#[test]
fn vaplus_lower_bound_never_exceeds_distance() {
    let sample = walk_sample(700);
    for case in 0..QUANTIZER_CASES {
        let mut rng = StdRng::seed_from_u64(0x7A90 + case);
        let queries: Vec<Vec<f32>> = (0..3).map(|_| series(&mut rng, 64)).collect();
        let total_bits = rng.gen_range(16..=128usize);
        let quantizer =
            VaPlusQuantizer::train(64, 16, total_bits, sample.iter().map(|s| s.as_slice()));
        for pair in queries.windows(2) {
            let q = &pair[0];
            let c = &pair[1];
            let lb = quantizer.lower_bound(&quantizer.dft(q), &quantizer.cell(c));
            assert!(
                lb <= euclidean(q, c) + 1e-3,
                "case {case}: VA+ bound {lb} above distance with {total_bits} bits"
            );
        }
    }
}

//! Property-based tests of the lower-bounding lemma across every
//! summarization technique.
//!
//! Lower-bounding is the invariant that makes index pruning exact ("no false
//! dismissals"): for any pair of series, the distance computed in the reduced
//! space must never exceed the true Euclidean distance. These proptest suites
//! generate arbitrary series pairs and check the invariant for PAA, DFT, DHWT,
//! EAPCA, SAX/iSAX at every cardinality, SFA with both binning methods, and
//! the VA+ quantizer.

use hydra_core::distance::euclidean;
use hydra_core::series::z_normalize;
use hydra_transforms::eapca::{uniform_segmentation, Eapca};
use hydra_transforms::fft::{dft_lower_bound, dft_summary};
use hydra_transforms::sax::SaxParams;
use hydra_transforms::sfa::{BinningMethod, SfaParams, SfaQuantizer};
use hydra_transforms::vaplus::VaPlusQuantizer;
use hydra_transforms::{HaarTransform, Paa};
use proptest::prelude::*;

/// Strategy: a Z-normalized series of the given length with bounded values.
fn series(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, len).prop_map(|mut v| {
        z_normalize(&mut v);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn paa_lower_bound_never_exceeds_distance(
        a in series(64),
        b in series(64),
        segments in 1usize..=16,
    ) {
        let paa = Paa::new(64, segments);
        let lb = paa.lower_bound(&paa.transform(&a), &paa.transform(&b));
        prop_assert!(lb <= euclidean(&a, &b) + 1e-3);
    }

    #[test]
    fn dft_lower_bound_never_exceeds_distance(
        a in series(96),
        b in series(96),
        coefficients in 1usize..=32,
    ) {
        let lb = dft_lower_bound(
            &dft_summary(&a, coefficients),
            &dft_summary(&b, coefficients),
        );
        prop_assert!(lb <= euclidean(&a, &b) + 1e-3);
    }

    #[test]
    fn haar_prefix_bounds_bracket_the_distance(
        a in series(100),
        b in series(100),
        level in 0usize..=7,
    ) {
        let t = HaarTransform::new(100);
        let ca = t.transform(&a);
        let cb = t.transform(&b);
        let prefix = t.prefix_len_for_level(level);
        let ed = euclidean(&a, &b);
        let lb = HaarTransform::prefix_lower_bound(&ca, &cb, prefix);
        let ub = HaarTransform::prefix_upper_bound(&ca, &cb, prefix);
        prop_assert!(lb <= ed + 1e-3, "lower bound {lb} above distance {ed}");
        prop_assert!(ub + 1e-3 >= ed, "upper bound {ub} below distance {ed}");
    }

    #[test]
    fn eapca_lower_bound_never_exceeds_distance(
        a in series(64),
        b in series(64),
        segments in 1usize..=16,
    ) {
        let segmentation = uniform_segmentation(64, segments);
        let ea = Eapca::compute(&a, &segmentation);
        let eb = Eapca::compute(&b, &segmentation);
        prop_assert!(ea.lower_bound(&eb, &segmentation) <= euclidean(&a, &b) + 1e-3);
    }

    #[test]
    fn isax_mindist_never_exceeds_distance_at_any_cardinality(
        a in series(64),
        b in series(64),
        bits in 1u8..=8,
    ) {
        let params = SaxParams::new(64, 16, 8);
        let q_paa = params.paa().transform(&a);
        let word = params.sax_word(&b).to_isax(bits, 8);
        prop_assert!(params.mindist_paa_to_isax(&q_paa, &word) <= euclidean(&a, &b) + 1e-3);
    }
}

proptest! {
    // The quantizer-based bounds need a trained quantizer, which is expensive
    // to rebuild per case; use fewer cases.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sfa_mindist_never_exceeds_distance(
        queries in prop::collection::vec(series(64), 3),
        binning_equi_depth in any::<bool>(),
    ) {
        let sample: Vec<Vec<f32>> = (0..60u64)
            .map(|i| {
                let g = hydra_data::RandomWalkGenerator::new(900 + i, 64);
                g.series(i).into_values()
            })
            .collect();
        let binning = if binning_equi_depth {
            BinningMethod::EquiDepth
        } else {
            BinningMethod::EquiWidth
        };
        let quantizer = SfaQuantizer::train(
            SfaParams::new(64, 16).with_alphabet_size(8).with_binning(binning),
            sample.iter().map(|s| s.as_slice()),
        );
        for pair in queries.windows(2) {
            let q = &pair[0];
            let c = &pair[1];
            let lb = quantizer.mindist(&quantizer.dft(q), &quantizer.word(c));
            prop_assert!(lb <= euclidean(q, c) + 1e-3);
        }
    }

    #[test]
    fn vaplus_lower_bound_never_exceeds_distance(
        queries in prop::collection::vec(series(64), 3),
        total_bits in 16usize..=128,
    ) {
        let sample: Vec<Vec<f32>> = (0..60u64)
            .map(|i| {
                let g = hydra_data::RandomWalkGenerator::new(700 + i, 64);
                g.series(i).into_values()
            })
            .collect();
        let quantizer =
            VaPlusQuantizer::train(64, 16, total_bits, sample.iter().map(|s| s.as_slice()));
        for pair in queries.windows(2) {
            let q = &pair[0];
            let c = &pair[1];
            let lb = quantizer.lower_bound(&quantizer.dft(q), &quantizer.cell(c));
            prop_assert!(lb <= euclidean(q, c) + 1e-3);
        }
    }
}

//! On-disk index persistence: round trips and corruption handling.
//!
//! The contract under test (ISSUE 3 / ROADMAP "On-disk index persistence"):
//!
//! * a snapshot saved from a freshly built index and loaded into a **fresh
//!   store** answers every query with results and per-query work counters
//!   bit-identical to the original, both serially and under a parallel
//!   workload;
//! * the bench registry's snapshot cache builds once, then loads on every
//!   later request with the same dataset + options, and invalidates on any
//!   change to either;
//! * damaged or mismatched snapshot files surface as typed errors
//!   (`InvalidSnapshot` / `StaleSnapshot`), never panics or silently-wrong
//!   indexes;
//! * snapshot file traffic is charged through the instrumented store.

use hydra_core::persist::PersistentIndex;
use hydra_core::{
    AnswerMode, BuildOptions, Dataset, Error, Parallelism, Query, QueryEngine, QueryStats, Result,
};
use hydra_data::RandomWalkGenerator;
use hydra_dstree::DsTree;
use hydra_isax::{AdsPlus, Isax2Plus};
use hydra_sfa::SfaTrie;
use hydra_storage::{snapshot, DatasetStore};
use hydra_vafile::VaPlusFile;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hydra-persist-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dataset(count: usize, len: usize) -> Dataset {
    RandomWalkGenerator::new(2024, len).dataset(count)
}

/// The round-trip workload mixes answering modes: a loaded snapshot must
/// answer exact, ng-approximate, ε- and δ-ε-approximate queries identically
/// to the fresh build (every persistent method supports every mode).
fn queries(len: usize) -> Vec<Query> {
    RandomWalkGenerator::new(777, len)
        .series_batch(8)
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            let q = Query::knn(s, 5);
            match i % 4 {
                0 => q,
                1 => q.with_mode(AnswerMode::NgApproximate),
                2 => q.with_mode(AnswerMode::EpsilonApproximate { epsilon: 0.25 }),
                _ => q.with_mode(AnswerMode::DeltaEpsilon {
                    delta: 0.9,
                    epsilon: 0.25,
                }),
            }
        })
        .collect()
}

fn options() -> BuildOptions {
    BuildOptions::default()
        .with_leaf_capacity(20)
        .with_train_samples(150)
}

/// Asserts that every work counter of two per-query stats records agrees
/// exactly (wall-clock fields are scheduling noise and excluded).
fn assert_counters_identical(a: &QueryStats, b: &QueryStats, ctx: &str) {
    assert_eq!(a.raw_series_examined, b.raw_series_examined, "{ctx}");
    assert_eq!(a.lower_bounds_computed, b.lower_bounds_computed, "{ctx}");
    assert_eq!(a.leaves_visited, b.leaves_visited, "{ctx}");
    assert_eq!(a.internal_nodes_visited, b.internal_nodes_visited, "{ctx}");
    assert_eq!(a.early_abandons, b.early_abandons, "{ctx}");
    assert_eq!(
        a.sequential_page_accesses, b.sequential_page_accesses,
        "{ctx}"
    );
    assert_eq!(a.random_page_accesses, b.random_page_accesses, "{ctx}");
    assert_eq!(a.bytes_read, b.bytes_read, "{ctx}");
}

/// Saves `built` (freshly constructed over `data`), reloads it into a fresh
/// store, and asserts the loaded index is indistinguishable from the built
/// one on the whole workload — serially and at 4 worker threads.
fn assert_round_trip<I, F>(name: &str, data: &Dataset, opts: &BuildOptions, build: F)
where
    I: PersistentIndex<Context = Arc<DatasetStore>> + 'static,
    F: FnOnce(Arc<DatasetStore>, &BuildOptions) -> Result<I>,
{
    let dir = temp_dir("roundtrip");
    let path = dir.join(format!("{name}.snapshot"));
    let built_store = Arc::new(DatasetStore::new(data.clone()));
    let built = build(built_store.clone(), opts).expect("fresh build");
    let written = snapshot::save_index(&built, &built_store, opts, &path).expect("save");
    assert!(written > 0);

    let fresh_store = Arc::new(DatasetStore::new(data.clone()));
    let loaded: I = snapshot::load_index(fresh_store.clone(), opts, &path).expect("load");

    let qs = queries(data.series_length());
    let mut built_engine =
        QueryEngine::new(Box::new(built), data.len()).with_io_source(built_store);
    let mut loaded_engine =
        QueryEngine::new(Box::new(loaded), data.len()).with_io_source(fresh_store.clone());

    let built_serial = built_engine
        .answer_workload(&qs, Parallelism::Serial)
        .expect("built serial");
    let loaded_serial = loaded_engine
        .answer_workload(&qs, Parallelism::Serial)
        .expect("loaded serial");
    let loaded_parallel = loaded_engine
        .answer_workload(&qs, Parallelism::Threads(4))
        .expect("loaded parallel");

    for (qi, (b, l)) in built_serial.iter().zip(&loaded_serial).enumerate() {
        assert_eq!(
            b.answers, l.answers,
            "{name}: serial answers of query {qi} must be bit-identical"
        );
        assert_counters_identical(&b.stats, &l.stats, &format!("{name} serial query {qi}"));
    }
    for (qi, (b, p)) in built_serial.iter().zip(&loaded_parallel).enumerate() {
        assert_eq!(
            b.answers, p.answers,
            "{name}: parallel answers of query {qi} must be bit-identical"
        );
        assert_counters_identical(&b.stats, &p.stats, &format!("{name} parallel query {qi}"));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn va_plus_file_round_trips_bit_identically() {
    let data = dataset(400, 64);
    assert_round_trip::<VaPlusFile, _>("vafile", &data, &options(), VaPlusFile::build_on_store);
}

#[test]
fn isax2plus_round_trips_bit_identically() {
    let data = dataset(400, 64);
    assert_round_trip::<Isax2Plus, _>("isax2plus", &data, &options(), Isax2Plus::build_on_store);
}

#[test]
fn ads_plus_round_trips_bit_identically() {
    let data = dataset(400, 64);
    assert_round_trip::<AdsPlus, _>("adsplus", &data, &options(), AdsPlus::build_on_store);
}

#[test]
fn dstree_round_trips_bit_identically() {
    let data = dataset(400, 64);
    let opts = options().with_segments(8);
    assert_round_trip::<DsTree, _>("dstree", &data, &opts, DsTree::build_on_store);
}

#[test]
fn sfa_trie_round_trips_bit_identically() {
    let data = dataset(400, 64);
    let opts = options().with_alphabet_size(8);
    assert_round_trip::<SfaTrie, _>("sfatrie", &data, &opts, SfaTrie::build_on_store);
}

#[test]
fn parallel_build_and_loaded_snapshot_are_the_same_index() {
    // Build at 4 threads, snapshot, reload: the loaded index must agree with
    // a *serial* fresh build — persistence composes with the parallel-build
    // identity guarantee.
    let data = dataset(500, 64);
    let opts = options().with_segments(8);
    let dir = temp_dir("parallel-build");
    let path = dir.join("dstree-parallel.snapshot");
    let parallel_store = Arc::new(DatasetStore::new(data.clone()));
    let built = DsTree::build_on_store(parallel_store.clone(), &opts.clone().with_build_threads(4))
        .unwrap();
    // build_threads is excluded from the options fingerprint, so a snapshot
    // saved from a 4-thread build loads under serial options.
    snapshot::save_index(&built, &parallel_store, &opts, &path).unwrap();

    let fresh_store = Arc::new(DatasetStore::new(data.clone()));
    let loaded: DsTree = snapshot::load_index(fresh_store, &opts, &path).unwrap();
    let serial = DsTree::build_on_store(Arc::new(DatasetStore::new(data.clone())), &opts).unwrap();

    for q in queries(64) {
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        use hydra_core::AnsweringMethod;
        let a = serial.answer(&q, &mut s1).unwrap();
        let b = loaded.answer(&q, &mut s2).unwrap();
        assert_eq!(a, b);
        assert_counters_identical(&s1, &s2, "parallel-built snapshot");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn snapshot_io_is_charged_to_the_store() {
    let data = dataset(300, 64);
    let opts = options();
    let dir = temp_dir("counted-io");
    let path = dir.join("counted.snapshot");

    let store = Arc::new(DatasetStore::new(data.clone()));
    let built = VaPlusFile::build_on_store(store.clone(), &opts).unwrap();
    let before_save = store.io_snapshot();
    let written = snapshot::save_index(&built, &store, &opts, &path).unwrap();
    let after_save = store.io_snapshot();
    assert_eq!(
        after_save.bytes_written - before_save.bytes_written,
        written,
        "every snapshot byte written must be counted"
    );
    assert_eq!(written, std::fs::metadata(&path).unwrap().len());

    let fresh = Arc::new(DatasetStore::new(data.clone()));
    let _loaded: VaPlusFile = snapshot::load_index(fresh.clone(), &opts, &path).unwrap();
    let io = fresh.io_snapshot();
    assert_eq!(
        io.bytes_read, written,
        "every snapshot byte read must be counted"
    );
    // One seek to the snapshot file, then sequential pages.
    assert_eq!(io.random_pages, 1);
    assert_eq!(
        io.total_pages(),
        written.div_ceil(fresh.page_bytes() as u64).max(1)
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn corruption_yields_typed_errors_never_panics() {
    let data = dataset(200, 64);
    let opts = options().with_segments(8);
    let dir = temp_dir("corruption");
    let path = dir.join("victim.snapshot");
    let store = Arc::new(DatasetStore::new(data.clone()));
    let built = DsTree::build_on_store(store.clone(), &opts).unwrap();
    snapshot::save_index(&built, &store, &opts, &path).unwrap();
    let good = std::fs::read(&path).unwrap();
    let fresh = || Arc::new(DatasetStore::new(data.clone()));
    let load = |p: &std::path::Path| -> Result<DsTree> { snapshot::load_index(fresh(), &opts, p) };

    // Truncated file.
    std::fs::write(&path, &good[..good.len() / 2]).unwrap();
    match load(&path) {
        Err(Error::InvalidSnapshot(_)) => {}
        other => panic!(
            "truncation must be InvalidSnapshot, got {other:?}",
            other = other.err()
        ),
    }
    // Bad magic.
    let mut bad_magic = good.clone();
    bad_magic[0] = b'X';
    std::fs::write(&path, &bad_magic).unwrap();
    match load(&path) {
        Err(Error::InvalidSnapshot(msg)) => assert!(msg.contains("magic"), "{msg}"),
        other => panic!(
            "bad magic must be InvalidSnapshot, got {other:?}",
            other = other.err()
        ),
    }
    // Payload damage fails the checksum.
    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    std::fs::write(&path, &flipped).unwrap();
    match load(&path) {
        Err(Error::InvalidSnapshot(msg)) => assert!(msg.contains("checksum"), "{msg}"),
        other => panic!(
            "damage must be InvalidSnapshot, got {other:?}",
            other = other.err()
        ),
    }
    // Restore the good bytes: a *different dataset* is a stale fingerprint.
    std::fs::write(&path, &good).unwrap();
    let other_data = RandomWalkGenerator::new(999, 64).dataset(200);
    let stale: Result<DsTree> =
        snapshot::load_index(Arc::new(DatasetStore::new(other_data)), &opts, &path);
    match stale {
        Err(Error::StaleSnapshot(msg)) => assert!(msg.contains("dataset"), "{msg}"),
        other => panic!(
            "dataset change must be StaleSnapshot, got {other:?}",
            other = other.err()
        ),
    }
    // Different build options are stale too.
    let stale: Result<DsTree> =
        snapshot::load_index(fresh(), &opts.clone().with_leaf_capacity(99), &path);
    assert!(matches!(stale, Err(Error::StaleSnapshot(_))));
    // Decoding with the wrong method is stale (kind mismatch).
    let wrong_kind: Result<VaPlusFile> = snapshot::load_index(fresh(), &opts, &path);
    assert!(matches!(wrong_kind, Err(Error::StaleSnapshot(_))));
    // A missing file is a plain I/O error (the cache treats it as a miss).
    std::fs::remove_file(&path).unwrap();
    assert!(matches!(load(&path), Err(Error::Io { .. })));
    // And the good snapshot still loads after all that.
    std::fs::write(&path, &good).unwrap();
    assert!(load(&path).is_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn registry_cache_saves_then_loads_and_invalidates() {
    use hydra_bench::{MethodKind, SnapshotOutcome};
    let data = dataset(250, 64);
    let opts = options();
    let dir = temp_dir("registry-cache");
    let qs = queries(64);

    for kind in [MethodKind::Isax2Plus, MethodKind::SfaTrie] {
        assert!(kind.supports_snapshots());
        let store = || Arc::new(DatasetStore::new(data.clone()));
        let (mut first, outcome1) = kind.engine_with_snapshot(store(), &opts, &dir).unwrap();
        assert!(
            matches!(outcome1, SnapshotOutcome::Saved { bytes } if bytes > 0),
            "{}: first build must save, got {outcome1:?}",
            kind.name()
        );
        let (mut second, outcome2) = kind.engine_with_snapshot(store(), &opts, &dir).unwrap();
        assert!(
            outcome2.loaded(),
            "{}: second build must load, got {outcome2:?}",
            kind.name()
        );
        // A load performs no raw-data pass: its build I/O is just the
        // snapshot read.
        assert_eq!(second.build_io().bytes_written, 0);
        assert!(second.build_io().bytes_read > 0);

        let a = first.answer_workload(&qs, Parallelism::Serial).unwrap();
        let b = second.answer_workload(&qs, Parallelism::Serial).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.answers, y.answers, "{}", kind.name());
            assert_counters_identical(&x.stats, &y.stats, kind.name());
        }

        // Different options: the cache must rebuild, not serve the old file.
        let (_, outcome3) = kind
            .engine_with_snapshot(store(), &opts.clone().with_leaf_capacity(37), &dir)
            .unwrap();
        assert!(matches!(outcome3, SnapshotOutcome::Saved { .. }));
        // Different dataset: rebuild as well.
        let other = RandomWalkGenerator::new(4321, 64).dataset(250);
        let (_, outcome4) = kind
            .engine_with_snapshot(Arc::new(DatasetStore::new(other)), &opts, &dir)
            .unwrap();
        assert!(matches!(outcome4, SnapshotOutcome::Saved { .. }));
    }

    // Scans never persist.
    let (_, scan_outcome) = hydra_bench::MethodKind::UcrSuite
        .engine_with_snapshot(Arc::new(DatasetStore::new(data.clone())), &opts, &dir)
        .unwrap();
    assert_eq!(scan_outcome, SnapshotOutcome::Unsupported);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_build_skips_the_rebuild_when_the_env_names_an_index_dir() {
    // The only test in this binary that touches HYDRA_INDEX_DIR (env vars
    // are process-global; every other test passes directories explicitly).
    use hydra_bench::{run_build, MethodKind};
    let data = dataset(200, 64);
    let opts = options().with_segments(8);
    let dir = temp_dir("env-run-build");
    std::env::set_var("HYDRA_INDEX_DIR", &dir);
    let first = run_build(MethodKind::DsTree, &data, &opts).unwrap().1;
    let second = run_build(MethodKind::DsTree, &data, &opts).unwrap().1;
    std::env::remove_var("HYDRA_INDEX_DIR");
    assert!(
        matches!(first.snapshot, hydra_bench::SnapshotOutcome::Saved { .. }),
        "{:?}",
        first.snapshot
    );
    assert!(second.snapshot.loaded(), "{:?}", second.snapshot);
    // The load still reports the footprint of the reconstructed index.
    assert_eq!(
        second.footprint.as_ref().map(|f| f.total_nodes),
        first.footprint.as_ref().map(|f| f.total_nodes)
    );
    // Without the env var, run_build builds fresh and touches no snapshot.
    let third = run_build(MethodKind::DsTree, &data, &opts).unwrap().1;
    assert_eq!(third.snapshot, hydra_bench::SnapshotOutcome::Unsupported);
    std::fs::remove_dir_all(&dir).ok();
}

//! First-class answering modes, end to end through the `QueryEngine`.
//!
//! The contract under test (ISSUE 4 / the sequel study's mode spectrum):
//!
//! * `EpsilonApproximate { epsilon: 0.0 }` answers are bit-identical to
//!   `Exact` for every capable method — answers *and* per-query work
//!   counters;
//! * ng-approximate answers have an error ratio ≥ 1.0 against the brute-force
//!   scan baseline (an approximate answer can never beat the exact one), and
//!   ε-approximate answers additionally respect the `(1 + ε)` bound;
//! * every mode agrees serial vs 4-thread through
//!   `QueryEngine::answer_workload`;
//! * scans are exact-only: an approximate request is a typed
//!   `Error::UnsupportedMode`, never a silent exact run — unless the caller
//!   explicitly opts into `FallbackPolicy::ExactFallback`, which answers
//!   exactly and tags the result `Guarantee::Exact`;
//! * range queries are a typed `Error::UnsupportedQuery` at the engine
//!   boundary for all ten methods.

use hydra_bench::MethodKind;
use hydra_core::{
    AnswerMode, Error, FallbackPolicy, Guarantee, Parallelism, Query, QueryEngine, Series,
};
use hydra_data::RandomWalkGenerator;
use hydra_integration::{dataset, options};
use hydra_scan::ucr::brute_force_knn;

const LEN: usize = 64;

fn queries(count: usize) -> Vec<Series> {
    RandomWalkGenerator::new(4242, LEN).series_batch(count)
}

fn approx_modes() -> Vec<AnswerMode> {
    vec![
        AnswerMode::NgApproximate,
        AnswerMode::EpsilonApproximate { epsilon: 0.0 },
        AnswerMode::EpsilonApproximate { epsilon: 0.5 },
        AnswerMode::DeltaEpsilon {
            delta: 0.9,
            epsilon: 0.5,
        },
    ]
}

fn capable_methods() -> impl Iterator<Item = MethodKind> {
    MethodKind::ALL
        .into_iter()
        .filter(|k| k.modes().any_approximate())
}

#[test]
fn epsilon_zero_is_bit_identical_to_exact_for_every_capable_method() {
    let data = dataset(350, LEN, 4001);
    for kind in capable_methods() {
        let mut engine = kind.engine(&data, &options(LEN)).unwrap();
        for q in queries(5) {
            for k in [1usize, 5] {
                let exact_q = Query::knn(q.clone(), k);
                let exact = engine.answer(&exact_q).unwrap();
                let zero = engine
                    .answer(
                        &exact_q
                            .clone()
                            .with_mode(AnswerMode::EpsilonApproximate { epsilon: 0.0 }),
                    )
                    .unwrap();
                assert_eq!(
                    exact.answers.answers(),
                    zero.answers.answers(),
                    "{}: eps:0 answers diverged from exact (k={k})",
                    kind.name()
                );
                assert_eq!(
                    exact.stats.raw_series_examined,
                    zero.stats.raw_series_examined,
                    "{}: eps:0 examined different work (k={k})",
                    kind.name()
                );
                assert_eq!(
                    exact.stats.lower_bounds_computed,
                    zero.stats.lower_bounds_computed,
                    "{}: eps:0 computed different bounds (k={k})",
                    kind.name()
                );
                assert_eq!(
                    exact.stats.leaves_visited,
                    zero.stats.leaves_visited,
                    "{}: eps:0 visited different leaves (k={k})",
                    kind.name()
                );
                assert_eq!(exact.guarantee, Guarantee::Exact, "{}", kind.name());
                assert_eq!(
                    zero.guarantee,
                    Guarantee::EpsilonBound { epsilon: 0.0 },
                    "{}",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn approximate_error_ratios_against_the_scan_baseline() {
    let data = dataset(350, LEN, 4002);
    for kind in capable_methods() {
        let mut engine = kind.engine(&data, &options(LEN)).unwrap();
        for q in queries(6) {
            let exact = brute_force_knn(&data, q.values(), 1);
            let exact_d = exact.nearest().unwrap().distance;
            for mode in approx_modes() {
                let approx = engine
                    .answer(&Query::nearest_neighbor(q.clone()).with_mode(mode))
                    .unwrap();
                let a = approx
                    .answers
                    .nearest()
                    .unwrap_or_else(|| panic!("{} returned no answer in {mode}", kind.name()));
                let ratio = approx.answers.error_ratio_vs(&exact).unwrap();
                assert!(
                    ratio >= 1.0 - 1e-9,
                    "{} {mode}: error ratio {ratio} < 1 — the approximate answer \
                     beat the brute-force scan",
                    kind.name()
                );
                // The ε guarantee: the answer is within (1+ε) of exact. The
                // δ-ε mode is probabilistic, so only the deterministic ε mode
                // is held to the bound here.
                if let AnswerMode::EpsilonApproximate { epsilon } = mode {
                    assert!(
                        a.distance <= (1.0 + epsilon) * exact_d + 1e-6,
                        "{} eps:{epsilon}: {} > (1+ε)·{exact_d}",
                        kind.name(),
                        a.distance
                    );
                }
                assert_eq!(approx.guarantee, mode.guarantee(), "{}", kind.name());
            }
        }
    }
}

#[test]
fn every_mode_agrees_serial_vs_four_threads_through_answer_workload() {
    let data = dataset(300, LEN, 4003);
    let workload: Vec<Query> = queries(8).into_iter().map(|s| Query::knn(s, 3)).collect();
    for kind in capable_methods() {
        for mode in approx_modes().into_iter().chain([AnswerMode::Exact]) {
            let moded: Vec<Query> = workload.iter().map(|q| q.clone().with_mode(mode)).collect();
            let mut serial_engine = kind.engine(&data, &options(LEN)).unwrap();
            let serial = serial_engine
                .answer_workload(&moded, Parallelism::Serial)
                .unwrap();
            let mut parallel_engine = kind.engine(&data, &options(LEN)).unwrap();
            let parallel = parallel_engine
                .answer_workload(&moded, Parallelism::Threads(4))
                .unwrap();
            for (qi, (s, p)) in serial.iter().zip(&parallel).enumerate() {
                assert_eq!(
                    s.answers,
                    p.answers,
                    "{} {mode}: query {qi} diverged serial vs 4-thread",
                    kind.name()
                );
                assert_eq!(
                    s.stats.raw_series_examined,
                    p.stats.raw_series_examined,
                    "{} {mode}: query {qi} work diverged serial vs 4-thread",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn scans_reject_approximate_modes_with_typed_errors() {
    let data = dataset(120, LEN, 4004);
    let q = Query::nearest_neighbor(queries(1).remove(0));
    for kind in [MethodKind::UcrSuite, MethodKind::Mass, MethodKind::Stepwise] {
        assert!(!kind.modes().any_approximate());
        let mut engine = kind.engine(&data, &options(LEN)).unwrap();
        for mode in approx_modes() {
            match engine.answer(&q.clone().with_mode(mode)) {
                Err(Error::UnsupportedMode {
                    method,
                    mode: rejected,
                }) => {
                    assert_eq!(method, kind.name());
                    assert_eq!(rejected, mode);
                }
                other => panic!(
                    "{} must reject {mode} with UnsupportedMode, got {other:?}",
                    kind.name()
                ),
            }
        }
        // The methods themselves enforce the same boundary when driven
        // directly (defense in depth below the engine).
        let direct = kind.build_boxed(&data, &options(LEN)).unwrap();
        assert!(matches!(
            direct.answer_simple(&q.clone().with_mode(AnswerMode::NgApproximate)),
            Err(Error::UnsupportedMode { .. })
        ));
    }
}

#[test]
fn exact_fallback_is_explicit_and_visibly_tagged() {
    let data = dataset(120, LEN, 4005);
    let q = Query::nearest_neighbor(queries(1).remove(0))
        .with_mode(AnswerMode::EpsilonApproximate { epsilon: 0.25 });
    let expected = brute_force_knn(&data, q.values(), 1);
    let method = MethodKind::UcrSuite
        .build_boxed(&data, &options(LEN))
        .unwrap();
    let mut engine =
        QueryEngine::new(method, data.len()).with_fallback_policy(FallbackPolicy::ExactFallback);
    let a = engine.answer(&q).unwrap();
    assert_eq!(a.guarantee, Guarantee::Exact, "the fallback is visible");
    assert!(a.answers.distances_match(&expected, 1e-6));
}

#[test]
fn range_queries_are_typed_errors_for_all_ten_methods() {
    let data = dataset(120, LEN, 4006);
    let rq = Query::try_range(queries(1).remove(0), 5.0).unwrap();
    for kind in MethodKind::ALL {
        let mut engine = kind.engine(&data, &options(LEN)).unwrap();
        match engine.answer(&rq) {
            Err(Error::UnsupportedQuery { method, reason }) => {
                assert_eq!(method, kind.name());
                assert!(reason.contains("range"), "{}: {reason}", kind.name());
            }
            other => panic!(
                "{} must reject range queries with UnsupportedQuery, got {other:?}",
                kind.name()
            ),
        }
        // Driven directly, the methods reject range queries too: none of
        // them silently answers `k = 1` anymore.
        let direct = kind.build_boxed(&data, &options(LEN)).unwrap();
        assert!(
            matches!(
                direct.answer_simple(&rq),
                Err(Error::UnsupportedQuery { .. })
            ),
            "{}",
            kind.name()
        );
    }
}

#[test]
fn ng_approximate_visits_at_most_one_leaf_on_tree_methods() {
    let data = dataset(500, LEN, 4007);
    for kind in [
        MethodKind::DsTree,
        MethodKind::Isax2Plus,
        MethodKind::AdsPlus,
        MethodKind::SfaTrie,
        MethodKind::MTree,
        MethodKind::RStarTree,
    ] {
        let mut engine = kind.engine(&data, &options(LEN)).unwrap();
        let q = Query::nearest_neighbor(queries(1).remove(0)).with_mode(AnswerMode::NgApproximate);
        let a = engine.answer(&q).unwrap();
        assert!(
            a.stats.leaves_visited <= 1,
            "{}: ng visited {} leaves",
            kind.name(),
            a.stats.leaves_visited
        );
        assert_eq!(a.guarantee, Guarantee::None, "{}", kind.name());
    }
}

//! Service-layer agreement across the whole suite.
//!
//! The central guarantees of `hydra-serve`, checked for every one of the ten
//! methods:
//!
//! 1. **Unsharded identity** — a one-shard service answers every supported
//!    mode **bit-identically** to the bare `QueryEngine`: same answer sets,
//!    same guarantees, same deterministic work counters. The service adds
//!    scheduling, never semantics.
//! 2. **Exact-mode sharding** — in exact mode the scatter-gather merge over
//!    2 and 4 shards reproduces the unsharded answers and guarantee
//!    bit-identically (exact k-NN is partition-decomposable). Approximate
//!    modes legitimately change answers under sharding (each shard's index
//!    structure differs), so they are held to guarantee 3 instead.
//! 3. **Pipeline identity** — for *every* mode and shard count, the async
//!    admitted/cached pipeline returns exactly what the serial
//!    `reference_answer` scatter-gather computes: the executor reorders
//!    work, never results.
//! 4. **Cache transparency** — a cache hit is bit-identical to its cold
//!    answer apart from the `from_cache` provenance.
//! 5. **Deterministic shedding** — admission is a pure function of arrival
//!    order: with the queue full, exactly the overflow requests shed, in
//!    order, with a typed error.
//! 6. **Deadline degradation** — deadline-bounded requests return truncated
//!    answers instead of errors.

use hydra_bench::MethodKind;
use hydra_core::{AnswerMode, Error, Guarantee, Query, QueryStats};
use hydra_data::RandomWalkGenerator;
use hydra_integration::{dataset, options};
use hydra_serve::ServeConfig;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// The counter fields of `QueryStats` (everything except the wall-clock
/// times, which legitimately vary run to run).
fn counters(stats: &QueryStats) -> [u64; 8] {
    [
        stats.raw_series_examined,
        stats.lower_bounds_computed,
        stats.leaves_visited,
        stats.internal_nodes_visited,
        stats.early_abandons,
        stats.sequential_page_accesses,
        stats.random_page_accesses,
        stats.bytes_read,
    ]
}

/// An uncached service config: the pipeline tests compare cold answers.
fn uncached(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        cache_capacity: 0,
        ..ServeConfig::default()
    }
}

/// One query per answering mode (scans support only the exact one).
fn mode_queries(data: &hydra_core::Dataset, kind: MethodKind) -> Vec<Query> {
    let modes = [
        AnswerMode::Exact,
        AnswerMode::NgApproximate,
        AnswerMode::EpsilonApproximate { epsilon: 0.5 },
        AnswerMode::DeltaEpsilon {
            delta: 0.8,
            epsilon: 0.5,
        },
    ];
    let mut queries = Vec::new();
    for mode in modes {
        if !kind.supports_mode(mode) {
            continue;
        }
        queries.push(Query::knn(data.series(42).to_owned_series(), 5).with_mode(mode));
        queries.push(
            Query::knn(
                RandomWalkGenerator::new(991, data.series_length())
                    .series_batch(1)
                    .remove(0),
                5,
            )
            .with_mode(mode),
        );
    }
    queries
}

#[test]
fn one_shard_service_is_bit_identical_to_the_engine_for_all_methods_and_modes() {
    let data = dataset(400, 64, 77);
    let opts = options(64);
    for kind in MethodKind::ALL {
        let mut engine = kind.engine(&data, &opts).unwrap();
        let service = kind.service(&data, &opts, uncached(1)).unwrap();
        for (qi, query) in mode_queries(&data, kind).iter().enumerate() {
            let expected = engine.answer(query).unwrap();
            let served = service.answer(query.clone()).unwrap();
            assert_eq!(
                served.answers,
                expected.answers,
                "{} query {qi}: one-shard answers diverged",
                kind.name()
            );
            assert_eq!(
                served.guarantee,
                expected.guarantee,
                "{} query {qi}: one-shard guarantee diverged",
                kind.name()
            );
            assert_eq!(
                counters(&served.stats),
                counters(&expected.stats),
                "{} query {qi}: one-shard work counters diverged",
                kind.name()
            );
            assert!(!served.from_cache);
        }
    }
}

#[test]
fn exact_scatter_gather_matches_the_unsharded_engine_at_every_shard_count() {
    let data = dataset(400, 64, 78);
    let opts = options(64);
    let queries: Vec<Query> = RandomWalkGenerator::new(881, 64)
        .series_batch(3)
        .into_iter()
        .map(|s| Query::knn(s, 5))
        .chain([Query::nearest_neighbor(data.series(9).to_owned_series())])
        .collect();
    for kind in MethodKind::ALL {
        let mut engine = kind.engine(&data, &opts).unwrap();
        let expected: Vec<_> = queries.iter().map(|q| engine.answer(q).unwrap()).collect();
        for shards in SHARD_COUNTS {
            let service = kind.service(&data, &opts, uncached(shards)).unwrap();
            for (qi, (query, exp)) in queries.iter().zip(&expected).enumerate() {
                let served = service.answer(query.clone()).unwrap();
                assert_eq!(
                    served.answers,
                    exp.answers,
                    "{} query {qi} at {shards} shards: exact answers diverged",
                    kind.name()
                );
                assert_eq!(
                    served.guarantee,
                    exp.guarantee,
                    "{} query {qi} at {shards} shards: guarantee diverged",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn the_async_pipeline_matches_the_serial_reference_for_every_mode_and_shard_count() {
    let data = dataset(400, 64, 79);
    let opts = options(64);
    // Index methods cover all four modes; one scan covers the exact-only
    // path. The full cross-method sweep lives in the exact-mode test above.
    for kind in [
        MethodKind::AdsPlus,
        MethodKind::DsTree,
        MethodKind::UcrSuite,
    ] {
        for shards in SHARD_COUNTS {
            let service = kind.service(&data, &opts, uncached(shards)).unwrap();
            for (qi, query) in mode_queries(&data, kind).iter().enumerate() {
                let reference = service.reference_answer(query).unwrap();
                let served = service.answer(query.clone()).unwrap();
                assert_eq!(
                    served.answers,
                    reference.answers,
                    "{} query {qi} at {shards} shards: pipeline diverged from reference",
                    kind.name()
                );
                assert_eq!(served.guarantee, reference.guarantee);
                assert_eq!(
                    counters(&served.stats),
                    counters(&reference.stats),
                    "{} query {qi} at {shards} shards: pipeline counters diverged",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn cache_hits_are_bit_identical_to_their_cold_answers() {
    let data = dataset(300, 64, 80);
    let opts = options(64);
    let config = ServeConfig {
        shards: 2,
        cache_capacity: 32,
        ..ServeConfig::default()
    };
    let service = MethodKind::VaPlusFile
        .service(&data, &opts, config)
        .unwrap();
    let query = Query::knn(data.series(17).to_owned_series(), 5);
    let cold = service.answer(query.clone()).unwrap();
    assert!(!cold.from_cache);
    let hit = service.answer(query).unwrap();
    assert!(hit.from_cache, "the second identical request must hit");
    assert_eq!(hit.answers, cold.answers);
    assert_eq!(hit.guarantee, cold.guarantee);
    assert_eq!(hit.stats, cold.stats);
    let stats = service.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
}

#[test]
fn shedding_is_a_pure_function_of_arrival_order() {
    let data = dataset(200, 32, 81);
    let opts = options(32);
    let config = ServeConfig {
        shards: 2,
        queue_capacity: 2,
        cache_capacity: 0,
        ..ServeConfig::default()
    };
    let service = MethodKind::UcrSuite.service(&data, &opts, config).unwrap();
    let queries: Vec<Query> = (0..5)
        .map(|i| Query::knn(data.series(i * 3).to_owned_series(), 3))
        .collect();
    // Submit without driving: the first `queue_capacity` requests are
    // admitted, every later arrival sheds synchronously with a typed error.
    let mut handles = Vec::new();
    for (i, query) in queries.iter().enumerate() {
        match service.submit(query.clone()) {
            Ok(handle) => {
                assert!(i < 2, "request {i} should have been shed");
                handles.push(handle);
            }
            Err(Error::Overloaded { capacity }) => {
                assert!(i >= 2, "request {i} shed while the queue had room");
                assert_eq!(capacity, 2);
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    let stats = service.service_stats();
    assert_eq!((stats.accepted, stats.shed), (2, 3));
    service.drive();
    for handle in &handles {
        assert!(handle.try_take().unwrap().is_ok());
    }
    // Capacity freed: the next request is admitted again.
    assert!(service.submit(queries[4].clone()).is_ok());
}

#[test]
fn deadline_bounded_requests_degrade_to_truncated_answers() {
    let data = dataset(400, 64, 82);
    let opts = options(64);
    let config = ServeConfig {
        shards: 2,
        cache_capacity: 0,
        // A deliberately slow model (25k series reads per second) prices the
        // 1 ms deadline to a raw-read budget far below the dataset size, so
        // the scan cannot finish: it must still answer, tagged truncated.
        deadline_ms: Some(1),
        cost_model: hydra_storage::CostModel {
            seek_latency: std::time::Duration::ZERO,
            sequential_bytes_per_sec: 64.0 * 4.0 * 25_000.0,
            profile: hydra_storage::StorageProfile::InMemory,
        },
        ..ServeConfig::default()
    };
    let budget = hydra_serve::deadline_budget(1, 64 * 4, &config.cost_model).limit();
    assert!(
        budget < 400,
        "test premise: the deadline budget ({budget}) must undercut the dataset"
    );
    let service = MethodKind::UcrSuite.service(&data, &opts, config).unwrap();
    let query = Query::knn(
        RandomWalkGenerator::new(883, 64).series_batch(1).remove(0),
        5,
    );
    let served = service.answer(query).unwrap();
    assert!(
        matches!(served.guarantee, Guarantee::Truncated { .. }),
        "expected a truncated answer, got {:?}",
        served.guarantee
    );
    assert!(
        !served.answers.is_empty(),
        "a truncated answer still returns the best-so-far neighbors"
    );
}

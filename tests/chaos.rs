//! Chaos suite: seeded deterministic fault injection across the whole method
//! suite.
//!
//! The robustness contract, exercised over all ten methods and both
//! parallelism settings:
//!
//! * no panic ever escapes the engine — every query ends in an `Ok` answer or
//!   a **typed** error;
//! * the same fault seed produces the same outcome, run to run and across
//!   thread counts (fault decisions are pure functions of seed, key and
//!   attempt — never of scheduling);
//! * a disabled fault plan is **bit-identical** to a store without fault
//!   injection, answers and per-query work counters alike;
//! * a tight budget returns a non-empty best-so-far answer tagged
//!   `Guarantee::Truncated`, and a budget large enough to never trip is
//!   bit-identical to the unbudgeted path.

use hydra_bench::MethodKind;
use hydra_core::{
    Budget, Dataset, EngineAnswer, Error, Guarantee, Parallelism, Query, QueryEngine, QueryStats,
    RetryPolicy,
};
use hydra_data::RandomWalkGenerator;
use hydra_integration::{dataset, options};
use hydra_storage::{DatasetStore, FaultConfig, FaultPlan};
use std::sync::Arc;

const SEED: u64 = 0xBAD5EED;

/// The counter fields of `QueryStats` (everything except the wall-clock
/// times, which legitimately vary run to run).
fn counters(stats: &QueryStats) -> [u64; 8] {
    [
        stats.raw_series_examined,
        stats.lower_bounds_computed,
        stats.leaves_visited,
        stats.internal_nodes_visited,
        stats.early_abandons,
        stats.sequential_page_accesses,
        stats.random_page_accesses,
        stats.bytes_read,
    ]
}

/// An aggressive all-classes mix: enough faults that every method hits some,
/// every transient clearing within two attempts.
fn chaos_config() -> FaultConfig {
    FaultConfig {
        read_error: 0.05,
        bit_flip: 0.02,
        latency: 0.1,
        latency_pages: 4,
        snapshot_corruption: 0.0,
        max_transient_attempts: 2,
    }
}

/// A mix of member queries (heavy pruning) and independent random queries.
fn chaos_queries(data: &Dataset) -> Vec<Query> {
    let mut queries: Vec<Query> = RandomWalkGenerator::new(777, 64)
        .series_batch(4)
        .into_iter()
        .map(|s| Query::knn(s, 3))
        .collect();
    for i in [7usize, 133, 250] {
        queries.push(Query::nearest_neighbor(data.series(i).to_owned_series()));
    }
    queries
}

fn engine_with_plan(
    kind: MethodKind,
    data: &Dataset,
    plan: FaultPlan,
    retry: RetryPolicy,
) -> QueryEngine {
    let store = Arc::new(DatasetStore::new(data.clone()).with_fault_plan(plan));
    kind.engine_on_store(store, &options(64))
        .unwrap_or_else(|e| panic!("building {} failed: {e:?}", kind.name()))
        .with_retry_policy(retry)
}

/// A run-to-run comparable rendering of one answered query: answers (f64
/// `Debug` is round-trip exact, so string equality is bit equality), work
/// counters, attempts and the guarantee.
fn digest(a: &EngineAnswer) -> String {
    format!(
        "{:?} {:?} attempts={} {:?}",
        a.answers.answers(),
        counters(&a.stats),
        a.attempts,
        a.guarantee
    )
}

/// The outcome of one query under faults: an answer digest, or the typed
/// error — anything untyped panics the test.
fn outcome(kind: MethodKind, qi: usize, result: hydra_core::Result<EngineAnswer>) -> String {
    match result {
        Ok(a) => digest(&a),
        Err(Error::Io {
            retriable,
            attempts,
            ..
        }) => format!("io-error retriable={retriable} attempts={attempts}"),
        Err(Error::Internal(msg)) => format!("internal: {msg}"),
        Err(e) => panic!(
            "{}: query {qi} failed with an untyped error: {e}",
            kind.name()
        ),
    }
}

#[test]
fn seeded_faults_are_deterministic_and_every_failure_is_a_typed_error() {
    let data = dataset(300, 64, 42);
    let queries = chaos_queries(&data);
    // No retries: injected faults surface as typed per-query errors.
    for kind in MethodKind::ALL {
        let run = |_: usize| -> Vec<String> {
            let mut engine = engine_with_plan(
                kind,
                &data,
                FaultPlan::seeded(SEED, chaos_config()),
                RetryPolicy::none(),
            );
            queries
                .iter()
                .enumerate()
                .map(|(qi, q)| outcome(kind, qi, engine.answer(q)))
                .collect()
        };
        let (first, second) = (run(0), run(1));
        assert_eq!(
            first,
            second,
            "{}: the same seed produced different outcomes",
            kind.name()
        );
    }
}

#[test]
fn recovering_retries_answer_every_query_identically_across_parallelism() {
    let data = dataset(300, 64, 42);
    let queries = chaos_queries(&data);
    // max_attempts exceeds the planned failure bound (2), so every transient
    // clears and the whole workload must answer.
    let retry = RetryPolicy::new(4, 2);
    for kind in MethodKind::ALL {
        let run = |parallelism: Parallelism| -> Vec<String> {
            let mut engine =
                engine_with_plan(kind, &data, FaultPlan::seeded(SEED, chaos_config()), retry);
            engine
                .answer_workload(&queries, parallelism)
                .unwrap_or_else(|e| panic!("{} under recovering retries: {e}", kind.name()))
                .iter()
                .map(digest)
                .collect()
        };
        let serial = run(Parallelism::Serial);
        let threaded = run(Parallelism::Threads(4));
        let threaded_again = run(Parallelism::Threads(4));
        assert_eq!(
            serial,
            threaded,
            "{}: outcome depends on the thread count",
            kind.name()
        );
        assert_eq!(
            threaded,
            threaded_again,
            "{}: threaded outcome is not reproducible",
            kind.name()
        );
    }
}

#[test]
fn a_disabled_fault_plan_is_bit_identical_to_the_clean_store() {
    let data = dataset(300, 64, 42);
    let queries = chaos_queries(&data);
    for kind in MethodKind::ALL {
        let mut clean = kind.engine(&data, &options(64)).unwrap();
        let mut disabled =
            engine_with_plan(kind, &data, FaultPlan::disabled(), RetryPolicy::none());
        for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
            let a = clean.answer_workload(&queries, parallelism).unwrap();
            let b = disabled.answer_workload(&queries, parallelism).unwrap();
            for (qi, (c, d)) in a.iter().zip(&b).enumerate() {
                assert_eq!(
                    c.answers.answers(),
                    d.answers.answers(),
                    "{} answers diverged on query {qi} ({parallelism:?})",
                    kind.name()
                );
                assert_eq!(
                    counters(&c.stats),
                    counters(&d.stats),
                    "{} work counters diverged on query {qi} ({parallelism:?})",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn a_tight_budget_truncates_nonempty_and_a_loose_budget_changes_nothing() {
    let data = dataset(300, 64, 42);
    let queries = chaos_queries(&data);
    for kind in MethodKind::ALL {
        let mut engine = kind.engine(&data, &options(64)).unwrap();
        for (qi, q) in queries.iter().enumerate() {
            let unbudgeted = engine.answer(q).unwrap();
            // A budget of one raw read: examine the first candidate, then
            // stop with a non-empty best-so-far.
            let tight = engine
                .answer(&q.clone().with_budget(Some(Budget::raw_reads(1))))
                .unwrap();
            assert!(
                !tight.answers.answers().is_empty(),
                "{}: truncated query {qi} returned an empty answer",
                kind.name()
            );
            // Truncation is only guaranteed when the search actually wanted
            // more than one raw read — a perfectly pruned query (e.g. an
            // M-tree member query) legitimately completes within the budget.
            if unbudgeted.stats.raw_series_examined > 1 {
                assert!(
                    matches!(tight.guarantee, Guarantee::Truncated { .. }),
                    "{}: query {qi} under a 1-read budget reported {:?}",
                    kind.name(),
                    tight.guarantee
                );
            }
            // A budget the query can never exhaust is the unbudgeted path,
            // bit for bit.
            let loose = engine
                .answer(&q.clone().with_budget(Some(Budget::raw_reads(u64::MAX - 1))))
                .unwrap();
            assert_eq!(
                digest(&loose),
                digest(&unbudgeted),
                "{}: a never-tripping budget changed query {qi}",
                kind.name()
            );
        }
    }
}

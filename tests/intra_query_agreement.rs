//! Intra-query parallelism agreement across the whole suite.
//!
//! The central guarantee of the intra-query execution layer: for every one of
//! the ten methods, answering a single query through
//! `QueryEngine::answer_intra` with multiple worker threads returns answer
//! sets, guarantees and per-query work counters **bit-identical** to the
//! serial path — whether the method has a native intra kernel (the scans, the
//! filter files, the data-series trees) or falls back to serial execution
//! (R*-tree, M-tree).

use hydra_bench::MethodKind;
use hydra_core::{AnswerMode, Parallelism, Query, QueryStats};
use hydra_data::RandomWalkGenerator;
use hydra_integration::{dataset, options};

/// The counter fields of `QueryStats` (everything except the wall-clock
/// times, which legitimately vary run to run).
fn counters(stats: &QueryStats) -> [u64; 8] {
    [
        stats.raw_series_examined,
        stats.lower_bounds_computed,
        stats.leaves_visited,
        stats.internal_nodes_visited,
        stats.early_abandons,
        stats.sequential_page_accesses,
        stats.random_page_accesses,
        stats.bytes_read,
    ]
}

#[test]
fn answer_intra_matches_serial_for_all_ten_methods_and_thread_counts() {
    let data = dataset(300, 64, 44);
    let opts = options(64);
    // A mix of independent random queries (little pruning) and member queries
    // (heavy pruning and early abandoning), plus the approximate modes for
    // the methods that support them.
    let mut queries: Vec<Query> = RandomWalkGenerator::new(779, 64)
        .series_batch(5)
        .into_iter()
        .map(|s| Query::knn(s, 3))
        .collect();
    for i in [7usize, 133, 250] {
        queries.push(Query::nearest_neighbor(data.series(i).to_owned_series()));
    }
    let approx_modes = [
        AnswerMode::NgApproximate,
        AnswerMode::EpsilonApproximate { epsilon: 0.5 },
        AnswerMode::DeltaEpsilon {
            delta: 0.8,
            epsilon: 0.5,
        },
    ];
    for mode in approx_modes {
        queries.push(Query::knn(data.series(42).to_owned_series(), 3).with_mode(mode));
    }

    for kind in MethodKind::ALL {
        let mut engine = kind.engine(&data, &opts).unwrap();
        let supported: Vec<&Query> = queries
            .iter()
            .filter(|q| kind.supports_mode(q.mode()))
            .collect();
        let serial: Vec<_> = supported
            .iter()
            .map(|q| engine.answer(q).unwrap())
            .collect();
        for parallelism in [
            Parallelism::Serial,
            Parallelism::Threads(2),
            Parallelism::Threads(4),
        ] {
            for (qi, (query, expected)) in supported.iter().zip(&serial).enumerate() {
                let got = engine.answer_intra(query, parallelism).unwrap();
                assert_eq!(
                    expected.answers,
                    got.answers,
                    "{} answers diverged on query {qi} at {parallelism:?}",
                    kind.name()
                );
                assert_eq!(
                    expected.answers.guarantee(),
                    got.answers.guarantee(),
                    "{} guarantee diverged on query {qi} at {parallelism:?}",
                    kind.name()
                );
                assert_eq!(
                    counters(&expected.stats),
                    counters(&got.stats),
                    "{} per-query stats diverged on query {qi} at {parallelism:?}",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn intra_capable_methods_expose_their_kernel_through_the_registry() {
    // `answer_intra` silently falls back to serial for methods without a
    // kernel; this pins down which of the ten actually parallelize so a
    // regression in kernel wiring cannot hide behind the fallback.
    let with_kernel: Vec<&str> = MethodKind::ALL
        .iter()
        .filter(|k| k.supports_intra())
        .map(|k| k.name())
        .collect();
    assert_eq!(
        with_kernel,
        [
            "ADS+",
            "DSTree",
            "iSAX2+",
            "SFA trie",
            "VA+file",
            "UCR-Suite",
            "MASS",
            "Stepwise"
        ]
    );
}

//! Shared helpers for the cross-crate integration tests.
//!
//! The integration suite exercises every similarity search method through the
//! common `hydra_core` interfaces, on datasets produced by `hydra-data`, and
//! checks the central invariants of the study: exactness (every method agrees
//! with the brute-force scan), lower-bounding correctness, and the sanity of
//! the I/O accounting that the experiment harness relies on.

use hydra_core::{AnsweringMethod, BuildOptions, Dataset};
use hydra_data::RandomWalkGenerator;
use hydra_dstree::DsTree;
use hydra_isax::{AdsPlus, Isax2Plus};
use hydra_mtree::MTree;
use hydra_rtree::RStarTree;
use hydra_scan::{MassScan, Stepwise, UcrScan};
use hydra_sfa::SfaTrie;
use hydra_storage::DatasetStore;
use hydra_vafile::VaPlusFile;
use std::sync::Arc;

/// A small random-walk dataset shared by the integration tests.
pub fn dataset(count: usize, len: usize, seed: u64) -> Dataset {
    RandomWalkGenerator::new(seed, len).dataset(count)
}

/// Default build options for the small integration-test datasets.
pub fn options(len: usize) -> BuildOptions {
    BuildOptions::default()
        .with_segments(16.min(len))
        .with_leaf_capacity(20)
        .with_train_samples(100)
}

/// Builds every one of the ten methods over the same dataset and returns them
/// as trait objects, so tests can iterate uniformly (the paper's "all methods
/// under the same conditions" principle).
pub fn all_methods(data: &Dataset) -> Vec<(String, Box<dyn AnsweringMethod>)> {
    let len = data.series_length();
    let opts = options(len);
    let store = || Arc::new(DatasetStore::new(data.clone()));
    let mut methods: Vec<(String, Box<dyn AnsweringMethod>)> = Vec::new();
    methods.push(("UCR-Suite".into(), Box::new(UcrScan::new(store()))));
    methods.push(("MASS".into(), Box::new(MassScan::new(store()))));
    methods.push(("Stepwise".into(), Box::new(Stepwise::build(store()).unwrap())));
    methods.push((
        "VA+file".into(),
        Box::new(VaPlusFile::build_on_store(store(), &opts).unwrap()),
    ));
    methods.push((
        "iSAX2+".into(),
        Box::new(Isax2Plus::build_on_store(store(), &opts).unwrap()),
    ));
    methods.push(("ADS+".into(), Box::new(AdsPlus::build_on_store(store(), &opts).unwrap())));
    methods.push(("DSTree".into(), Box::new(DsTree::build_on_store(store(), &opts).unwrap())));
    methods.push((
        "SFA trie".into(),
        Box::new(SfaTrie::build_on_store(store(), &opts.clone().with_alphabet_size(8)).unwrap()),
    ));
    methods.push((
        "R*-tree".into(),
        Box::new(
            RStarTree::build_on_store(store(), &opts.clone().with_segments(8.min(len))).unwrap(),
        ),
    ));
    methods.push((
        "M-tree".into(),
        Box::new(MTree::build_on_store(store(), &opts.clone().with_leaf_capacity(10)).unwrap()),
    ));
    methods
}

//! Shared helpers for the cross-crate integration tests.
//!
//! The integration suite exercises every similarity search method through the
//! common `hydra_core` interfaces, on datasets produced by `hydra-data`, and
//! checks the central invariants of the study: exactness (every method agrees
//! with the brute-force scan), lower-bounding correctness, and the sanity of
//! the I/O accounting that the experiment harness relies on.

use hydra_bench::MethodKind;
use hydra_core::{AnsweringMethod, BuildOptions, Dataset};
use hydra_data::RandomWalkGenerator;

/// A small random-walk dataset shared by the integration tests.
pub fn dataset(count: usize, len: usize, seed: u64) -> Dataset {
    RandomWalkGenerator::new(seed, len).dataset(count)
}

/// Default build options for the small integration-test datasets.
pub fn options(len: usize) -> BuildOptions {
    BuildOptions::default()
        .with_segments(16.min(len))
        .with_leaf_capacity(20)
        .with_train_samples(100)
}

/// Builds every one of the ten methods over the same dataset through the
/// registry's uniform dyn-dispatch path, so tests can iterate uniformly (the
/// paper's "all methods under the same conditions" principle).
pub fn all_methods(data: &Dataset) -> Vec<(String, Box<dyn AnsweringMethod>)> {
    let opts = options(data.series_length());
    MethodKind::ALL
        .iter()
        .map(|kind| {
            let method = kind
                .build_boxed(data, &opts)
                .unwrap_or_else(|e| panic!("building {} failed: {e:?}", kind.name()));
            (kind.name().to_string(), method)
        })
        .collect()
}

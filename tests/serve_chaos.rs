//! Chaos contract for the service resilience layer.
//!
//! Three promises, checked end-to-end through `hydra-serve`:
//!
//! 1. **Inert machinery** — with the fault plan disabled, the full
//!    resilience stack (breakers, hedging, retry, `AllShards` quorum) is
//!    bit-identical to the strict pre-resilience service for **all ten
//!    methods** at 1/2/4 shards: same answers, same guarantees, same work
//!    counters. Resilience must cost nothing when nothing fails.
//! 2. **Honest degradation** — under injected faults a request either
//!    succeeds with a full-strength guarantee, succeeds tagged
//!    [`Guarantee::Partial`], or fails with a *typed* error
//!    (`Error::Io` / `Error::CircuitOpen`). Never a panic, never an
//!    untagged degraded answer; under `AllShards` never a `Partial` at all.
//! 3. **Deterministic chaos** — the same fault seed reproduces the same
//!    per-query outcomes (answers, guarantees, counters, error strings),
//!    the same breaker traces and the same shard-health reports, run to
//!    run. Wall-clock never influences any of it.

use hydra_bench::MethodKind;
use hydra_core::{AnswerMode, Error, Guarantee, Query, QueryStats, RetryPolicy};
use hydra_data::RandomWalkGenerator;
use hydra_integration::{dataset, options};
use hydra_serve::{
    BreakerConfig, HedgeConfig, QueryService, QuorumPolicy, ResilienceConfig, ServeConfig,
};
use hydra_storage::{FaultConfig, FaultPlan};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// The counter fields of `QueryStats` (everything except the wall-clock
/// times, which legitimately vary run to run).
fn counters(stats: &QueryStats) -> [u64; 8] {
    [
        stats.raw_series_examined,
        stats.lower_bounds_computed,
        stats.leaves_visited,
        stats.internal_nodes_visited,
        stats.early_abandons,
        stats.sequential_page_accesses,
        stats.random_page_accesses,
        stats.bytes_read,
    ]
}

/// An uncached config with the whole resilience stack armed.
fn resilient(shards: usize, faults: FaultPlan, quorum: QuorumPolicy) -> ServeConfig {
    ServeConfig {
        shards,
        cache_capacity: 0,
        resilience: ResilienceConfig {
            quorum,
            breaker: Some(BreakerConfig::default()),
            hedge: Some(HedgeConfig::default()),
            shard_faults: faults,
            // Two attempts deliberately under-provision against the fault
            // mixes used here (transients clear within two *failed*
            // attempts), so some faults persist into the breaker and
            // quorum paths.
            retry: Some(RetryPolicy::new(2, 4)),
        },
        ..ServeConfig::default()
    }
}

/// One query per answering mode (scans support only the exact one).
fn mode_queries(data: &hydra_core::Dataset, kind: MethodKind) -> Vec<Query> {
    let modes = [
        AnswerMode::Exact,
        AnswerMode::NgApproximate,
        AnswerMode::EpsilonApproximate { epsilon: 0.5 },
        AnswerMode::DeltaEpsilon {
            delta: 0.8,
            epsilon: 0.5,
        },
    ];
    modes
        .into_iter()
        .filter(|mode| kind.supports_mode(*mode))
        .map(|mode| Query::knn(data.series(42).to_owned_series(), 5).with_mode(mode))
        .collect()
}

/// A heavier-than-standard fault mix for the faulted sweeps: the small test
/// dataset and well-pruning indexes touch few raw keys per query, so the
/// CLI-grade `FaultConfig::standard()` rates would rarely bite here.
fn heavy_faults() -> FaultConfig {
    FaultConfig {
        read_error: 0.25,
        bit_flip: 0.05,
        latency: 0.05,
        latency_pages: 4,
        snapshot_corruption: 0.0,
        max_transient_attempts: 2,
    }
}

/// A pool of exact queries for the faulted sweeps.
fn chaos_queries(data: &hydra_core::Dataset) -> Vec<Query> {
    RandomWalkGenerator::new(4_242, data.series_length())
        .series_batch(6)
        .into_iter()
        .map(|s| Query::knn(s, 5))
        .chain([Query::nearest_neighbor(data.series(11).to_owned_series())])
        .collect()
}

/// One request's comparable outcome: the bit-identity fields of a success,
/// or the rendered typed error.
#[derive(Debug, PartialEq)]
enum Outcome {
    Answered {
        answers: hydra_core::AnswerSet,
        guarantee: Guarantee,
        counters: [u64; 8],
    },
    Failed(String),
}

fn run_sweep(service: &QueryService, queries: &[Query]) -> Vec<Outcome> {
    queries
        .iter()
        .map(|query| match service.answer(query.clone()) {
            Ok(answer) => Outcome::Answered {
                answers: answer.answers,
                guarantee: answer.guarantee,
                counters: counters(&answer.stats),
            },
            Err(err) => Outcome::Failed(err.to_string()),
        })
        .collect()
}

#[test]
fn fault_free_resilience_is_bit_identical_to_the_strict_service() {
    let data = dataset(400, 64, 90);
    let opts = options(64);
    for kind in MethodKind::ALL {
        for shards in SHARD_COUNTS {
            let strict = kind
                .service(
                    &data,
                    &opts,
                    ServeConfig {
                        shards,
                        cache_capacity: 0,
                        ..ServeConfig::default()
                    },
                )
                .unwrap();
            let armed = kind
                .service(
                    &data,
                    &opts,
                    resilient(shards, FaultPlan::disabled(), QuorumPolicy::AllShards),
                )
                .unwrap();
            for (qi, query) in mode_queries(&data, kind).iter().enumerate() {
                let expected = strict.answer(query.clone()).unwrap();
                let served = armed.answer(query.clone()).unwrap();
                assert_eq!(
                    served.answers,
                    expected.answers,
                    "{} query {qi} at {shards} shards: armed answers diverged",
                    kind.name()
                );
                assert_eq!(
                    served.guarantee,
                    expected.guarantee,
                    "{} query {qi} at {shards} shards: armed guarantee diverged",
                    kind.name()
                );
                assert_eq!(
                    counters(&served.stats),
                    counters(&expected.stats),
                    "{} query {qi} at {shards} shards: armed counters diverged",
                    kind.name()
                );
            }
            // Nothing failed, so the breakers never moved and no hedge won.
            for (si, report) in armed.resilience_report().iter().enumerate() {
                assert_eq!(report.failures, 0, "shard {si} recorded a failure");
                assert_eq!(report.breaker_opened, 0, "shard {si} breaker opened");
                assert_eq!(report.hedges_won, 0, "a hedge won on shard {si}");
                assert_eq!(report.rejected, 0, "shard {si} rejected a request");
            }
            for trace in armed.breaker_traces() {
                assert!(trace.is_empty(), "fault-free breakers must never move");
            }
        }
    }
}

#[test]
fn faults_surface_only_as_typed_errors_or_partial_tagged_answers() {
    let data = dataset(400, 64, 91);
    let opts = options(64);
    let queries = chaos_queries(&data);
    let mut partials = 0usize;
    let mut failures = 0usize;
    // Best-effort degrades to Partial; the strict 4-of-4 quorum turns any
    // failing shard into a quorum-unmet typed error.
    let lanes = [
        (2, QuorumPolicy::BestEffort),
        (4, QuorumPolicy::BestEffort),
        (4, QuorumPolicy::AtLeast(4)),
    ];
    for (shards, quorum) in lanes {
        let plan = FaultPlan::seeded(0xC4A05, heavy_faults());
        let service = MethodKind::AdsPlus
            .service(&data, &opts, resilient(shards, plan, quorum))
            .unwrap();
        // Three passes so breakers get to trip and recover.
        for pass in 0..3 {
            for (qi, query) in queries.iter().enumerate() {
                match service.answer(query.clone()) {
                    Ok(answer) => match answer.guarantee {
                        Guarantee::Partial {
                            shards_answered,
                            shards_total,
                            ..
                        } => {
                            partials += 1;
                            assert!(
                                (shards_answered as usize) < shards,
                                "pass {pass} query {qi}: a full gather must not be tagged"
                            );
                            assert_eq!(shards_total as usize, shards);
                        }
                        Guarantee::Exact => {}
                        other => panic!(
                            "pass {pass} query {qi}: unexpected guarantee {other:?} \
                             for an exact-mode request under faults"
                        ),
                    },
                    Err(err) => {
                        failures += 1;
                        assert!(
                            matches!(err, Error::Io { .. } | Error::CircuitOpen { .. }),
                            "pass {pass} query {qi}: fault leaked as untyped error: {err}"
                        );
                    }
                }
            }
        }
    }
    // The premise of the test: this seed actually degrades some answers.
    assert!(partials > 0, "no Partial answers — faults never bit");
    assert!(failures > 0, "no typed failures — faults never bit");
}

#[test]
fn all_shards_quorum_never_serves_partial_answers() {
    let data = dataset(400, 64, 92);
    let opts = options(64);
    let plan = FaultPlan::seeded(0xC4A05, heavy_faults());
    let service = MethodKind::AdsPlus
        .service(&data, &opts, resilient(3, plan, QuorumPolicy::AllShards))
        .unwrap();
    let mut failures = 0usize;
    for query in chaos_queries(&data) {
        match service.answer(query) {
            Ok(answer) => assert!(
                !matches!(answer.guarantee, Guarantee::Partial { .. }),
                "AllShards must propagate failures, not degrade"
            ),
            Err(err) => {
                failures += 1;
                assert!(matches!(err, Error::Io { .. } | Error::CircuitOpen { .. }));
            }
        }
    }
    assert!(failures > 0, "test premise: this seed fails some shard");
}

#[test]
fn the_same_seed_reproduces_answers_breaker_traces_and_reports() {
    let data = dataset(400, 64, 93);
    let opts = options(64);
    let queries = chaos_queries(&data);
    let run = || {
        let plan = FaultPlan::seeded(0xFEED, heavy_faults());
        let service = MethodKind::VaPlusFile
            .service(&data, &opts, resilient(4, plan, QuorumPolicy::AtLeast(2)))
            .unwrap();
        let mut outcomes = Vec::new();
        for _ in 0..3 {
            outcomes.extend(run_sweep(&service, &queries));
        }
        (
            outcomes,
            service.breaker_traces(),
            service.resilience_report(),
        )
    };
    let (outcomes_a, traces_a, reports_a) = run();
    let (outcomes_b, traces_b, reports_b) = run();
    assert_eq!(outcomes_a, outcomes_b, "same seed, different outcomes");
    assert_eq!(traces_a, traces_b, "same seed, different breaker traces");
    assert_eq!(reports_a, reports_b, "same seed, different health reports");
}

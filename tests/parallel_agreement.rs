//! Parallel-vs-serial agreement across the whole suite.
//!
//! The central guarantee of the parallel execution layer: for every one of the
//! ten methods, running a workload through `QueryEngine::answer_workload` with
//! multiple worker threads returns answer sets and per-query work counters
//! **identical** to the serial loop, and parallel index construction builds
//! the same index as a serial build.

use hydra_bench::MethodKind;
use hydra_core::{Parallelism, Query, QueryStats};
use hydra_data::RandomWalkGenerator;
use hydra_integration::{dataset, options};

/// The counter fields of `QueryStats` (everything except the wall-clock
/// times, which legitimately vary run to run).
fn counters(stats: &QueryStats) -> [u64; 8] {
    [
        stats.raw_series_examined,
        stats.lower_bounds_computed,
        stats.leaves_visited,
        stats.internal_nodes_visited,
        stats.early_abandons,
        stats.sequential_page_accesses,
        stats.random_page_accesses,
        stats.bytes_read,
    ]
}

#[test]
fn answer_workload_at_4_threads_matches_the_serial_loop_for_all_ten_methods() {
    let data = dataset(300, 64, 42);
    let opts = options(64);
    // A mix of member queries (heavy pruning) and independent random queries.
    let mut queries: Vec<Query> = RandomWalkGenerator::new(777, 64)
        .series_batch(6)
        .into_iter()
        .map(|s| Query::knn(s, 3))
        .collect();
    for i in [7usize, 133, 250] {
        queries.push(Query::nearest_neighbor(data.series(i).to_owned_series()));
    }

    for kind in MethodKind::ALL {
        let mut engine = kind.engine(&data, &opts).unwrap();
        let serial: Vec<_> = queries.iter().map(|q| engine.answer(q).unwrap()).collect();
        let serial_totals = counters(engine.totals());
        engine.reset_totals();
        let parallel = engine
            .answer_workload(&queries, Parallelism::Threads(4))
            .unwrap();

        assert_eq!(parallel.len(), serial.len(), "{}", kind.name());
        for (qi, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(
                s.answers.answers(),
                p.answers.answers(),
                "{} answers diverged on query {qi}",
                kind.name()
            );
            assert_eq!(
                counters(&s.stats),
                counters(&p.stats),
                "{} per-query stats diverged on query {qi}",
                kind.name()
            );
        }
        assert_eq!(
            counters(engine.totals()),
            serial_totals,
            "{} workload totals diverged",
            kind.name()
        );
        // reset_totals cleared the serial run's count before the parallel run.
        assert_eq!(engine.queries_answered(), queries.len() as u64);
    }
}

#[test]
fn parallel_index_builds_match_serial_builds() {
    let data = dataset(400, 64, 43);
    let tree_methods = [
        MethodKind::DsTree,
        MethodKind::Isax2Plus,
        MethodKind::AdsPlus,
        MethodKind::SfaTrie,
    ];
    let queries: Vec<Query> = RandomWalkGenerator::new(778, 64)
        .series_batch(5)
        .into_iter()
        .map(|s| Query::knn(s, 3))
        .collect();
    for kind in tree_methods {
        let serial = kind
            .engine(&data, &options(64).with_build_threads(1))
            .unwrap();
        let mut parallel = kind
            .engine(&data, &options(64).with_build_threads(4))
            .unwrap();
        let (fp_s, fp_p) = (serial.footprint().unwrap(), parallel.footprint().unwrap());
        assert_eq!(fp_p.total_nodes, fp_s.total_nodes, "{}", kind.name());
        assert_eq!(fp_p.leaf_nodes, fp_s.leaf_nodes, "{}", kind.name());
        assert_eq!(fp_p.disk_bytes, fp_s.disk_bytes, "{}", kind.name());
        let sorted = |mut v: Vec<usize>| {
            v.sort();
            v
        };
        assert_eq!(
            sorted(fp_p.leaf_depths.clone()),
            sorted(fp_s.leaf_depths.clone()),
            "{}",
            kind.name()
        );
        let mut serial = serial;
        for (qi, q) in queries.iter().enumerate() {
            let a = serial.answer_simple(q).unwrap();
            let b = parallel.answer_simple(q).unwrap();
            assert!(
                a.distances_match(&b, 1e-12),
                "{} parallel-built index diverged on query {qi}",
                kind.name()
            );
        }
    }
}

//! The central invariant of the study: every method, sequential or indexed,
//! returns the exact nearest neighbours — the same distances the brute-force
//! scan produces.

use hydra_core::Query;
use hydra_data::{DomainDataset, DomainGenerator, QueryWorkload, WorkloadSpec};
use hydra_integration::{all_methods, dataset};
use hydra_scan::ucr::brute_force_knn;

#[test]
fn every_method_is_exact_on_random_walk_data() {
    let data = dataset(300, 64, 2024);
    let methods = all_methods(&data);
    let queries = QueryWorkload::generate(
        "Synth-Rand",
        &data,
        &WorkloadSpec::random(7).with_num_queries(8),
    );
    for (name, method) in &methods {
        for q in queries.queries() {
            let expected = brute_force_knn(&data, q.values(), 1);
            let got = method
                .answer_simple(&Query::nearest_neighbor(q.clone()))
                .unwrap();
            assert!(
                got.distances_match(&expected, 1e-3),
                "{name} returned a non-exact 1-NN answer: {:?} vs {:?}",
                got.nearest(),
                expected.nearest()
            );
        }
    }
}

#[test]
fn every_method_is_exact_for_k_greater_than_one() {
    let data = dataset(250, 64, 55);
    let methods = all_methods(&data);
    let queries = QueryWorkload::generate(
        "Synth-Ctrl",
        &data,
        &WorkloadSpec::controlled(11).with_num_queries(6),
    );
    for (name, method) in &methods {
        for q in queries.queries() {
            for k in [3usize, 10] {
                let expected = brute_force_knn(&data, q.values(), k);
                let got = method.answer_simple(&Query::knn(q.clone(), k)).unwrap();
                assert_eq!(got.len(), k, "{name} returned fewer than k answers");
                assert!(
                    got.distances_match(&expected, 1e-3),
                    "{name} diverged from brute force at k={k}"
                );
            }
        }
    }
}

#[test]
fn every_method_is_exact_on_every_domain_dataset() {
    // The four domain stand-ins exercise very different summarizability
    // profiles (smooth, periodic, bursty, high-entropy); exactness must hold
    // on all of them.
    for domain in DomainDataset::ALL {
        let generator = DomainGenerator::new(domain, 99).with_series_length(64);
        let data = generator.dataset(200);
        let methods = all_methods(&data);
        let queries = QueryWorkload::generate(
            format!("{}-Ctrl", domain.name()),
            &data,
            &WorkloadSpec::controlled(3).with_num_queries(4),
        );
        for (name, method) in &methods {
            for q in queries.queries() {
                let expected = brute_force_knn(&data, q.values(), 1);
                let got = method
                    .answer_simple(&Query::nearest_neighbor(q.clone()))
                    .unwrap();
                assert!(
                    got.distances_match(&expected, 1e-3),
                    "{name} non-exact on {} data",
                    domain.name()
                );
            }
        }
    }
}

#[test]
fn member_queries_return_distance_zero_for_every_method() {
    let data = dataset(200, 64, 77);
    let methods = all_methods(&data);
    for (name, method) in &methods {
        for id in [0usize, 99, 199] {
            let q = data.series(id).to_owned_series();
            let got = method.answer_simple(&Query::nearest_neighbor(q)).unwrap();
            let nearest = got.nearest().unwrap();
            assert!(
                nearest.distance < 1e-3,
                "{name} failed to find the exact duplicate of series {id}"
            );
        }
    }
}

//! Cross-method agreement and measurement-framework consistency.
//!
//! Beyond exactness against the brute-force oracle, this suite checks that all
//! ten methods agree with *each other* on a workload, that their statistics
//! are internally consistent (pruning ratios in range, counters populated),
//! and that the approximate answers supported by the tree indexes are never
//! better than the exact answer (which would indicate a bookkeeping bug).

use hydra_core::{AnswerMode, AnsweringMethod, ExactIndex, Query, QueryStats};
use hydra_data::{QueryWorkload, WorkloadSpec};
use hydra_integration::{all_methods, dataset, options};
use hydra_isax::{AdsPlus, Isax2Plus};
use hydra_storage::DatasetStore;
use std::sync::Arc;

#[test]
fn all_methods_agree_pairwise_on_a_workload() {
    let data = dataset(300, 64, 404);
    let methods = all_methods(&data);
    let workload = QueryWorkload::generate(
        "Synth-Rand",
        &data,
        &WorkloadSpec::random(5).with_num_queries(6),
    );
    for q in workload.queries() {
        let answers: Vec<_> = methods
            .iter()
            .map(|(name, m)| {
                (
                    name.clone(),
                    m.answer_simple(&Query::knn(q.clone(), 5)).unwrap(),
                )
            })
            .collect();
        let (ref_name, reference) = &answers[0];
        for (name, ans) in &answers[1..] {
            assert!(
                ans.distances_match(reference, 1e-3),
                "{name} disagrees with {ref_name} on a 5-NN query"
            );
        }
    }
}

#[test]
fn pruning_ratios_are_within_range_and_indexes_beat_scans() {
    let data = dataset(600, 64, 505);
    let methods = all_methods(&data);
    // A member query: easy, so the summarization indexes should prune a lot.
    let q = data.series(123).to_owned_series();
    let mut scan_ratio = None;
    let mut best_index_ratio: f64 = 0.0;
    for (name, method) in &methods {
        let mut stats = QueryStats::default();
        method
            .answer(&Query::nearest_neighbor(q.clone()), &mut stats)
            .unwrap();
        let ratio = stats.pruning_ratio(data.len());
        assert!(
            (0.0..=1.0).contains(&ratio),
            "{name} pruning ratio out of range: {ratio}"
        );
        if name == "UCR-Suite" {
            scan_ratio = Some(ratio);
        } else if name != "MASS" {
            best_index_ratio = best_index_ratio.max(ratio);
        }
    }
    assert_eq!(
        scan_ratio.unwrap(),
        0.0,
        "a sequential scan examines every series"
    );
    assert!(
        best_index_ratio > 0.5,
        "at least one index should prune more than half the dataset on an easy query"
    );
}

#[test]
fn query_stats_counters_are_populated_consistently() {
    let data = dataset(400, 64, 606);
    let methods = all_methods(&data);
    let q = data.series(5).to_owned_series();
    for (name, method) in &methods {
        let mut stats = QueryStats::default();
        method
            .answer(&Query::nearest_neighbor(q.clone()), &mut stats)
            .unwrap();
        assert!(
            stats.raw_series_examined >= 1,
            "{name} must examine at least one raw series to answer exactly"
        );
        assert!(
            stats.raw_series_examined <= data.len() as u64,
            "{name} examined more series than the dataset holds"
        );
        let descriptor = method.descriptor();
        if descriptor.is_index {
            assert!(
                stats.lower_bounds_computed > 0 || stats.leaves_visited > 0,
                "{name} is an index but recorded no filtering work"
            );
        }
    }
}

#[test]
fn isax_family_shares_tree_shape_but_not_build_cost() {
    // The paper notes ADS+ and iSAX2+ have the same tree structure for equal
    // leaf sizes, while their build costs differ enormously (ADS+ persists
    // only summaries). Verify both halves of that claim.
    let data = dataset(500, 64, 707);
    let opts = options(64);
    let s1 = Arc::new(DatasetStore::new(data.clone()));
    let isax = Isax2Plus::build_on_store(s1.clone(), &opts).unwrap();
    let s2 = Arc::new(DatasetStore::new(data.clone()));
    let ads = AdsPlus::build_on_store(s2.clone(), &opts).unwrap();
    assert_eq!(isax.footprint().total_nodes, ads.footprint().total_nodes);
    assert_eq!(isax.footprint().leaf_nodes, ads.footprint().leaf_nodes);
    assert!(s2.io_snapshot().bytes_written * 4 < s1.io_snapshot().bytes_written);
}

#[test]
fn approximate_answers_never_beat_exact_answers() {
    let data = dataset(400, 64, 808);
    let opts = options(64);
    let store = Arc::new(DatasetStore::new(data.clone()));
    let isax = Isax2Plus::build_on_store(store, &opts).unwrap();
    let store = Arc::new(DatasetStore::new(data.clone()));
    let ads = AdsPlus::build_on_store(store, &opts).unwrap();
    let workload = QueryWorkload::generate(
        "w",
        &data,
        &WorkloadSpec::controlled(3).with_num_queries(10),
    );
    let methods: [(&str, &dyn AnsweringMethod); 2] = [("iSAX2+", &isax), ("ADS+", &ads)];
    for q in workload.queries() {
        for (name, method) in methods {
            let exact = method
                .answer_simple(&Query::nearest_neighbor(q.clone()))
                .unwrap();
            for mode in [
                AnswerMode::NgApproximate,
                AnswerMode::EpsilonApproximate { epsilon: 0.25 },
                AnswerMode::DeltaEpsilon {
                    delta: 0.9,
                    epsilon: 0.25,
                },
            ] {
                let approx = method
                    .answer(
                        &Query::nearest_neighbor(q.clone()).with_mode(mode),
                        &mut QueryStats::default(),
                    )
                    .unwrap();
                assert_eq!(approx.guarantee(), mode.guarantee(), "{name} {mode}");
                if let (Some(a), Some(e)) = (approx.nearest(), exact.nearest()) {
                    assert!(
                        a.distance + 1e-6 >= e.distance,
                        "{name}: {mode} answer beat the exact one"
                    );
                }
            }
        }
    }
}

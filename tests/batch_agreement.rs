//! Batch-vs-serial agreement across the whole suite.
//!
//! The central guarantee of the batched execution layer: for every one of
//! the ten methods, answering a workload through `QueryEngine::answer_batch`
//! — whether through a native batch kernel (the scans, VA+file, ADS+) or
//! the per-query fallback (the tree indexes) — returns answer sets and
//! per-query work counters **identical** to the serial per-query loop, for
//! every batch size and thread count. Mixed `AnswerMode` batches are routed
//! or rejected exactly as the per-query path.

use hydra_bench::MethodKind;
use hydra_core::{AnswerMode, EngineAnswer, Error, Parallelism, Query, QueryStats};
use hydra_data::RandomWalkGenerator;
use hydra_integration::{dataset, options};

/// The counter fields of `QueryStats` (everything except the wall-clock
/// times, which legitimately vary run to run).
fn counters(stats: &QueryStats) -> [u64; 8] {
    [
        stats.raw_series_examined,
        stats.lower_bounds_computed,
        stats.leaves_visited,
        stats.internal_nodes_visited,
        stats.early_abandons,
        stats.sequential_page_accesses,
        stats.random_page_accesses,
        stats.bytes_read,
    ]
}

fn assert_batch_matches_serial(
    kind: MethodKind,
    serial: &[EngineAnswer],
    batched: &[EngineAnswer],
    label: &str,
) {
    assert_eq!(batched.len(), serial.len(), "{} {label}", kind.name());
    for (qi, (s, b)) in serial.iter().zip(batched).enumerate() {
        assert_eq!(
            s.answers.answers(),
            b.answers.answers(),
            "{} answers diverged on query {qi} ({label})",
            kind.name()
        );
        assert_eq!(
            s.guarantee,
            b.guarantee,
            "{} guarantee diverged on query {qi} ({label})",
            kind.name()
        );
        assert_eq!(
            counters(&s.stats),
            counters(&b.stats),
            "{} per-query stats diverged on query {qi} ({label})",
            kind.name()
        );
    }
}

#[test]
fn answer_batch_is_bit_identical_to_the_serial_loop_for_all_ten_methods() {
    let data = dataset(300, 64, 44);
    let opts = options(64);
    // A mix of member queries (heavy pruning), random queries, and mixed k
    // values in one batch.
    let mut queries: Vec<Query> = RandomWalkGenerator::new(779, 64)
        .series_batch(6)
        .into_iter()
        .enumerate()
        .map(|(i, s)| Query::knn(s, 1 + (i % 3) * 2))
        .collect();
    for i in [7usize, 133, 250] {
        queries.push(Query::nearest_neighbor(data.series(i).to_owned_series()));
    }

    for kind in MethodKind::ALL {
        let mut engine = kind.engine(&data, &opts).unwrap();
        let serial: Vec<_> = queries.iter().map(|q| engine.answer(q).unwrap()).collect();
        let serial_totals = counters(engine.totals());

        // The batch size × thread count cross product, including a size that
        // does not divide the workload and the whole-workload batch.
        for batch in [1usize, 3, queries.len()] {
            for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
                let mut batched_engine = kind.engine(&data, &opts).unwrap();
                let mut batched = Vec::with_capacity(queries.len());
                for chunk in queries.chunks(batch) {
                    batched.extend(batched_engine.answer_batch(chunk, parallelism).unwrap());
                }
                let label = format!("batch={batch} {parallelism:?}");
                assert_batch_matches_serial(kind, &serial, &batched, &label);
                assert_eq!(
                    counters(batched_engine.totals()),
                    serial_totals,
                    "{} workload totals diverged ({label})",
                    kind.name()
                );
                assert_eq!(batched_engine.queries_answered(), queries.len() as u64);
                // Native kernels report their batch-scoped physical traffic;
                // fallback methods report none.
                assert_eq!(
                    batched_engine.last_batch_io().is_some(),
                    kind.supports_batch(),
                    "{} ({label})",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn empty_batches_are_no_ops_for_every_method() {
    let data = dataset(80, 32, 45);
    for kind in MethodKind::ALL {
        let mut engine = kind.engine(&data, &options(32)).unwrap();
        assert!(engine
            .answer_batch(&[], Parallelism::Threads(4))
            .unwrap()
            .is_empty());
        assert_eq!(engine.queries_answered(), 0, "{}", kind.name());
        assert_eq!(engine.last_batch_io(), None, "{}", kind.name());
    }
}

#[test]
fn mixed_mode_batches_are_routed_like_the_per_query_path() {
    let data = dataset(250, 64, 46);
    let opts = options(64);
    let series = RandomWalkGenerator::new(780, 64).series_batch(4);
    let mixed: Vec<Query> = vec![
        Query::knn(series[0].clone(), 3),
        Query::knn(series[1].clone(), 2).with_mode(AnswerMode::NgApproximate),
        Query::knn(series[2].clone(), 3).with_mode(AnswerMode::EpsilonApproximate { epsilon: 0.3 }),
        Query::knn(series[3].clone(), 1).with_mode(AnswerMode::DeltaEpsilon {
            delta: 0.9,
            epsilon: 0.25,
        }),
    ];

    // Mode-capable methods answer the whole mixed batch, bit-identically to
    // the per-query loop — including the batch-kernel methods VA+file and
    // ADS+, whose shared sweeps must compose with per-query modes.
    for kind in MethodKind::ALL
        .into_iter()
        .filter(|k| k.modes().any_approximate())
    {
        let mut engine = kind.engine(&data, &opts).unwrap();
        let serial: Vec<_> = mixed.iter().map(|q| engine.answer(q).unwrap()).collect();
        for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
            let mut batched_engine = kind.engine(&data, &opts).unwrap();
            let batched = batched_engine.answer_batch(&mixed, parallelism).unwrap();
            assert_batch_matches_serial(kind, &serial, &batched, &format!("{parallelism:?}"));
        }
    }

    // Exact-only methods reject the first non-exact query with the same
    // typed error and the same answered prefix as the per-query loop.
    for kind in [MethodKind::UcrSuite, MethodKind::Mass, MethodKind::Stepwise] {
        let mut serial_engine = kind.engine(&data, &opts).unwrap();
        let serial_err = serial_engine
            .answer_workload(&mixed, Parallelism::Serial)
            .unwrap_err();
        let serial_answered = serial_engine.queries_answered();
        let serial_totals = counters(serial_engine.totals());

        let mut batched_engine = kind.engine(&data, &opts).unwrap();
        match batched_engine.answer_batch(&mixed, Parallelism::Serial) {
            Err(Error::UnsupportedMode { method, mode }) => {
                assert_eq!(method, kind.name());
                assert_eq!(mode, AnswerMode::NgApproximate);
                assert!(
                    matches!(serial_err, Error::UnsupportedMode { .. }),
                    "{}",
                    kind.name()
                );
            }
            other => panic!("{}: expected UnsupportedMode, got {other:?}", kind.name()),
        }
        assert_eq!(
            batched_engine.queries_answered(),
            serial_answered,
            "{}: the answered prefix must match the per-query loop",
            kind.name()
        );
        assert_eq!(
            counters(batched_engine.totals()),
            serial_totals,
            "{}: prefix totals must match the per-query loop",
            kind.name()
        );
    }
}

#[test]
fn range_queries_in_a_batch_are_typed_errors_after_the_answered_prefix() {
    let data = dataset(100, 32, 47);
    let mut queries: Vec<Query> = RandomWalkGenerator::new(781, 32)
        .series_batch(2)
        .into_iter()
        .map(Query::nearest_neighbor)
        .collect();
    queries.push(Query::range(
        RandomWalkGenerator::new(782, 32).series(0),
        2.0,
    ));
    for kind in MethodKind::ALL {
        let mut engine = kind.engine(&data, &options(32)).unwrap();
        assert!(
            matches!(
                engine.answer_batch(&queries, Parallelism::Serial),
                Err(Error::UnsupportedQuery { .. })
            ),
            "{}",
            kind.name()
        );
        assert_eq!(engine.queries_answered(), 2, "{}", kind.name());
    }
}

//! End-to-end checks of the storage accounting and cost model that the
//! experiment harness uses to reproduce the paper's disk-access and
//! scalability figures.

use hydra_core::{AnsweringMethod, BuildOptions, Query, QueryStats};
use hydra_data::RandomWalkGenerator;
use hydra_integration::dataset;
use hydra_isax::AdsPlus;
use hydra_scan::UcrScan;
use hydra_storage::{CostModel, DatasetStore, IoSnapshot};
use hydra_vafile::VaPlusFile;
use std::sync::Arc;

#[test]
fn sequential_scan_has_the_most_sequential_and_fewest_random_accesses() {
    let data = dataset(1000, 128, 10);
    let opts = BuildOptions::default()
        .with_segments(16)
        .with_leaf_capacity(50);

    let scan_store = Arc::new(DatasetStore::new(data.clone()));
    let scan = UcrScan::new(scan_store.clone());
    let ads_store = Arc::new(DatasetStore::new(data.clone()));
    let ads = AdsPlus::build_on_store(ads_store.clone(), &opts).unwrap();
    let va_store = Arc::new(DatasetStore::new(data.clone()));
    let va = VaPlusFile::build_on_store(va_store.clone(), &opts).unwrap();

    // An easy (member) query so that the filter-based methods actually prune.
    let q = data.series(500).to_owned_series();
    let mut scan_stats = QueryStats::default();
    scan.answer(&Query::nearest_neighbor(q.clone()), &mut scan_stats)
        .unwrap();
    let mut ads_stats = QueryStats::default();
    ads.answer(&Query::nearest_neighbor(q.clone()), &mut ads_stats)
        .unwrap();
    let mut va_stats = QueryStats::default();
    va.answer(&Query::nearest_neighbor(q), &mut va_stats)
        .unwrap();

    // The scan reads everything sequentially with a single seek.
    assert_eq!(scan_stats.random_page_accesses, 1);
    assert!(scan_stats.sequential_page_accesses > ads_stats.sequential_page_accesses);
    assert!(scan_stats.sequential_page_accesses > va_stats.sequential_page_accesses);
    // The filter-based methods trade sequential volume for random accesses.
    assert!(ads_stats.random_page_accesses >= 1);
    assert!(va_stats.random_page_accesses >= 1);
    // And they read far fewer bytes of raw data.
    assert!(va_stats.bytes_read < scan_stats.bytes_read);
}

#[test]
fn cost_model_reverses_winners_between_hdd_and_ssd_access_patterns() {
    // A scan-heavy profile vs a seek-heavy profile: the HDD model must favour
    // the former relatively more than the SSD model does — the effect behind
    // the paper's HDD/SSD winner flip.
    let scan_like = IoSnapshot {
        sequential_pages: 100_000,
        random_pages: 1,
        bytes_read: 100_000 * 4096,
        bytes_written: 0,
    };
    let seek_like = IoSnapshot {
        sequential_pages: 0,
        random_pages: 3_000,
        bytes_read: 3_000 * 4096,
        bytes_written: 0,
    };
    let hdd = CostModel::hdd();
    let ssd = CostModel::ssd();
    let hdd_ratio = hdd.io_time(&seek_like).as_secs_f64() / hdd.io_time(&scan_like).as_secs_f64();
    let ssd_ratio = ssd.io_time(&seek_like).as_secs_f64() / ssd.io_time(&scan_like).as_secs_f64();
    assert!(
        hdd_ratio > ssd_ratio,
        "random-heavy access must be relatively more expensive on HDD ({hdd_ratio:.2}) than SSD ({ssd_ratio:.2})"
    );
    assert!(ssd.io_time(&seek_like) < hdd.io_time(&seek_like));
}

#[test]
fn query_stats_io_matches_store_counters_for_the_scan() {
    let data = dataset(500, 64, 20);
    let store = Arc::new(DatasetStore::new(data));
    let scan = UcrScan::new(store.clone());
    store.reset_io();
    let q = RandomWalkGenerator::new(9, 64).series(1);
    let mut stats = QueryStats::default();
    scan.answer(&Query::nearest_neighbor(q), &mut stats)
        .unwrap();
    let io = store.io_snapshot();
    assert_eq!(stats.sequential_page_accesses, io.sequential_pages);
    assert_eq!(stats.random_page_accesses, io.random_pages);
    assert_eq!(stats.bytes_read, io.bytes_read);
}

#[test]
fn concurrent_readers_produce_exact_aggregate_io_totals() {
    // N threads hammering reads through the same store: the aggregate
    // IoSnapshot must be the exact sum of every thread's traffic — no lost
    // updates, no double counting — because each thread records into its own
    // shard and the global snapshot sums the shards.
    const THREADS: usize = 8;
    const READS_PER_THREAD: usize = 200;
    // 1 KiB series, 4 per page: a stride of 8 series jumps 2 pages, so every
    // single-series read is a random access under per-thread head tracking.
    let store = Arc::new(DatasetStore::new(dataset(1600, 256, 7)));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = store.clone();
            scope.spawn(move || {
                for r in 0..READS_PER_THREAD {
                    let id = ((t + r) * 8) % 1600;
                    let series = store.read_series(id);
                    assert_eq!(series.len(), 256);
                }
                // Each worker observed exactly its own traffic.
                let local = store.thread_io_snapshot();
                assert_eq!(local.total_pages(), READS_PER_THREAD as u64);
                assert_eq!(local.random_pages, READS_PER_THREAD as u64);
                assert_eq!(local.bytes_read, (READS_PER_THREAD * 1024) as u64);
            });
        }
    });
    let total = store.io_snapshot();
    let expected_reads = (THREADS * READS_PER_THREAD) as u64;
    assert_eq!(total.total_pages(), expected_reads);
    assert_eq!(total.random_pages, expected_reads);
    assert_eq!(total.sequential_pages, 0);
    assert_eq!(total.bytes_read, expected_reads * 1024);
}

#[test]
fn index_construction_writes_are_visible_to_the_cost_model() {
    let data = dataset(400, 64, 30);
    let store = Arc::new(DatasetStore::new(data));
    let _va = VaPlusFile::build_on_store(
        store.clone(),
        &BuildOptions::default()
            .with_segments(16)
            .with_leaf_capacity(50),
    )
    .unwrap();
    let io = store.io_snapshot();
    assert!(
        io.bytes_written > 0,
        "index construction must record its write volume"
    );
    let model = CostModel::hdd();
    assert!(model.write_time(&io) > std::time::Duration::ZERO);
    assert!(model.total_time(&io) >= model.io_time(&io));
}

//! Workload-level integration tests: the controlled-difficulty query
//! generator, the Easy-20/Hard-20 split, and the end-to-end behaviour the
//! experiment harness relies on (harder queries prune less, across methods).

use hydra_core::{Query, QueryStats};
use hydra_data::{DomainDataset, DomainGenerator, QueryWorkload, WorkloadSpec};
use hydra_integration::{all_methods, dataset};

#[test]
fn controlled_workloads_span_difficulty_for_indexes() {
    // Queries with little noise should be pruned better than queries with a
    // lot of noise, averaged across index methods — the property the paper's
    // controlled workloads are designed to exercise.
    let data = dataset(400, 64, 31);
    let methods = all_methods(&data);
    let workload = QueryWorkload::generate(
        "Synth-Ctrl",
        &data,
        &WorkloadSpec::controlled(17).with_num_queries(30),
    );
    let mut easy_ratios = Vec::new();
    let mut hard_ratios = Vec::new();
    for (i, q) in workload.queries().iter().enumerate() {
        let noise = workload.noise_level(i).unwrap().fraction;
        if noise > 0.05 && noise < 1.6 {
            continue; // only compare the extremes
        }
        let mut per_query = Vec::new();
        for (name, method) in &methods {
            if name == "UCR-Suite" || name == "MASS" {
                continue; // scans always examine everything
            }
            let mut stats = QueryStats::default();
            method
                .answer(&Query::nearest_neighbor(q.clone()), &mut stats)
                .unwrap();
            per_query.push(stats.pruning_ratio(data.len()));
        }
        let avg = per_query.iter().sum::<f64>() / per_query.len() as f64;
        if noise <= 0.05 {
            easy_ratios.push(avg);
        } else {
            hard_ratios.push(avg);
        }
    }
    let easy = easy_ratios.iter().sum::<f64>() / easy_ratios.len() as f64;
    let hard = hard_ratios.iter().sum::<f64>() / hard_ratios.len() as f64;
    assert!(
        easy > hard,
        "low-noise queries should prune better than high-noise ones ({easy:.3} vs {hard:.3})"
    );
}

#[test]
fn easy_hard_split_matches_pruning_scores() {
    let scores = vec![0.99, 0.2, 0.8, 0.5, 0.95, 0.1];
    let (easy, hard) = QueryWorkload::split_easy_hard(&scores, 2);
    assert_eq!(easy, vec![0, 4]);
    assert_eq!(hard, vec![1, 5]);
}

#[test]
fn domain_datasets_differ_in_summarizability() {
    // The Deep-like dataset should be harder to prune than the smooth SALD-
    // like dataset for a summarization index, mirroring the paper's spread of
    // pruning ratios across real datasets (Figure 9).
    let mut ratios = Vec::new();
    for domain in [DomainDataset::Sald, DomainDataset::Deep] {
        let data = DomainGenerator::new(domain, 47)
            .with_series_length(64)
            .dataset(300);
        let methods = all_methods(&data);
        let workload = QueryWorkload::generate(
            format!("{}-Ctrl", domain.name()),
            &data,
            &WorkloadSpec::controlled(9).with_num_queries(10),
        );
        let mut sum = 0.0;
        let mut count = 0;
        for q in workload.queries() {
            for (name, method) in &methods {
                if name != "VA+file" && name != "DSTree" {
                    continue;
                }
                let mut stats = QueryStats::default();
                method
                    .answer(&Query::nearest_neighbor(q.clone()), &mut stats)
                    .unwrap();
                sum += stats.pruning_ratio(data.len());
                count += 1;
            }
        }
        ratios.push(sum / count as f64);
    }
    assert!(
        ratios[0] > ratios[1],
        "SALD-like data should be easier to prune than Deep-like data ({:.3} vs {:.3})",
        ratios[0],
        ratios[1]
    );
}

#[test]
fn extrapolation_rule_matches_paper_definition() {
    // 100 per-query times with known outliers: drop best/worst five, multiply
    // the mean of the remaining 90 by 10 000.
    let mut times: Vec<f64> = (0..100).map(|i| 1.0 + (i as f64) * 0.01).collect();
    times[0] = 500.0;
    times[99] = 0.000001;
    let total = QueryWorkload::extrapolate_total_seconds(&times, 10_000).unwrap();
    // The trimmed values are approximately 1.05..=1.94 (mean ≈ 1.5).
    assert!(
        total > 10_000.0 && total < 20_000.0,
        "unexpected extrapolation {total}"
    );
}

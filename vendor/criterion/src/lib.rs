//! A vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the slice of the `criterion` API that the hydra benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's full statistical pipeline it runs a short
//! warm-up, sizes the iteration count to a ~50 ms measurement window, and
//! prints the mean time per iteration — enough to compare kernels locally
//! while keeping `cargo bench` dependency-free.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing driver handed to every benchmark closure.
pub struct Bencher {
    iters_hint: u64,
    measured: Option<Duration>,
    iters_done: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up & calibration: time a single call to size the batch.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(50);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, self.iters_hint as u128) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = Some(start.elapsed());
        self.iters_done = iters;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample size (used as an iteration-count cap here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            iters_hint: self.sample_size * 100,
            measured: None,
            iters_done: 0,
        };
        f(&mut bencher);
        match bencher.measured {
            Some(total) if bencher.iters_done > 0 => {
                let per_iter = total / bencher.iters_done as u32;
                println!(
                    "bench {}/{id}: {per_iter:?}/iter ({} iters)",
                    self.name, bencher.iters_done
                );
            }
            _ => println!("bench {}/{id}: no measurement", self.name),
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Finishes the group (a no-op in this stand-in).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
            sample_size: 100,
        }
    }

    /// Benchmarks `f` under `id` outside of any group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let mut group = self.benchmark_group("main");
        group.bench_function(id, f);
        self
    }
}

/// Declares a group function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(10);
        let mut ran = false;
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4, |b, &x| {
            ran = true;
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}

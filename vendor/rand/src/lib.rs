//! A vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the small slice of the `rand 0.8` API that `hydra-data` actually uses:
//! [`rngs::StdRng`] (here a xoshiro256** generator seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] / [`Rng::gen_range`], and the
//! [`distributions::Distribution`] trait. The generator is deterministic and
//! of good statistical quality, but makes no compatibility promise about the
//! exact streams the real `rand` crate would produce.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Lemire's widening-multiply reduction (no rejection step; the modulo
    // bias at these span sizes is far below anything the suite can observe).
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

// `$w` is a widening intermediate: subtracting in two's complement at 64
// bits gives the correct unsigned span for any same-type pair, including
// signed ranges wider than half the type (e.g. `i32::MIN..i32::MAX`).
macro_rules! impl_int_range {
    ($($t:ty => $w:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $w as u64).wrapping_sub(self.start as $w as u64);
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $w as u64).wrapping_sub(lo as $w as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize => u64, u64 => u64, u32 => u64, i64 => i64, i32 => i64);

// Only f64 gets a float-range impl: a single applicable impl lets the
// compiler resolve `gen_range(0.1..0.5)` on unsuffixed float literals.
impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = <f64 as Standard>::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (uniform in `[0, 1)` for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** seeded through SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distribution traits, mirroring `rand::distributions`.
pub mod distributions {
    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value from the distribution using `rng`.
        fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_are_unit_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v: usize = rng.gen_range(0..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..5 must appear");
        for _ in 0..200 {
            let v: i32 = rng.gen_range(1..=3);
            assert!((1..=3).contains(&v));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let v: f64 = rng.gen_range(0.05..0.35);
            assert!((0.05..0.35).contains(&v));
        }
    }
}

//! A vendored, dependency-free stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the slice of the `parking_lot` API that hydra uses: [`Mutex`] and
//! [`RwLock`] whose lock methods return guards directly (no poisoning),
//! implemented on top of `std::sync`. A thread that panics while holding a
//! lock does not poison it — the next locker simply proceeds, matching
//! `parking_lot` semantics.

use std::fmt;
use std::sync::{PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive whose `lock` never returns a `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value (no locking needed
    /// with exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock whose lock methods never return a `Result`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

//! Astronomy pipeline scenario: cross-matching light curves against a survey
//! catalogue on two different storage platforms.
//!
//! Sky surveys accumulate hundreds of millions of object light curves; a core
//! pipeline step retrieves, for each newly observed curve, the most similar
//! catalogued curves. This example builds two indexes with very different
//! access patterns — ADS+ (skip-sequential, seek-heavy) and DSTree
//! (leaf-clustered, sequential-friendly) — answers the same query batch with
//! both, and shows how the HDD and SSD cost models change which one is
//! preferable, the central hardware lesson of the study.
//!
//! ```bash
//! cargo run --release -p hydra-examples --example astro_pipeline
//! ```

use hydra_core::{AnsweringMethod, BuildOptions, Query, QueryStats};
use hydra_data::{DomainDataset, DomainGenerator, QueryWorkload, WorkloadSpec};
use hydra_dstree::DsTree;
use hydra_examples::fmt_duration;
use hydra_isax::AdsPlus;
use hydra_storage::{CostModel, DatasetStore, IoSnapshot};
use std::sync::Arc;
use std::time::Duration;

fn io_of(stats: &QueryStats) -> IoSnapshot {
    IoSnapshot {
        sequential_pages: stats.sequential_page_accesses,
        random_pages: stats.random_page_accesses,
        bytes_read: stats.bytes_read,
        bytes_written: 0,
    }
}

fn main() {
    // The catalogue: 25 000 astro-flavoured light curves of length 256.
    let catalogue = DomainGenerator::new(DomainDataset::Astro, 77).dataset(25_000);
    println!("catalogue: {} light curves of length {}", catalogue.len(), catalogue.series_length());

    let options = BuildOptions::default().with_segments(16).with_leaf_capacity(100);

    let ads_store = Arc::new(DatasetStore::new(catalogue.clone()));
    let ads_clock = std::time::Instant::now();
    let ads = AdsPlus::build_on_store(ads_store.clone(), &options).expect("ADS+ build");
    let ads_build = ads_clock.elapsed();

    let ds_store = Arc::new(DatasetStore::new(catalogue.clone()));
    let ds_clock = std::time::Instant::now();
    let dstree = DsTree::build_on_store(ds_store.clone(), &options).expect("DSTree build");
    let ds_build = ds_clock.elapsed();

    println!("index construction: ADS+ {}, DSTree {}", fmt_duration(ads_build), fmt_duration(ds_build));

    // New observations to cross-match.
    let observations = QueryWorkload::generate(
        "Astro-Ctrl",
        &catalogue,
        &WorkloadSpec::controlled(3).with_num_queries(50),
    );

    let mut totals: Vec<(&str, Duration, IoSnapshot)> = Vec::new();
    for (name, method) in [("ADS+", &ads as &dyn AnsweringMethod), ("DSTree", &dstree)] {
        let mut cpu = Duration::ZERO;
        let mut io = IoSnapshot::default();
        for obs in observations.queries() {
            let mut stats = QueryStats::default();
            method.answer(&Query::nearest_neighbor(obs.clone()), &mut stats).expect("query");
            cpu += stats.cpu_time;
            let q_io = io_of(&stats);
            io.sequential_pages += q_io.sequential_pages;
            io.random_pages += q_io.random_pages;
            io.bytes_read += q_io.bytes_read;
        }
        totals.push((name, cpu, io));
    }

    println!("\n{:<8} {:>12} {:>12} {:>12} {:>14} {:>14}", "method", "CPU", "seq pages", "rand pages", "HDD I/O", "SSD I/O");
    let hdd = CostModel::hdd();
    let ssd = CostModel::ssd();
    for (name, cpu, io) in &totals {
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>14} {:>14}",
            name,
            fmt_duration(*cpu),
            io.sequential_pages,
            io.random_pages,
            fmt_duration(hdd.io_time(io)),
            fmt_duration(ssd.io_time(io)),
        );
    }

    // The hardware lesson: compare total (CPU + modelled I/O) per platform.
    for (platform, model) in [("HDD", hdd), ("SSD", ssd)] {
        let mut best = ("", Duration::MAX);
        for (name, cpu, io) in &totals {
            let total = *cpu + model.io_time(io);
            if total < best.1 {
                best = (name, total);
            }
        }
        println!("best method for the 50-query batch on {platform}: {} ({})", best.0, fmt_duration(best.1));
    }
}

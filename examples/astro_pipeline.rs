//! Astronomy pipeline scenario: cross-matching light curves against a survey
//! catalogue on two different storage platforms.
//!
//! Sky surveys accumulate hundreds of millions of object light curves; a core
//! pipeline step retrieves, for each newly observed curve, the most similar
//! catalogued curves. This example builds two indexes with very different
//! access patterns — ADS+ (skip-sequential, seek-heavy) and DSTree
//! (leaf-clustered, sequential-friendly) — answers the same query batch with
//! both through the unified query engine, and shows how the HDD and SSD cost
//! models change which one is preferable, the central hardware lesson of the
//! study.
//!
//! ```bash
//! cargo run --release -p hydra-examples --example astro_pipeline
//! ```

use hydra_bench::MethodKind;
use hydra_core::{BuildOptions, IoSnapshot, Query};
use hydra_data::{DomainDataset, DomainGenerator, QueryWorkload, WorkloadSpec};
use hydra_examples::fmt_duration;
use hydra_storage::CostModel;
use std::time::Duration;

fn main() {
    // The catalogue: 25 000 astro-flavoured light curves of length 256.
    let catalogue = DomainGenerator::new(DomainDataset::Astro, 77).dataset(25_000);
    println!(
        "catalogue: {} light curves of length {}",
        catalogue.len(),
        catalogue.series_length()
    );

    let options = BuildOptions::default()
        .with_segments(16)
        .with_leaf_capacity(100);

    // New observations to cross-match.
    let observations = QueryWorkload::generate(
        "Astro-Ctrl",
        &catalogue,
        &WorkloadSpec::controlled(3).with_num_queries(50),
    );

    let mut totals: Vec<(&str, Duration, IoSnapshot)> = Vec::new();
    for kind in [MethodKind::AdsPlus, MethodKind::DsTree] {
        let mut engine = kind.engine(&catalogue, &options).expect("build");
        println!(
            "built {} in {}",
            kind.name(),
            fmt_duration(engine.build_time())
        );
        let mut cpu = Duration::ZERO;
        for obs in observations.queries() {
            let answered = engine
                .answer(&Query::nearest_neighbor(obs.clone()))
                .expect("query");
            cpu += answered.stats.cpu_time;
        }
        totals.push((kind.name(), cpu, engine.totals().io_snapshot()));
    }

    println!(
        "\n{:<8} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "method", "CPU", "seq pages", "rand pages", "HDD I/O", "SSD I/O"
    );
    let hdd = CostModel::hdd();
    let ssd = CostModel::ssd();
    for (name, cpu, io) in &totals {
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>14} {:>14}",
            name,
            fmt_duration(*cpu),
            io.sequential_pages,
            io.random_pages,
            fmt_duration(hdd.io_time(io)),
            fmt_duration(ssd.io_time(io)),
        );
    }

    // The hardware lesson: compare total (CPU + modelled I/O) per platform.
    for (platform, model) in [("HDD", hdd), ("SSD", ssd)] {
        let mut best = ("", Duration::MAX);
        for (name, cpu, io) in &totals {
            let total = *cpu + model.io_time(io);
            if total < best.1 {
                best = (name, total);
            }
        }
        println!(
            "best method for the 50-query batch on {platform}: {} ({})",
            best.0,
            fmt_duration(best.1)
        );
    }
}

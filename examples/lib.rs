//! Shared helpers for the runnable examples.
//!
//! Each example is a standalone binary (run with
//! `cargo run --release -p hydra-examples --example <name>`); this small
//! library only hosts formatting utilities they share.

/// Formats a duration in a compact human-readable form.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 1e-3 {
        format!("{:.1}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{secs:.2}s")
    }
}

/// Formats a byte count using binary units.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.1}{}", UNITS[unit])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn durations_format_by_magnitude() {
        assert!(fmt_duration(Duration::from_micros(50)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(20)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(3)).ends_with('s'));
    }

    #[test]
    fn bytes_format_by_magnitude() {
        assert_eq!(fmt_bytes(512), "512.0B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MiB");
    }
}

//! Quickstart: build an index over a data series collection and answer exact
//! 1-NN queries.
//!
//! ```bash
//! cargo run --release -p hydra-examples --example quickstart
//! ```

use hydra_core::{AnsweringMethod, BuildOptions, ExactIndex, Query, QueryStats};
use hydra_data::{QueryWorkload, RandomWalkGenerator, WorkloadSpec};
use hydra_dstree::DsTree;
use hydra_examples::{fmt_bytes, fmt_duration};
use hydra_scan::ucr::brute_force_knn;
use hydra_storage::DatasetStore;
use std::sync::Arc;

fn main() {
    // 1. Generate a collection of 20 000 random-walk series of length 256
    //    (the synthetic data model used throughout the similarity search
    //    literature). In a real deployment you would load a flat binary file
    //    with `hydra_data::io::read_dataset`.
    let series_length = 256;
    let dataset = RandomWalkGenerator::new(42, series_length).dataset(20_000);
    println!(
        "dataset: {} series of length {} ({})",
        dataset.len(),
        series_length,
        fmt_bytes(dataset.size_bytes() as u64)
    );

    // 2. Wrap it in an instrumented store (counts sequential/random page
    //    accesses) and build a DSTree index.
    let store = Arc::new(DatasetStore::new(dataset.clone()));
    let build_clock = std::time::Instant::now();
    let options = BuildOptions::default().with_segments(16).with_leaf_capacity(100);
    let index = DsTree::build_on_store(store.clone(), &options).expect("index construction");
    println!(
        "built DSTree in {} ({} nodes, {} leaves)",
        fmt_duration(build_clock.elapsed()),
        index.footprint().total_nodes,
        index.footprint().leaf_nodes
    );

    // 3. Generate a 10-query workload and answer exact 1-NN queries.
    let workload =
        QueryWorkload::generate("Synth-Rand", &dataset, &WorkloadSpec::random(7).with_num_queries(10));
    store.reset_io();
    for (i, series) in workload.queries().iter().enumerate() {
        let mut stats = QueryStats::default();
        let clock = std::time::Instant::now();
        let answers = index
            .answer(&Query::nearest_neighbor(series.clone()), &mut stats)
            .expect("query answering");
        let nearest = answers.nearest().expect("non-empty answer");

        // Sanity check against the brute-force oracle (exactness guarantee).
        let oracle = brute_force_knn(&dataset, series.values(), 1);
        assert!((nearest.distance - oracle.nearest().unwrap().distance).abs() < 1e-4);

        println!(
            "query {i:2}: nn=series#{:<6} distance={:<8.4} pruning={:>5.1}% \
             leaves={:<3} time={}",
            nearest.id,
            nearest.distance,
            stats.pruning_ratio(dataset.len()) * 100.0,
            stats.leaves_visited,
            fmt_duration(clock.elapsed())
        );
    }

    // 4. Report the I/O profile of the whole workload.
    let io = store.io_snapshot();
    println!(
        "workload I/O: {} sequential pages, {} random pages, {} read",
        io.sequential_pages,
        io.random_pages,
        fmt_bytes(io.bytes_read)
    );
}

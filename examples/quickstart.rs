//! Quickstart: build an index over a data series collection and answer exact
//! 1-NN queries through the unified query engine.
//!
//! ```bash
//! cargo run --release -p hydra-examples --example quickstart
//! ```

use hydra_bench::MethodKind;
use hydra_core::{AnswerMode, BuildOptions, Query};
use hydra_data::{QueryWorkload, RandomWalkGenerator, WorkloadSpec};
use hydra_examples::{fmt_bytes, fmt_duration};
use hydra_scan::ucr::brute_force_knn;

fn main() {
    // 1. Generate a collection of 20 000 random-walk series of length 256
    //    (the synthetic data model used throughout the similarity search
    //    literature). In a real deployment you would load a flat binary file
    //    with `hydra_data::io::read_dataset`.
    let series_length = 256;
    let dataset = RandomWalkGenerator::new(42, series_length).dataset(20_000);
    println!(
        "dataset: {} series of length {} ({})",
        dataset.len(),
        series_length,
        fmt_bytes(dataset.size_bytes() as u64)
    );

    // 2. Build a DSTree through the registry. The engine wraps the method
    //    behind the uniform dyn interface, wires up the instrumented store's
    //    I/O counters, and measures construction. Swap the `MethodKind` to
    //    try any of the other nine methods — nothing else changes.
    let options = BuildOptions::default()
        .with_segments(16)
        .with_leaf_capacity(100);
    let mut engine = MethodKind::DsTree
        .engine(&dataset, &options)
        .expect("index construction");
    let footprint = engine.footprint().expect("DSTree builds an index");
    println!(
        "built {} in {} ({} nodes, {} leaves)",
        engine.descriptor().name,
        fmt_duration(engine.build_time()),
        footprint.total_nodes,
        footprint.leaf_nodes
    );

    // 3. Generate a 10-query workload and answer exact 1-NN queries.
    let workload = QueryWorkload::generate(
        "Synth-Rand",
        &dataset,
        &WorkloadSpec::random(7).with_num_queries(10),
    );
    for (i, series) in workload.queries().iter().enumerate() {
        let answered = engine
            .answer(&Query::nearest_neighbor(series.clone()))
            .expect("query answering");
        let nearest = answered.answers.nearest().expect("non-empty answer");

        // Sanity check against the brute-force oracle (exactness guarantee).
        let oracle = brute_force_knn(&dataset, series.values(), 1);
        assert!((nearest.distance - oracle.nearest().unwrap().distance).abs() < 1e-4);

        println!(
            "query {i:2}: nn=series#{:<6} distance={:<8.4} pruning={:>5.1}% \
             leaves={:<3} time={}",
            nearest.id,
            nearest.distance,
            answered.stats.pruning_ratio(dataset.len()) * 100.0,
            answered.stats.leaves_visited,
            fmt_duration(answered.wall_time)
        );
    }

    // 4. Report the I/O profile of the whole workload, aggregated by the
    //    engine across the queries it answered.
    let totals = engine.totals();
    println!(
        "workload I/O: {} sequential pages, {} random pages, {} read",
        totals.sequential_page_accesses,
        totals.random_page_accesses,
        fmt_bytes(totals.bytes_read)
    );

    // 5. The same queries, answered approximately: ng-approximate visits one
    //    leaf, ε-approximate prunes against bsf/(1+ε). The engine returns the
    //    guarantee each answer actually satisfies.
    let series = workload.queries()[0].clone();
    let exact_d = brute_force_knn(&dataset, series.values(), 1)
        .nearest()
        .unwrap()
        .distance;
    for mode in [
        AnswerMode::NgApproximate,
        AnswerMode::EpsilonApproximate { epsilon: 0.1 },
    ] {
        let answered = engine
            .answer(&Query::nearest_neighbor(series.clone()).with_mode(mode))
            .expect("approximate answering");
        let nearest = answered.answers.nearest().expect("non-empty answer");
        println!(
            "mode {mode:<8} distance={:<8.4} error-ratio={:<6.3} examined={:<6} guarantee={:?}",
            nearest.distance,
            nearest.distance / exact_d,
            answered.stats.raw_series_examined,
            answered.guarantee
        );
    }
}

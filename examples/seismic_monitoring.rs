//! Seismic monitoring scenario: match incoming instrument recordings against
//! a historical archive.
//!
//! A seismology archive (the paper's motivating IRIS use case) holds millions
//! of fixed-length instrument recordings; when a new event is recorded,
//! analysts look for the most similar historical waveforms. This example
//! builds a VA+file over a seismic-flavoured synthetic archive, then answers a
//! stream of "new event" queries with exact 5-NN search, comparing the work
//! done against a full sequential scan — both driven through the unified
//! query engine.
//!
//! ```bash
//! cargo run --release -p hydra-examples --example seismic_monitoring
//! ```

use hydra_bench::MethodKind;
use hydra_core::{BuildOptions, Query};
use hydra_data::{DomainDataset, DomainGenerator, QueryWorkload, WorkloadSpec};
use hydra_examples::{fmt_bytes, fmt_duration};
use hydra_storage::CostModel;

fn main() {
    // The archive: 30 000 seismic-flavoured series of length 256.
    let generator = DomainGenerator::new(DomainDataset::Seismic, 1234);
    let archive = generator.dataset(30_000);
    println!(
        "seismic archive: {} recordings of {} samples ({})",
        archive.len(),
        archive.series_length(),
        fmt_bytes(archive.size_bytes() as u64)
    );

    // Index the archive with a VA+file (the strongest all-round performer on
    // the paper's disk-resident workloads).
    let options = BuildOptions::default()
        .with_segments(16)
        .with_train_samples(2_000);
    let mut index = MethodKind::VaPlusFile
        .engine(&archive, &options)
        .expect("index construction");
    println!(
        "VA+file built in {} (filter file: {})",
        fmt_duration(index.build_time()),
        fmt_bytes(index.build_io().bytes_written)
    );

    // Baseline: the optimized sequential scan, through the same engine API.
    let mut scan = MethodKind::UcrSuite
        .engine(&archive, &options)
        .expect("scan setup");

    // Incoming events: noisy variants of archived waveforms (controlled
    // difficulty), as produced by the paper's query generator.
    let events = QueryWorkload::generate(
        "Seismic-Ctrl",
        &archive,
        &WorkloadSpec::controlled(99).with_num_queries(20),
    );

    let hdd = CostModel::hdd();
    let mut index_io_time = std::time::Duration::ZERO;
    let mut scan_io_time = std::time::Duration::ZERO;
    println!("\nevent  noise   nn-distance  examined  pruning   modelled-HDD-I/O");
    for (i, event) in events.queries().iter().enumerate() {
        let answered = index
            .answer(&Query::knn(event.clone(), 5))
            .expect("query answering");
        let io = answered.stats.io_snapshot();
        index_io_time += hdd.io_time(&io);

        let scanned = scan
            .answer(&Query::knn(event.clone(), 5))
            .expect("scan answering");
        scan_io_time += hdd.io_time(&scanned.stats.io_snapshot());

        println!(
            "{i:5}  {:>5.2}  {:>11.4}  {:>8}  {:>6.1}%  {:>12}",
            events.noise_level(i).map(|n| n.fraction).unwrap_or(0.0),
            answered.answers.nearest().unwrap().distance,
            answered.stats.raw_series_examined,
            answered.stats.pruning_ratio(archive.len()) * 100.0,
            fmt_duration(hdd.io_time(&io)),
        );
    }
    println!(
        "\nworkload modelled I/O on the HDD profile: VA+file {} vs sequential scan {}",
        fmt_duration(index_io_time),
        fmt_duration(scan_io_time)
    );
}

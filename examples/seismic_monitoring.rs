//! Seismic monitoring scenario: match incoming instrument recordings against
//! a historical archive.
//!
//! A seismology archive (the paper's motivating IRIS use case) holds millions
//! of fixed-length instrument recordings; when a new event is recorded,
//! analysts look for the most similar historical waveforms. This example
//! builds a VA+file over a seismic-flavoured synthetic archive, then answers a
//! stream of "new event" queries with exact 5-NN search, comparing the work
//! done against a full sequential scan.
//!
//! ```bash
//! cargo run --release -p hydra-examples --example seismic_monitoring
//! ```

use hydra_core::{AnsweringMethod, BuildOptions, Query, QueryStats};
use hydra_data::{DomainDataset, DomainGenerator, QueryWorkload, WorkloadSpec};
use hydra_examples::{fmt_bytes, fmt_duration};
use hydra_scan::UcrScan;
use hydra_storage::{CostModel, DatasetStore};
use hydra_vafile::VaPlusFile;
use std::sync::Arc;

fn main() {
    // The archive: 30 000 seismic-flavoured series of length 256.
    let generator = DomainGenerator::new(DomainDataset::Seismic, 1234);
    let archive = generator.dataset(30_000);
    println!(
        "seismic archive: {} recordings of {} samples ({})",
        archive.len(),
        archive.series_length(),
        fmt_bytes(archive.size_bytes() as u64)
    );

    // Index the archive with a VA+file (the strongest all-round performer on
    // the paper's disk-resident workloads).
    let store = Arc::new(DatasetStore::new(archive.clone()));
    let build_clock = std::time::Instant::now();
    let index = VaPlusFile::build_on_store(
        store.clone(),
        &BuildOptions::default().with_segments(16).with_train_samples(2_000),
    )
    .expect("index construction");
    println!(
        "VA+file built in {} (filter file: {})",
        fmt_duration(build_clock.elapsed()),
        fmt_bytes(index.approximation_bytes() as u64)
    );

    // Baseline: the optimized sequential scan.
    let scan_store = Arc::new(DatasetStore::new(archive.clone()));
    let scan = UcrScan::new(scan_store);

    // Incoming events: noisy variants of archived waveforms (controlled
    // difficulty), as produced by the paper's query generator.
    let events = QueryWorkload::generate(
        "Seismic-Ctrl",
        &archive,
        &WorkloadSpec::controlled(99).with_num_queries(20),
    );

    let hdd = CostModel::hdd();
    let mut index_io_time = std::time::Duration::ZERO;
    let mut scan_io_time = std::time::Duration::ZERO;
    println!("\nevent  noise   nn-distance  examined  pruning   modelled-HDD-I/O");
    for (i, event) in events.queries().iter().enumerate() {
        let mut stats = QueryStats::default();
        let answers =
            index.answer(&Query::knn(event.clone(), 5), &mut stats).expect("query answering");
        let io = hydra_storage::IoSnapshot {
            sequential_pages: stats.sequential_page_accesses,
            random_pages: stats.random_page_accesses,
            bytes_read: stats.bytes_read,
            bytes_written: 0,
        };
        index_io_time += hdd.io_time(&io);

        let mut scan_stats = QueryStats::default();
        scan.answer(&Query::knn(event.clone(), 5), &mut scan_stats).expect("scan answering");
        scan_io_time += hdd.io_time(&hydra_storage::IoSnapshot {
            sequential_pages: scan_stats.sequential_page_accesses,
            random_pages: scan_stats.random_page_accesses,
            bytes_read: scan_stats.bytes_read,
            bytes_written: 0,
        });

        println!(
            "{i:5}  {:>5.2}  {:>11.4}  {:>8}  {:>6.1}%  {:>12}",
            events.noise_level(i).map(|n| n.fraction).unwrap_or(0.0),
            answers.nearest().unwrap().distance,
            stats.raw_series_examined,
            stats.pruning_ratio(archive.len()) * 100.0,
            fmt_duration(hdd.io_time(&io)),
        );
    }
    println!(
        "\nworkload modelled I/O on the HDD profile: VA+file {} vs sequential scan {}",
        fmt_duration(index_io_time),
        fmt_duration(scan_io_time)
    );
}

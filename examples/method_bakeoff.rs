//! Method bake-off: run all ten similarity search methods on the same
//! dataset and workload and print a comparison table.
//!
//! This is a miniature version of the paper's headline experiment — every
//! method, same data, same queries, same measurement rules — and a good
//! starting point for exploring how the methods trade build time, query CPU,
//! pruning power and access pattern against each other.
//!
//! ```bash
//! cargo run --release -p hydra-examples --example method_bakeoff
//! ```

use hydra_core::{AnsweringMethod, BuildOptions, Query, QueryStats};
use hydra_data::{QueryWorkload, RandomWalkGenerator, WorkloadSpec};
use hydra_dstree::DsTree;
use hydra_examples::fmt_duration;
use hydra_isax::{AdsPlus, Isax2Plus};
use hydra_mtree::MTree;
use hydra_rtree::RStarTree;
use hydra_scan::{MassScan, Stepwise, UcrScan};
use hydra_sfa::SfaTrie;
use hydra_storage::DatasetStore;
use hydra_vafile::VaPlusFile;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Row {
    name: &'static str,
    build: Duration,
    query_cpu: Duration,
    pruning: f64,
    seq_pages: u64,
    rand_pages: u64,
}

fn main() {
    let series_length = 128;
    let dataset = RandomWalkGenerator::new(7, series_length).dataset(10_000);
    let workload = QueryWorkload::generate(
        "Synth-Ctrl",
        &dataset,
        &WorkloadSpec::controlled(13).with_num_queries(20),
    );
    let options = BuildOptions::default()
        .with_segments(16)
        .with_leaf_capacity(100)
        .with_train_samples(1_000);

    println!(
        "dataset: {} series of length {series_length}; workload: {} controlled queries\n",
        dataset.len(),
        workload.len()
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut run = |name: &'static str, build: Box<dyn Fn() -> Box<dyn AnsweringMethod>>| {
        let clock = Instant::now();
        let method = build();
        let build_time = clock.elapsed();
        let mut cpu = Duration::ZERO;
        let mut pruning = 0.0;
        let mut seq = 0;
        let mut rand = 0;
        for q in workload.queries() {
            let mut stats = QueryStats::default();
            method.answer(&Query::nearest_neighbor(q.clone()), &mut stats).expect("query");
            cpu += stats.cpu_time;
            pruning += stats.pruning_ratio(dataset.len());
            seq += stats.sequential_page_accesses;
            rand += stats.random_page_accesses;
        }
        rows.push(Row {
            name,
            build: build_time,
            query_cpu: cpu,
            pruning: pruning / workload.len() as f64,
            seq_pages: seq,
            rand_pages: rand,
        });
    };

    let d = dataset.clone();
    run("UCR-Suite", Box::new(move || Box::new(UcrScan::new(Arc::new(DatasetStore::new(d.clone()))))));
    let d = dataset.clone();
    run("MASS", Box::new(move || Box::new(MassScan::new(Arc::new(DatasetStore::new(d.clone()))))));
    let d = dataset.clone();
    run("Stepwise", Box::new(move || {
        Box::new(Stepwise::build(Arc::new(DatasetStore::new(d.clone()))).expect("build"))
    }));
    let d = dataset.clone();
    let o = options.clone();
    run("VA+file", Box::new(move || {
        Box::new(VaPlusFile::build_on_store(Arc::new(DatasetStore::new(d.clone())), &o).expect("build"))
    }));
    let d = dataset.clone();
    let o = options.clone();
    run("iSAX2+", Box::new(move || {
        Box::new(Isax2Plus::build_on_store(Arc::new(DatasetStore::new(d.clone())), &o).expect("build"))
    }));
    let d = dataset.clone();
    let o = options.clone();
    run("ADS+", Box::new(move || {
        Box::new(AdsPlus::build_on_store(Arc::new(DatasetStore::new(d.clone())), &o).expect("build"))
    }));
    let d = dataset.clone();
    let o = options.clone();
    run("DSTree", Box::new(move || {
        Box::new(DsTree::build_on_store(Arc::new(DatasetStore::new(d.clone())), &o).expect("build"))
    }));
    let d = dataset.clone();
    let o = options.clone().with_alphabet_size(8);
    run("SFA trie", Box::new(move || {
        Box::new(SfaTrie::build_on_store(Arc::new(DatasetStore::new(d.clone())), &o).expect("build"))
    }));
    let d = dataset.clone();
    let o = options.clone().with_segments(8);
    run("R*-tree", Box::new(move || {
        Box::new(RStarTree::build_on_store(Arc::new(DatasetStore::new(d.clone())), &o).expect("build"))
    }));
    let d = dataset.clone();
    let o = options.clone().with_leaf_capacity(20);
    run("M-tree", Box::new(move || {
        Box::new(MTree::build_on_store(Arc::new(DatasetStore::new(d.clone())), &o).expect("build"))
    }));

    println!(
        "{:<10} {:>10} {:>12} {:>9} {:>11} {:>11}",
        "method", "build", "query CPU", "pruning", "seq pages", "rand pages"
    );
    for r in &rows {
        println!(
            "{:<10} {:>10} {:>12} {:>8.1}% {:>11} {:>11}",
            r.name,
            fmt_duration(r.build),
            fmt_duration(r.query_cpu),
            r.pruning * 100.0,
            r.seq_pages,
            r.rand_pages
        );
    }

    let fastest_build = rows.iter().min_by_key(|r| r.build).unwrap().name;
    let best_pruner = rows
        .iter()
        .max_by(|a, b| a.pruning.partial_cmp(&b.pruning).unwrap())
        .unwrap()
        .name;
    println!("\nfastest index construction: {fastest_build}; best average pruning: {best_pruner}");
}

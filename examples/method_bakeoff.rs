//! Method bake-off: run all ten similarity search methods on the same
//! dataset and workload and print a comparison table.
//!
//! This is a miniature version of the paper's headline experiment — every
//! method, same data, same queries, same measurement rules — driven entirely
//! through the registry's uniform [`hydra_core::QueryEngine`] path: no
//! per-method code, just a loop over [`MethodKind::ALL`].
//!
//! ```bash
//! cargo run --release -p hydra-examples --example method_bakeoff
//! ```

use hydra_bench::MethodKind;
use hydra_core::{BuildOptions, Query};
use hydra_data::{QueryWorkload, RandomWalkGenerator, WorkloadSpec};
use hydra_examples::fmt_duration;
use std::time::Duration;

struct Row {
    name: &'static str,
    build: Duration,
    query_cpu: Duration,
    pruning: f64,
    seq_pages: u64,
    rand_pages: u64,
}

fn main() {
    let series_length = 128;
    let dataset = RandomWalkGenerator::new(7, series_length).dataset(10_000);
    let workload = QueryWorkload::generate(
        "Synth-Ctrl",
        &dataset,
        &WorkloadSpec::controlled(13).with_num_queries(20),
    );
    // One shared base configuration; the registry applies the per-method
    // tunings the paper prescribes (SFA alphabet 8, smaller R*-tree/M-tree
    // leaves) on top.
    let options = BuildOptions::default()
        .with_segments(16)
        .with_leaf_capacity(100)
        .with_train_samples(1_000);

    println!(
        "dataset: {} series of length {series_length}; workload: {} controlled queries\n",
        dataset.len(),
        workload.len()
    );

    let mut rows: Vec<Row> = Vec::new();
    for kind in MethodKind::ALL {
        let mut engine = kind.engine(&dataset, &options).expect("build");
        let mut query_cpu = Duration::ZERO;
        for q in workload.queries() {
            let answered = engine
                .answer(&Query::nearest_neighbor(q.clone()))
                .expect("query");
            query_cpu += answered.stats.cpu_time;
        }
        rows.push(Row {
            name: kind.name(),
            build: engine.build_time(),
            query_cpu,
            pruning: engine.mean_pruning_ratio(),
            seq_pages: engine.totals().sequential_page_accesses,
            rand_pages: engine.totals().random_page_accesses,
        });
    }

    println!(
        "{:<10} {:>10} {:>12} {:>9} {:>11} {:>11}",
        "method", "build", "query CPU", "pruning", "seq pages", "rand pages"
    );
    for r in &rows {
        println!(
            "{:<10} {:>10} {:>12} {:>8.1}% {:>11} {:>11}",
            r.name,
            fmt_duration(r.build),
            fmt_duration(r.query_cpu),
            r.pruning * 100.0,
            r.seq_pages,
            r.rand_pages
        );
    }

    let fastest_build = rows.iter().min_by_key(|r| r.build).unwrap().name;
    let best_pruner = rows
        .iter()
        .max_by(|a, b| a.pruning.total_cmp(&b.pruning))
        .unwrap()
        .name;
    println!("\nfastest index construction: {fastest_build}; best average pruning: {best_pruner}");
}

//! # hydra-vafile
//!
//! The VA+file: a quantization-based filter file over DFT coefficients.
//!
//! Index construction computes, for every series, a compact cell approximation
//! (non-uniform bit allocation across DFT dimensions, k-means decision
//! intervals per dimension — see `hydra_transforms::vaplus`) and stores all
//! approximations in a flat "filter file". Exact search proceeds in two
//! phases:
//!
//! 1. **Filtering** — a sequential pass over the (small) filter file computes
//!    a lower bound for every candidate; candidates are ranked by lower bound.
//! 2. **Refinement** — candidates are visited in increasing lower-bound order;
//!    the raw series of each surviving candidate is fetched (a random /
//!    skip-sequential access on the raw file) and its exact distance computed,
//!    until the next lower bound exceeds the best-so-far k-th distance.
//!
//! This is the access pattern responsible for the method's behaviour in the
//! paper: almost no sequential raw-data reads, a number of random accesses
//! proportional to the unpruned candidates, and excellent pruning thanks to
//! the tight, data-adaptive quantization.

use hydra_core::parallel::map_chunks;
use hydra_core::persist::{PersistentIndex, SnapshotSink, SnapshotSource};
use hydra_core::{
    AnswerMode, AnswerSet, AnsweringMethod, BatchAnswering, BudgetMeter, BuildOptions, Dataset,
    Error, ExactIndex, IndexFootprint, IntraAnswering, KnnHeap, MethodDescriptor, ModeCapabilities,
    Query, QueryStats, Result,
};
use hydra_storage::DatasetStore;
use hydra_transforms::{VaPlusCell, VaPlusQuantizer};
use std::sync::Arc;

/// The VA+file index.
pub struct VaPlusFile {
    store: Arc<DatasetStore>,
    quantizer: VaPlusQuantizer,
    cells: Vec<VaPlusCell>,
    approximation_bytes: usize,
}

impl VaPlusFile {
    /// Builds the VA+file over an instrumented store.
    ///
    /// `options.segments` is the number of DFT values retained and
    /// `options.segments * 8` bits form the default total budget (8 bits per
    /// dimension on average, as in the original method).
    pub fn build_on_store(store: Arc<DatasetStore>, options: &BuildOptions) -> Result<Self> {
        if store.is_empty() {
            return Err(Error::EmptyDataset);
        }
        options.validate(store.series_length())?;
        let dims = options.segments;
        let total_bits = dims * 8;

        // Train the quantizer on a sample (first train_samples series).
        let sample_size = options.train_samples.clamp(1, store.len());
        let dataset = store.dataset();
        let sample: Vec<&[f32]> = (0..sample_size)
            .map(|i| dataset.series(i).values())
            .collect();
        let quantizer = VaPlusQuantizer::train(store.series_length(), dims, total_bits, sample);

        // One sequential pass to compute every approximation.
        let mut cells = Vec::with_capacity(store.len());
        store.scan_all(|_, series| {
            cells.push(quantizer.cell(series.values()));
        });
        let approximation_bytes = (store.len() * quantizer.bits_per_series()).div_ceil(8);
        store.record_index_write(approximation_bytes as u64);
        Ok(Self {
            store,
            quantizer,
            cells,
            approximation_bytes,
        })
    }

    /// The trained quantizer.
    pub fn quantizer(&self) -> &VaPlusQuantizer {
        &self.quantizer
    }

    /// The underlying store.
    pub fn store(&self) -> &DatasetStore {
        &self.store
    }

    /// Size of the approximation (filter) file in bytes.
    pub fn approximation_bytes(&self) -> usize {
        self.approximation_bytes
    }

    /// Records one (logical) sequential pass over the filter file — what
    /// phase 1 costs every query, batched or not.
    fn record_filter_pass(&self, stats: &mut QueryStats) {
        let approx_pages = (self.approximation_bytes as u64)
            .div_ceil(self.store.page_bytes() as u64)
            .max(1);
        stats.record_io(
            approx_pages.saturating_sub(1),
            1,
            self.approximation_bytes as u64,
        );
    }

    /// Phase 2 for one query: visit candidates in increasing lower-bound
    /// order, refining on raw data. The stopping rule depends on the mode:
    /// exact refinement stops when the next lower bound exceeds the
    /// best-so-far, the ε-relaxed modes stop as soon as it exceeds
    /// `bsf * shrink` (`shrink = δ/(1+ε)`; 1 for exact, so ε = 0 is
    /// bit-identical), and the ng-approximate mode refines only the `k`
    /// best-ranked candidates (the VA+file has no leaves — its "one leaf
    /// visit" is the k-deep filter-file prefix).
    ///
    /// Shared verbatim by the serial path and the batch kernel. Raw reads go
    /// through the fallible store path, and the query's budget meter can cut
    /// the refinement short (the heap keeps its best-so-far).
    fn refine_ranked(
        &self,
        query: &Query,
        k: usize,
        ranked: &[(f64, usize)],
        heap: &mut KnnHeap,
        meter: &mut BudgetMeter,
        stats: &mut QueryStats,
    ) -> Result<()> {
        let mode = query.mode();
        let shrink = mode.prune_shrink();
        let ng_budget = if mode == AnswerMode::NgApproximate {
            k
        } else {
            usize::MAX
        };
        for &(lb, id) in ranked.iter().take(ng_budget) {
            if heap.is_full() && lb > heap.threshold() * shrink {
                break;
            }
            if meter.should_stop(stats.raw_series_examined, !heap.is_empty()) {
                break;
            }
            let series = self.store.try_read_series(id)?;
            stats.record_raw_series_examined(1);
            let d = hydra_core::distance::euclidean(query.values(), series.values());
            heap.offer(id, d);
        }
        Ok(())
    }
}

impl AnsweringMethod for VaPlusFile {
    fn descriptor(&self) -> MethodDescriptor {
        MethodDescriptor {
            name: "VA+file",
            representation: "DFT",
            is_index: true,
            modes: ModeCapabilities::all(),
        }
    }

    fn index_footprint(&self) -> Option<IndexFootprint> {
        Some(ExactIndex::footprint(self))
    }

    fn answer(&self, query: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
        if query.len() != self.store.series_length() {
            return Err(Error::LengthMismatch {
                expected: self.store.series_length(),
                actual: query.len(),
            });
        }
        let k = query.knn_k("VA+file")?;
        let mode = query.mode();
        let clock = hydra_core::RunClock::start();
        let q_dft = self.quantizer.dft(query.values());

        // Phase 1: scan the filter file (sequential, small) computing bounds.
        self.record_filter_pass(stats);
        let mut ranked: Vec<(f64, usize)> = self
            .cells
            .iter()
            .enumerate()
            .map(|(id, cell)| {
                stats.record_lower_bounds(1);
                (self.quantizer.lower_bound(&q_dft, cell), id)
            })
            .collect();
        // total_cmp: a NaN lower bound must not scramble the refinement order
        // (and with it the early-termination point) nondeterministically.
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0));

        // Phase 2: mode-aware refinement (see `refine_ranked`).
        let mut heap = KnnHeap::new(k);
        // Thread-scoped snapshot: under a parallel workload each worker must
        // observe only its own refinement traffic.
        let mut meter = BudgetMeter::new(query.budget(), self.store.len());
        let before = self.store.thread_io_snapshot();
        self.refine_ranked(query, k, &ranked, &mut heap, &mut meter, stats)?;
        let delta = self.store.thread_io_snapshot().since(&before);
        stats.record_io(delta.sequential_pages, delta.random_pages, delta.bytes_read);
        stats.cpu_time += clock.elapsed();
        let guarantee = meter.guarantee(mode.guarantee(), stats.raw_series_examined);
        Ok(heap.into_answer_set().with_guarantee(guarantee))
    }

    fn batch_answering(&self) -> Option<&dyn BatchAnswering> {
        Some(self)
    }

    fn intra_answering(&self) -> Option<&dyn IntraAnswering> {
        Some(self)
    }
}

impl IntraAnswering for VaPlusFile {
    /// Intra-query VA+file: the phase-1 filter-file sweep — the method's CPU
    /// bulk — splits into one contiguous cell range per worker; each lower
    /// bound is an independent, pruning-free computation, and the in-order
    /// chunk merge reproduces the serial sweep's `(lb, id)` sequence exactly.
    /// Ranking and the mode-aware refinement (whose stopping rule depends on
    /// the evolving best-so-far and whose reads are counted) stay serial, so
    /// answers, counters, and I/O are bit-identical to the serial path in
    /// every answering mode.
    fn answer_intra(
        &self,
        query: &Query,
        threads: usize,
        stats: &mut QueryStats,
    ) -> Result<AnswerSet> {
        if query.len() != self.store.series_length() {
            return Err(Error::LengthMismatch {
                expected: self.store.series_length(),
                actual: query.len(),
            });
        }
        let k = query.knn_k("VA+file")?;
        let mode = query.mode();
        let clock = hydra_core::RunClock::start();
        let q_dft = self.quantizer.dft(query.values());

        self.record_filter_pass(stats);
        let mut ranked: Vec<(f64, usize)> = map_chunks(self.cells.len(), threads, |range| {
            range
                .map(|id| (self.quantizer.lower_bound(&q_dft, &self.cells[id]), id))
                .collect()
        });
        stats.record_lower_bounds(self.cells.len() as u64);
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut heap = KnnHeap::new(k);
        let mut meter = BudgetMeter::new(query.budget(), self.store.len());
        let before = self.store.thread_io_snapshot();
        self.refine_ranked(query, k, &ranked, &mut heap, &mut meter, stats)?;
        let delta = self.store.thread_io_snapshot().since(&before);
        stats.record_io(delta.sequential_pages, delta.random_pages, delta.bytes_read);
        stats.cpu_time += clock.elapsed();
        let guarantee = meter.guarantee(mode.guarantee(), stats.raw_series_examined);
        Ok(heap.into_answer_set().with_guarantee(guarantee))
    }
}

impl BatchAnswering for VaPlusFile {
    /// The batched VA+file: **one** sweep over the quantized cells computes
    /// the lower bounds of every query of the batch (each cell is decoded
    /// while cache-resident and scored Q times), and the ranked-candidate
    /// buffer is one shared scratch allocation reused by every query's
    /// refinement. Refinement itself stays per query — candidate order and
    /// the mode-dependent stopping rule depend on each query's own bounds —
    /// with head-invalidated store deltas attributing its random accesses
    /// exactly as the serial path, so answers and per-query counters are
    /// bit-identical to the per-query loop. Mixed answering modes compose
    /// freely: the shared filter sweep is mode-independent.
    ///
    /// The bounds matrix is blocked over [`BOUNDS_BLOCK_QUERIES`] queries at
    /// a time, so the kernel's transient memory is `O(block · N)` regardless
    /// of batch size (one cell sweep per block still amortizes the sweep
    /// block-fold; bounds values are per-(query, cell) and unaffected).
    fn answer_batch(&self, queries: &[Query], stats: &mut [QueryStats]) -> Result<Vec<AnswerSet>> {
        hydra_core::method::batch_expect_length(queries, self.store.series_length())?;
        let ks = hydra_core::method::batch_knn_ks(queries, "VA+file")?;
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let clock = hydra_core::RunClock::start();
        let n = self.cells.len();

        // Shared scratch reused across every block and query of the batch.
        let mut bounds = vec![0.0f64; BOUNDS_BLOCK_QUERIES.min(queries.len()) * n];
        let mut ranked: Vec<(f64, usize)> = Vec::with_capacity(n);
        let mut heap = KnnHeap::new(1);
        let mut answers = Vec::with_capacity(queries.len());
        let mut block_start = 0usize;
        for (block_queries, block_stats) in queries
            .chunks(BOUNDS_BLOCK_QUERIES)
            .zip(stats.chunks_mut(BOUNDS_BLOCK_QUERIES))
        {
            let q_dfts: Vec<Vec<f32>> = block_queries
                .iter()
                .map(|q| self.quantizer.dft(q.values()))
                .collect();

            // Phase 1, shared: one sweep of the filter file bounds every
            // query of the block.
            for (id, cell) in self.cells.iter().enumerate() {
                for ((qi, q_dft), stats) in q_dfts.iter().enumerate().zip(block_stats.iter_mut()) {
                    stats.record_lower_bounds(1);
                    bounds[qi * n + id] = self.quantizer.lower_bound(q_dft, cell);
                }
            }
            for stats in block_stats.iter_mut() {
                self.record_filter_pass(stats);
            }

            // Phase 2, per query, over the shared ranked scratch.
            for ((qi, query), stats) in block_queries.iter().enumerate().zip(block_stats.iter_mut())
            {
                let k = ks[block_start + qi];
                ranked.clear();
                ranked.extend(
                    bounds[qi * n..(qi + 1) * n]
                        .iter()
                        .enumerate()
                        .map(|(id, &lb)| (lb, id)),
                );
                ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
                heap.reset(k);
                // Budgeted queries never reach the kernel (the engine falls
                // back to the per-query loop), so this meter is a formality.
                let mut meter = BudgetMeter::new(query.budget(), self.store.len());
                self.store.invalidate_head();
                let before = self.store.thread_io_snapshot();
                self.refine_ranked(query, k, &ranked, &mut heap, &mut meter, stats)?;
                let delta = self.store.thread_io_snapshot().since(&before);
                stats.record_io(delta.sequential_pages, delta.random_pages, delta.bytes_read);
                answers.push(
                    heap.take_answer_set()
                        .with_guarantee(query.mode().guarantee()),
                );
            }
            block_start += block_queries.len();
        }
        hydra_core::method::share_batch_cpu_time(stats, clock.elapsed());
        Ok(answers)
    }
}

/// How many queries a batch kernel bounds per sweep of its summary
/// structure: large enough that the sweep is amortized ~64×, small enough
/// that the transient bounds matrix stays `O(64 · N)` for any batch size.
const BOUNDS_BLOCK_QUERIES: usize = 64;

impl ExactIndex for VaPlusFile {
    fn build(dataset: &Dataset, options: &BuildOptions) -> Result<Self> {
        Self::build_on_store(Arc::new(DatasetStore::new(dataset.clone())), options)
    }

    fn footprint(&self) -> IndexFootprint {
        IndexFootprint {
            total_nodes: 0,
            leaf_nodes: 0,
            memory_bytes: self.cells.len() * self.quantizer.dims() * std::mem::size_of::<u16>()
                + std::mem::size_of::<VaPlusQuantizer>(),
            disk_bytes: self.approximation_bytes,
            leaf_fill_factors: Vec::new(),
            leaf_depths: Vec::new(),
        }
    }

    fn num_series(&self) -> usize {
        self.store.len()
    }

    fn series_length(&self) -> usize {
        self.store.series_length()
    }
}

impl PersistentIndex for VaPlusFile {
    type Context = Arc<DatasetStore>;

    fn snapshot_kind() -> &'static str {
        "vafile/v1"
    }

    fn save_payload(&self, out: &mut dyn SnapshotSink) -> Result<()> {
        out.put_usize(self.quantizer.series_length())?;
        out.put_usize(self.quantizer.dims())?;
        for &b in self.quantizer.bits() {
            out.put_u8(b)?;
        }
        for d in 0..self.quantizer.dims() {
            for &boundary in self.quantizer.boundaries(d) {
                out.put_f64(boundary)?;
            }
        }
        out.put_usize(self.cells.len())?;
        for cell in &self.cells {
            for &c in &cell.cells {
                out.put_u16(c)?;
            }
        }
        Ok(())
    }

    fn load_payload(store: Arc<DatasetStore>, input: &mut dyn SnapshotSource) -> Result<Self> {
        let series_length = input.get_usize()?;
        if series_length != store.series_length() {
            return Err(Error::InvalidSnapshot(format!(
                "snapshot is for series length {series_length}, store holds {}",
                store.series_length()
            )));
        }
        let dims = input.get_count(1)?;
        let mut bits = Vec::with_capacity(dims);
        for _ in 0..dims {
            let b = input.get_u8()?;
            if b > 16 {
                return Err(Error::InvalidSnapshot(format!(
                    "dimension quantized with {b} bits (the quantizer never exceeds 16)"
                )));
            }
            bits.push(b);
        }
        let mut boundaries = Vec::with_capacity(dims);
        for &b in &bits {
            let count = if b == 0 { 0 } else { (1usize << b) - 1 };
            let mut bounds = Vec::with_capacity(count);
            for _ in 0..count {
                bounds.push(input.get_f64()?);
            }
            boundaries.push(bounds);
        }
        let quantizer = VaPlusQuantizer::from_parts(series_length, dims, bits, boundaries);
        let num_cells = input.get_count(dims * 2)?;
        if num_cells != store.len() {
            return Err(Error::InvalidSnapshot(format!(
                "snapshot approximates {num_cells} series, store holds {}",
                store.len()
            )));
        }
        let mut cells = Vec::with_capacity(num_cells);
        for _ in 0..num_cells {
            let mut cell = Vec::with_capacity(dims);
            for _ in 0..dims {
                cell.push(input.get_u16()?);
            }
            cells.push(VaPlusCell { cells: cell });
        }
        let approximation_bytes = (num_cells * quantizer.bits_per_series()).div_ceil(8);
        Ok(Self {
            store,
            quantizer,
            cells,
            approximation_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_data::RandomWalkGenerator;
    use hydra_scan::ucr::brute_force_knn;

    fn build(count: usize, len: usize) -> (Arc<DatasetStore>, VaPlusFile) {
        let store = Arc::new(DatasetStore::new(
            RandomWalkGenerator::new(41, len).dataset(count),
        ));
        let options = BuildOptions::default()
            .with_segments(16)
            .with_train_samples(200);
        let index = VaPlusFile::build_on_store(store.clone(), &options).unwrap();
        (store, index)
    }

    #[test]
    fn descriptor_and_footprint() {
        let (_, idx) = build(100, 64);
        assert_eq!(idx.descriptor().name, "VA+file");
        assert!(idx.descriptor().is_index);
        let fp = idx.footprint();
        assert_eq!(fp.total_nodes, 0, "the VA+file builds no tree");
        assert!(fp.disk_bytes > 0);
        assert!(fp.memory_bytes > 0);
        assert_eq!(idx.num_series(), 100);
        assert_eq!(idx.series_length(), 64);
        assert!(idx.approximation_bytes() > 0);
        // The filter file is much smaller than the raw data.
        assert!(idx.approximation_bytes() < 100 * 64 * 4 / 2);
    }

    #[test]
    fn exactness_against_brute_force() {
        let (store, idx) = build(400, 64);
        for q in RandomWalkGenerator::new(97, 64).series_batch(15) {
            for k in [1usize, 5] {
                let expected = brute_force_knn(store.dataset(), q.values(), k);
                let got = idx.answer_simple(&Query::knn(q.clone(), k)).unwrap();
                assert!(got.distances_match(&expected, 1e-4), "k={k}");
            }
        }
    }

    #[test]
    fn exactness_on_deep_like_length() {
        let (store, idx) = build(200, 96);
        let q = RandomWalkGenerator::new(3, 96).series(7);
        let expected = brute_force_knn(store.dataset(), q.values(), 1);
        let got = idx.answer_simple(&Query::nearest_neighbor(q)).unwrap();
        assert!(got.distances_match(&expected, 1e-4));
    }

    #[test]
    fn pruning_is_effective_on_easy_queries() {
        let (store, idx) = build(1000, 128);
        // A dataset member as query: the matching cell ranks first, so very
        // few raw series should be touched.
        let q = store.dataset().series(500).to_owned_series();
        let mut stats = QueryStats::default();
        let ans = idx.answer(&Query::nearest_neighbor(q), &mut stats).unwrap();
        assert_eq!(ans.nearest().unwrap().id, 500);
        assert!(
            stats.pruning_ratio(1000) > 0.95,
            "VA+ should prune aggressively, ratio {}",
            stats.pruning_ratio(1000)
        );
    }

    #[test]
    fn refinement_accesses_are_random() {
        let (store, idx) = build(300, 64);
        store.reset_io();
        let q = RandomWalkGenerator::new(7, 64).series(0);
        let mut stats = QueryStats::default();
        idx.answer(&Query::nearest_neighbor(q), &mut stats).unwrap();
        assert!(stats.random_page_accesses >= 1);
        assert!(stats.raw_series_examined >= 1);
        assert!(stats.lower_bounds_computed == 300);
    }

    #[test]
    fn ng_refines_only_k_candidates_and_epsilon_zero_is_bit_identical() {
        let (store, idx) = build(400, 64);
        let member = store.dataset().series(42).to_owned_series();
        let mut stats = QueryStats::default();
        let ng = idx
            .answer(
                &Query::knn(member, 3).with_mode(AnswerMode::NgApproximate),
                &mut stats,
            )
            .unwrap();
        assert!(stats.raw_series_examined <= 3, "ng refines at most k");
        assert_eq!(ng.guarantee(), hydra_core::Guarantee::None);
        // A member query's own cell ranks first, so the member is found.
        assert_eq!(ng.nearest().unwrap().id, 42);

        for q in RandomWalkGenerator::new(83, 64).series_batch(4) {
            let exact_q = Query::knn(q, 5);
            let mut s1 = QueryStats::default();
            let mut s2 = QueryStats::default();
            let exact = idx.answer(&exact_q, &mut s1).unwrap();
            let zero = idx
                .answer(
                    &exact_q
                        .clone()
                        .with_mode(AnswerMode::EpsilonApproximate { epsilon: 0.0 }),
                    &mut s2,
                )
                .unwrap();
            assert_eq!(zero.answers(), exact.answers());
            assert_eq!(s1.raw_series_examined, s2.raw_series_examined);
            // ε > 0 refines no more candidates than exact search.
            let mut s3 = QueryStats::default();
            let relaxed = idx
                .answer(
                    &exact_q
                        .clone()
                        .with_mode(AnswerMode::EpsilonApproximate { epsilon: 1.0 }),
                    &mut s3,
                )
                .unwrap();
            assert!(s3.raw_series_examined <= s1.raw_series_examined);
            let (a, e) = (relaxed.nearest().unwrap(), exact.nearest().unwrap());
            assert!(a.distance + 1e-9 >= e.distance);
            assert!(a.distance <= 2.0 * e.distance + 1e-9);
        }
    }

    #[test]
    fn mixed_mode_batches_match_the_per_query_path() {
        use hydra_core::{Parallelism, QueryEngine};
        let (store, _) = build(300, 64);
        let make_queries = || -> Vec<Query> {
            let series = RandomWalkGenerator::new(61, 64).series_batch(4);
            vec![
                Query::knn(series[0].clone(), 3),
                Query::knn(series[1].clone(), 2).with_mode(AnswerMode::NgApproximate),
                Query::knn(series[2].clone(), 3)
                    .with_mode(AnswerMode::EpsilonApproximate { epsilon: 0.5 }),
                Query::knn(series[3].clone(), 1).with_mode(AnswerMode::DeltaEpsilon {
                    delta: 0.9,
                    epsilon: 0.25,
                }),
            ]
        };
        let queries = make_queries();
        let options = BuildOptions::default()
            .with_segments(16)
            .with_train_samples(200);
        let engine_on = |st: &Arc<DatasetStore>| {
            QueryEngine::new(
                Box::new(VaPlusFile::build_on_store(st.clone(), &options).unwrap()),
                st.len(),
            )
            .with_io_source(st.clone())
        };
        let mut serial = engine_on(&store);
        let serial_answers: Vec<_> = queries.iter().map(|q| serial.answer(q).unwrap()).collect();
        let store2 = Arc::new(DatasetStore::new(store.dataset().clone()));
        let mut batched = engine_on(&store2);
        let batch_answers = batched.answer_batch(&queries, Parallelism::Serial).unwrap();
        for (qi, (a, b)) in serial_answers.iter().zip(&batch_answers).enumerate() {
            assert_eq!(a.answers, b.answers, "query {qi} (guarantee included)");
            assert_eq!(a.guarantee, b.guarantee, "query {qi}");
            assert_eq!(
                a.stats.raw_series_examined, b.stats.raw_series_examined,
                "query {qi}"
            );
            assert_eq!(
                a.stats.lower_bounds_computed, b.stats.lower_bounds_computed,
                "query {qi}"
            );
            assert_eq!(
                a.stats.random_page_accesses, b.stats.random_page_accesses,
                "query {qi}"
            );
        }
    }

    #[test]
    fn build_via_exact_index_trait() {
        let dataset = RandomWalkGenerator::new(1, 32).dataset(50);
        let idx = VaPlusFile::build(&dataset, &BuildOptions::default().with_segments(8)).unwrap();
        assert_eq!(idx.num_series(), 50);
    }

    #[test]
    fn rejects_empty_and_bad_options() {
        let empty = Dataset::empty(16);
        assert!(VaPlusFile::build(&empty, &BuildOptions::default()).is_err());
        let data = RandomWalkGenerator::new(1, 8).dataset(10);
        let bad = BuildOptions::default().with_segments(64);
        assert!(VaPlusFile::build(&data, &bad).is_err());
    }

    #[test]
    fn rejects_wrong_query_length() {
        let (_, idx) = build(50, 64);
        let q = Query::nearest_neighbor(hydra_core::Series::new(vec![0.0; 32]));
        assert!(idx.answer_simple(&q).is_err());
    }

    #[test]
    fn payload_round_trip_restores_the_identical_filter_file() {
        let (store, idx) = build(200, 64);
        let mut payload: Vec<u8> = Vec::new();
        idx.save_payload(&mut payload).unwrap();
        let fresh = Arc::new(DatasetStore::new(store.dataset().clone()));
        let mut src = hydra_core::persist::SliceSource::new(&payload);
        let loaded = VaPlusFile::load_payload(fresh, &mut src).unwrap();
        assert_eq!(src.remaining(), 0, "payload fully consumed");
        assert_eq!(loaded.cells, idx.cells);
        assert_eq!(loaded.approximation_bytes(), idx.approximation_bytes());
        assert_eq!(loaded.quantizer.bits(), idx.quantizer.bits());
        for q in RandomWalkGenerator::new(5, 64).series_batch(4) {
            let query = Query::knn(q, 3);
            let mut s_built = QueryStats::default();
            let mut s_loaded = QueryStats::default();
            let a = idx.answer(&query, &mut s_built).unwrap();
            let b = loaded.answer(&query, &mut s_loaded).unwrap();
            assert_eq!(a, b, "answers must be bit-identical");
            assert_eq!(s_built.raw_series_examined, s_loaded.raw_series_examined);
            assert_eq!(
                s_built.lower_bounds_computed,
                s_loaded.lower_bounds_computed
            );
        }
    }

    #[test]
    fn payload_with_impossible_bit_counts_is_rejected_not_panicking() {
        let (store, idx) = build(100, 64);
        let mut payload: Vec<u8> = Vec::new();
        idx.save_payload(&mut payload).unwrap();
        // Layout: series_length (8) + dims (8), then one bits byte per
        // dimension. 20 bits per dimension is beyond what training can
        // produce and must be a typed error, not a shift overflow.
        payload[16] = 20;
        let fresh = Arc::new(DatasetStore::new(store.dataset().clone()));
        let mut src = hydra_core::persist::SliceSource::new(&payload);
        match VaPlusFile::load_payload(fresh, &mut src) {
            Err(Error::InvalidSnapshot(msg)) => assert!(msg.contains("bits"), "{msg}"),
            Err(other) => panic!("expected InvalidSnapshot, got {other}"),
            Ok(_) => panic!("an impossible bit count must be rejected"),
        }
    }

    #[test]
    fn payload_for_a_different_store_size_is_rejected() {
        let (_, idx) = build(200, 64);
        let mut payload: Vec<u8> = Vec::new();
        idx.save_payload(&mut payload).unwrap();
        let small = Arc::new(DatasetStore::new(
            RandomWalkGenerator::new(41, 64).dataset(50),
        ));
        let mut src = hydra_core::persist::SliceSource::new(&payload);
        match VaPlusFile::load_payload(small, &mut src) {
            Err(Error::InvalidSnapshot(_)) => {}
            Err(other) => panic!("expected InvalidSnapshot, got {other}"),
            Ok(_) => panic!("a mismatched store must be rejected"),
        }
    }
}

//! # hydra-rtree
//!
//! An R*-tree-style spatial access method over PAA summaries.
//!
//! Each series is reduced to its PAA representation (a point in an
//! `l`-dimensional space); leaves hold the points (plus the series ids), and
//! internal nodes hold the minimum bounding rectangles (MBRs) of their
//! children. Insertion follows the R*-tree heuristics: subtrees are chosen by
//! least overlap/area enlargement and splits pick the axis with the smallest
//! total margin and the distribution with the least overlap.
//!
//! The lower-bounding distance from a query to an MBR is the segment-width-
//! weighted distance from the query's PAA values to the rectangle, which never
//! exceeds the true Euclidean distance — so the best-first k-NN search is
//! exact. As in the paper, this classic spatial index struggles as
//! dimensionality and dataset size grow (MBRs overlap heavily), which is the
//! behaviour the benchmark documents.

use hydra_core::{
    AnswerMode, AnswerSet, AnsweringMethod, BudgetMeter, BuildOptions, Dataset, Error, ExactIndex,
    IndexFootprint, KnnHeap, MethodDescriptor, ModeCapabilities, Query, QueryStats, Result,
};
use hydra_storage::DatasetStore;
use hydra_transforms::Paa;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// A minimum bounding rectangle in PAA space.
#[derive(Clone, Debug, PartialEq)]
pub struct Mbr {
    /// Per-dimension lower bounds.
    pub low: Vec<f32>,
    /// Per-dimension upper bounds.
    pub high: Vec<f32>,
}

impl Mbr {
    /// An empty (inverted) rectangle of the given dimensionality.
    pub fn empty(dims: usize) -> Self {
        Self {
            low: vec![f32::INFINITY; dims],
            high: vec![f32::NEG_INFINITY; dims],
        }
    }

    /// A rectangle covering a single point.
    pub fn point(p: &[f32]) -> Self {
        Self {
            low: p.to_vec(),
            high: p.to_vec(),
        }
    }

    /// Whether the rectangle covers nothing.
    pub fn is_empty(&self) -> bool {
        self.low.iter().zip(self.high.iter()).any(|(l, h)| l > h)
    }

    /// Expands the rectangle to cover another.
    pub fn merge(&mut self, other: &Mbr) {
        for d in 0..self.low.len() {
            self.low[d] = self.low[d].min(other.low[d]);
            self.high[d] = self.high[d].max(other.high[d]);
        }
    }

    /// The rectangle's volume (product of side lengths).
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.low
            .iter()
            .zip(self.high.iter())
            .map(|(l, h)| (h - l).max(0.0) as f64)
            .product()
    }

    /// The sum of the side lengths (the R*-tree margin criterion).
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.low
            .iter()
            .zip(self.high.iter())
            .map(|(l, h)| (h - l).max(0.0) as f64)
            .sum()
    }

    /// The volume of the intersection with another rectangle.
    pub fn overlap(&self, other: &Mbr) -> f64 {
        let mut v = 1.0f64;
        for d in 0..self.low.len() {
            let lo = self.low[d].max(other.low[d]);
            let hi = self.high[d].min(other.high[d]);
            if hi <= lo {
                return 0.0;
            }
            v *= (hi - lo) as f64;
        }
        v
    }

    /// The increase in area needed to also cover `other`.
    pub fn enlargement(&self, other: &Mbr) -> f64 {
        let mut merged = self.clone();
        merged.merge(other);
        merged.area() - self.area()
    }

    /// The segment-width-weighted squared distance from a PAA point to the
    /// rectangle (zero inside).
    pub fn mindist_sq(&self, point: &[f32], weights: &[usize]) -> f64 {
        let mut sum = 0.0f64;
        for d in 0..self.low.len() {
            let v = point[d];
            let delta = if v < self.low[d] {
                (self.low[d] - v) as f64
            } else if v > self.high[d] {
                (v - self.high[d]) as f64
            } else {
                0.0
            };
            sum += weights[d] as f64 * delta * delta;
        }
        sum
    }
}

#[derive(Clone, Debug)]
struct LeafEntry {
    id: u32,
    point: Vec<f32>,
}

#[derive(Clone, Debug)]
enum NodeKind {
    Internal { children: Vec<usize> },
    Leaf { entries: Vec<LeafEntry> },
}

#[derive(Clone, Debug)]
struct Node {
    mbr: Mbr,
    kind: NodeKind,
    depth: usize,
}

/// The R*-tree index over PAA summaries.
pub struct RStarTree {
    store: Arc<DatasetStore>,
    paa: Paa,
    nodes: Vec<Node>,
    root: usize,
    leaf_capacity: usize,
    fanout: usize,
    weights: Vec<usize>,
}

struct Frontier {
    lower_bound: f64,
    node: usize,
}
impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.lower_bound == other.lower_bound
    }
}
impl Eq for Frontier {}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        other.lower_bound.total_cmp(&self.lower_bound)
    }
}

impl RStarTree {
    /// Builds the index over an instrumented store.
    ///
    /// The R*-tree leaf capacities the paper tunes are tiny (tens of entries);
    /// `options.leaf_capacity` is used directly, and the internal fanout is
    /// fixed at 32.
    pub fn build_on_store(store: Arc<DatasetStore>, options: &BuildOptions) -> Result<Self> {
        if store.is_empty() {
            return Err(Error::EmptyDataset);
        }
        options.validate(store.series_length())?;
        let paa = Paa::new(store.series_length(), options.segments);
        let weights: Vec<usize> = (0..options.segments)
            .map(|i| paa.segment_width(i))
            .collect();
        let dims = options.segments;
        let root = Node {
            mbr: Mbr::empty(dims),
            kind: NodeKind::Leaf {
                entries: Vec::new(),
            },
            depth: 0,
        };
        let mut tree = Self {
            store: store.clone(),
            paa,
            nodes: vec![root],
            root: 0,
            leaf_capacity: options.leaf_capacity.max(2),
            fanout: 32,
            weights,
        };
        store.scan_all(|id, series| {
            let point = tree.paa.transform(series.values());
            tree.insert(id as u32, point);
        });
        store.record_index_write((store.len() * store.series_bytes()) as u64);
        Ok(tree)
    }

    /// Number of nodes in the tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of indexed entries.
    pub fn num_entries(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Leaf { entries } => entries.len(),
                _ => 0,
            })
            .sum()
    }

    /// The underlying store.
    pub fn store(&self) -> &DatasetStore {
        &self.store
    }

    fn insert(&mut self, id: u32, point: Vec<f32>) {
        let entry_mbr = Mbr::point(&point);
        // Choose the leaf by descending with the R*-tree criteria.
        let mut path = vec![self.root];
        let mut current = self.root;
        while let NodeKind::Internal { children } = &self.nodes[current].kind {
            let child_is_leaf = children
                .first()
                .map(|&c| matches!(self.nodes[c].kind, NodeKind::Leaf { .. }))
                .unwrap_or(true);
            let mut best = children[0];
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for &child in children {
                let enlargement = self.nodes[child].mbr.enlargement(&entry_mbr);
                let overlap_increase = if child_is_leaf {
                    // R*: minimize overlap enlargement at the leaf level.
                    let mut enlarged = self.nodes[child].mbr.clone();
                    enlarged.merge(&entry_mbr);
                    children
                        .iter()
                        .filter(|&&o| o != child)
                        .map(|&o| {
                            enlarged.overlap(&self.nodes[o].mbr)
                                - self.nodes[child].mbr.overlap(&self.nodes[o].mbr)
                        })
                        .sum::<f64>()
                } else {
                    0.0
                };
                let key = (overlap_increase, enlargement, self.nodes[child].mbr.area());
                if key < best_key {
                    best_key = key;
                    best = child;
                }
            }
            current = best;
            path.push(current);
        }
        // Insert into the leaf and grow MBRs along the path.
        if let NodeKind::Leaf { entries } = &mut self.nodes[current].kind {
            entries.push(LeafEntry { id, point });
        }
        for &n in &path {
            self.nodes[n].mbr.merge(&entry_mbr);
        }
        // Split bottom-up as needed.
        let mut child = current;
        for i in (0..path.len()).rev() {
            let node = path[i];
            let overflow = match &self.nodes[node].kind {
                NodeKind::Leaf { entries } => entries.len() > self.leaf_capacity,
                NodeKind::Internal { children } => children.len() > self.fanout,
            };
            if !overflow {
                break;
            }
            let (left, right) = self.split_node(node);
            if i == 0 {
                // The root split: create a new root.
                let dims = self.weights.len();
                let mut mbr = Mbr::empty(dims);
                mbr.merge(&self.nodes[left].mbr);
                mbr.merge(&self.nodes[right].mbr);
                let new_root = self.nodes.len();
                let depth = 0;
                self.nodes.push(Node {
                    mbr,
                    kind: NodeKind::Internal {
                        children: vec![left, right],
                    },
                    depth,
                });
                self.root = new_root;
                self.bump_depths(new_root, 0);
                break;
            } else {
                let parent = path[i - 1];
                if let NodeKind::Internal { children } = &mut self.nodes[parent].kind {
                    children.retain(|&c| c != node);
                    children.push(left);
                    children.push(right);
                }
                self.recompute_mbr(parent);
            }
            child = node;
        }
        let _ = child;
    }

    fn bump_depths(&mut self, node: usize, depth: usize) {
        self.nodes[node].depth = depth;
        if let NodeKind::Internal { children } = self.nodes[node].kind.clone() {
            for c in children {
                self.bump_depths(c, depth + 1);
            }
        }
    }

    fn recompute_mbr(&mut self, node: usize) {
        let dims = self.weights.len();
        let mut mbr = Mbr::empty(dims);
        match &self.nodes[node].kind {
            NodeKind::Internal { children } => {
                for &c in children {
                    mbr.merge(&self.nodes[c].mbr.clone());
                }
            }
            NodeKind::Leaf { entries } => {
                for e in entries {
                    mbr.merge(&Mbr::point(&e.point));
                }
            }
        }
        self.nodes[node].mbr = mbr;
    }

    /// Splits an over-full node using the R*-tree axis/margin heuristics,
    /// returning the two replacement node ids.
    fn split_node(&mut self, node: usize) -> (usize, usize) {
        let dims = self.weights.len();
        let depth = self.nodes[node].depth;
        match self.nodes[node].kind.clone() {
            NodeKind::Leaf { mut entries } => {
                let (axis, split_at) =
                    choose_split(&entries, dims, |e| &e.point, self.leaf_capacity);
                entries.sort_by(|a, b| a.point[axis].total_cmp(&b.point[axis]));
                let right_entries = entries.split_off(split_at);
                // Reuse the original slot for the left half so no stale node
                // remains in the arena.
                self.nodes[node] = Node {
                    mbr: Mbr::empty(dims),
                    kind: NodeKind::Leaf { entries },
                    depth,
                };
                self.recompute_mbr(node);
                let right_id = self.nodes.len();
                self.nodes.push(Node {
                    mbr: Mbr::empty(dims),
                    kind: NodeKind::Leaf {
                        entries: right_entries,
                    },
                    depth,
                });
                self.recompute_mbr(right_id);
                (node, right_id)
            }
            NodeKind::Internal { mut children } => {
                let centers: Vec<Vec<f32>> = children
                    .iter()
                    .map(|&c| {
                        let m = &self.nodes[c].mbr;
                        (0..dims).map(|d| (m.low[d] + m.high[d]) / 2.0).collect()
                    })
                    .collect();
                let indexed: Vec<(usize, Vec<f32>)> =
                    children.iter().copied().zip(centers).collect();
                let (axis, split_at) = choose_split(&indexed, dims, |e| &e.1, self.fanout);
                let mut order: Vec<usize> = (0..children.len()).collect();
                order.sort_by(|&a, &b| indexed[a].1[axis].total_cmp(&indexed[b].1[axis]));
                let left_children: Vec<usize> =
                    order[..split_at].iter().map(|&i| children[i]).collect();
                let right_children: Vec<usize> =
                    order[split_at..].iter().map(|&i| children[i]).collect();
                children.clear();
                self.nodes[node] = Node {
                    mbr: Mbr::empty(dims),
                    kind: NodeKind::Internal {
                        children: left_children,
                    },
                    depth,
                };
                self.recompute_mbr(node);
                let right_id = self.nodes.len();
                self.nodes.push(Node {
                    mbr: Mbr::empty(dims),
                    kind: NodeKind::Internal {
                        children: right_children,
                    },
                    depth,
                });
                self.recompute_mbr(right_id);
                (node, right_id)
            }
        }
    }

    fn scan_leaf(
        &self,
        leaf: usize,
        query: &Query,
        heap: &mut KnnHeap,
        meter: &mut BudgetMeter,
        stats: &mut QueryStats,
    ) -> Result<()> {
        let NodeKind::Leaf { entries } = &self.nodes[leaf].kind else {
            return Ok(());
        };
        if entries.is_empty() {
            return Ok(());
        }
        // Fault checkpoint for the leaf's materialized payload read, keyed
        // by its first series so an injected fault is stable per leaf.
        self.store.try_access(entries[0].id as u64)?;
        stats.record_leaf_visit();
        let leaf_bytes = (entries.len() * self.store.series_bytes()) as u64;
        let pages = leaf_bytes.div_ceil(self.store.page_bytes() as u64).max(1);
        stats.record_io(pages - 1, 1, leaf_bytes);
        let dataset = self.store.dataset();
        for e in entries {
            if meter.should_stop(stats.raw_series_examined, !heap.is_empty()) {
                break;
            }
            stats.record_raw_series_examined(1);
            let series = dataset.series(e.id as usize);
            match hydra_core::distance::squared_euclidean_early_abandon(
                query.values(),
                series.values(),
                heap.threshold_squared(),
            ) {
                Some(sq) => {
                    heap.offer(e.id as usize, sq.sqrt());
                }
                None => stats.record_early_abandon(),
            }
        }
        Ok(())
    }
}

/// The R*-tree split heuristic shared by leaf and internal splits: choose the
/// axis with the minimum total margin over candidate distributions, then the
/// split position with the least overlap (ties: least total area). Returns
/// `(axis, split_index)` with `min_fill <= split_index <= len - min_fill`.
fn choose_split<T>(
    entries: &[T],
    dims: usize,
    point_of: impl Fn(&T) -> &[f32],
    capacity: usize,
) -> (usize, usize) {
    let len = entries.len();
    let min_fill = (capacity * 2 / 5).max(1).min(len / 2).max(1);
    let mut best_axis = 0usize;
    let mut best_axis_margin = f64::INFINITY;
    let mut best_split_for_axis = vec![min_fill; dims];
    for (axis, axis_best_split) in best_split_for_axis.iter_mut().enumerate() {
        let mut order: Vec<usize> = (0..len).collect();
        order.sort_by(|&a, &b| point_of(&entries[a])[axis].total_cmp(&point_of(&entries[b])[axis]));
        let mut margin_sum = 0.0f64;
        let mut best_overlap = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        let mut best_split = min_fill;
        for split in min_fill..=(len - min_fill).max(min_fill) {
            if split == 0 || split >= len {
                continue;
            }
            let mut left = Mbr::empty(dims);
            for &i in &order[..split] {
                left.merge(&Mbr::point(point_of(&entries[i])));
            }
            let mut right = Mbr::empty(dims);
            for &i in &order[split..] {
                right.merge(&Mbr::point(point_of(&entries[i])));
            }
            margin_sum += left.margin() + right.margin();
            let overlap = left.overlap(&right);
            let area = left.area() + right.area();
            if (overlap, area) < (best_overlap, best_area) {
                best_overlap = overlap;
                best_area = area;
                best_split = split;
            }
        }
        if margin_sum < best_axis_margin {
            best_axis_margin = margin_sum;
            best_axis = axis;
        }
        *axis_best_split = best_split;
    }
    (best_axis, best_split_for_axis[best_axis])
}

impl AnsweringMethod for RStarTree {
    fn descriptor(&self) -> MethodDescriptor {
        MethodDescriptor {
            name: "R*-tree",
            representation: "PAA",
            is_index: true,
            modes: ModeCapabilities::all(),
        }
    }

    fn index_footprint(&self) -> Option<IndexFootprint> {
        Some(ExactIndex::footprint(self))
    }

    fn answer(&self, query: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
        if query.len() != self.store.series_length() {
            return Err(Error::LengthMismatch {
                expected: self.store.series_length(),
                actual: query.len(),
            });
        }
        let k = query.knn_k("R*-tree")?;
        let mode = query.mode();
        let clock = hydra_core::RunClock::start();
        let q_paa = self.paa.transform(query.values());
        let mut heap = KnnHeap::new(k);
        let mut meter = BudgetMeter::new(query.budget(), self.store.len());

        if mode == AnswerMode::NgApproximate {
            // ng-approximate: descend to the MBR-closest leaf and scan it.
            let mut current = self.root;
            while let NodeKind::Internal { children } = &self.nodes[current].kind {
                stats.record_internal_visit();
                let mut best = children[0];
                let mut best_d = f64::INFINITY;
                for &child in children {
                    let d = self.nodes[child].mbr.mindist_sq(&q_paa, &self.weights);
                    stats.record_lower_bounds(1);
                    if d < best_d {
                        best_d = d;
                        best = child;
                    }
                }
                current = best;
            }
            self.scan_leaf(current, query, &mut heap, &mut meter, stats)?;
            stats.cpu_time += clock.elapsed();
            let guarantee = meter.guarantee(mode.guarantee(), stats.raw_series_examined);
            return Ok(heap.into_answer_set().with_guarantee(guarantee));
        }

        // Exact / ε-relaxed best-first traversal: a subtree is pruned as soon
        // as its MBR lower bound reaches `bsf * shrink` with
        // `shrink = δ/(1+ε)` (1 for exact, so ε = 0 is bit-identical).
        let shrink = mode.prune_shrink();
        let mut frontier = BinaryHeap::new();
        frontier.push(Frontier {
            lower_bound: 0.0,
            node: self.root,
        });
        while let Some(Frontier { lower_bound, node }) = frontier.pop() {
            if meter.is_truncated() {
                break; // budget exhausted: keep the best-so-far
            }
            if heap.is_full() && lower_bound >= heap.threshold() * shrink {
                break;
            }
            match &self.nodes[node].kind {
                NodeKind::Leaf { .. } => {
                    self.scan_leaf(node, query, &mut heap, &mut meter, stats)?
                }
                NodeKind::Internal { children } => {
                    stats.record_internal_visit();
                    for &child in children {
                        let lb = self.nodes[child]
                            .mbr
                            .mindist_sq(&q_paa, &self.weights)
                            .sqrt();
                        stats.record_lower_bounds(1);
                        if !heap.is_full() || lb < heap.threshold() * shrink {
                            frontier.push(Frontier {
                                lower_bound: lb,
                                node: child,
                            });
                        }
                    }
                }
            }
        }
        stats.cpu_time += clock.elapsed();
        let guarantee = meter.guarantee(mode.guarantee(), stats.raw_series_examined);
        Ok(heap.into_answer_set().with_guarantee(guarantee))
    }
}

impl ExactIndex for RStarTree {
    fn build(dataset: &Dataset, options: &BuildOptions) -> Result<Self> {
        Self::build_on_store(Arc::new(DatasetStore::new(dataset.clone())), options)
    }

    fn footprint(&self) -> IndexFootprint {
        let mut leaf_fill_factors = Vec::new();
        let mut leaf_depths = Vec::new();
        let mut leaf_nodes = 0usize;
        let mut disk_bytes = 0usize;
        for n in &self.nodes {
            if let NodeKind::Leaf { entries } = &n.kind {
                leaf_nodes += 1;
                leaf_fill_factors.push(entries.len() as f64 / self.leaf_capacity as f64);
                leaf_depths.push(n.depth);
                disk_bytes += entries.len() * self.store.series_bytes();
            }
        }
        let memory_bytes = self.nodes.len()
            * (std::mem::size_of::<Node>() + 2 * self.weights.len() * 4)
            + self.num_entries() * (std::mem::size_of::<LeafEntry>() + self.weights.len() * 4);
        IndexFootprint {
            total_nodes: self.nodes.len(),
            leaf_nodes,
            memory_bytes,
            disk_bytes,
            leaf_fill_factors,
            leaf_depths,
        }
    }

    fn num_series(&self) -> usize {
        self.store.len()
    }

    fn series_length(&self) -> usize {
        self.store.series_length()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_data::RandomWalkGenerator;
    use hydra_scan::ucr::brute_force_knn;

    fn build(count: usize, len: usize, leaf: usize) -> (Arc<DatasetStore>, RStarTree) {
        let store = Arc::new(DatasetStore::new(
            RandomWalkGenerator::new(17, len).dataset(count),
        ));
        let options = BuildOptions::default()
            .with_segments(8.min(len))
            .with_leaf_capacity(leaf);
        let index = RStarTree::build_on_store(store.clone(), &options).unwrap();
        (store, index)
    }

    #[test]
    fn mbr_geometry() {
        let mut m = Mbr::empty(2);
        assert!(m.is_empty());
        assert_eq!(m.area(), 0.0);
        m.merge(&Mbr::point(&[0.0, 0.0]));
        m.merge(&Mbr::point(&[2.0, 3.0]));
        assert!(!m.is_empty());
        assert_eq!(m.area(), 6.0);
        assert_eq!(m.margin(), 5.0);
        let other = Mbr {
            low: vec![1.0, 1.0],
            high: vec![4.0, 2.0],
        };
        assert_eq!(m.overlap(&other), 1.0);
        assert!(m.enlargement(&other) > 0.0);
        // mindist: inside is zero, outside is weighted.
        assert_eq!(m.mindist_sq(&[1.0, 1.0], &[1, 1]), 0.0);
        assert_eq!(m.mindist_sq(&[3.0, 0.0], &[2, 1]), 2.0);
    }

    #[test]
    fn descriptor_matches_table1() {
        let (_, idx) = build(30, 32, 8);
        assert_eq!(idx.descriptor().name, "R*-tree");
        assert_eq!(idx.descriptor().representation, "PAA");
    }

    #[test]
    fn all_series_indexed_and_tree_grows() {
        let (_, idx) = build(500, 64, 16);
        assert_eq!(idx.num_entries(), 500);
        assert!(idx.num_nodes() > 1);
        let fp = idx.footprint();
        assert_eq!(fp.leaf_fill_factors.len(), fp.leaf_nodes);
        assert!(
            fp.total_nodes > fp.leaf_nodes,
            "a 500-entry tree must have internal nodes"
        );
        assert_eq!(fp.disk_bytes, 500 * 64 * 4);
    }

    #[test]
    fn build_and_query_tolerate_nan_series() {
        // Regression: the axis sorts of the R*-tree split and the frontier
        // ordering use `total_cmp`, so one corrupt (all-NaN) series must
        // neither panic the build nor make answers run-to-run unstable.
        let len = 32usize;
        let mut values = Vec::new();
        for s in RandomWalkGenerator::new(23, len).series_batch(40) {
            values.extend_from_slice(s.values());
        }
        for v in &mut values[5 * len..6 * len] {
            *v = f32::NAN;
        }
        let store = Arc::new(DatasetStore::new(hydra_core::series::Dataset::from_flat(
            values, len,
        )));
        let options = BuildOptions::default()
            .with_segments(8)
            .with_leaf_capacity(8);
        let idx = RStarTree::build_on_store(store, &options).unwrap();
        assert_eq!(idx.num_entries(), 40);
        let q = RandomWalkGenerator::new(99, len).series(1);
        let first = idx.answer_simple(&Query::knn(q.clone(), 3)).unwrap();
        let again = idx.answer_simple(&Query::knn(q, 3)).unwrap();
        assert_eq!(first.len(), 3);
        let ids =
            |a: &hydra_core::knn::AnswerSet| -> Vec<usize> { a.iter().map(|ans| ans.id).collect() };
        assert_eq!(ids(&first), ids(&again), "NaN must not destabilize answers");
        assert!(
            ids(&first).iter().all(|&id| id != 5),
            "NaN series cannot win"
        );
    }

    #[test]
    fn exactness_against_brute_force() {
        let (store, idx) = build(400, 64, 16);
        for q in RandomWalkGenerator::new(117, 64).series_batch(12) {
            for k in [1usize, 5] {
                let expected = brute_force_knn(store.dataset(), q.values(), k);
                let got = idx.answer_simple(&Query::knn(q.clone(), k)).unwrap();
                assert!(got.distances_match(&expected, 1e-4), "k={k}");
            }
        }
    }

    #[test]
    fn exactness_on_short_series() {
        let (store, idx) = build(200, 96, 10);
        let q = RandomWalkGenerator::new(118, 96).series(4);
        let expected = brute_force_knn(store.dataset(), q.values(), 1);
        let got = idx.answer_simple(&Query::nearest_neighbor(q)).unwrap();
        assert!(got.distances_match(&expected, 1e-4));
    }

    #[test]
    fn self_queries_prune_some_candidates() {
        let (store, idx) = build(800, 64, 32);
        let q = store.dataset().series(99).to_owned_series();
        let mut stats = QueryStats::default();
        let ans = idx.answer(&Query::nearest_neighbor(q), &mut stats).unwrap();
        assert_eq!(ans.nearest().unwrap().id, 99);
        assert!(
            stats.pruning_ratio(800) > 0.2,
            "ratio {}",
            stats.pruning_ratio(800)
        );
        assert!(stats.leaves_visited >= 1);
    }

    #[test]
    fn ng_visits_one_leaf_and_epsilon_zero_is_bit_identical_to_exact() {
        let (store, idx) = build(400, 64, 16);
        let member = store.dataset().series(123).to_owned_series();
        let mut stats = QueryStats::default();
        let ng = idx
            .answer(
                &Query::nearest_neighbor(member).with_mode(AnswerMode::NgApproximate),
                &mut stats,
            )
            .unwrap();
        assert!(stats.leaves_visited <= 1);
        assert_eq!(ng.guarantee(), hydra_core::Guarantee::None);

        for q in RandomWalkGenerator::new(317, 64).series_batch(4) {
            let exact_q = Query::knn(q, 3);
            let mut s1 = QueryStats::default();
            let mut s2 = QueryStats::default();
            let exact = idx.answer(&exact_q, &mut s1).unwrap();
            let zero = idx
                .answer(
                    &exact_q
                        .clone()
                        .with_mode(AnswerMode::EpsilonApproximate { epsilon: 0.0 }),
                    &mut s2,
                )
                .unwrap();
            assert_eq!(zero.answers(), exact.answers());
            assert_eq!(s1.raw_series_examined, s2.raw_series_examined);
            assert_eq!(s1.lower_bounds_computed, s2.lower_bounds_computed);
        }
    }

    #[test]
    fn rejects_empty_dataset_and_bad_query() {
        assert!(RStarTree::build(&Dataset::empty(8), &BuildOptions::default()).is_err());
        let (_, idx) = build(20, 64, 8);
        assert!(idx
            .answer_simple(&Query::nearest_neighbor(hydra_core::Series::new(vec![
                0.0;
                8
            ])))
            .is_err());
    }
}

//! A deterministic per-shard circuit breaker on the storage cost-model
//! clock.
//!
//! Classic breakers are driven by wall time: trip after N failures, stay
//! open for T seconds, admit one probe. Wall time would break this repo's
//! bit-identity discipline — two runs of the same seed would trace different
//! breaker states — so this breaker's clock is **simulated cost units**
//! (microseconds of modelled I/O time under the service's
//! [`hydra_storage::CostModel`]): every observed event advances the clock by
//! a deterministic charge, and every state transition is a pure function of
//! the observed event sequence. Same seed ⇒ same event sequence ⇒ same
//! breaker trace, byte for byte.
//!
//! The state machine:
//!
//! ```text
//!            failures ≥ threshold
//!   Closed ───────────────────────▶ Open
//!     ▲                              │ clock ≥ reopen_at
//!     │ probe succeeds               ▼
//!     └──────────────────────── HalfOpen ──▶ Open (probe fails;
//!                              (one probe)        cooldown restarts)
//! ```
//!
//! Three event classes advance the clock:
//!
//! * a **success** charges the answer's modelled I/O time (priced by the
//!   caller, in microseconds of simulated cost);
//! * a **failure** charges a fixed [`BreakerConfig::failure_charge`] — a
//!   failed read still burned a seek's worth of simulated time;
//! * a **denied admission** (the breaker is open) charges
//!   [`BreakerConfig::denied_charge`], so a shard that receives traffic
//!   while open still makes progress toward its half-open probe — the
//!   cooldown is priced in *observed load*, not in wall-clock idleness, and
//!   an open shard under steady traffic reopens after a bounded number of
//!   rejections.

/// Breaker tuning. All durations are simulated cost units (microseconds of
/// modelled I/O time), never wall time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip Closed → Open (≥ 1).
    pub failure_threshold: u32,
    /// How long the breaker stays open, in cost units, before admitting a
    /// half-open probe.
    pub open_duration: u64,
    /// Cost units a recorded failure advances the clock by.
    pub failure_charge: u64,
    /// Cost units a denied admission advances the clock by.
    pub denied_charge: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            open_duration: 10_000,
            failure_charge: 1_000,
            denied_charge: 1_000,
        }
    }
}

/// The breaker's admission state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every sub-query is admitted.
    Closed,
    /// Tripped: sub-queries are rejected with a typed
    /// [`Error::CircuitOpen`](hydra_core::Error::CircuitOpen) until the
    /// cooldown elapses on the cost clock.
    Open,
    /// Cooldown elapsed: exactly one probe is in flight; its outcome closes
    /// or re-opens the breaker.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// One state transition, stamped with the cost clock at which it happened.
/// The trace of a seeded chaos run is part of the determinism contract: two
/// runs of the same seed must produce identical traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerEvent {
    /// The breaker's cost clock (simulated microseconds) at the transition.
    pub at_units: u64,
    /// The state left.
    pub from: BreakerState,
    /// The state entered.
    pub to: BreakerState,
}

/// A deterministic circuit breaker. See the module docs for the contract.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// The simulated clock: total cost units observed by this breaker.
    now_units: u64,
    consecutive_failures: u32,
    /// When `state == Open`: the clock value at which a probe is admitted.
    reopen_at: u64,
    /// Closed → Open trips so far (the headline chaos metric).
    opened: u64,
    /// Denied admissions so far.
    denied: u64,
    trace: Vec<BreakerEvent>,
}

impl CircuitBreaker {
    /// A closed breaker at clock zero.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config: BreakerConfig {
                failure_threshold: config.failure_threshold.max(1),
                ..config
            },
            state: BreakerState::Closed,
            now_units: 0,
            consecutive_failures: 0,
            reopen_at: 0,
            opened: 0,
            denied: 0,
            trace: Vec::new(),
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// The breaker's cost clock (total simulated microseconds observed).
    pub fn now_units(&self) -> u64 {
        self.now_units
    }

    /// How many times the breaker tripped open.
    pub fn opened(&self) -> u64 {
        self.opened
    }

    /// How many admissions were denied while open.
    pub fn denied(&self) -> u64 {
        self.denied
    }

    /// The state-transition trace so far.
    pub fn trace(&self) -> &[BreakerEvent] {
        &self.trace
    }

    /// Whether the next sub-query may proceed. `Closed` always admits;
    /// `Open` denies (charging [`BreakerConfig::denied_charge`]) until the
    /// cooldown elapses on the cost clock, then transitions to `HalfOpen`
    /// and admits the single probe; `HalfOpen` denies while that probe is
    /// in flight. The caller must report the admitted call's outcome via
    /// [`CircuitBreaker::record_success`] / [`CircuitBreaker::record_failure`].
    pub fn admit(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if self.now_units >= self.reopen_at {
                    self.transition(BreakerState::HalfOpen);
                    true
                } else {
                    self.denied += 1;
                    self.now_units = self.now_units.saturating_add(self.config.denied_charge);
                    false
                }
            }
            BreakerState::HalfOpen => {
                self.denied += 1;
                self.now_units = self.now_units.saturating_add(self.config.denied_charge);
                false
            }
        }
    }

    /// Records a successful sub-query that cost `cost_units` simulated
    /// microseconds. Resets the failure streak; a half-open probe's success
    /// closes the breaker.
    pub fn record_success(&mut self, cost_units: u64) {
        self.now_units = self.now_units.saturating_add(cost_units);
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.transition(BreakerState::Closed);
        }
    }

    /// Records a failed sub-query. Extends the failure streak; reaching the
    /// threshold (or failing the half-open probe) opens the breaker for
    /// [`BreakerConfig::open_duration`] cost units.
    pub fn record_failure(&mut self) {
        self.now_units = self.now_units.saturating_add(self.config.failure_charge);
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            BreakerState::HalfOpen => self.open(),
            BreakerState::Closed if self.consecutive_failures >= self.config.failure_threshold => {
                self.open()
            }
            _ => {}
        }
    }

    fn open(&mut self) {
        self.reopen_at = self.now_units.saturating_add(self.config.open_duration);
        self.opened += 1;
        self.transition(BreakerState::Open);
    }

    fn transition(&mut self, to: BreakerState) {
        self.trace.push(BreakerEvent {
            at_units: self.now_units,
            from: self.state,
            to,
        });
        self.state = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 2,
            open_duration: 100,
            failure_charge: 10,
            denied_charge: 30,
        }
    }

    #[test]
    fn closed_admits_until_the_failure_threshold_trips() {
        let mut b = CircuitBreaker::new(config());
        assert!(b.admit());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "one failure is tolerated");
        assert!(b.admit());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open, "second consecutive trips");
        assert_eq!(b.opened(), 1);
        assert!(!b.admit(), "open denies");
    }

    #[test]
    fn a_success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(config());
        b.record_failure();
        b.record_success(5);
        b.record_failure();
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "non-consecutive failures never trip"
        );
    }

    #[test]
    fn denied_admissions_advance_the_clock_toward_half_open() {
        let mut b = CircuitBreaker::new(config());
        b.record_failure();
        b.record_failure(); // clock 20, open until 120
        assert_eq!(b.state(), BreakerState::Open);
        // 120 - 20 = 100 units of cooldown at 30 per denial: 4 denials.
        let mut denials = 0;
        while !b.admit() {
            denials += 1;
            assert!(denials < 100, "breaker must eventually half-open");
        }
        assert_eq!(denials, 4);
        assert_eq!(b.state(), BreakerState::HalfOpen, "the admit is the probe");
        assert_eq!(b.denied(), 4);
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let mut b = CircuitBreaker::new(config());
        b.record_failure();
        b.record_failure();
        while !b.admit() {}
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.admit(), "second concurrent probe is denied");
    }

    #[test]
    fn probe_success_closes_and_probe_failure_reopens() {
        let mut reopened = CircuitBreaker::new(config());
        reopened.record_failure();
        reopened.record_failure();
        while !reopened.admit() {}
        reopened.record_failure();
        assert_eq!(reopened.state(), BreakerState::Open, "failed probe reopens");
        assert_eq!(reopened.opened(), 2);

        let mut closed = CircuitBreaker::new(config());
        closed.record_failure();
        closed.record_failure();
        while !closed.admit() {}
        closed.record_success(7);
        assert_eq!(closed.state(), BreakerState::Closed, "probe success heals");
        assert!(closed.admit());
    }

    #[test]
    fn the_trace_is_a_pure_function_of_the_event_sequence() {
        let run = || {
            let mut b = CircuitBreaker::new(config());
            let mut admitted = Vec::new();
            for i in 0..40u64 {
                admitted.push(b.admit());
                if *admitted.last().unwrap() {
                    if i % 3 == 0 {
                        b.record_success(i);
                    } else {
                        b.record_failure();
                    }
                }
            }
            (admitted, b.trace().to_vec(), b.now_units(), b.opened())
        };
        assert_eq!(run(), run(), "same events, same trace, same clock");
    }

    #[test]
    fn trace_events_carry_the_cost_clock() {
        let mut b = CircuitBreaker::new(config());
        b.record_failure();
        b.record_failure();
        assert_eq!(
            b.trace(),
            &[BreakerEvent {
                at_units: 20,
                from: BreakerState::Closed,
                to: BreakerState::Open,
            }]
        );
    }
}

//! The answer cache: canonical-keyed, FIFO-evicted, hit/miss counted.
//!
//! Keys combine the dataset fingerprint (so a cache never serves answers
//! across datasets), the query's canonical hash (which already encodes the
//! series, k, mode parameters and budget — see
//! [`hydra_core::query::Query::canonical_hash`]) and a coarse mode tag kept
//! separate for observability. Everything is deterministic: the map is a
//! `BTreeMap` (no seeded hashing), eviction is FIFO in insertion order, and
//! a hit returns a clone of exactly the bytes the cold path inserted — the
//! agreement tests assert hit ≡ cold bit-for-bit.

use hydra_core::{AnswerSet, Guarantee, QueryStats};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// The cache key: (dataset fingerprint, canonical query hash, mode tag).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// [`hydra_storage::snapshot::dataset_fingerprint`] of the served dataset.
    pub dataset_fingerprint: u64,
    /// [`hydra_core::query::Query::canonical_hash`] of the query.
    pub query_hash: u64,
    /// The coarse mode discriminant (exact / ng / ε / δ-ε), redundant with
    /// the canonical hash but kept visible for per-mode cache accounting.
    pub mode_tag: u8,
}

/// A cached answer: the merged scatter-gather result, minus wall-clock (a
/// hit costs no engine time; the service stamps its own serving time).
#[derive(Clone, Debug)]
pub struct CachedAnswer {
    /// The merged answer set.
    pub answers: AnswerSet,
    /// The merged guarantee.
    pub guarantee: Guarantee,
    /// The summed per-shard work counters of the cold run.
    pub stats: QueryStats,
}

/// Hit/miss/eviction counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over lookups, 0.0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / lookups as f64
    }
}

/// A bounded, deterministic answer cache. Capacity 0 disables caching (every
/// lookup is a miss, inserts are dropped), which is also the configuration
/// the agreement tests use to compare against cold runs.
#[derive(Debug)]
pub struct AnswerCache {
    capacity: usize,
    map: BTreeMap<CacheKey, CachedAnswer>,
    /// Insertion order, for FIFO eviction.
    order: VecDeque<CacheKey>,
    stats: CacheStats,
}

impl AnswerCache {
    /// A cache holding at most `capacity` answers.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: BTreeMap::new(),
            order: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    /// Looks up a key, counting the outcome. Hits return a clone of the
    /// inserted answer — but only when the entry's guarantee
    /// [`covers`](Guarantee::covers) the `required` one. An entry that is
    /// *weaker* than what a cold run would attain (e.g. a
    /// [`Guarantee::Partial`] answer cached during an outage, looked up
    /// after recovery) is a **miss**, never served: caching must not launder
    /// a degraded answer into a full one. Pass [`Guarantee::None`] to accept
    /// any entry.
    pub fn get(&mut self, key: &CacheKey, required: &Guarantee) -> Option<CachedAnswer> {
        match self.map.get(key) {
            Some(hit) if hit.guarantee.covers(required) => {
                self.stats.hits += 1;
                Some(hit.clone())
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks up a key with no strength requirement: the stale-fallback path,
    /// which explicitly *wants* a possibly-degraded answer (and re-tags it
    /// honestly). Counts like [`AnswerCache::get`].
    pub fn get_any(&mut self, key: &CacheKey) -> Option<CachedAnswer> {
        self.get(key, &Guarantee::None)
    }

    /// Inserts an answer, evicting the oldest entry when full. Re-inserting
    /// an existing key replaces the value without changing its eviction slot.
    pub fn insert(&mut self, key: CacheKey, answer: CachedAnswer) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key, answer).is_some() {
            self.stats.insertions += 1;
            return;
        }
        self.order.push_back(key);
        self.stats.insertions += 1;
        while self.map.len() > self.capacity {
            // order and map stay in sync: every mapped key is queued once.
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
                self.stats.evictions += 1;
            }
        }
    }

    /// Whether an entry exists under `key` (no stats are counted).
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.map.contains_key(key)
    }

    /// The running hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The number of cached answers.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(q: u64) -> CacheKey {
        CacheKey {
            dataset_fingerprint: 7,
            query_hash: q,
            mode_tag: 0,
        }
    }

    fn answer(tag: usize) -> CachedAnswer {
        let mut heap = hydra_core::KnnHeap::new(1);
        heap.offer(tag, tag as f64);
        CachedAnswer {
            answers: heap.into_answer_set(),
            guarantee: Guarantee::Exact,
            stats: QueryStats::default(),
        }
    }

    #[test]
    fn hits_return_the_inserted_answer_and_count() {
        let mut cache = AnswerCache::new(4);
        assert!(cache.get(&key(1), &Guarantee::None).is_none());
        cache.insert(key(1), answer(11));
        let hit = cache.get(&key(1), &Guarantee::None).expect("hit");
        assert_eq!(hit.answers.nearest().unwrap().id, 11);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                insertions: 1,
                evictions: 0
            }
        );
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_is_fifo_in_insertion_order() {
        let mut cache = AnswerCache::new(2);
        cache.insert(key(1), answer(1));
        cache.insert(key(2), answer(2));
        cache.insert(key(3), answer(3));
        assert_eq!(cache.len(), 2);
        assert!(
            cache.get(&key(1), &Guarantee::None).is_none(),
            "oldest evicted first"
        );
        assert!(cache.get(&key(2), &Guarantee::None).is_some());
        assert!(cache.get(&key(3), &Guarantee::None).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let mut cache = AnswerCache::new(0);
        cache.insert(key(1), answer(1));
        assert!(cache.is_empty());
        assert!(cache.get(&key(1), &Guarantee::None).is_none());
    }

    #[test]
    fn keys_distinguish_dataset_and_mode() {
        let mut cache = AnswerCache::new(4);
        cache.insert(key(1), answer(1));
        let other_dataset = CacheKey {
            dataset_fingerprint: 8,
            ..key(1)
        };
        let other_mode = CacheKey {
            mode_tag: 1,
            ..key(1)
        };
        assert!(cache.get(&other_dataset, &Guarantee::None).is_none());
        assert!(cache.get(&other_mode, &Guarantee::None).is_none());
    }

    #[test]
    fn reinserting_a_key_replaces_without_duplicating_the_slot() {
        let mut cache = AnswerCache::new(2);
        cache.insert(key(1), answer(1));
        cache.insert(key(1), answer(9));
        cache.insert(key(2), answer(2));
        assert_eq!(cache.len(), 2, "no duplicate eviction slot");
        assert_eq!(
            cache
                .get(&key(1), &Guarantee::None)
                .unwrap()
                .answers
                .nearest()
                .unwrap()
                .id,
            9
        );
    }

    #[test]
    fn weaker_entries_are_never_served_for_a_stronger_requirement() {
        // The guarantee-laundering regression: a Partial answer cached
        // during an outage must not satisfy a post-recovery full lookup.
        let mut cache = AnswerCache::new(4);
        let mut degraded = answer(1);
        degraded.guarantee = Guarantee::partial(1, 2, Guarantee::Exact);
        cache.insert(key(1), degraded);
        assert!(
            cache.get(&key(1), &Guarantee::Exact).is_none(),
            "a Partial entry is a miss for an Exact requirement"
        );
        assert_eq!(cache.stats().misses, 1, "the rejection counts as a miss");
        assert!(
            cache.get_any(&key(1)).is_some(),
            "the stale-fallback path still reaches it"
        );

        // An equal-or-stronger entry is served.
        cache.insert(key(2), answer(2));
        assert!(cache.get(&key(2), &Guarantee::Exact).is_some());
        assert!(cache
            .get(
                &key(2),
                &Guarantee::Truncated {
                    examined_fraction: 0.0
                }
            )
            .is_some());
    }
}

//! Resilience policy for the sharded service: quorum rules for degraded
//! partial answers, hedged-retry triggering, and per-shard health tracking.
//!
//! Everything here follows the suite's determinism discipline: "time" is
//! simulated cost units priced by the storage [`CostModel`]
//! (hydra_storage::CostModel), never wall clock, and every decision — admit
//! or reject, hedge or not, serve partial or fail — is a pure function of
//! the deterministic event sequence. Same seed ⇒ same degraded answers, same
//! hedges, same breaker traces.

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use hydra_core::{Error, Result, RetryPolicy};
use hydra_storage::FaultPlan;
use std::collections::VecDeque;

/// How many shards must answer before a scatter-gather merge is served.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QuorumPolicy {
    /// Every shard must answer; any shard error fails the request with the
    /// first error in shard order. This is the strict pre-resilience
    /// behaviour, and the default: fault-free runs are bit-identical to it.
    #[default]
    AllShards,
    /// At least `n` shards must answer (clamped to `1..=shards`); the merge
    /// over the survivors is served tagged
    /// [`Guarantee::Partial`](hydra_core::Guarantee::Partial).
    AtLeast(usize),
    /// Any non-empty set of surviving shards is served (equivalent to
    /// `AtLeast(1)`).
    BestEffort,
}

impl QuorumPolicy {
    /// The number of shards (out of `total`) that must answer under this
    /// policy. Always in `1..=total`.
    pub fn required(&self, total: usize) -> usize {
        let total = total.max(1);
        match self {
            QuorumPolicy::AllShards => total,
            QuorumPolicy::AtLeast(n) => (*n).clamp(1, total),
            QuorumPolicy::BestEffort => 1,
        }
    }

    /// Parses `"all"`, `"best-effort"`, or a shard count (`"2"` ⇒
    /// `AtLeast(2)`).
    pub fn parse(text: &str) -> Result<QuorumPolicy> {
        match text {
            "all" => Ok(QuorumPolicy::AllShards),
            "best-effort" => Ok(QuorumPolicy::BestEffort),
            n => n
                .parse::<usize>()
                .ok()
                .filter(|n| *n >= 1)
                .map(QuorumPolicy::AtLeast)
                .ok_or_else(|| {
                    Error::invalid_parameter("quorum", "expected `all`, `best-effort`, or a count")
                }),
        }
    }
}

impl std::fmt::Display for QuorumPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuorumPolicy::AllShards => write!(f, "all"),
            QuorumPolicy::AtLeast(n) => write!(f, "{n}"),
            QuorumPolicy::BestEffort => write!(f, "best-effort"),
        }
    }
}

/// Hedged-retry tuning. A hedge is a speculative second submission of a
/// shard sub-query, launched alongside the primary when the shard's recent
/// answers have been expensive; the hedge re-runs the engine from a shifted
/// fault-attempt base (past the retry budget), so planned transient faults
/// that would fail the primary are already cleared for the hedge — a
/// deterministic stand-in for "the retry raced ahead of the slow replica".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HedgeConfig {
    /// Launch a hedge when the shard's last answer cost reaches this
    /// quantile of its recent window (`0.0..=1.0`).
    pub quantile: f64,
    /// How many recent per-answer costs the shard remembers.
    pub window: usize,
    /// Minimum remembered costs before hedging can trigger (a cold shard
    /// never hedges).
    pub min_samples: usize,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        Self {
            quantile: 0.9,
            window: 16,
            min_samples: 4,
        }
    }
}

/// The full resilience policy of a service. The default is exactly the
/// pre-resilience service: strict quorum, no breakers, no hedging, no
/// injected faults, the engines' own retry policies.
#[derive(Clone, Debug, Default)]
pub struct ResilienceConfig {
    /// How many shards must answer before a merge is served.
    pub quorum: QuorumPolicy,
    /// Per-shard circuit breakers; `None` disables breaking.
    pub breaker: Option<BreakerConfig>,
    /// Hedged retries; `None` disables hedging.
    pub hedge: Option<HedgeConfig>,
    /// The fault plan shards derive their independent fault streams from
    /// (via [`FaultPlan::for_shard`]); disabled by default.
    pub shard_faults: FaultPlan,
    /// Overrides every shard engine's retry policy when set (the knob the
    /// chaos lane turns without rebuilding engines through the builder).
    pub retry: Option<RetryPolicy>,
}

/// One shard's health ledger: its breaker, its recent answer costs (the
/// hedging signal), and its outcome counters. The service keeps one per
/// shard behind a mutex; every field is driven only by deterministic events.
#[derive(Clone, Debug)]
pub struct ShardHealth {
    /// The shard's circuit breaker, when breaking is enabled.
    pub breaker: Option<CircuitBreaker>,
    hedge: Option<HedgeConfig>,
    /// Recent per-answer costs in simulated cost units, oldest first.
    recent_cost: VecDeque<u64>,
    /// Sub-queries that answered.
    pub successes: u64,
    /// Sub-queries that failed after engine-level retries.
    pub failures: u64,
    /// Hedges launched alongside primaries.
    pub hedges_launched: u64,
    /// Hedges whose answer was served (the primary failed).
    pub hedges_won: u64,
    /// Sub-queries rejected by the open breaker.
    pub rejected: u64,
}

impl ShardHealth {
    /// A fresh ledger under the given breaker/hedge policy.
    pub fn new(breaker: Option<BreakerConfig>, hedge: Option<HedgeConfig>) -> Self {
        Self {
            breaker: breaker.map(CircuitBreaker::new),
            hedge,
            recent_cost: VecDeque::new(),
            successes: 0,
            failures: 0,
            hedges_launched: 0,
            hedges_won: 0,
            rejected: 0,
        }
    }

    /// Whether the breaker admits the next sub-query (`true` when breaking
    /// is disabled). A denial is counted against the shard.
    pub fn admit(&mut self) -> bool {
        match self.breaker.as_mut() {
            None => true,
            Some(b) => {
                let admitted = b.admit();
                if !admitted {
                    self.rejected += 1;
                }
                admitted
            }
        }
    }

    /// Whether a hedge should accompany the next primary: hedging is
    /// enabled, the window holds enough samples, and the most recent answer
    /// cost sits at or above the configured quantile of the window — i.e.
    /// the shard's latest answer was among its recently slowest.
    pub fn should_hedge(&self) -> bool {
        let Some(cfg) = self.hedge else { return false };
        if self.recent_cost.len() < cfg.min_samples.max(1) {
            return false;
        }
        let Some(&last) = self.recent_cost.back() else {
            return false;
        };
        let mut sorted: Vec<u64> = self.recent_cost.iter().copied().collect();
        sorted.sort_unstable();
        let rank = (cfg.quantile.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).floor() as usize;
        last >= sorted[rank]
    }

    /// Records a hedge launch.
    pub fn record_hedge_launched(&mut self) {
        self.hedges_launched += 1;
    }

    /// Records that the hedge's answer was served over a failed primary.
    pub fn record_hedge_won(&mut self) {
        self.hedges_won += 1;
    }

    /// Records a successful sub-query that cost `cost_units`, feeding both
    /// the hedging window and the breaker clock.
    pub fn record_success(&mut self, cost_units: u64) {
        self.successes += 1;
        let window = self.hedge.map(|h| h.window.max(1)).unwrap_or(0);
        if window > 0 {
            self.recent_cost.push_back(cost_units);
            while self.recent_cost.len() > window {
                self.recent_cost.pop_front();
            }
        }
        if let Some(b) = self.breaker.as_mut() {
            b.record_success(cost_units);
        }
    }

    /// Records a sub-query that failed after engine-level retries.
    pub fn record_failure(&mut self) {
        self.failures += 1;
        if let Some(b) = self.breaker.as_mut() {
            b.record_failure();
        }
    }

    /// A copyable snapshot of the ledger for reporting.
    pub fn report(&self) -> ShardHealthReport {
        ShardHealthReport {
            successes: self.successes,
            failures: self.failures,
            hedges_launched: self.hedges_launched,
            hedges_won: self.hedges_won,
            rejected: self.rejected,
            breaker_state: self.breaker.as_ref().map(|b| b.state()),
            breaker_opened: self.breaker.as_ref().map(|b| b.opened()).unwrap_or(0),
            breaker_denied: self.breaker.as_ref().map(|b| b.denied()).unwrap_or(0),
        }
    }
}

/// A point-in-time snapshot of one shard's health counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardHealthReport {
    /// Sub-queries that answered.
    pub successes: u64,
    /// Sub-queries that failed after engine-level retries.
    pub failures: u64,
    /// Hedges launched.
    pub hedges_launched: u64,
    /// Hedges whose answer was served.
    pub hedges_won: u64,
    /// Sub-queries rejected by the breaker.
    pub rejected: u64,
    /// Breaker state, `None` when breaking is disabled.
    pub breaker_state: Option<BreakerState>,
    /// Times the breaker tripped open.
    pub breaker_opened: u64,
    /// Admissions the breaker denied.
    pub breaker_denied: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_required_clamps_to_the_shard_count() {
        assert_eq!(QuorumPolicy::AllShards.required(4), 4);
        assert_eq!(QuorumPolicy::AtLeast(2).required(4), 2);
        assert_eq!(QuorumPolicy::AtLeast(9).required(4), 4);
        assert_eq!(QuorumPolicy::AtLeast(0).required(4), 1);
        assert_eq!(QuorumPolicy::BestEffort.required(4), 1);
        assert_eq!(QuorumPolicy::AllShards.required(0), 1);
    }

    #[test]
    fn quorum_parse_round_trips_through_display() {
        for text in ["all", "best-effort", "2"] {
            let policy = QuorumPolicy::parse(text).unwrap();
            assert_eq!(policy.to_string(), text);
        }
        assert!(QuorumPolicy::parse("0").is_err());
        assert!(QuorumPolicy::parse("most").is_err());
    }

    #[test]
    fn default_resilience_is_the_strict_pre_resilience_service() {
        let r = ResilienceConfig::default();
        assert_eq!(r.quorum, QuorumPolicy::AllShards);
        assert!(r.breaker.is_none());
        assert!(r.hedge.is_none());
        assert!(!r.shard_faults.is_active());
        assert!(r.retry.is_none());
    }

    #[test]
    fn hedging_needs_warm_samples_and_a_slow_tail() {
        let mut h = ShardHealth::new(
            None,
            Some(HedgeConfig {
                quantile: 0.75,
                window: 8,
                min_samples: 4,
            }),
        );
        h.record_success(10);
        h.record_success(10);
        h.record_success(10);
        assert!(!h.should_hedge(), "cold window never hedges");
        h.record_success(10);
        assert!(
            h.should_hedge(),
            "a uniform window puts the last sample at every quantile"
        );
        h.record_success(5);
        assert!(!h.should_hedge(), "a fast answer sits below the quantile");
        h.record_success(100);
        assert!(h.should_hedge(), "a slow answer sits at the tail");
    }

    #[test]
    fn disabled_hedging_never_triggers() {
        let mut h = ShardHealth::new(None, None);
        for _ in 0..32 {
            h.record_success(1_000);
        }
        assert!(!h.should_hedge());
        assert!(h.recent_cost.is_empty(), "no window is kept when disabled");
    }

    #[test]
    fn health_ledger_feeds_the_breaker_and_counts_outcomes() {
        let mut h = ShardHealth::new(
            Some(BreakerConfig {
                failure_threshold: 2,
                open_duration: 50,
                failure_charge: 10,
                denied_charge: 25,
            }),
            None,
        );
        assert!(h.admit());
        h.record_success(5);
        assert!(h.admit());
        h.record_failure();
        assert!(h.admit());
        h.record_failure();
        assert!(!h.admit(), "two consecutive failures trip the breaker");
        let report = h.report();
        assert_eq!(report.successes, 1);
        assert_eq!(report.failures, 2);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.breaker_opened, 1);
        assert_eq!(report.breaker_state, Some(BreakerState::Open));
    }

    #[test]
    fn breakerless_health_always_admits() {
        let mut h = ShardHealth::new(None, None);
        for _ in 0..10 {
            h.record_failure();
        }
        assert!(h.admit());
        assert_eq!(h.report().breaker_state, None);
    }
}

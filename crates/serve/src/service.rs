//! The query service: admission control, deadline mapping, scatter-gather
//! dispatch and the answer cache, glued onto the executor.
//!
//! A request's life: [`QueryService::submit`] first applies **admission
//! control** — at most `queue_capacity` requests may be in flight, and the
//! excess is shed *synchronously* with a typed
//! [`Error::Overloaded`](hydra_core::Error::Overloaded) before any work
//! happens, so shedding order is a pure function of the arrival order.
//! Admitted requests with no explicit budget get one derived from the
//! configured **deadline**: the deadline's byte allowance under the storage
//! cost model, divided by the series size, becomes a raw-read
//! [`Budget`](hydra_core::Budget) — a late query degrades to a best-so-far
//! answer tagged [`Guarantee::Truncated`](hydra_core::Guarantee) instead of
//! timing out. The request future then consults the **answer cache** (keyed
//! on dataset fingerprint × canonical query hash × mode) and on a miss
//! scatters one task per shard onto the executor, gathers in shard order,
//! and merges via [`merge_shard_answers`] — the exact per-shard calls and
//! merge of the serial [`scatter_gather`] reference, so the pipeline's
//! answers are bit-identical to it.

use crate::cache::{AnswerCache, CacheKey, CacheStats, CachedAnswer};
use crate::executor::Executor;
use crate::shard::{merge_shard_answers, scatter_gather, ShardEngine};
use hydra_core::{
    AnswerMode, AnswerSet, Budget, Dataset, EngineAnswer, Error, Guarantee, Query, QueryEngine,
    QueryStats, Result,
};
use hydra_storage::{partition_dataset, snapshot, CostModel, DatasetStore};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Number of engine shards the dataset is partitioned over (clamped to
    /// the dataset size; ≥ 1).
    pub shards: usize,
    /// Admission limit: the maximum number of requests in flight before
    /// submissions shed with [`Error::Overloaded`].
    pub queue_capacity: usize,
    /// Answer-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Worker threads driving the executor in [`QueryService::drive`]; 1 is
    /// the deterministic single-threaded mode.
    pub worker_threads: usize,
    /// Default request deadline; mapped onto a raw-read budget for queries
    /// that carry none. `None` leaves queries unbudgeted.
    pub deadline_ms: Option<u64>,
    /// The storage cost model the deadline mapping prices reads with.
    pub cost_model: CostModel,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            queue_capacity: 64,
            cache_capacity: 256,
            worker_threads: 1,
            deadline_ms: None,
            cost_model: CostModel::ssd(),
        }
    }
}

/// Admission/completion counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted past the queue.
    pub accepted: u64,
    /// Requests shed with [`Error::Overloaded`].
    pub shed: u64,
    /// Requests that produced an answer (hit or cold).
    pub completed: u64,
}

/// One served answer: the merged scatter-gather result plus serving
/// provenance.
#[derive(Clone, Debug)]
pub struct ServeAnswer {
    /// The merged answer set.
    pub answers: AnswerSet,
    /// The merged guarantee.
    pub guarantee: Guarantee,
    /// Summed per-shard work counters (zero-cost for cache hits).
    pub stats: QueryStats,
    /// Engine wall time: the slowest shard of the cold run; zero for hits.
    pub wall_time: Duration,
    /// Max attempts over the shards of the cold run; zero for hits.
    pub attempts: u32,
    /// Whether the answer came from the cache.
    pub from_cache: bool,
}

/// Handle to a submitted request; poll it after driving the executor.
pub struct RequestHandle {
    join: crate::executor::JoinHandle<Result<ServeAnswer>>,
}

impl std::fmt::Debug for RequestHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestHandle")
            .field("finished", &self.join.is_finished())
            .finish()
    }
}

impl RequestHandle {
    /// Whether the request has finished (its result may already be taken).
    pub fn is_finished(&self) -> bool {
        self.join.is_finished()
    }

    /// Takes the result if the request has finished.
    pub fn try_take(&self) -> Option<Result<ServeAnswer>> {
        self.join.try_take()
    }
}

/// The shared service state request futures run against.
struct ServiceInner {
    shards: Vec<ShardEngine>,
    executor: Executor,
    cache: Mutex<AnswerCache>,
    config: ServeConfig,
    dataset_fingerprint: u64,
    total_size: usize,
    series_bytes: u64,
    in_flight: AtomicUsize,
    accepted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
}

/// A sharded, cached, admission-controlled query service over one dataset.
/// Cloning shares all state (shards, cache, executor, counters).
#[derive(Clone)]
pub struct QueryService {
    inner: Arc<ServiceInner>,
}

impl QueryService {
    /// Builds a service: partitions `dataset` into `config.shards` contiguous
    /// shards, wraps each in its own instrumented store, and builds an engine
    /// per shard through `builder` (shard index, shard store) — the seam
    /// through which callers choose fresh builds or snapshot loads without
    /// this crate knowing any concrete method.
    pub fn build<F>(dataset: &Dataset, config: ServeConfig, builder: F) -> Result<QueryService>
    where
        F: Fn(usize, Arc<DatasetStore>) -> Result<QueryEngine>,
    {
        if config.queue_capacity == 0 {
            return Err(Error::invalid_parameter(
                "queue_capacity",
                "must admit at least one request",
            ));
        }
        let dataset_fingerprint = snapshot::dataset_fingerprint(dataset);
        let series_bytes = (dataset.series_length() * std::mem::size_of::<f32>()) as u64;
        let mut shards = Vec::new();
        for (i, part) in partition_dataset(dataset, config.shards)?
            .into_iter()
            .enumerate()
        {
            let store = Arc::new(DatasetStore::new(part.dataset));
            let engine = builder(i, store)?;
            shards.push(ShardEngine {
                range: part.range,
                handle: engine.into_handle(),
            });
        }
        Ok(QueryService {
            inner: Arc::new(ServiceInner {
                shards,
                executor: Executor::new(),
                cache: Mutex::new(AnswerCache::new(config.cache_capacity)),
                config,
                dataset_fingerprint,
                total_size: dataset.len(),
                series_bytes,
                in_flight: AtomicUsize::new(0),
                accepted: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                completed: AtomicU64::new(0),
            }),
        })
    }

    /// Submits a query. Sheds synchronously with [`Error::Overloaded`] when
    /// `queue_capacity` requests are already in flight; otherwise attaches
    /// the deadline-derived budget (if the query carries none and a deadline
    /// is configured) and spawns the request future. Drive the executor
    /// ([`QueryService::drive`] / [`QueryService::run_one`]) to make
    /// progress.
    pub fn submit(&self, query: Query) -> Result<RequestHandle> {
        let inner = &self.inner;
        // Admission under a CAS loop: the slot is claimed atomically, so the
        // capacity is never oversubscribed even under concurrent submitters.
        let mut current = inner.in_flight.load(Ordering::Acquire);
        loop {
            if current >= inner.config.queue_capacity {
                inner.shed.fetch_add(1, Ordering::Relaxed);
                return Err(Error::Overloaded {
                    capacity: inner.config.queue_capacity,
                });
            }
            match inner.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(now) => current = now,
            }
        }
        inner.accepted.fetch_add(1, Ordering::Relaxed);
        let query = match (query.budget(), inner.config.deadline_ms) {
            (None, Some(deadline_ms)) => query.with_budget(Some(deadline_budget(
                deadline_ms,
                inner.series_bytes,
                &inner.config.cost_model,
            ))),
            _ => query,
        };
        let state = inner.clone();
        let join = inner.executor.spawn(async move {
            let result = process_request(&state, &query).await;
            if result.is_ok() {
                state.completed.fetch_add(1, Ordering::Relaxed);
            }
            state.in_flight.fetch_sub(1, Ordering::AcqRel);
            result
        });
        Ok(RequestHandle { join })
    }

    /// Drives the executor until no task is ready: single-threaded (the
    /// deterministic mode) for `worker_threads <= 1`, scoped workers
    /// otherwise.
    pub fn drive(&self) {
        let threads = self.inner.config.worker_threads;
        if threads > 1 {
            self.inner.executor.run_until_idle_threaded(threads);
        } else {
            self.inner.executor.run_until_idle();
        }
    }

    /// Polls one ready task; `false` when none is ready. The load
    /// generator's event loop interleaves this with its arrival schedule.
    pub fn run_one(&self) -> bool {
        self.inner.executor.run_one()
    }

    /// Submit-and-drive convenience: answers one query to completion.
    pub fn answer(&self, query: Query) -> Result<ServeAnswer> {
        let handle = self.submit(query)?;
        self.drive();
        match handle.try_take() {
            Some(result) => result,
            None => Err(Error::Internal(
                "request did not complete after an idle drive".to_string(),
            )),
        }
    }

    /// The serial scatter-gather reference over the same shards: the answer
    /// the async pipeline must (and does — see `tests/serve_agreement.rs`)
    /// reproduce bit-for-bit.
    pub fn reference_answer(&self, query: &Query) -> Result<EngineAnswer> {
        scatter_gather(&self.inner.shards, self.inner.total_size, query)
    }

    /// The per-shard engines (ranges and handles), in shard order.
    pub fn shards(&self) -> &[ShardEngine] {
        &self.inner.shards
    }

    /// The total dataset size across all shards.
    pub fn dataset_size(&self) -> usize {
        self.inner.total_size
    }

    /// The served dataset's fingerprint (the cache-key component).
    pub fn dataset_fingerprint(&self) -> u64 {
        self.inner.dataset_fingerprint
    }

    /// Admission/completion counters.
    pub fn service_stats(&self) -> ServiceStats {
        ServiceStats {
            accepted: self.inner.accepted.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
        }
    }

    /// Answer-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.lock().stats()
    }

    /// Requests currently in flight (admitted, not yet completed).
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight.load(Ordering::Acquire)
    }
}

/// The cache key of a query against this service's dataset.
fn cache_key(inner: &ServiceInner, query: &Query) -> CacheKey {
    CacheKey {
        dataset_fingerprint: inner.dataset_fingerprint,
        query_hash: query.canonical_hash(),
        mode_tag: mode_tag(query.mode()),
    }
}

/// The coarse mode discriminant of a cache key.
fn mode_tag(mode: AnswerMode) -> u8 {
    match mode {
        AnswerMode::Exact => 0,
        AnswerMode::NgApproximate => 1,
        AnswerMode::EpsilonApproximate { .. } => 2,
        AnswerMode::DeltaEpsilon { .. } => 3,
    }
}

/// One request: cache lookup, then scatter-gather on a miss.
async fn process_request(inner: &Arc<ServiceInner>, query: &Query) -> Result<ServeAnswer> {
    let key = cache_key(inner, query);
    if let Some(hit) = inner.cache.lock().get(&key) {
        return Ok(ServeAnswer {
            answers: hit.answers,
            guarantee: hit.guarantee,
            stats: hit.stats,
            wall_time: Duration::ZERO,
            attempts: 0,
            from_cache: true,
        });
    }
    // Scatter: one executor task per shard, spawned before any is awaited so
    // a threaded drive can run them concurrently.
    let tasks: Vec<_> = inner
        .shards
        .iter()
        .map(|shard| {
            let shard = shard.clone();
            let query = query.clone();
            (
                shard.range.clone(),
                inner.executor.spawn(async move { shard.answer(&query) }),
            )
        })
        .collect();
    // Gather in shard order: the merge input order — and therefore the merge
    // itself — is deterministic regardless of completion order, and a shard
    // error surfaces in shard order exactly like the serial reference.
    let mut parts = Vec::with_capacity(tasks.len());
    for (range, task) in tasks {
        parts.push((range, task.await?));
    }
    let k = query.k().unwrap_or(1);
    let merged = merge_shard_answers(k, inner.total_size, parts);
    inner.cache.lock().insert(
        key,
        CachedAnswer {
            answers: merged.answers.clone(),
            guarantee: merged.guarantee,
            stats: merged.stats.clone(),
        },
    );
    Ok(ServeAnswer {
        answers: merged.answers,
        guarantee: merged.guarantee,
        stats: merged.stats,
        wall_time: merged.wall_time,
        attempts: merged.attempts,
        from_cache: false,
    })
}

/// Maps a deadline onto a raw-read budget under a storage cost model: the
/// bytes the model's sequential bandwidth delivers within the deadline,
/// divided by the series size, clamped to ≥ 1 read (the budget contract
/// never returns an empty answer). Each shard receives the full budget —
/// shards are independent stores scanned in parallel, so the deadline bounds
/// each shard's own I/O, not the sum.
pub fn deadline_budget(deadline_ms: u64, series_bytes: u64, model: &CostModel) -> Budget {
    let deadline_secs = deadline_ms as f64 / 1000.0;
    let bytes = deadline_secs * model.sequential_bytes_per_sec;
    let reads = (bytes / series_bytes.max(1) as f64).floor() as u64;
    Budget::raw_reads(reads.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::{AnsweringMethod, KnnHeap, MethodDescriptor, Series};

    /// A store-reading brute-force scan, so shard answers flow through the
    /// real counted-I/O path.
    struct StoreScan {
        store: Arc<DatasetStore>,
    }

    impl AnsweringMethod for StoreScan {
        fn descriptor(&self) -> MethodDescriptor {
            MethodDescriptor {
                name: "StoreScan",
                representation: "raw",
                is_index: false,
                modes: hydra_core::ModeCapabilities::exact_only(),
            }
        }

        fn answer(&self, query: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
            let mut heap = KnnHeap::new(query.k().unwrap_or(1));
            for i in 0..self.store.len() {
                let s = self.store.read_series(i);
                stats.record_raw_series_examined(1);
                heap.offer(i, hydra_core::euclidean(query.values(), s.values()));
            }
            Ok(heap.into_answer_set())
        }
    }

    fn dataset(len: usize) -> Dataset {
        let values: Vec<f32> = (0..len * 4).map(|v| (v % 17) as f32).collect();
        Dataset::from_flat(values, 4)
    }

    fn service(config: ServeConfig) -> QueryService {
        QueryService::build(&dataset(24), config, |_, store| {
            let size = store.len();
            Ok(QueryEngine::new(
                Box::new(StoreScan {
                    store: store.clone(),
                }),
                size,
            )
            .with_io_source(store))
        })
        .expect("service builds")
    }

    fn query(v: f32, k: usize) -> Query {
        Query::knn(Series::new(vec![v, v, v, v]), k)
    }

    #[test]
    fn sharded_service_matches_the_serial_reference() {
        for shards in [1, 2, 4] {
            let svc = service(ServeConfig {
                shards,
                cache_capacity: 0,
                ..ServeConfig::default()
            });
            assert_eq!(svc.shards().len(), shards);
            for k in [1, 3, 10] {
                let q = query(3.0, k);
                let reference = svc.reference_answer(&q).unwrap();
                let served = svc.answer(q).unwrap();
                assert_eq!(served.answers, reference.answers);
                assert_eq!(served.guarantee, reference.guarantee);
                assert_eq!(served.stats, reference.stats);
                assert!(!served.from_cache);
            }
        }
    }

    #[test]
    fn cache_hits_are_bit_identical_to_cold_answers() {
        let svc = service(ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        });
        let cold = svc.answer(query(5.0, 3)).unwrap();
        assert!(!cold.from_cache);
        let hit = svc.answer(query(5.0, 3)).unwrap();
        assert!(hit.from_cache);
        assert_eq!(hit.answers, cold.answers);
        assert_eq!(hit.guarantee, cold.guarantee);
        assert_eq!(hit.stats, cold.stats);
        assert_eq!(svc.cache_stats().hits, 1);
        assert_eq!(svc.cache_stats().misses, 1);

        // A different k (or mode) is a different key, not a stale hit.
        let other = svc.answer(query(5.0, 4)).unwrap();
        assert!(!other.from_cache);
    }

    #[test]
    fn overload_sheds_synchronously_and_in_arrival_order() {
        let svc = service(ServeConfig {
            queue_capacity: 2,
            ..ServeConfig::default()
        });
        // Submit without driving: the first two are admitted, the rest shed.
        let h1 = svc.submit(query(1.0, 1)).unwrap();
        let h2 = svc.submit(query(2.0, 1)).unwrap();
        for v in [3.0, 4.0, 5.0] {
            match svc.submit(query(v, 1)) {
                Err(Error::Overloaded { capacity }) => assert_eq!(capacity, 2),
                other => panic!("expected Overloaded, got {other:?}"),
            }
        }
        assert_eq!(svc.in_flight(), 2);
        svc.drive();
        assert!(h1.try_take().unwrap().is_ok());
        assert!(h2.try_take().unwrap().is_ok());
        assert_eq!(svc.in_flight(), 0);
        let stats = svc.service_stats();
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.shed, 3);
        assert_eq!(stats.completed, 2);
        // Capacity freed: submissions are admitted again.
        assert!(svc.answer(query(6.0, 1)).is_ok());
    }

    #[test]
    fn deadline_budget_prices_reads_under_the_cost_model() {
        let model = CostModel::ssd();
        let b = deadline_budget(1000, 4096, &model);
        let expected = (model.sequential_bytes_per_sec / 4096.0).floor() as u64;
        assert_eq!(b.limit(), expected);
        // A vanishing deadline still buys one read: the budget contract
        // never returns an empty answer.
        assert_eq!(deadline_budget(0, 4096, &model).limit(), 1);
    }

    #[test]
    fn zero_capacity_queue_is_rejected_at_build_time() {
        let err = QueryService::build(
            &dataset(8),
            ServeConfig {
                queue_capacity: 0,
                ..ServeConfig::default()
            },
            |_, store| {
                let size = store.len();
                Ok(QueryEngine::new(Box::new(StoreScan { store }), size))
            },
        );
        assert!(matches!(err, Err(Error::InvalidParameter { .. })));
    }

    #[test]
    fn threaded_drive_returns_the_same_answers() {
        let single = service(ServeConfig {
            shards: 4,
            cache_capacity: 0,
            worker_threads: 1,
            ..ServeConfig::default()
        });
        let threaded = service(ServeConfig {
            shards: 4,
            cache_capacity: 0,
            worker_threads: 4,
            ..ServeConfig::default()
        });
        let queries: Vec<Query> = (0..6).map(|i| query(i as f32, 3)).collect();
        let expected: Vec<_> = queries
            .iter()
            .map(|q| single.answer(q.clone()).unwrap())
            .collect();
        let handles: Vec<_> = queries
            .iter()
            .map(|q| threaded.submit(q.clone()).unwrap())
            .collect();
        threaded.drive();
        for (h, e) in handles.iter().zip(&expected) {
            let got = h.try_take().unwrap().unwrap();
            assert_eq!(got.answers, e.answers);
            assert_eq!(got.stats, e.stats);
        }
    }
}

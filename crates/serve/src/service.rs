//! The query service: admission control, deadline mapping, scatter-gather
//! dispatch and the answer cache, glued onto the executor.
//!
//! A request's life: [`QueryService::submit`] first applies **admission
//! control** — at most `queue_capacity` requests may be in flight, and the
//! excess is shed *synchronously* with a typed
//! [`Error::Overloaded`](hydra_core::Error::Overloaded) before any work
//! happens, so shedding order is a pure function of the arrival order.
//! Admitted requests with no explicit budget get one derived from the
//! configured **deadline**: the deadline's byte allowance under the storage
//! cost model, divided by the series size, becomes a raw-read
//! [`Budget`](hydra_core::Budget) — a late query degrades to a best-so-far
//! answer tagged [`Guarantee::Truncated`](hydra_core::Guarantee) instead of
//! timing out. The request future then consults the **answer cache** (keyed
//! on dataset fingerprint × canonical query hash × mode) and on a miss
//! scatters one task per shard onto the executor, gathers in shard order,
//! and merges via [`merge_shard_answers`] — the exact per-shard calls and
//! merge of the serial [`scatter_gather`] reference, so the pipeline's
//! answers are bit-identical to it.

use crate::cache::{AnswerCache, CacheKey, CacheStats, CachedAnswer};
use crate::executor::Executor;
use crate::resilience::{ResilienceConfig, ShardHealth, ShardHealthReport};
use crate::shard::{merge_quorum, scatter_gather, ShardEngine};
use hydra_core::{
    AnswerMode, AnswerSet, Budget, Dataset, EngineAnswer, Error, Guarantee, Query, QueryEngine,
    QueryStats, Result,
};
use hydra_storage::{partition_dataset, snapshot, CostModel, DatasetStore};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Number of engine shards the dataset is partitioned over (clamped to
    /// the dataset size; ≥ 1).
    pub shards: usize,
    /// Admission limit: the maximum number of requests in flight before
    /// submissions shed with [`Error::Overloaded`].
    pub queue_capacity: usize,
    /// Answer-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Worker threads driving the executor in [`QueryService::drive`]; 1 is
    /// the deterministic single-threaded mode.
    pub worker_threads: usize,
    /// Default request deadline; mapped onto a raw-read budget for queries
    /// that carry none. `None` leaves queries unbudgeted.
    pub deadline_ms: Option<u64>,
    /// The storage cost model the deadline mapping prices reads with.
    pub cost_model: CostModel,
    /// Partial-failure policy: quorum, per-shard circuit breakers, hedged
    /// retries, and the shard fault plan. The default is the strict
    /// pre-resilience behaviour (all shards must answer, nothing injected).
    pub resilience: ResilienceConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            queue_capacity: 64,
            cache_capacity: 256,
            worker_threads: 1,
            deadline_ms: None,
            cost_model: CostModel::ssd(),
            resilience: ResilienceConfig::default(),
        }
    }
}

/// Admission/completion counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted past the queue.
    pub accepted: u64,
    /// Requests shed with [`Error::Overloaded`].
    pub shed: u64,
    /// Requests that produced an answer (hit or cold).
    pub completed: u64,
}

/// One served answer: the merged scatter-gather result plus serving
/// provenance.
#[derive(Clone, Debug)]
pub struct ServeAnswer {
    /// The merged answer set.
    pub answers: AnswerSet,
    /// The merged guarantee.
    pub guarantee: Guarantee,
    /// Summed per-shard work counters (zero-cost for cache hits).
    pub stats: QueryStats,
    /// Engine wall time: the slowest shard of the cold run; zero for hits.
    pub wall_time: Duration,
    /// Max attempts over the shards of the cold run; zero for hits.
    pub attempts: u32,
    /// Whether the answer came from the cache.
    pub from_cache: bool,
}

/// Handle to a submitted request; poll it after driving the executor.
pub struct RequestHandle {
    join: crate::executor::JoinHandle<Result<ServeAnswer>>,
}

impl std::fmt::Debug for RequestHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestHandle")
            .field("finished", &self.join.is_finished())
            .finish()
    }
}

impl RequestHandle {
    /// Whether the request has finished (its result may already be taken).
    pub fn is_finished(&self) -> bool {
        self.join.is_finished()
    }

    /// Takes the result if the request has finished.
    pub fn try_take(&self) -> Option<Result<ServeAnswer>> {
        self.join.try_take()
    }
}

/// The shared service state request futures run against.
struct ServiceInner {
    shards: Vec<ShardEngine>,
    /// One health ledger (breaker + hedging window + counters) per shard,
    /// indexed like `shards`.
    health: Vec<Mutex<ShardHealth>>,
    executor: Executor,
    cache: Mutex<AnswerCache>,
    config: ServeConfig,
    dataset_fingerprint: u64,
    total_size: usize,
    series_bytes: u64,
    in_flight: AtomicUsize,
    accepted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
}

/// A sharded, cached, admission-controlled query service over one dataset.
/// Cloning shares all state (shards, cache, executor, counters).
#[derive(Clone)]
pub struct QueryService {
    inner: Arc<ServiceInner>,
}

impl QueryService {
    /// Builds a service: partitions `dataset` into `config.shards` contiguous
    /// shards, wraps each in its own instrumented store, and builds an engine
    /// per shard through `builder` (shard index, shard store) — the seam
    /// through which callers choose fresh builds or snapshot loads without
    /// this crate knowing any concrete method.
    pub fn build<F>(dataset: &Dataset, config: ServeConfig, builder: F) -> Result<QueryService>
    where
        F: Fn(usize, Arc<DatasetStore>) -> Result<QueryEngine>,
    {
        if config.queue_capacity == 0 {
            return Err(Error::invalid_parameter(
                "queue_capacity",
                "must admit at least one request",
            ));
        }
        let dataset_fingerprint = snapshot::dataset_fingerprint(dataset);
        let series_bytes = (dataset.series_length() * std::mem::size_of::<f32>()) as u64;
        let mut shards = Vec::new();
        let mut health = Vec::new();
        for (i, part) in partition_dataset(dataset, config.shards)?
            .into_iter()
            .enumerate()
        {
            // Each shard is an independent fault domain: its store carries
            // its own seeded fault stream, derived from the service-level
            // plan so one seed deterministically degrades shards
            // independently of each other (and of the shard count of other
            // runs).
            let store = Arc::new(
                DatasetStore::new(part.dataset)
                    .with_fault_plan(config.resilience.shard_faults.for_shard(i)),
            );
            let mut engine = builder(i, store)?;
            if let Some(retry) = config.resilience.retry {
                engine = engine.with_retry_policy(retry);
            }
            shards.push(ShardEngine {
                range: part.range,
                handle: engine.into_handle(),
            });
            health.push(Mutex::new(ShardHealth::new(
                config.resilience.breaker,
                config.resilience.hedge,
            )));
        }
        Ok(QueryService {
            inner: Arc::new(ServiceInner {
                shards,
                health,
                executor: Executor::new(),
                cache: Mutex::new(AnswerCache::new(config.cache_capacity)),
                config,
                dataset_fingerprint,
                total_size: dataset.len(),
                series_bytes,
                in_flight: AtomicUsize::new(0),
                accepted: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                completed: AtomicU64::new(0),
            }),
        })
    }

    /// Submits a query. Sheds synchronously with [`Error::Overloaded`] when
    /// `queue_capacity` requests are already in flight; otherwise attaches
    /// the deadline-derived budget (if the query carries none and a deadline
    /// is configured) and spawns the request future. Drive the executor
    /// ([`QueryService::drive`] / [`QueryService::run_one`]) to make
    /// progress.
    pub fn submit(&self, query: Query) -> Result<RequestHandle> {
        let inner = &self.inner;
        // Admission under a CAS loop: the slot is claimed atomically, so the
        // capacity is never oversubscribed even under concurrent submitters.
        let mut current = inner.in_flight.load(Ordering::Acquire);
        loop {
            if current >= inner.config.queue_capacity {
                inner.shed.fetch_add(1, Ordering::Relaxed);
                return Err(Error::Overloaded {
                    capacity: inner.config.queue_capacity,
                });
            }
            match inner.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(now) => current = now,
            }
        }
        inner.accepted.fetch_add(1, Ordering::Relaxed);
        let query = match (query.budget(), inner.config.deadline_ms) {
            (None, Some(deadline_ms)) => query.with_budget(Some(deadline_budget(
                deadline_ms,
                inner.series_bytes,
                &inner.config.cost_model,
            ))),
            _ => query,
        };
        let state = inner.clone();
        let join = inner.executor.spawn(async move {
            let result = process_request(&state, &query).await;
            if result.is_ok() {
                state.completed.fetch_add(1, Ordering::Relaxed);
            }
            state.in_flight.fetch_sub(1, Ordering::AcqRel);
            result
        });
        Ok(RequestHandle { join })
    }

    /// Drives the executor until no task is ready: single-threaded (the
    /// deterministic mode) for `worker_threads <= 1`, scoped workers
    /// otherwise.
    pub fn drive(&self) {
        let threads = self.inner.config.worker_threads;
        if threads > 1 {
            self.inner.executor.run_until_idle_threaded(threads);
        } else {
            self.inner.executor.run_until_idle();
        }
    }

    /// Polls one ready task; `false` when none is ready. The load
    /// generator's event loop interleaves this with its arrival schedule.
    pub fn run_one(&self) -> bool {
        self.inner.executor.run_one()
    }

    /// Submit-and-drive convenience: answers one query to completion.
    pub fn answer(&self, query: Query) -> Result<ServeAnswer> {
        let handle = self.submit(query)?;
        self.drive();
        match handle.try_take() {
            Some(result) => result,
            None => Err(Error::Internal(
                "request did not complete after an idle drive".to_string(),
            )),
        }
    }

    /// The serial scatter-gather reference over the same shards: the answer
    /// the async pipeline must (and does — see `tests/serve_agreement.rs`)
    /// reproduce bit-for-bit.
    pub fn reference_answer(&self, query: &Query) -> Result<EngineAnswer> {
        scatter_gather(&self.inner.shards, self.inner.total_size, query)
    }

    /// The per-shard engines (ranges and handles), in shard order.
    pub fn shards(&self) -> &[ShardEngine] {
        &self.inner.shards
    }

    /// The total dataset size across all shards.
    pub fn dataset_size(&self) -> usize {
        self.inner.total_size
    }

    /// The served dataset's fingerprint (the cache-key component).
    pub fn dataset_fingerprint(&self) -> u64 {
        self.inner.dataset_fingerprint
    }

    /// Admission/completion counters.
    pub fn service_stats(&self) -> ServiceStats {
        ServiceStats {
            accepted: self.inner.accepted.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
        }
    }

    /// Answer-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.lock().stats()
    }

    /// Per-shard health snapshots (breaker state/trips, hedges, failures),
    /// in shard order.
    pub fn resilience_report(&self) -> Vec<ShardHealthReport> {
        self.inner
            .health
            .iter()
            .map(|h| h.lock().report())
            .collect()
    }

    /// Per-shard breaker state-transition traces, in shard order (empty
    /// traces when breaking is disabled). Part of the chaos determinism
    /// contract: same seed ⇒ identical traces.
    pub fn breaker_traces(&self) -> Vec<Vec<crate::breaker::BreakerEvent>> {
        self.inner
            .health
            .iter()
            .map(|h| {
                h.lock()
                    .breaker
                    .as_ref()
                    .map(|b| b.trace().to_vec())
                    .unwrap_or_default()
            })
            .collect()
    }

    /// Requests currently in flight (admitted, not yet completed).
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight.load(Ordering::Acquire)
    }
}

/// The cache key of a query against this service's dataset.
fn cache_key(inner: &ServiceInner, query: &Query) -> CacheKey {
    CacheKey {
        dataset_fingerprint: inner.dataset_fingerprint,
        query_hash: query.canonical_hash(),
        mode_tag: mode_tag(query.mode()),
    }
}

/// The coarse mode discriminant of a cache key.
fn mode_tag(mode: AnswerMode) -> u8 {
    match mode {
        AnswerMode::Exact => 0,
        AnswerMode::NgApproximate => 1,
        AnswerMode::EpsilonApproximate { .. } => 2,
        AnswerMode::DeltaEpsilon { .. } => 3,
    }
}

/// The strongest guarantee a cold run of `query` could earn: the mode's
/// nominal guarantee, weakened to a truncation requirement when the query is
/// budgeted (a budgeted run may stop early). This is the bar a cache entry
/// must meet to be served — an entry *below* it (e.g. a
/// [`Guarantee::Partial`] answer cached during an outage) is recomputed, not
/// replayed, so caching never launders a degraded answer into a full one.
fn attainable_guarantee(query: &Query) -> Guarantee {
    let nominal = match query.mode() {
        AnswerMode::Exact => Guarantee::Exact,
        AnswerMode::NgApproximate => Guarantee::None,
        AnswerMode::EpsilonApproximate { epsilon } => Guarantee::EpsilonBound { epsilon },
        AnswerMode::DeltaEpsilon { delta, epsilon } => {
            Guarantee::ProbabilisticEpsilonBound { delta, epsilon }
        }
    };
    if query.budget().is_some() && !matches!(nominal, Guarantee::None) {
        // Any complete or truncated same-budget answer qualifies; only
        // strictly-weaker tags (None, Partial) are rejected.
        Guarantee::Truncated {
            examined_fraction: 0.0,
        }
    } else {
        nominal
    }
}

/// One shard's dispatch: denied by its breaker, or in flight (primary plus
/// an optional hedge).
enum Dispatch {
    Denied,
    Flight {
        primary: crate::executor::JoinHandle<Result<EngineAnswer>>,
        hedge: Option<crate::executor::JoinHandle<Result<EngineAnswer>>>,
    },
}

/// One request: strength-gated cache lookup, then a breaker-gated,
/// optionally hedged scatter, a quorum-checked gather, and on total failure
/// a stale-but-honestly-tagged cache fallback.
async fn process_request(inner: &Arc<ServiceInner>, query: &Query) -> Result<ServeAnswer> {
    let key = cache_key(inner, query);
    let required = attainable_guarantee(query);
    if let Some(hit) = inner.cache.lock().get(&key, &required) {
        return Ok(ServeAnswer {
            answers: hit.answers,
            guarantee: hit.guarantee,
            stats: hit.stats,
            wall_time: Duration::ZERO,
            attempts: 0,
            from_cache: true,
        });
    }
    // Scatter: one executor task per shard, spawned before any is awaited so
    // a threaded drive can run them concurrently. Each shard's breaker rules
    // on admission first; a denied shard contributes a typed CircuitOpen
    // outcome without any engine work. A shard whose recent answers were
    // slow gets a hedge: a speculative clone submission running from a
    // shifted fault-attempt base (past the retry budget), so planned
    // transients that doom the primary are already cleared for it.
    let dispatches: Vec<_> = inner
        .shards
        .iter()
        .enumerate()
        .map(|(i, shard)| {
            let mut health = inner.health[i].lock();
            if !health.admit() {
                return (i, shard.range.clone(), Dispatch::Denied);
            }
            let hedging = health.should_hedge();
            if hedging {
                health.record_hedge_launched();
            }
            drop(health);
            let primary = {
                let shard = shard.clone();
                let query = query.clone();
                inner.executor.spawn(async move { shard.answer(&query) })
            };
            let hedge = hedging.then(|| {
                let handle = shard.handle.clone();
                let query = query.clone();
                let base = handle.retry_policy().max_attempts;
                inner
                    .executor
                    .spawn(async move { handle.answer_from_attempt(&query, base) })
            });
            (i, shard.range.clone(), Dispatch::Flight { primary, hedge })
        })
        .collect();
    // Gather in shard order: the merge input order — and therefore the merge
    // itself — is deterministic regardless of completion order, and shard
    // errors surface in shard order exactly like the serial reference. The
    // winner between a primary and its hedge is decided by task order, never
    // completion time: the primary wins whenever it succeeded, so fault-free
    // hedges never perturb answers or stats.
    let mut parts = Vec::with_capacity(dispatches.len());
    for (i, range, dispatch) in dispatches {
        let outcome: Result<EngineAnswer> = match dispatch {
            Dispatch::Denied => Err(Error::CircuitOpen { shard: i }),
            Dispatch::Flight { primary, hedge } => {
                let primary_result = primary.await;
                let hedge_result = match hedge {
                    Some(h) => Some(h.await),
                    None => None,
                };
                let mut health = inner.health[i].lock();
                let outcome = match (primary_result, hedge_result) {
                    (Ok(answer), _) => Ok(answer),
                    (Err(_), Some(Ok(answer))) => {
                        health.record_hedge_won();
                        Ok(answer)
                    }
                    (Err(e), _) => Err(e),
                };
                match &outcome {
                    Ok(answer) => {
                        let cost = inner
                            .config
                            .cost_model
                            .io_time(&answer.stats.io_snapshot())
                            .as_micros() as u64;
                        health.record_success(cost);
                    }
                    Err(_) => health.record_failure(),
                }
                outcome
            }
        };
        parts.push((range, outcome));
    }
    let k = query.k().unwrap_or(1);
    let shards_total = parts.len() as u32;
    match merge_quorum(k, inner.total_size, parts, inner.config.resilience.quorum) {
        Ok(out) => {
            // Full merges always cache (upgrading any degraded entry);
            // Partial merges cache only into a vacant slot — they must never
            // overwrite a stronger answer, and the strength-gated lookup
            // keeps them from impersonating one. They exist in the cache
            // purely as last-resort stale-fallback material.
            let full = out.shards_answered == out.shards_total;
            let mut cache = inner.cache.lock();
            if full || !cache.contains(&key) {
                cache.insert(
                    key,
                    CachedAnswer {
                        answers: out.merged.answers.clone(),
                        guarantee: out.merged.guarantee,
                        stats: out.merged.stats.clone(),
                    },
                );
            }
            drop(cache);
            Ok(ServeAnswer {
                answers: out.merged.answers,
                guarantee: out.merged.guarantee,
                stats: out.merged.stats,
                wall_time: out.merged.wall_time,
                attempts: out.merged.attempts,
                from_cache: false,
            })
        }
        Err(e) => {
            // Quorum failed. Last resort: serve a stale cached answer for
            // this exact key, re-tagged as a zero-shard partial so the
            // degradation is visible — never silently, never untagged.
            if let Some(stale) = inner.cache.lock().get_any(&key) {
                let guarantee = Guarantee::partial(0, shards_total.max(1), stale.guarantee);
                return Ok(ServeAnswer {
                    answers: stale.answers.with_guarantee(guarantee),
                    guarantee,
                    stats: stale.stats,
                    wall_time: Duration::ZERO,
                    attempts: 0,
                    from_cache: true,
                });
            }
            Err(e)
        }
    }
}

/// Maps a deadline onto a raw-read budget under a storage cost model: the
/// bytes the model's sequential bandwidth delivers within the deadline,
/// divided by the series size, clamped to ≥ 1 read (the budget contract
/// never returns an empty answer). Each shard receives the full budget —
/// shards are independent stores scanned in parallel, so the deadline bounds
/// each shard's own I/O, not the sum.
pub fn deadline_budget(deadline_ms: u64, series_bytes: u64, model: &CostModel) -> Budget {
    let deadline_secs = deadline_ms as f64 / 1000.0;
    let bytes = deadline_secs * model.sequential_bytes_per_sec;
    let reads = (bytes / series_bytes.max(1) as f64).floor() as u64;
    Budget::raw_reads(reads.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::{BreakerConfig, BreakerState};
    use crate::resilience::QuorumPolicy;
    use hydra_core::{AnsweringMethod, KnnHeap, MethodDescriptor, Series};
    use std::sync::atomic::AtomicU64;

    /// A store-reading brute-force scan, so shard answers flow through the
    /// real counted-I/O path.
    struct StoreScan {
        store: Arc<DatasetStore>,
    }

    impl AnsweringMethod for StoreScan {
        fn descriptor(&self) -> MethodDescriptor {
            MethodDescriptor {
                name: "StoreScan",
                representation: "raw",
                is_index: false,
                modes: hydra_core::ModeCapabilities::exact_only(),
            }
        }

        fn answer(&self, query: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
            let mut heap = KnnHeap::new(query.k().unwrap_or(1));
            for i in 0..self.store.len() {
                let s = self.store.read_series(i);
                stats.record_raw_series_examined(1);
                heap.offer(i, hydra_core::euclidean(query.values(), s.values()));
            }
            Ok(heap.into_answer_set())
        }
    }

    /// A scan that starts failing after `fail_from` calls (0 = always
    /// fails), for exercising the degraded paths deterministically.
    struct FlakyScan {
        store: Arc<DatasetStore>,
        fail_from: u64,
        calls: AtomicU64,
    }

    impl AnsweringMethod for FlakyScan {
        fn descriptor(&self) -> MethodDescriptor {
            MethodDescriptor {
                name: "FlakyScan",
                representation: "raw",
                is_index: false,
                modes: hydra_core::ModeCapabilities::exact_only(),
            }
        }

        fn answer(&self, query: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
            if self.calls.fetch_add(1, Ordering::Relaxed) >= self.fail_from {
                return Err(Error::EmptyDataset);
            }
            let mut heap = KnnHeap::new(query.k().unwrap_or(1));
            for i in 0..self.store.len() {
                let s = self.store.read_series(i);
                stats.record_raw_series_examined(1);
                heap.offer(i, hydra_core::euclidean(query.values(), s.values()));
            }
            Ok(heap.into_answer_set())
        }
    }

    /// A two-shard service whose shard 1 fails from its `fail_from`-th call.
    fn degraded_service(config: ServeConfig, fail_from: &[u64]) -> QueryService {
        let fail_from = fail_from.to_vec();
        QueryService::build(&dataset(24), config, move |i, store| {
            let size = store.len();
            Ok(QueryEngine::new(
                Box::new(FlakyScan {
                    store: store.clone(),
                    fail_from: fail_from[i],
                    calls: AtomicU64::new(0),
                }),
                size,
            )
            .with_io_source(store))
        })
        .expect("service builds")
    }

    fn dataset(len: usize) -> Dataset {
        let values: Vec<f32> = (0..len * 4).map(|v| (v % 17) as f32).collect();
        Dataset::from_flat(values, 4)
    }

    fn service(config: ServeConfig) -> QueryService {
        QueryService::build(&dataset(24), config, |_, store| {
            let size = store.len();
            Ok(QueryEngine::new(
                Box::new(StoreScan {
                    store: store.clone(),
                }),
                size,
            )
            .with_io_source(store))
        })
        .expect("service builds")
    }

    fn query(v: f32, k: usize) -> Query {
        Query::knn(Series::new(vec![v, v, v, v]), k)
    }

    #[test]
    fn sharded_service_matches_the_serial_reference() {
        for shards in [1, 2, 4] {
            let svc = service(ServeConfig {
                shards,
                cache_capacity: 0,
                ..ServeConfig::default()
            });
            assert_eq!(svc.shards().len(), shards);
            for k in [1, 3, 10] {
                let q = query(3.0, k);
                let reference = svc.reference_answer(&q).unwrap();
                let served = svc.answer(q).unwrap();
                assert_eq!(served.answers, reference.answers);
                assert_eq!(served.guarantee, reference.guarantee);
                assert_eq!(served.stats, reference.stats);
                assert!(!served.from_cache);
            }
        }
    }

    #[test]
    fn cache_hits_are_bit_identical_to_cold_answers() {
        let svc = service(ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        });
        let cold = svc.answer(query(5.0, 3)).unwrap();
        assert!(!cold.from_cache);
        let hit = svc.answer(query(5.0, 3)).unwrap();
        assert!(hit.from_cache);
        assert_eq!(hit.answers, cold.answers);
        assert_eq!(hit.guarantee, cold.guarantee);
        assert_eq!(hit.stats, cold.stats);
        assert_eq!(svc.cache_stats().hits, 1);
        assert_eq!(svc.cache_stats().misses, 1);

        // A different k (or mode) is a different key, not a stale hit.
        let other = svc.answer(query(5.0, 4)).unwrap();
        assert!(!other.from_cache);
    }

    #[test]
    fn overload_sheds_synchronously_and_in_arrival_order() {
        let svc = service(ServeConfig {
            queue_capacity: 2,
            ..ServeConfig::default()
        });
        // Submit without driving: the first two are admitted, the rest shed.
        let h1 = svc.submit(query(1.0, 1)).unwrap();
        let h2 = svc.submit(query(2.0, 1)).unwrap();
        for v in [3.0, 4.0, 5.0] {
            match svc.submit(query(v, 1)) {
                Err(Error::Overloaded { capacity }) => assert_eq!(capacity, 2),
                other => panic!("expected Overloaded, got {other:?}"),
            }
        }
        assert_eq!(svc.in_flight(), 2);
        svc.drive();
        assert!(h1.try_take().unwrap().is_ok());
        assert!(h2.try_take().unwrap().is_ok());
        assert_eq!(svc.in_flight(), 0);
        let stats = svc.service_stats();
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.shed, 3);
        assert_eq!(stats.completed, 2);
        // Capacity freed: submissions are admitted again.
        assert!(svc.answer(query(6.0, 1)).is_ok());
    }

    #[test]
    fn deadline_budget_prices_reads_under_the_cost_model() {
        let model = CostModel::ssd();
        let b = deadline_budget(1000, 4096, &model);
        let expected = (model.sequential_bytes_per_sec / 4096.0).floor() as u64;
        assert_eq!(b.limit(), expected);
        // A vanishing deadline still buys one read: the budget contract
        // never returns an empty answer.
        assert_eq!(deadline_budget(0, 4096, &model).limit(), 1);
    }

    #[test]
    fn zero_capacity_queue_is_rejected_at_build_time() {
        let err = QueryService::build(
            &dataset(8),
            ServeConfig {
                queue_capacity: 0,
                ..ServeConfig::default()
            },
            |_, store| {
                let size = store.len();
                Ok(QueryEngine::new(Box::new(StoreScan { store }), size))
            },
        );
        assert!(matches!(err, Err(Error::InvalidParameter { .. })));
    }

    #[test]
    fn threaded_drive_returns_the_same_answers() {
        let single = service(ServeConfig {
            shards: 4,
            cache_capacity: 0,
            worker_threads: 1,
            ..ServeConfig::default()
        });
        let threaded = service(ServeConfig {
            shards: 4,
            cache_capacity: 0,
            worker_threads: 4,
            ..ServeConfig::default()
        });
        let queries: Vec<Query> = (0..6).map(|i| query(i as f32, 3)).collect();
        let expected: Vec<_> = queries
            .iter()
            .map(|q| single.answer(q.clone()).unwrap())
            .collect();
        let handles: Vec<_> = queries
            .iter()
            .map(|q| threaded.submit(q.clone()).unwrap())
            .collect();
        threaded.drive();
        for (h, e) in handles.iter().zip(&expected) {
            let got = h.try_take().unwrap().unwrap();
            assert_eq!(got.answers, e.answers);
            assert_eq!(got.stats, e.stats);
        }
    }

    const NEVER: u64 = u64::MAX;

    #[test]
    fn all_shards_quorum_propagates_a_failing_shard() {
        let svc = degraded_service(
            ServeConfig {
                shards: 2,
                cache_capacity: 0,
                ..ServeConfig::default()
            },
            &[NEVER, 0],
        );
        match svc.answer(query(3.0, 2)) {
            Err(Error::EmptyDataset) => {}
            other => panic!("expected the shard error verbatim, got {other:?}"),
        }
        let report = svc.resilience_report();
        assert_eq!(report[0].successes, 1);
        assert_eq!(report[1].failures, 1);
    }

    #[test]
    fn met_quorum_serves_partial_tagged_survivors() {
        let svc = degraded_service(
            ServeConfig {
                shards: 2,
                cache_capacity: 0,
                resilience: ResilienceConfig {
                    quorum: QuorumPolicy::BestEffort,
                    ..ResilienceConfig::default()
                },
                ..ServeConfig::default()
            },
            &[NEVER, 0],
        );
        let healthy = degraded_service(
            ServeConfig {
                shards: 2,
                cache_capacity: 0,
                ..ServeConfig::default()
            },
            &[NEVER, NEVER],
        );
        let degraded = svc.answer(query(3.0, 3)).unwrap();
        match degraded.guarantee {
            Guarantee::Partial {
                shards_answered: 1,
                shards_total: 2,
                inner,
            } => assert_eq!(Guarantee::from(inner), Guarantee::Exact),
            other => panic!("expected Partial 1/2, got {other:?}"),
        }
        assert!(!degraded.from_cache);
        // The survivors' answers are the healthy shard 0's k nearest: every
        // served id lies in shard 0's range.
        let shard0 = svc.shards()[0].range.clone();
        for a in degraded.answers.iter() {
            assert!(shard0.contains(&a.id), "id {} outside shard 0", a.id);
        }
        // And they agree with a healthy run's shard-0 candidates.
        let full = healthy.answer(query(3.0, 3)).unwrap();
        let full_shard0: Vec<usize> = full
            .answers
            .iter()
            .map(|a| a.id)
            .filter(|id| shard0.contains(id))
            .collect();
        for id in &full_shard0 {
            assert!(degraded.answers.iter().any(|a| a.id == *id));
        }
    }

    #[test]
    fn partial_answers_never_impersonate_full_ones_in_the_cache() {
        // Shard 1 always fails: every merge is Partial. With caching on,
        // the Partial entry must not be replayed as a full answer.
        let svc = degraded_service(
            ServeConfig {
                shards: 2,
                resilience: ResilienceConfig {
                    quorum: QuorumPolicy::BestEffort,
                    ..ResilienceConfig::default()
                },
                ..ServeConfig::default()
            },
            &[NEVER, 0],
        );
        let first = svc.answer(query(3.0, 2)).unwrap();
        assert!(matches!(first.guarantee, Guarantee::Partial { .. }));
        let second = svc.answer(query(3.0, 2)).unwrap();
        assert!(
            !second.from_cache,
            "the Partial entry is below the attainable guarantee: recomputed"
        );
        assert!(matches!(second.guarantee, Guarantee::Partial { .. }));
    }

    #[test]
    fn stale_cache_fallback_serves_tagged_when_quorum_fails_entirely() {
        // Shard 0 answers once then fails; shard 1 always fails.
        let svc = degraded_service(
            ServeConfig {
                shards: 2,
                resilience: ResilienceConfig {
                    quorum: QuorumPolicy::BestEffort,
                    ..ResilienceConfig::default()
                },
                ..ServeConfig::default()
            },
            &[1, 0],
        );
        let first = svc.answer(query(3.0, 2)).unwrap();
        assert!(matches!(
            first.guarantee,
            Guarantee::Partial {
                shards_answered: 1,
                ..
            }
        ));
        // Both shards now fail; quorum unmet — the cached partial is served
        // stale, re-tagged as a zero-shard partial.
        let stale = svc.answer(query(3.0, 2)).unwrap();
        assert!(stale.from_cache);
        match stale.guarantee {
            Guarantee::Partial {
                shards_answered: 0,
                shards_total: 2,
                ..
            } => {}
            other => panic!("expected zero-shard Partial, got {other:?}"),
        }
        assert_eq!(stale.answers.answers().len(), first.answers.answers().len());
        // A query never cached has nothing to fall back on: typed error.
        match svc.answer(query(9.0, 2)) {
            Err(Error::EmptyDataset) => {}
            other => panic!("expected the shard error, got {other:?}"),
        }
    }

    #[test]
    fn breaker_trips_after_threshold_and_rejects_with_circuit_open() {
        let svc = degraded_service(
            ServeConfig {
                shards: 2,
                cache_capacity: 0,
                resilience: ResilienceConfig {
                    quorum: QuorumPolicy::BestEffort,
                    breaker: Some(BreakerConfig {
                        failure_threshold: 2,
                        open_duration: 1_000_000_000,
                        failure_charge: 1,
                        denied_charge: 1,
                    }),
                    ..ResilienceConfig::default()
                },
                ..ServeConfig::default()
            },
            &[NEVER, 0],
        );
        for i in 0..4 {
            svc.answer(query(i as f32, 1)).unwrap();
        }
        let report = svc.resilience_report();
        assert_eq!(
            report[1].failures, 2,
            "after two failures the breaker opens; later requests are denied"
        );
        assert_eq!(report[1].rejected, 2);
        assert_eq!(report[1].breaker_state, Some(BreakerState::Open));
        assert_eq!(report[1].breaker_opened, 1);
        assert_eq!(report[0].breaker_state, Some(BreakerState::Closed));
        assert_eq!(report[0].successes, 4, "the healthy shard is untouched");
        // The broken shard's denials are typed: under AllShards they would
        // surface as CircuitOpen.
        let strict = degraded_service(
            ServeConfig {
                shards: 2,
                cache_capacity: 0,
                resilience: ResilienceConfig {
                    breaker: Some(BreakerConfig {
                        failure_threshold: 1,
                        open_duration: 1_000_000_000,
                        failure_charge: 1,
                        denied_charge: 1,
                    }),
                    ..ResilienceConfig::default()
                },
                ..ServeConfig::default()
            },
            &[NEVER, 0],
        );
        assert!(strict.answer(query(0.0, 1)).is_err());
        match strict.answer(query(1.0, 1)) {
            Err(Error::CircuitOpen { shard: 1 }) => {}
            other => panic!("expected CircuitOpen for shard 1, got {other:?}"),
        }
    }

    #[test]
    fn breaker_traces_are_deterministic_across_identical_runs() {
        let run = || {
            let svc = degraded_service(
                ServeConfig {
                    shards: 2,
                    cache_capacity: 0,
                    resilience: ResilienceConfig {
                        quorum: QuorumPolicy::BestEffort,
                        breaker: Some(BreakerConfig {
                            failure_threshold: 2,
                            open_duration: 500,
                            failure_charge: 100,
                            denied_charge: 100,
                        }),
                        ..ResilienceConfig::default()
                    },
                    ..ServeConfig::default()
                },
                &[NEVER, 3],
            );
            for i in 0..12 {
                let _ = svc.answer(query(i as f32, 1));
            }
            (svc.breaker_traces(), svc.resilience_report())
        };
        assert_eq!(run(), run(), "same events ⇒ same traces and reports");
    }

    /// A scan that fails exactly on the listed call indices — for pinning
    /// the primary/hedge interleaving.
    struct CallFailScan {
        store: Arc<DatasetStore>,
        fail_calls: Vec<u64>,
        calls: AtomicU64,
    }

    impl AnsweringMethod for CallFailScan {
        fn descriptor(&self) -> MethodDescriptor {
            MethodDescriptor {
                name: "CallFailScan",
                representation: "raw",
                is_index: false,
                modes: hydra_core::ModeCapabilities::exact_only(),
            }
        }

        fn answer(&self, query: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
            let call = self.calls.fetch_add(1, Ordering::Relaxed);
            if self.fail_calls.contains(&call) {
                return Err(Error::EmptyDataset);
            }
            let mut heap = KnnHeap::new(query.k().unwrap_or(1));
            for i in 0..self.store.len() {
                let s = self.store.read_series(i);
                stats.record_raw_series_examined(1);
                heap.offer(i, hydra_core::euclidean(query.values(), s.values()));
            }
            Ok(heap.into_answer_set())
        }
    }

    #[test]
    fn a_hedge_rescues_a_failing_primary() {
        // One shard; call 0 (the warm-up request) succeeds, call 1 (the
        // second request's primary) fails, call 2 (its hedge) succeeds. The
        // hedge window is warm after one sample, so the second request
        // launches primary + hedge; the hedge's answer is served.
        let svc = QueryService::build(
            &dataset(24),
            ServeConfig {
                cache_capacity: 0,
                resilience: ResilienceConfig {
                    hedge: Some(crate::resilience::HedgeConfig {
                        quantile: 0.5,
                        window: 8,
                        min_samples: 1,
                    }),
                    ..ResilienceConfig::default()
                },
                ..ServeConfig::default()
            },
            |_, store| {
                let size = store.len();
                Ok(QueryEngine::new(
                    Box::new(CallFailScan {
                        store: store.clone(),
                        fail_calls: vec![1],
                        calls: AtomicU64::new(0),
                    }),
                    size,
                )
                .with_io_source(store))
            },
        )
        .unwrap();
        let warm = svc.answer(query(1.0, 3)).unwrap();
        let rescued = svc.answer(query(2.0, 3)).unwrap();
        assert_eq!(rescued.guarantee, Guarantee::Exact, "the hedge answered");
        assert_eq!(
            rescued.answers.answers().len(),
            warm.answers.answers().len()
        );
        let report = svc.resilience_report();
        assert_eq!(report[0].hedges_launched, 1);
        assert_eq!(report[0].hedges_won, 1);
        assert_eq!(report[0].successes, 2);
        assert_eq!(report[0].failures, 0, "the rescued request is a success");
    }

    #[test]
    fn a_winning_primary_ignores_its_hedge() {
        // No failures at all: hedges may launch, but the primary's answer is
        // always served — hedging never perturbs fault-free results.
        let hedged = QueryService::build(
            &dataset(24),
            ServeConfig {
                cache_capacity: 0,
                resilience: ResilienceConfig {
                    hedge: Some(crate::resilience::HedgeConfig {
                        quantile: 0.5,
                        window: 8,
                        min_samples: 1,
                    }),
                    ..ResilienceConfig::default()
                },
                ..ServeConfig::default()
            },
            |_, store| {
                let size = store.len();
                Ok(QueryEngine::new(
                    Box::new(StoreScan {
                        store: store.clone(),
                    }),
                    size,
                )
                .with_io_source(store))
            },
        )
        .unwrap();
        let plain = service(ServeConfig {
            cache_capacity: 0,
            ..ServeConfig::default()
        });
        for i in 0..4 {
            let h = hedged.answer(query(i as f32, 3)).unwrap();
            let p = plain.answer(query(i as f32, 3)).unwrap();
            assert_eq!(h.answers, p.answers);
            assert_eq!(h.guarantee, p.guarantee);
            assert_eq!(h.stats, p.stats, "per-query counters are untouched");
        }
        let report = hedged.resilience_report();
        assert!(report[0].hedges_launched >= 1, "hedges did launch");
        assert_eq!(report[0].hedges_won, 0, "but never won");
    }

    #[test]
    fn default_resilience_keeps_the_strict_service_bit_identical() {
        // The agreement contract: with ResilienceConfig::default() the
        // pipeline is exactly the pre-resilience one.
        let svc = service(ServeConfig {
            shards: 4,
            cache_capacity: 0,
            ..ServeConfig::default()
        });
        let q = query(3.0, 5);
        let reference = svc.reference_answer(&q).unwrap();
        let served = svc.answer(q).unwrap();
        assert_eq!(served.answers, reference.answers);
        assert_eq!(served.guarantee, reference.guarantee);
        assert_eq!(served.stats, reference.stats);
        for r in svc.resilience_report() {
            assert_eq!(r.breaker_state, None);
            assert_eq!(r.hedges_launched, 0);
            assert_eq!(r.rejected, 0);
        }
    }
}

//! A vendored-minimal async executor with a deterministic task queue.
//!
//! The registry is offline, so the serving layer cannot pull in tokio;
//! instead it runs its request futures on this ~200-line executor. The
//! design constraints, in order:
//!
//! * **Determinism.** The ready queue is a FIFO `VecDeque`: tasks run in the
//!   order they became ready, so a single-threaded drive of the executor is a
//!   pure function of the spawn/wake order. No clocks, no timers, no
//!   randomized work stealing — time-based scheduling lives *outside* the
//!   executor (the service maps deadlines onto I/O budgets instead, and the
//!   load generator owns its own clock).
//! * **Cooperative tasks.** A task is a boxed future polled to completion;
//!   wakers re-enqueue their task at the back of the queue. An atomic
//!   `queued` flag per task coalesces concurrent wakes so a task sits in the
//!   queue at most once.
//! * **Two drive modes.** [`Executor::run_until_idle`] drains the queue on
//!   the calling thread (the deterministic mode the agreement tests use, and
//!   the default); [`Executor::run_until_idle_threaded`] drains it on N
//!   scoped workers for throughput, at the cost of completion-order (never
//!   answer-value) determinism. [`Executor::run_one`] polls a single task,
//!   letting an event loop interleave its own work (the load generator's
//!   open-loop arrival schedule) with task progress.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::task::{Context, Poll, Wake, Waker};

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// The shared executor state: the FIFO ready queue.
struct Inner {
    queue: Mutex<VecDeque<Arc<Task>>>,
}

/// One spawned task: its future plus the queue it re-enqueues into on wake.
struct Task {
    inner: Weak<Inner>,
    future: Mutex<Option<BoxFuture>>,
    /// Whether the task is already sitting in the ready queue (or about to
    /// be polled); coalesces concurrent wakes to at most one queue entry.
    queued: AtomicBool,
}

impl Task {
    /// Enqueues the task unless it is already queued (or its executor is
    /// gone).
    fn enqueue(self: &Arc<Self>) {
        if self.queued.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(inner) = self.inner.upgrade() {
            inner.queue.lock().push_back(self.clone());
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.enqueue();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.enqueue();
    }
}

/// The result slot a [`JoinHandle`] awaits on.
struct JoinState<T> {
    value: Option<T>,
    waker: Option<Waker>,
    finished: bool,
}

/// Awaitable (or pollable) handle to a spawned task's result.
pub struct JoinHandle<T> {
    state: Arc<Mutex<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Whether the task has finished (its value may already be taken).
    pub fn is_finished(&self) -> bool {
        self.state.lock().finished
    }

    /// Takes the result if the task has finished, without blocking.
    pub fn try_take(&self) -> Option<T> {
        self.state.lock().value.take()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut state = self.state.lock();
        if let Some(value) = state.value.take() {
            return Poll::Ready(value);
        }
        // Re-registering on every poll keeps the latest waker current.
        state.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// The deterministic FIFO executor. Cheap to clone (a handle onto the shared
/// queue); spawning from inside a task works through the same handle.
#[derive(Clone)]
pub struct Executor {
    inner: Arc<Inner>,
}

impl Executor {
    /// A fresh executor with an empty ready queue.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                queue: Mutex::new(VecDeque::new()),
            }),
        }
    }

    /// Spawns a future onto the ready queue and returns a handle to its
    /// result. The task runs when the executor is driven — spawning alone
    /// performs no work.
    pub fn spawn<T, F>(&self, future: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: Future<Output = T> + Send + 'static,
    {
        let state = Arc::new(Mutex::new(JoinState {
            value: None,
            waker: None,
            finished: false,
        }));
        let handle_state = state.clone();
        let wrapped = async move {
            let value = future.await;
            let waker = {
                let mut s = state.lock();
                s.value = Some(value);
                s.finished = true;
                s.waker.take()
            };
            if let Some(waker) = waker {
                waker.wake();
            }
        };
        let task = Arc::new(Task {
            inner: Arc::downgrade(&self.inner),
            future: Mutex::new(Some(Box::pin(wrapped))),
            // Spawned directly into the queue below, so born queued.
            queued: AtomicBool::new(true),
        });
        self.inner.queue.lock().push_back(task);
        JoinHandle {
            state: handle_state,
        }
    }

    /// Pops and polls one ready task on the calling thread. Returns `false`
    /// when the queue was empty (tasks may still be pending on wakers held
    /// elsewhere).
    pub fn run_one(&self) -> bool {
        let task = match self.inner.queue.lock().pop_front() {
            Some(task) => task,
            None => return false,
        };
        // Clear `queued` *before* polling: a wake arriving during the poll
        // (from another thread) must be able to re-enqueue the task.
        task.queued.store(false, Ordering::Release);
        let waker = Waker::from(task.clone());
        let mut cx = Context::from_waker(&waker);
        // Holding the future's lock across the poll is safe: a concurrent
        // wake only touches the queue, never the future slot.
        let mut slot = task.future.lock();
        if let Some(future) = slot.as_mut() {
            if future.as_mut().poll(&mut cx).is_ready() {
                *slot = None;
            }
        }
        true
    }

    /// Drains the ready queue on the calling thread, running every task that
    /// is or becomes ready, in FIFO order, until none is. This is the
    /// deterministic drive mode: for a fixed spawn/wake script the poll
    /// sequence is always the same.
    pub fn run_until_idle(&self) {
        while self.run_one() {}
    }

    /// Drains the ready queue on `threads` scoped worker threads. Workers
    /// exit when the queue is empty and no task is mid-poll (a mid-poll task
    /// may re-enqueue itself or others). Falls back to the single-threaded
    /// drain for `threads <= 1`.
    ///
    /// Task *values* stay deterministic — each future computes the same
    /// result wherever it runs — but completion order does not; callers that
    /// need ordered results await join handles in submission order.
    pub fn run_until_idle_threaded(&self, threads: usize) {
        if threads <= 1 {
            return self.run_until_idle();
        }
        let in_flight = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let task = {
                        let mut queue = self.inner.queue.lock();
                        match queue.pop_front() {
                            Some(task) => {
                                // Claimed under the queue lock so the
                                // empty+idle exit check below cannot race
                                // past a just-popped task.
                                in_flight.fetch_add(1, Ordering::AcqRel);
                                task
                            }
                            None => {
                                if in_flight.load(Ordering::Acquire) == 0 {
                                    return;
                                }
                                drop(queue);
                                std::thread::yield_now();
                                continue;
                            }
                        }
                    };
                    task.queued.store(false, Ordering::Release);
                    let waker = Waker::from(task.clone());
                    let mut cx = Context::from_waker(&waker);
                    let mut slot = task.future.lock();
                    if let Some(future) = slot.as_mut() {
                        if future.as_mut().poll(&mut cx).is_ready() {
                            *slot = None;
                        }
                    }
                    drop(slot);
                    in_flight.fetch_sub(1, Ordering::AcqRel);
                });
            }
        });
    }

    /// The number of tasks currently in the ready queue.
    pub fn ready_tasks(&self) -> usize {
        self.inner.queue.lock().len()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

/// A future that suspends once and re-enqueues its task at the back of the
/// FIFO queue: the executor's cooperative yield point. Scatter stages use it
/// to get every shard task *spawned* before the first one runs to completion.
pub struct YieldNow {
    yielded: bool,
}

/// Suspends the current task once, re-queueing it behind already-ready tasks.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawned_tasks_run_in_fifo_order() {
        let ex = Executor::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..5 {
            let order = order.clone();
            ex.spawn(async move {
                order.lock().push(i);
            });
        }
        assert_eq!(ex.ready_tasks(), 5);
        ex.run_until_idle();
        assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
        assert_eq!(ex.ready_tasks(), 0);
    }

    #[test]
    fn join_handles_deliver_values_and_support_polling() {
        let ex = Executor::new();
        let h = ex.spawn(async { 6 * 7 });
        assert!(!h.is_finished());
        ex.run_until_idle();
        assert!(h.is_finished());
        assert_eq!(h.try_take(), Some(42));
        assert_eq!(h.try_take(), None, "a value is taken once");
    }

    #[test]
    fn awaiting_a_join_handle_wakes_the_awaiter() {
        let ex = Executor::new();
        let inner = ex.spawn(async { "done" });
        // An extra yield keeps the outer future a genuine two-step state
        // machine (and quiets clippy's redundant-async lint).
        let outer = ex.spawn(async move {
            yield_now().await;
            inner.await
        });
        ex.run_until_idle();
        // `outer` polled first (FIFO), parked on `inner`'s waker, and was
        // woken when `inner` finished — all inside one drain.
        assert_eq!(outer.try_take(), Some("done"));
    }

    #[test]
    fn yield_now_requeues_behind_ready_tasks() {
        let ex = Executor::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        {
            let order = order.clone();
            ex.spawn(async move {
                order.lock().push("a-before");
                yield_now().await;
                order.lock().push("a-after");
            });
        }
        {
            let order = order.clone();
            ex.spawn(async move {
                order.lock().push("b");
            });
        }
        ex.run_until_idle();
        assert_eq!(*order.lock(), vec!["a-before", "b", "a-after"]);
    }

    #[test]
    fn run_one_interleaves_with_caller_work() {
        let ex = Executor::new();
        let h1 = ex.spawn(async { 1 });
        let h2 = ex.spawn(async { 2 });
        assert!(ex.run_one());
        assert!(h1.is_finished());
        assert!(!h2.is_finished());
        assert!(ex.run_one());
        assert!(h2.is_finished());
        assert!(!ex.run_one(), "queue drained");
    }

    #[test]
    fn threaded_drain_completes_all_tasks() {
        let ex = Executor::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..32)
            .map(|i| {
                let counter = counter.clone();
                ex.spawn(async move {
                    yield_now().await;
                    counter.fetch_add(1, Ordering::Relaxed);
                    i
                })
            })
            .collect();
        ex.run_until_idle_threaded(4);
        assert_eq!(counter.load(Ordering::Relaxed), 32);
        // Values are deterministic even though completion order is not.
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.try_take(), Some(i));
        }
    }

    #[test]
    fn concurrent_wakes_coalesce_to_one_queue_entry() {
        let ex = Executor::new();
        let h = ex.spawn(async {});
        // The spawned task is queued once; waking it again must not enqueue
        // a duplicate.
        let task = ex.inner.queue.lock().front().cloned().unwrap();
        task.enqueue();
        task.enqueue();
        assert_eq!(ex.ready_tasks(), 1);
        ex.run_until_idle();
        assert!(h.is_finished());
    }
}

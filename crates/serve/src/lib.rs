//! # hydra-serve
//!
//! A sharded, async, cached query-serving service layer over the hydra
//! engines: the front-end that turns the suite's single-process library
//! calls into a request-serving system.
//!
//! The crate stacks four small layers:
//!
//! * [`executor`] — a vendored-minimal async executor with a deterministic
//!   FIFO task queue (the registry is offline, so no tokio). Single-threaded
//!   drives are pure functions of the spawn/wake order; an optional scoped
//!   thread pool trades completion-order determinism for throughput.
//! * [`shard`] — per-shard [`EngineHandle`](hydra_core::EngineHandle)s over
//!   contiguous [`partition_dataset`](hydra_storage::partition_dataset)
//!   partitions, plus the scatter-gather k-NN merge. Exact k-NN is
//!   partition-decomposable, so the merged answer is bit-identical to a
//!   single unsharded engine; the serial [`scatter_gather`] reference defines
//!   the contract the async pipeline is tested against for every mode.
//! * [`cache`] — a deterministic (BTreeMap + FIFO eviction) answer cache
//!   keyed on (dataset fingerprint, canonical query hash, mode), with
//!   hit/miss/eviction counters.
//! * [`service`] — [`QueryService`]: admission control that sheds overload
//!   synchronously with typed [`Error::Overloaded`](hydra_core::Error)
//!   errors, deadline-to-[`Budget`](hydra_core::Budget) mapping so late
//!   queries degrade to [`Guarantee::Truncated`](hydra_core::Guarantee)
//!   instead of timing out, and the request pipeline gluing cache, scatter
//!   and gather onto the executor.
//! * [`breaker`] + [`resilience`] — partial-failure handling: each shard is
//!   an independent seeded fault domain
//!   ([`FaultPlan::for_shard`](hydra_storage::FaultPlan::for_shard)) guarded
//!   by a deterministic circuit breaker whose clock is simulated cost units
//!   (never wall time), hedged retries for shards whose recent answers were
//!   slow, and [`QuorumPolicy`]-governed degraded merges tagged
//!   [`Guarantee::Partial`](hydra_core::Guarantee) — same seed ⇒ same
//!   answers, same breaker traces. The default [`ResilienceConfig`] is
//!   bit-identical to the strict pre-resilience service.
//!
//! The service is method-agnostic: shard engines are built through a caller
//! closure (see [`QueryService::build`]), so any of the suite's ten methods —
//! fresh-built or snapshot-loaded — serves unchanged. The `bench_serve` bin
//! in `hydra-bench` drives open-loop arrival ladders against this crate.

// Every unsafe operation inside an `unsafe fn` must sit in its own
// `unsafe {}` block with a `// SAFETY:` comment (enforced by hydra-lint's
// `undocumented-unsafe` rule).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod breaker;
pub mod cache;
pub mod executor;
pub mod resilience;
pub mod service;
pub mod shard;

pub use breaker::{BreakerConfig, BreakerEvent, BreakerState, CircuitBreaker};
pub use cache::{AnswerCache, CacheKey, CacheStats, CachedAnswer};
pub use executor::{yield_now, Executor, JoinHandle};
pub use resilience::{HedgeConfig, QuorumPolicy, ResilienceConfig, ShardHealth, ShardHealthReport};
pub use service::{
    deadline_budget, QueryService, RequestHandle, ServeAnswer, ServeConfig, ServiceStats,
};
pub use shard::{merge_quorum, merge_shard_answers, scatter_gather, QuorumOutcome, ShardEngine};

//! The sharding layer: per-shard engines and the scatter-gather k-NN merge.
//!
//! Exact k-NN is partition-decomposable: the global k nearest neighbours of
//! a query are contained in the union of the per-partition k nearest
//! neighbours, so merging the shard answer sets by `(distance, id)` and
//! truncating to k reproduces the unsharded answer *bit-identically* —
//! distances are computed by the same kernels over the same series, ids are
//! remapped by adding the shard's range start, and the sort key is the same
//! total order [`AnswerSet::from_unsorted`] uses. The agreement tests
//! enforce this for every method at every shard count in exact mode, and
//! enforce shards=1 bit-identity (a degenerate merge) for every mode.
//!
//! Approximate modes stay *locally* honest under sharding: each shard's
//! guarantee holds over its partition, and the union of per-shard candidates
//! can only improve an approximate answer, so the merged set is tagged with
//! the shared per-shard guarantee. Budget-truncated shards merge to a
//! [`Guarantee::Truncated`] whose examined fraction is the summed per-shard
//! raw reads over the total dataset size.

use crate::resilience::QuorumPolicy;
use hydra_core::{
    Answer, AnswerSet, EngineAnswer, EngineHandle, Error, Guarantee, Query, QueryStats, Result,
};
use std::ops::Range;

/// One shard: a contiguous global id range and the engine over its
/// partition. Cloning shares the underlying immutable index.
#[derive(Clone, Debug)]
pub struct ShardEngine {
    /// The global series ids this shard owns.
    pub range: Range<usize>,
    /// The engine handle answering over the shard's partition (local ids
    /// `0..range.len()`).
    pub handle: EngineHandle,
}

impl ShardEngine {
    /// Answers a query over this shard, returning shard-local ids.
    pub fn answer(&self, query: &Query) -> Result<EngineAnswer> {
        self.handle.answer(query)
    }
}

/// Merges per-shard answers into the global answer.
///
/// `k` is the query's k (the merged set is truncated to it), `total_size`
/// the full dataset size (the denominator of merged truncation fractions).
/// A single part is returned verbatim apart from id remapping — which is the
/// identity for a shard rooted at 0 — so shards=1 is bit-identical to the
/// unsharded engine by construction.
pub fn merge_shard_answers(
    k: usize,
    total_size: usize,
    parts: Vec<(Range<usize>, EngineAnswer)>,
) -> EngineAnswer {
    debug_assert!(!parts.is_empty(), "merge requires at least one shard");
    let guarantee = merge_guarantees(&parts, total_size);
    let mut merged: Vec<Answer> = Vec::new();
    let mut stats = QueryStats::default();
    let mut wall_time = std::time::Duration::ZERO;
    let mut attempts = 0u32;
    for (range, part) in &parts {
        for a in part.answers.iter() {
            merged.push(Answer::new(range.start + a.id, a.distance));
        }
        stats.merge(&part.stats);
        // The scatter ran the shards concurrently; the gather completes when
        // the slowest shard does.
        wall_time = wall_time.max(part.wall_time);
        attempts = attempts.max(part.attempts);
    }
    merged.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
    merged.truncate(k);
    EngineAnswer {
        answers: AnswerSet::from_unsorted(merged).with_guarantee(guarantee),
        guarantee,
        stats,
        wall_time,
        attempts,
    }
}

/// The guarantee of a merged answer.
///
/// * One part: its guarantee, verbatim (the shards=1 identity).
/// * Any part truncated by its budget: the merge is truncated too, with the
///   summed raw reads over the total dataset size as the examined fraction.
/// * All parts sharing one guarantee: that guarantee — each holds over its
///   partition, and a union of per-partition candidates only tightens a
///   k-NN answer.
/// * Mixed guarantees (unreachable under one mode over one partitioner):
///   conservatively [`Guarantee::None`].
fn merge_guarantees(parts: &[(Range<usize>, EngineAnswer)], total_size: usize) -> Guarantee {
    if parts.len() == 1 {
        return parts[0].1.guarantee;
    }
    if parts
        .iter()
        .any(|(_, p)| matches!(p.guarantee, Guarantee::Truncated { .. }))
    {
        let examined: u64 = parts.iter().map(|(_, p)| p.stats.raw_series_examined).sum();
        return Guarantee::Truncated {
            examined_fraction: examined as f64 / total_size.max(1) as f64,
        };
    }
    let first = parts[0].1.guarantee;
    if parts.iter().all(|(_, p)| p.guarantee == first) {
        first
    } else {
        Guarantee::None
    }
}

/// A quorum merge outcome: the merged answer plus how many shards
/// contributed to it.
#[derive(Clone, Debug)]
pub struct QuorumOutcome {
    /// The merged (possibly [`Guarantee::Partial`]-tagged) answer.
    pub merged: EngineAnswer,
    /// Shards whose answers made it into the merge.
    pub shards_answered: u32,
    /// Shards scattered to.
    pub shards_total: u32,
}

/// Merges per-shard *outcomes* (answers or errors) under a quorum policy.
///
/// With every shard answering, this is exactly [`merge_shard_answers`] — the
/// bit-identity path the agreement tests pin. When shards failed:
///
/// * [`QuorumPolicy::AllShards`] (and any unmet quorum) fails the request
///   with the **first error in shard order**, matching the serial
///   reference's early return;
/// * a met quorum merges the survivors and tags the result
///   [`Guarantee::Partial`] over the merged guarantee — `k` nearest of the
///   answered partitions, honestly labelled with how much of the dataset
///   answered. The inner guarantee composes: a budget-truncated partial
///   merge is `Partial { inner: Truncated }`.
pub fn merge_quorum(
    k: usize,
    total_size: usize,
    parts: Vec<(Range<usize>, Result<EngineAnswer>)>,
    policy: QuorumPolicy,
) -> Result<QuorumOutcome> {
    let shards_total = parts.len() as u32;
    let mut answered = Vec::with_capacity(parts.len());
    let mut first_error = None;
    for (range, outcome) in parts {
        match outcome {
            Ok(part) => answered.push((range, part)),
            Err(e) => {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
        }
    }
    let shards_answered = answered.len() as u32;
    if (shards_answered as usize) < policy.required(shards_total as usize) {
        // Unmet quorum: fail exactly like the strict path — the first shard
        // error in shard order. (Unreachable without an error: a full gather
        // always meets any quorum.)
        return Err(first_error
            .unwrap_or_else(|| Error::Internal("quorum unmet without a shard error".to_string())));
    }
    let mut merged = merge_shard_answers(k, total_size, answered);
    if shards_answered < shards_total {
        let guarantee = Guarantee::partial(shards_answered, shards_total, merged.guarantee);
        merged.guarantee = guarantee;
        merged.answers = std::mem::take(&mut merged.answers).with_guarantee(guarantee);
    }
    Ok(QuorumOutcome {
        merged,
        shards_answered,
        shards_total,
    })
}

/// The serial scatter-gather reference: answers the query on every shard in
/// shard order on the calling thread, then merges. The async request
/// pipeline must agree with this bit-for-bit — it runs the same per-shard
/// calls and the same merge, only scheduled differently.
pub fn scatter_gather(
    shards: &[ShardEngine],
    total_size: usize,
    query: &Query,
) -> Result<EngineAnswer> {
    let k = query.k().unwrap_or(1);
    let mut parts = Vec::with_capacity(shards.len());
    for shard in shards {
        parts.push((shard.range.clone(), shard.answer(query)?));
    }
    Ok(merge_shard_answers(k, total_size, parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn part(
        range: Range<usize>,
        ids: &[(usize, f64)],
        guarantee: Guarantee,
    ) -> (Range<usize>, EngineAnswer) {
        let answers: Vec<Answer> = ids.iter().map(|&(id, d)| Answer::new(id, d)).collect();
        let mut stats = QueryStats::default();
        stats.record_raw_series_examined(ids.len() as u64);
        (
            range,
            EngineAnswer {
                answers: AnswerSet::from_unsorted(answers).with_guarantee(guarantee),
                guarantee,
                stats,
                wall_time: Duration::from_micros(10),
                attempts: 1,
            },
        )
    }

    #[test]
    fn merge_remaps_ids_sorts_and_truncates() {
        let parts = vec![
            part(0..3, &[(0, 2.0), (2, 5.0)], Guarantee::Exact),
            part(3..6, &[(1, 1.0), (2, 3.0)], Guarantee::Exact),
        ];
        let merged = merge_shard_answers(3, 6, parts);
        let ids: Vec<usize> = merged.answers.iter().map(|a| a.id).collect();
        // Global ids: shard 0 keeps 0 and 2; shard 1's local 1, 2 become 4, 5.
        assert_eq!(ids, vec![4, 0, 5], "sorted by distance, truncated to k=3");
        assert_eq!(merged.guarantee, Guarantee::Exact);
        assert_eq!(merged.stats.raw_series_examined, 4, "stats are summed");
        assert_eq!(
            merged.wall_time,
            Duration::from_micros(10),
            "max over shards"
        );
    }

    #[test]
    fn distance_ties_break_by_global_id() {
        let parts = vec![
            part(0..2, &[(1, 1.0)], Guarantee::Exact),
            part(2..4, &[(0, 1.0)], Guarantee::Exact),
        ];
        let merged = merge_shard_answers(2, 4, parts);
        let ids: Vec<usize> = merged.answers.iter().map(|a| a.id).collect();
        assert_eq!(ids, vec![1, 2], "equal distances order by global id");
    }

    #[test]
    fn single_part_guarantee_is_verbatim() {
        let g = Guarantee::Truncated {
            examined_fraction: 0.25,
        };
        let parts = vec![part(0..4, &[(0, 1.0)], g)];
        let merged = merge_shard_answers(1, 4, parts);
        assert_eq!(merged.guarantee, g, "degenerate merge preserves the tag");
    }

    #[test]
    fn any_truncated_shard_truncates_the_merge() {
        let parts = vec![
            part(0..4, &[(0, 1.0)], Guarantee::Exact),
            part(
                4..8,
                &[(0, 2.0)],
                Guarantee::Truncated {
                    examined_fraction: 0.25,
                },
            ),
        ];
        let merged = merge_shard_answers(2, 8, parts);
        match merged.guarantee {
            Guarantee::Truncated { examined_fraction } => {
                // 1 + 1 raw series examined over 8 total.
                assert!((examined_fraction - 0.25).abs() < 1e-12);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn shared_approximate_guarantees_survive_the_merge() {
        let g = Guarantee::EpsilonBound { epsilon: 0.1 };
        let parts = vec![part(0..2, &[(0, 1.0)], g), part(2..4, &[(0, 2.0)], g)];
        assert_eq!(merge_shard_answers(2, 4, parts).guarantee, g);

        let mixed = vec![
            part(0..2, &[(0, 1.0)], Guarantee::Exact),
            part(2..4, &[(0, 2.0)], Guarantee::None),
        ];
        assert_eq!(
            merge_shard_answers(2, 4, mixed).guarantee,
            Guarantee::None,
            "mixed guarantees degrade conservatively"
        );
    }

    fn failing(range: Range<usize>) -> (Range<usize>, hydra_core::Result<EngineAnswer>) {
        (range, Err(Error::EmptyDataset))
    }

    fn ok_part(
        range: Range<usize>,
        ids: &[(usize, f64)],
    ) -> (Range<usize>, hydra_core::Result<EngineAnswer>) {
        let (range, answer) = part(range, ids, Guarantee::Exact);
        (range, Ok(answer))
    }

    #[test]
    fn all_shards_quorum_surfaces_the_first_error_in_shard_order() {
        let parts = vec![
            ok_part(0..2, &[(0, 1.0)]),
            failing(2..4),
            (4..6, Err(Error::CircuitOpen { shard: 2 })),
        ];
        let err = merge_quorum(1, 6, parts, QuorumPolicy::AllShards).unwrap_err();
        assert!(
            matches!(err, Error::EmptyDataset),
            "shard 1's error wins over shard 2's, got {err:?}"
        );
    }

    #[test]
    fn full_gather_under_any_quorum_is_the_plain_merge() {
        for policy in [
            QuorumPolicy::AllShards,
            QuorumPolicy::AtLeast(1),
            QuorumPolicy::BestEffort,
        ] {
            let parts = vec![ok_part(0..2, &[(0, 2.0)]), ok_part(2..4, &[(1, 1.0)])];
            let out = merge_quorum(2, 4, parts, policy).unwrap();
            assert_eq!(out.shards_answered, 2);
            assert_eq!(out.shards_total, 2);
            assert_eq!(out.merged.guarantee, Guarantee::Exact, "no Partial tag");
            let ids: Vec<usize> = out.merged.answers.iter().map(|a| a.id).collect();
            assert_eq!(ids, vec![3, 0]);
        }
    }

    #[test]
    fn met_quorum_serves_the_survivors_tagged_partial() {
        let parts = vec![
            ok_part(0..2, &[(0, 2.0)]),
            failing(2..4),
            ok_part(4..6, &[(1, 1.0)]),
        ];
        let out = merge_quorum(2, 6, parts, QuorumPolicy::AtLeast(2)).unwrap();
        assert_eq!(out.shards_answered, 2);
        assert_eq!(out.shards_total, 3);
        match out.merged.guarantee {
            Guarantee::Partial {
                shards_answered: 2,
                shards_total: 3,
                ..
            } => {}
            other => panic!("expected Partial 2/3, got {other:?}"),
        }
        assert_eq!(
            out.merged.answers.guarantee(),
            out.merged.guarantee,
            "the answer set carries the Partial tag too"
        );
        let ids: Vec<usize> = out.merged.answers.iter().map(|a| a.id).collect();
        assert_eq!(ids, vec![5, 0], "survivors merge normally");
    }

    #[test]
    fn unmet_quorum_fails_with_the_first_shard_error() {
        let parts = vec![failing(0..2), ok_part(2..4, &[(0, 1.0)]), failing(4..6)];
        let err = merge_quorum(1, 6, parts, QuorumPolicy::AtLeast(2)).unwrap_err();
        assert!(matches!(err, Error::EmptyDataset));
    }

    #[test]
    fn best_effort_serves_a_single_survivor() {
        let parts = vec![failing(0..2), failing(2..4), ok_part(4..6, &[(0, 3.0)])];
        let out = merge_quorum(1, 6, parts, QuorumPolicy::BestEffort).unwrap();
        assert_eq!(out.shards_answered, 1);
        let ids: Vec<usize> = out.merged.answers.iter().map(|a| a.id).collect();
        assert_eq!(ids, vec![4]);
        match out.merged.answers.guarantee() {
            Guarantee::Partial {
                shards_answered: 1,
                shards_total: 3,
                inner,
            } => assert_eq!(Guarantee::from(inner), Guarantee::Exact),
            other => panic!("expected Partial 1/3, got {other:?}"),
        }
    }
}

//! DSTree node structures: per-node segmentation, synopsis, and split policy.

use hydra_transforms::eapca::{split_segment, Eapca};

/// The attribute a horizontal split tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitAttribute {
    /// Split on the segment mean.
    Mean,
    /// Split on the segment standard deviation.
    StdDev,
}

/// Description of a split applied at an internal node.
#[derive(Clone, Debug)]
pub struct SplitSpec {
    /// The segmentation the split is expressed in (the children's
    /// segmentation; equals the parent's for horizontal splits, refined for
    /// vertical splits).
    pub segmentation: Vec<usize>,
    /// The segment index (within `segmentation`) tested by the split.
    pub segment: usize,
    /// Whether the split tests the mean or the standard deviation.
    pub attribute: SplitAttribute,
    /// The decision threshold: entries with value `<= threshold` go left.
    pub threshold: f32,
    /// True if this split refined the segmentation (vertical split).
    pub is_vertical: bool,
}

/// Per-segment synopsis: the value ranges covered by the series under a node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SegmentSynopsis {
    /// Minimum segment mean.
    pub min_mean: f32,
    /// Maximum segment mean.
    pub max_mean: f32,
    /// Minimum segment standard deviation.
    pub min_std: f32,
    /// Maximum segment standard deviation.
    pub max_std: f32,
}

impl Default for SegmentSynopsis {
    fn default() -> Self {
        Self {
            min_mean: f32::INFINITY,
            max_mean: f32::NEG_INFINITY,
            min_std: f32::INFINITY,
            max_std: f32::NEG_INFINITY,
        }
    }
}

impl SegmentSynopsis {
    /// Extends the ranges to include a segment with the given mean / std.
    pub fn absorb(&mut self, mean: f32, std: f32) {
        self.min_mean = self.min_mean.min(mean);
        self.max_mean = self.max_mean.max(mean);
        self.min_std = self.min_std.min(std);
        self.max_std = self.max_std.max(std);
    }

    /// Extends the ranges to cover everything `other` covers.
    ///
    /// Merging is exact: absorbing a set of values and merging per-thread
    /// partial synopses of the same set produce bitwise-identical ranges, the
    /// property the parallel tree build relies on.
    pub fn merge(&mut self, other: &SegmentSynopsis) {
        self.min_mean = self.min_mean.min(other.min_mean);
        self.max_mean = self.max_mean.max(other.max_mean);
        self.min_std = self.min_std.min(other.min_std);
        self.max_std = self.max_std.max(other.max_std);
    }

    /// Whether no value has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.min_mean > self.max_mean
    }

    /// The spread of the mean range (0 when empty).
    pub fn mean_range(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.max_mean - self.min_mean
        }
    }

    /// The spread of the std range (0 when empty).
    pub fn std_range(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.max_std - self.min_std
        }
    }
}

/// The synopsis of a node: one range per segment of the node's segmentation.
#[derive(Clone, Debug, Default)]
pub struct NodeSynopsis {
    /// Per-segment ranges.
    pub segments: Vec<SegmentSynopsis>,
}

impl NodeSynopsis {
    /// An empty synopsis over `num_segments` segments.
    pub fn new(num_segments: usize) -> Self {
        Self {
            segments: vec![SegmentSynopsis::default(); num_segments],
        }
    }

    /// Absorbs an EAPCA representation into the ranges.
    pub fn absorb(&mut self, eapca: &Eapca) {
        debug_assert_eq!(eapca.len(), self.segments.len());
        for (syn, seg) in self.segments.iter_mut().zip(eapca.segments.iter()) {
            syn.absorb(seg.mean, seg.std_dev);
        }
    }

    /// Merges another synopsis over the same segmentation into this one
    /// (segment-wise range union; see [`SegmentSynopsis::merge`]).
    pub fn merge(&mut self, other: &NodeSynopsis) {
        debug_assert_eq!(self.segments.len(), other.segments.len());
        for (a, b) in self.segments.iter_mut().zip(other.segments.iter()) {
            a.merge(b);
        }
    }

    /// The lower bound of the Euclidean distance between a query (given by
    /// its EAPCA under the same segmentation) and *any* series covered by this
    /// synopsis.
    pub fn lower_bound(&self, query: &Eapca, segmentation: &[usize]) -> f64 {
        debug_assert_eq!(query.len(), self.segments.len());
        debug_assert_eq!(segmentation.len(), self.segments.len());
        let mut sum = 0.0f64;
        let mut start = 0usize;
        for (i, &end) in segmentation.iter().enumerate() {
            let w = (end - start) as f64;
            let syn = &self.segments[i];
            if !syn.is_empty() {
                let q = &query.segments[i];
                let d_mean = interval_distance(q.mean, syn.min_mean, syn.max_mean) as f64;
                let d_std = interval_distance(q.std_dev, syn.min_std, syn.max_std) as f64;
                sum += w * (d_mean * d_mean + d_std * d_std);
            }
            start = end;
        }
        sum.sqrt()
    }

    /// An upper bound of the distance between the query and any series covered
    /// by this synopsis (farthest corner of the mean range plus the maximal
    /// std mismatch), used by the split-policy heuristics.
    pub fn upper_bound(&self, query: &Eapca, segmentation: &[usize]) -> f64 {
        let mut sum = 0.0f64;
        let mut start = 0usize;
        for (i, &end) in segmentation.iter().enumerate() {
            let w = (end - start) as f64;
            let syn = &self.segments[i];
            if !syn.is_empty() {
                let q = &query.segments[i];
                let d_mean = (q.mean - syn.min_mean)
                    .abs()
                    .max((q.mean - syn.max_mean).abs()) as f64;
                let d_std = (q.std_dev as f64) + syn.max_std as f64;
                sum += w * (d_mean * d_mean + d_std * d_std);
            }
            start = end;
        }
        sum.sqrt()
    }
}

fn interval_distance(value: f32, low: f32, high: f32) -> f32 {
    if value < low {
        low - value
    } else if value > high {
        value - high
    } else {
        0.0
    }
}

/// One stored leaf entry: a series id plus its EAPCA under the leaf's
/// segmentation.
#[derive(Clone, Debug)]
pub struct LeafEntry {
    /// Position of the series in the dataset.
    pub id: u32,
    /// EAPCA of the series under the leaf's segmentation.
    pub eapca: Eapca,
}

/// The payload of a DSTree node.
#[derive(Clone, Debug)]
pub enum NodeKind {
    /// Internal node: a split and two children.
    Internal {
        /// The split routing entries to the children.
        split: SplitSpec,
        /// Child receiving entries with attribute value `<= threshold`.
        left: usize,
        /// Child receiving the remaining entries.
        right: usize,
    },
    /// Leaf node holding entries.
    Leaf {
        /// The entries stored in the leaf.
        entries: Vec<LeafEntry>,
    },
}

/// A DSTree node.
#[derive(Clone, Debug)]
pub struct Node {
    /// The segmentation this node summarizes series with.
    pub segmentation: Vec<usize>,
    /// The synopsis of all series under this node.
    pub synopsis: NodeSynopsis,
    /// Payload.
    pub kind: NodeKind,
    /// Depth below the root (root = 0).
    pub depth: usize,
}

/// A candidate split evaluated by the split policy.
#[derive(Clone, Debug)]
pub struct CandidateSplit {
    /// The split description.
    pub spec: SplitSpec,
    /// Number of entries that would go to the left child.
    pub left_count: usize,
    /// Number of entries that would go to the right child.
    pub right_count: usize,
}

impl CandidateSplit {
    /// A balance score in `[0, 1]`: 1 means a perfect 50/50 split.
    pub fn balance(&self) -> f64 {
        let total = (self.left_count + self.right_count) as f64;
        if total == 0.0 {
            return 0.0;
        }
        1.0 - (self.left_count as f64 - self.right_count as f64).abs() / total
    }

    /// Whether the split actually separates the entries.
    pub fn is_effective(&self) -> bool {
        self.left_count > 0 && self.right_count > 0
    }
}

/// Enumerates candidate splits for a leaf: horizontal splits on the mean and
/// std of every segment, plus vertical splits that halve a segment and split
/// on the mean of its left half.
pub fn enumerate_splits(
    series_of: impl Fn(u32) -> Vec<f32>,
    entries: &[LeafEntry],
    segmentation: &[usize],
    synopsis: &NodeSynopsis,
) -> Vec<CandidateSplit> {
    let mut candidates = Vec::new();
    // Horizontal candidates.
    for (seg, syn) in synopsis.segments.iter().enumerate() {
        if syn.is_empty() {
            continue;
        }
        for attribute in [SplitAttribute::Mean, SplitAttribute::StdDev] {
            let threshold = match attribute {
                SplitAttribute::Mean => (syn.min_mean + syn.max_mean) / 2.0,
                SplitAttribute::StdDev => (syn.min_std + syn.max_std) / 2.0,
            };
            let mut left = 0usize;
            for e in entries {
                let v = match attribute {
                    SplitAttribute::Mean => e.eapca.segments[seg].mean,
                    SplitAttribute::StdDev => e.eapca.segments[seg].std_dev,
                };
                if v <= threshold {
                    left += 1;
                }
            }
            candidates.push(CandidateSplit {
                spec: SplitSpec {
                    segmentation: segmentation.to_vec(),
                    segment: seg,
                    attribute,
                    threshold,
                    is_vertical: false,
                },
                left_count: left,
                right_count: entries.len() - left,
            });
        }
    }
    // Vertical candidates: refine each splittable segment and split on the
    // mean of its left half.
    for seg in 0..segmentation.len() {
        let Some(refined) = split_segment(segmentation, seg) else {
            continue;
        };
        // Compute the refined EAPCA of every entry to find the new segment's
        // mean range and the resulting balance.
        let mut min_mean = f32::INFINITY;
        let mut max_mean = f32::NEG_INFINITY;
        let mut means = Vec::with_capacity(entries.len());
        for e in entries {
            let series = series_of(e.id);
            let eapca = Eapca::compute(&series, &refined);
            let m = eapca.segments[seg].mean;
            min_mean = min_mean.min(m);
            max_mean = max_mean.max(m);
            means.push(m);
        }
        let threshold = (min_mean + max_mean) / 2.0;
        let left = means.iter().filter(|&&m| m <= threshold).count();
        candidates.push(CandidateSplit {
            spec: SplitSpec {
                segmentation: refined,
                segment: seg,
                attribute: SplitAttribute::Mean,
                threshold,
                is_vertical: true,
            },
            left_count: left,
            right_count: entries.len() - left,
        });
    }
    candidates
}

/// Chooses the best split among candidates: the most balanced *effective*
/// split, with horizontal splits preferred over vertical ones when balance is
/// comparable (vertical splits cost re-summarization of every entry).
pub fn choose_split(candidates: &[CandidateSplit]) -> Option<&CandidateSplit> {
    let effective: Vec<&CandidateSplit> = candidates.iter().filter(|c| c.is_effective()).collect();
    if effective.is_empty() {
        return None;
    }
    effective.into_iter().max_by(|a, b| {
        let score_a = a.balance() - if a.spec.is_vertical { 0.1 } else { 0.0 };
        let score_b = b.balance() - if b.spec.is_vertical { 0.1 } else { 0.0 };
        score_a.total_cmp(&score_b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::distance::euclidean;
    use hydra_transforms::eapca::uniform_segmentation;

    fn lcg_series(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) as f32
            })
            .collect()
    }

    #[test]
    fn synopsis_absorbs_ranges() {
        let seg = uniform_segmentation(16, 4);
        let mut syn = NodeSynopsis::new(4);
        assert!(syn.segments[0].is_empty());
        let a = Eapca::compute(&lcg_series(16, 1), &seg);
        let b = Eapca::compute(&lcg_series(16, 2), &seg);
        syn.absorb(&a);
        syn.absorb(&b);
        for (i, s) in syn.segments.iter().enumerate() {
            assert!(!s.is_empty());
            assert!(s.min_mean <= a.segments[i].mean && a.segments[i].mean <= s.max_mean);
            assert!(s.min_mean <= b.segments[i].mean && b.segments[i].mean <= s.max_mean);
            assert!(s.mean_range() >= 0.0);
            assert!(s.std_range() >= 0.0);
        }
    }

    #[test]
    fn synopsis_lower_bound_is_valid_for_every_absorbed_series() {
        let seg = uniform_segmentation(64, 8);
        let mut syn = NodeSynopsis::new(8);
        let members: Vec<Vec<f32>> = (0..20).map(|i| lcg_series(64, 100 + i)).collect();
        for m in &members {
            syn.absorb(&Eapca::compute(m, &seg));
        }
        for qseed in 0..5 {
            let q = lcg_series(64, 999 + qseed);
            let q_eapca = Eapca::compute(&q, &seg);
            let lb = syn.lower_bound(&q_eapca, &seg);
            for m in &members {
                let ed = euclidean(&q, m);
                assert!(lb <= ed + 1e-4, "LB {lb} > ED {ed}");
            }
        }
    }

    #[test]
    fn synopsis_upper_bound_dominates_lower_bound() {
        let seg = uniform_segmentation(32, 4);
        let mut syn = NodeSynopsis::new(4);
        for i in 0..10 {
            syn.absorb(&Eapca::compute(&lcg_series(32, i), &seg));
        }
        let q = Eapca::compute(&lcg_series(32, 77), &seg);
        assert!(syn.upper_bound(&q, &seg) + 1e-9 >= syn.lower_bound(&q, &seg));
    }

    #[test]
    fn merging_partial_synopses_equals_absorbing_everything() {
        let seg = uniform_segmentation(32, 4);
        let series: Vec<Vec<f32>> = (0..24).map(|i| lcg_series(32, 40 + i)).collect();
        let mut whole = NodeSynopsis::new(4);
        for s in &series {
            whole.absorb(&Eapca::compute(s, &seg));
        }
        // Split the same series over three partial synopses and merge.
        let mut merged = NodeSynopsis::new(4);
        for part in series.chunks(8) {
            let mut partial = NodeSynopsis::new(4);
            for s in part {
                partial.absorb(&Eapca::compute(s, &seg));
            }
            merged.merge(&partial);
        }
        assert_eq!(merged.segments, whole.segments, "merge must be exact");
    }

    #[test]
    fn interval_distance_cases() {
        assert_eq!(interval_distance(0.5, 1.0, 2.0), 0.5);
        assert_eq!(interval_distance(3.0, 1.0, 2.0), 1.0);
        assert_eq!(interval_distance(1.5, 1.0, 2.0), 0.0);
    }

    fn make_entries(count: usize, len: usize, seg: &[usize]) -> (Vec<LeafEntry>, Vec<Vec<f32>>) {
        let raw: Vec<Vec<f32>> = (0..count)
            .map(|i| lcg_series(len, 300 + i as u64))
            .collect();
        let entries = raw
            .iter()
            .enumerate()
            .map(|(i, s)| LeafEntry {
                id: i as u32,
                eapca: Eapca::compute(s, seg),
            })
            .collect();
        (entries, raw)
    }

    #[test]
    fn enumerate_splits_produces_horizontal_and_vertical_candidates() {
        let seg = uniform_segmentation(32, 4);
        let (entries, raw) = make_entries(30, 32, &seg);
        let mut syn = NodeSynopsis::new(4);
        for e in &entries {
            syn.absorb(&e.eapca);
        }
        let candidates = enumerate_splits(|id| raw[id as usize].clone(), &entries, &seg, &syn);
        assert!(candidates.iter().any(|c| !c.spec.is_vertical));
        assert!(candidates.iter().any(|c| c.spec.is_vertical));
        // Horizontal: 2 per segment; vertical: 1 per splittable segment.
        assert_eq!(candidates.len(), 4 * 2 + 4);
        for c in &candidates {
            assert_eq!(c.left_count + c.right_count, 30);
        }
    }

    #[test]
    fn choose_split_prefers_balanced_effective_splits() {
        let seg = uniform_segmentation(32, 4);
        let (entries, raw) = make_entries(40, 32, &seg);
        let mut syn = NodeSynopsis::new(4);
        for e in &entries {
            syn.absorb(&e.eapca);
        }
        let candidates = enumerate_splits(|id| raw[id as usize].clone(), &entries, &seg, &syn);
        let best = choose_split(&candidates).expect("some split must be effective");
        assert!(best.is_effective());
        assert!(
            best.balance() >= 0.3,
            "best split should be reasonably balanced"
        );
    }

    #[test]
    fn choose_split_returns_none_for_identical_entries() {
        let seg = uniform_segmentation(8, 2);
        let series = vec![1.0f32; 8];
        let entries: Vec<LeafEntry> = (0..5)
            .map(|i| LeafEntry {
                id: i,
                eapca: Eapca::compute(&series, &seg),
            })
            .collect();
        let mut syn = NodeSynopsis::new(2);
        for e in &entries {
            syn.absorb(&e.eapca);
        }
        let candidates = enumerate_splits(|_| series.clone(), &entries, &seg, &syn);
        assert!(
            choose_split(&candidates).is_none(),
            "identical entries cannot be separated"
        );
    }

    #[test]
    fn candidate_balance_math() {
        let spec = SplitSpec {
            segmentation: vec![4],
            segment: 0,
            attribute: SplitAttribute::Mean,
            threshold: 0.0,
            is_vertical: false,
        };
        let c = CandidateSplit {
            spec: spec.clone(),
            left_count: 5,
            right_count: 5,
        };
        assert_eq!(c.balance(), 1.0);
        let c = CandidateSplit {
            spec: spec.clone(),
            left_count: 10,
            right_count: 0,
        };
        assert_eq!(c.balance(), 0.0);
        assert!(!c.is_effective());
        let c = CandidateSplit {
            spec,
            left_count: 0,
            right_count: 0,
        };
        assert_eq!(c.balance(), 0.0);
    }
}

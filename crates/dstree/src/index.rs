//! The DSTree index: construction, splitting and exact search.

use crate::node::{
    choose_split, enumerate_splits, LeafEntry, Node, NodeKind, NodeSynopsis, SplitAttribute,
};
use hydra_core::persist::{PersistentIndex, SnapshotSink, SnapshotSource};
use hydra_core::{
    parallel, replay_outcome, AnswerMode, AnswerSet, AnsweringMethod, BudgetMeter, BuildOptions,
    Dataset, Error, ExactIndex, IndexFootprint, IntraAnswering, KnnHeap, MethodDescriptor,
    ModeCapabilities, Outcome, Query, QueryStats, Result, SharedBsf,
};
use hydra_storage::DatasetStore;
use hydra_transforms::eapca::{uniform_segmentation, valid_segmentation, Eapca, EapcaSegment};
use std::cmp::Ordering;
// hydra-lint: allow(hash-iteration-order) replay map is keyed lookup only; never iterated
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::Arc;

/// How a leaf scan evaluates candidate distances: directly (the serial path)
/// or by replaying worker-recorded [`Outcome`]s against the serial threshold
/// (the intra-query path). Replay falls back to direct evaluation for leaves
/// absent from the map, so correctness never depends on which leaves the
/// workers chose to precompute.
enum LeafEval<'a> {
    Direct,
    // hydra-lint: allow(hash-iteration-order) evidence fetched per leaf id; never iterated
    Replay(&'a HashMap<usize, Vec<Outcome>>),
}

/// The DSTree index.
pub struct DsTree {
    store: Arc<DatasetStore>,
    nodes: Vec<Node>,
    leaf_capacity: usize,
    initial_segments: usize,
}

struct Frontier {
    lower_bound: f64,
    node: usize,
}
impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.lower_bound == other.lower_bound
    }
}
impl Eq for Frontier {}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        other.lower_bound.total_cmp(&self.lower_bound)
    }
}

/// Arena-level insertion machinery, shared by the serial build (over the
/// tree's own arena) and the parallel build (over per-partition local arenas).
struct TreeBuilder<'a> {
    nodes: &'a mut Vec<Node>,
    dataset: &'a Dataset,
    leaf_capacity: usize,
}

impl TreeBuilder<'_> {
    fn series_values(&self, id: u32) -> Vec<f32> {
        self.dataset.series(id as usize).values().to_vec()
    }

    fn insert(&mut self, id: u32) {
        let series = self.series_values(id);
        let mut current = 0usize;
        loop {
            // Update the synopsis of every node on the path.
            let node_segmentation = self.nodes[current].segmentation.clone();
            let eapca = Eapca::compute(&series, &node_segmentation);
            self.nodes[current].synopsis.absorb(&eapca);
            match &self.nodes[current].kind {
                NodeKind::Internal { split, left, right } => {
                    let (left, right) = (*left, *right);
                    // Routing uses the *children's* segmentation (refined for
                    // vertical splits).
                    let routing = Eapca::compute(&series, &split.segmentation);
                    let value = match split.attribute {
                        SplitAttribute::Mean => routing.segments[split.segment].mean,
                        SplitAttribute::StdDev => routing.segments[split.segment].std_dev,
                    };
                    current = if value <= split.threshold {
                        left
                    } else {
                        right
                    };
                }
                NodeKind::Leaf { .. } => break,
            }
        }
        // Push the entry into the leaf.
        let leaf_segmentation = self.nodes[current].segmentation.clone();
        let eapca = Eapca::compute(&series, &leaf_segmentation);
        if let NodeKind::Leaf { entries } = &mut self.nodes[current].kind {
            entries.push(LeafEntry { id, eapca });
        }
        self.maybe_split(current);
    }

    fn maybe_split(&mut self, leaf: usize) {
        let over_full = match &self.nodes[leaf].kind {
            NodeKind::Leaf { entries } => entries.len() > self.leaf_capacity,
            NodeKind::Internal { .. } => false,
        };
        if !over_full {
            return;
        }
        let segmentation = self.nodes[leaf].segmentation.clone();
        let synopsis = self.nodes[leaf].synopsis.clone();
        let entries = match &self.nodes[leaf].kind {
            NodeKind::Leaf { entries } => entries.clone(),
            NodeKind::Internal { .. } => return,
        };
        let candidates = enumerate_splits(
            |id| self.dataset.series(id as usize).values().to_vec(),
            &entries,
            &segmentation,
            &synopsis,
        );
        let Some(best) = choose_split(&candidates) else {
            return; // degenerate: identical entries, keep the over-full leaf
        };
        let spec = best.spec.clone();
        let child_segmentation = spec.segmentation.clone();
        let num_child_segments = child_segmentation.len();
        let depth = self.nodes[leaf].depth;

        let mut left_entries = Vec::new();
        let mut right_entries = Vec::new();
        let mut left_syn = NodeSynopsis::new(num_child_segments);
        let mut right_syn = NodeSynopsis::new(num_child_segments);
        for e in entries {
            let series = self.series_values(e.id);
            let child_eapca = Eapca::compute(&series, &child_segmentation);
            let value = match spec.attribute {
                SplitAttribute::Mean => child_eapca.segments[spec.segment].mean,
                SplitAttribute::StdDev => child_eapca.segments[spec.segment].std_dev,
            };
            if value <= spec.threshold {
                left_syn.absorb(&child_eapca);
                left_entries.push(LeafEntry {
                    id: e.id,
                    eapca: child_eapca,
                });
            } else {
                right_syn.absorb(&child_eapca);
                right_entries.push(LeafEntry {
                    id: e.id,
                    eapca: child_eapca,
                });
            }
        }
        let left_id = self.nodes.len();
        self.nodes.push(Node {
            segmentation: child_segmentation.clone(),
            synopsis: left_syn,
            kind: NodeKind::Leaf {
                entries: left_entries,
            },
            depth: depth + 1,
        });
        let right_id = self.nodes.len();
        self.nodes.push(Node {
            segmentation: child_segmentation,
            synopsis: right_syn,
            kind: NodeKind::Leaf {
                entries: right_entries,
            },
            depth: depth + 1,
        });
        self.nodes[leaf].kind = NodeKind::Internal {
            split: spec,
            left: left_id,
            right: right_id,
        };
        // A split chosen by `choose_split` is always effective, so both
        // children are strictly smaller than the parent; still, they may
        // individually exceed the capacity and need further splitting.
        self.maybe_split(left_id);
        self.maybe_split(right_id);
    }
}

/// Per-chunk routing result of the parallel build: pending synopsis updates
/// for the frozen internal nodes, and the series of each frozen-leaf
/// partition in dataset order.
struct RoutedChunk {
    absorbs: BTreeMap<usize, NodeSynopsis>,
    partitions: BTreeMap<usize, Vec<u32>>,
}

impl DsTree {
    /// Builds the DSTree over an instrumented store.
    ///
    /// With `options.build_threads > 1` the build runs in three phases: a
    /// serial seed pass grows an initial tree, the remaining series are routed
    /// through that frozen top structure in parallel (split decisions are
    /// immutable once made, so routing needs no locks), and each frozen-leaf
    /// partition's subtree is then built on its own worker and grafted back.
    /// Because a series only ever interacts with the other series of its own
    /// partition, and synopsis range-unions are exact under merging, the
    /// resulting tree is **identical to the serial build** for every thread
    /// count.
    pub fn build_on_store(store: Arc<DatasetStore>, options: &BuildOptions) -> Result<Self> {
        if store.is_empty() {
            return Err(Error::EmptyDataset);
        }
        options.validate(store.series_length())?;
        let initial_segments = options.segments.min(store.series_length());
        let segmentation = uniform_segmentation(store.series_length(), initial_segments);
        let root = Node {
            segmentation: segmentation.clone(),
            synopsis: NodeSynopsis::new(initial_segments),
            kind: NodeKind::Leaf {
                entries: Vec::new(),
            },
            depth: 0,
        };
        let mut tree = Self {
            store: store.clone(),
            nodes: vec![root],
            leaf_capacity: options.leaf_capacity,
            initial_segments,
        };
        // One sequential pass over the raw data, inserting every series.
        store.scan_all(|_, _| {});
        let threads = parallel::resolve_threads(options.build_threads);
        let n = store.len();
        let dataset = store.dataset();
        // The seed pass must create enough frozen leaves to spread the
        // partition phase over the workers; past that point everything else
        // is routed and built in parallel.
        let seed = if threads <= 1 {
            n
        } else {
            n.min(threads.max(2) * options.leaf_capacity.max(1) * 2)
        };
        {
            let mut builder = TreeBuilder {
                nodes: &mut tree.nodes,
                dataset,
                leaf_capacity: options.leaf_capacity,
            };
            for id in 0..seed as u32 {
                builder.insert(id);
            }
        }
        if seed < n {
            tree.insert_partitioned(dataset, seed, n, threads);
        }
        // Leaves materialize the raw series.
        store.record_index_write((store.len() * store.series_bytes()) as u64);
        Ok(tree)
    }

    /// Routes `start..end` through the frozen tree and builds each partition's
    /// subtree in parallel (see [`DsTree::build_on_store`]).
    fn insert_partitioned(&mut self, dataset: &Dataset, start: usize, end: usize, threads: usize) {
        // Phase 1: parallel routing. Workers read the frozen structure and
        // accumulate thread-local synopsis updates plus per-leaf partitions.
        let ranges = parallel::split_ranges(end - start, threads);
        let routed: Vec<RoutedChunk> = {
            let nodes = &self.nodes;
            parallel::map_indexed(ranges.len(), threads, |ri| {
                let mut chunk = RoutedChunk {
                    absorbs: BTreeMap::new(),
                    partitions: BTreeMap::new(),
                };
                for offset in ranges[ri].clone() {
                    let id = (start + offset) as u32;
                    let series = dataset.series(id as usize).values();
                    let mut current = 0usize;
                    while let NodeKind::Internal { split, left, right } = &nodes[current].kind {
                        let eapca = Eapca::compute(series, &nodes[current].segmentation);
                        chunk
                            .absorbs
                            .entry(current)
                            .or_insert_with(|| NodeSynopsis::new(nodes[current].segmentation.len()))
                            .absorb(&eapca);
                        let routing = Eapca::compute(series, &split.segmentation);
                        let value = match split.attribute {
                            SplitAttribute::Mean => routing.segments[split.segment].mean,
                            SplitAttribute::StdDev => routing.segments[split.segment].std_dev,
                        };
                        current = if value <= split.threshold {
                            *left
                        } else {
                            *right
                        };
                    }
                    chunk.partitions.entry(current).or_default().push(id);
                }
                chunk
            })
        };
        // Merge the routing results in chunk order, which preserves dataset
        // order inside every partition and keeps synopsis unions exact.
        let mut partitions: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        for chunk in routed {
            for (node, synopsis) in chunk.absorbs {
                self.nodes[node].synopsis.merge(&synopsis);
            }
            for (leaf, ids) in chunk.partitions {
                partitions.entry(leaf).or_default().extend(ids);
            }
        }
        // Phase 2: each partition's subtree grows on its own worker, rooted at
        // a copy of its frozen leaf.
        let parts: Vec<(usize, Vec<u32>)> = partitions.into_iter().collect();
        let leaf_capacity = self.leaf_capacity;
        let subtrees: Vec<Vec<Node>> = {
            let nodes = &self.nodes;
            parallel::map_indexed(parts.len(), threads, |pi| {
                let (leaf, ids) = &parts[pi];
                let mut local = vec![nodes[*leaf].clone()];
                let mut builder = TreeBuilder {
                    nodes: &mut local,
                    dataset,
                    leaf_capacity,
                };
                for &id in ids {
                    builder.insert(id);
                }
                local
            })
        };
        // Phase 3: graft every subtree back, rewriting local arena indices
        // (local 0 is the frozen leaf's slot; the rest are appended).
        for ((leaf, _), local) in parts.into_iter().zip(subtrees) {
            let offset = self.nodes.len();
            let map_id = |child: usize| if child == 0 { leaf } else { offset + child - 1 };
            let mut local = local.into_iter();
            // hydra-lint: allow(lib-unwrap) grow_partition always emits a root at local index 0
            let mut subtree_root = local.next().expect("partition subtree has a root");
            if let NodeKind::Internal { left, right, .. } = &mut subtree_root.kind {
                *left = map_id(*left);
                *right = map_id(*right);
            }
            self.nodes[leaf] = subtree_root;
            for mut node in local {
                if let NodeKind::Internal { left, right, .. } = &mut node.kind {
                    *left = map_id(*left);
                    *right = map_id(*right);
                }
                self.nodes.push(node);
            }
        }
    }

    /// The number of nodes in the tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The underlying store.
    pub fn store(&self) -> &DatasetStore {
        &self.store
    }

    /// The number of segments of the initial (root) segmentation.
    pub fn initial_segments(&self) -> usize {
        self.initial_segments
    }

    /// Total number of indexed entries across all leaves.
    pub fn num_entries(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Leaf { entries } => entries.len(),
                _ => 0,
            })
            .sum()
    }

    /// Scans one leaf, either evaluating distances directly or replaying
    /// worker-recorded outcomes against the serial threshold.
    fn scan_leaf_with(
        &self,
        leaf: usize,
        query: &Query,
        heap: &mut KnnHeap,
        meter: &mut BudgetMeter,
        stats: &mut QueryStats,
        eval: &LeafEval<'_>,
    ) -> Result<()> {
        let NodeKind::Leaf { entries } = &self.nodes[leaf].kind else {
            return Ok(());
        };
        if entries.is_empty() {
            return Ok(());
        }
        // Fault checkpoint for the leaf's materialized payload read, keyed
        // by its first series so an injected fault is stable per leaf.
        self.store.try_access(entries[0].id as u64)?;
        stats.record_leaf_visit();
        let leaf_bytes = (entries.len() * self.store.series_bytes()) as u64;
        let pages = leaf_bytes.div_ceil(self.store.page_bytes() as u64).max(1);
        stats.record_io(pages - 1, 1, leaf_bytes);
        let dataset = self.store.dataset();
        let recorded = match eval {
            LeafEval::Direct => None,
            LeafEval::Replay(map) => map.get(&leaf),
        };
        for (i, e) in entries.iter().enumerate() {
            if meter.should_stop(stats.raw_series_examined, !heap.is_empty()) {
                break;
            }
            stats.record_raw_series_examined(1);
            let series = dataset.series(e.id as usize);
            let kernel = |threshold: f64| {
                hydra_core::distance::squared_euclidean_early_abandon(
                    query.values(),
                    series.values(),
                    threshold,
                )
            };
            let result = match recorded {
                Some(outcomes) => replay_outcome(outcomes[i], heap.threshold_squared(), kernel),
                None => kernel(heap.threshold_squared()),
            };
            match result {
                Some(sq) => {
                    heap.offer(e.id as usize, sq.sqrt());
                }
                None => stats.record_early_abandon(),
            }
        }
        Ok(())
    }

    /// Descends from the root to the single most promising leaf for the query
    /// (the ng-approximate search of the DSTree).
    fn descend_to_leaf(&self, query: &[f32], stats: &mut QueryStats) -> usize {
        let mut current = 0usize;
        loop {
            match &self.nodes[current].kind {
                NodeKind::Internal { split, left, right } => {
                    stats.record_internal_visit();
                    let routing = Eapca::compute(query, &split.segmentation);
                    let value = match split.attribute {
                        SplitAttribute::Mean => routing.segments[split.segment].mean,
                        SplitAttribute::StdDev => routing.segments[split.segment].std_dev,
                    };
                    current = if value <= split.threshold {
                        *left
                    } else {
                        *right
                    };
                }
                NodeKind::Leaf { .. } => return current,
            }
        }
    }

    fn node_lower_bound(&self, node: usize, query: &[f32]) -> f64 {
        let n = &self.nodes[node];
        let q_eapca = Eapca::compute(query, &n.segmentation);
        n.synopsis.lower_bound(&q_eapca, &n.segmentation)
    }
}

impl AnsweringMethod for DsTree {
    fn descriptor(&self) -> MethodDescriptor {
        MethodDescriptor {
            name: "DSTree",
            representation: "EAPCA",
            is_index: true,
            modes: ModeCapabilities::all(),
        }
    }

    fn index_footprint(&self) -> Option<IndexFootprint> {
        Some(ExactIndex::footprint(self))
    }

    fn answer(&self, query: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
        self.answer_with_eval(query, stats, &LeafEval::Direct)
    }

    fn intra_answering(&self) -> Option<&dyn IntraAnswering> {
        Some(self)
    }
}

impl DsTree {
    fn answer_with_eval(
        &self,
        query: &Query,
        stats: &mut QueryStats,
        eval: &LeafEval<'_>,
    ) -> Result<AnswerSet> {
        if query.len() != self.store.series_length() {
            return Err(Error::LengthMismatch {
                expected: self.store.series_length(),
                actual: query.len(),
            });
        }
        let k = query.knn_k("DSTree")?;
        let mode = query.mode();
        let clock = hydra_core::RunClock::start();
        let mut heap = KnnHeap::new(k);
        let mut meter = BudgetMeter::new(query.budget(), self.store.len());

        // Approximate descent seeds the best-so-far — and in ng-approximate
        // mode this single covering leaf is the whole answer.
        let seed_leaf = self.descend_to_leaf(query.values(), stats);
        self.scan_leaf_with(seed_leaf, query, &mut heap, &mut meter, stats, eval)?;

        if mode != AnswerMode::NgApproximate {
            // Best-first traversal with synopsis lower bounds. `shrink` is
            // 1 for exact search and `δ/(1+ε)` for the relaxed modes: a node
            // is pruned as soon as its lower bound reaches `bsf * shrink`
            // (see `AnswerMode::prune_shrink`), so `ε = 0` is bit-identical
            // to exact search.
            let shrink = mode.prune_shrink();
            let mut frontier = BinaryHeap::new();
            let root_lb = self.node_lower_bound(0, query.values());
            stats.record_lower_bounds(1);
            frontier.push(Frontier {
                lower_bound: root_lb,
                node: 0,
            });
            while let Some(Frontier { lower_bound, node }) = frontier.pop() {
                if meter.is_truncated() {
                    break; // budget exhausted: keep the best-so-far
                }
                if heap.is_full() && lower_bound >= heap.threshold() * shrink {
                    break;
                }
                match &self.nodes[node].kind {
                    NodeKind::Leaf { .. } => {
                        if node != seed_leaf {
                            self.scan_leaf_with(node, query, &mut heap, &mut meter, stats, eval)?;
                        }
                    }
                    NodeKind::Internal { left, right, .. } => {
                        stats.record_internal_visit();
                        for child in [*left, *right] {
                            let lb = self.node_lower_bound(child, query.values());
                            stats.record_lower_bounds(1);
                            if !heap.is_full() || lb < heap.threshold() * shrink {
                                frontier.push(Frontier {
                                    lower_bound: lb,
                                    node: child,
                                });
                            }
                        }
                    }
                }
            }
        }
        stats.cpu_time += clock.elapsed();
        let guarantee = meter.guarantee(mode.guarantee(), stats.raw_series_examined);
        Ok(heap.into_answer_set().with_guarantee(guarantee))
    }
}

impl IntraAnswering for DsTree {
    fn answer_intra(
        &self,
        query: &Query,
        threads: usize,
        stats: &mut QueryStats,
    ) -> Result<AnswerSet> {
        if query.mode() == AnswerMode::NgApproximate {
            // ng-approximate scans a single leaf: nothing to fan out.
            return self.answer(query, stats);
        }
        if query.len() != self.store.series_length() {
            return Err(Error::LengthMismatch {
                expected: self.store.series_length(),
                actual: query.len(),
            });
        }
        let k = query.knn_k("DSTree")?;
        let mode = query.mode();
        let shrink = mode.prune_shrink();

        // Phase A (serial, scratch stats): seed a best-so-far from the
        // approximate descent, exactly as the serial path does. The replay in
        // phase C repeats this with the real stats, so nothing is counted here.
        let mut scratch = QueryStats::default();
        let mut scratch_meter = BudgetMeter::new(query.budget(), self.store.len());
        let mut seed_heap = KnnHeap::new(k);
        let seed_leaf = self.descend_to_leaf(query.values(), &mut scratch);
        self.scan_leaf_with(
            seed_leaf,
            query,
            &mut seed_heap,
            &mut scratch_meter,
            &mut scratch,
            &LeafEval::Direct,
        )?;
        let seed_threshold = seed_heap.threshold();

        // Candidate leaves: every leaf the serial traversal could possibly
        // scan (a superset — its bound check uses the *seed* threshold, which
        // is never tighter than the serial threshold at visit time). The seed
        // leaf is excluded: the traversal never rescans it, and the replayed
        // seed scan starts from an empty heap where recorded tight-threshold
        // abandons would all recompute anyway.
        let candidates: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(id, node)| {
                *id != seed_leaf
                    && matches!(&node.kind, NodeKind::Leaf { entries } if !entries.is_empty())
            })
            .map(|(id, _)| id)
            .filter(|&id| {
                !seed_heap.is_full()
                    || self.node_lower_bound(id, query.values()) < seed_threshold * shrink
            })
            .collect();

        // Phase B (parallel): evaluate candidate leaves with a shared atomic
        // best-so-far. Workers record per-entry outcomes; thresholds may be
        // stale or tighter than serial, which `replay_outcome` reconciles.
        let dataset = self.store.dataset();
        let bsf = SharedBsf::new(seed_heap.threshold_squared());
        let per_leaf: Vec<Vec<Outcome>> = parallel::map_indexed(candidates.len(), threads, |ci| {
            let leaf = candidates[ci];
            let NodeKind::Leaf { entries } = &self.nodes[leaf].kind else {
                unreachable!("candidates only contain leaves");
            };
            let mut local = seed_heap.clone();
            let mut outcomes = Vec::with_capacity(entries.len());
            for e in entries {
                let threshold = local.threshold_squared().min(bsf.get());
                let series = dataset.series(e.id as usize);
                match hydra_core::distance::squared_euclidean_early_abandon(
                    query.values(),
                    series.values(),
                    threshold,
                ) {
                    Some(sq) => {
                        outcomes.push(Outcome::Computed(sq));
                        local.offer(e.id as usize, sq.sqrt());
                        bsf.update_min(local.threshold_squared());
                    }
                    None => outcomes.push(Outcome::Abandoned { threshold }),
                }
            }
            outcomes
        });
        // hydra-lint: allow(hash-iteration-order) keyed lookup during serial replay; never iterated
        let recorded: HashMap<usize, Vec<Outcome>> = candidates.into_iter().zip(per_leaf).collect();

        // Phase C (serial): replay the exact serial traversal, deciding each
        // candidate from the recorded evidence. Answers and counters are
        // bit-identical to the serial path.
        self.answer_with_eval(query, stats, &LeafEval::Replay(&recorded))
    }
}

impl DsTree {
    fn write_segmentation(out: &mut dyn SnapshotSink, segmentation: &[usize]) -> Result<()> {
        out.put_usize(segmentation.len())?;
        for &end in segmentation {
            out.put_usize(end)?;
        }
        Ok(())
    }

    fn read_segmentation(
        input: &mut dyn SnapshotSource,
        series_length: usize,
    ) -> Result<Vec<usize>> {
        let count = input.get_count(8)?;
        let mut segmentation = Vec::with_capacity(count);
        for _ in 0..count {
            segmentation.push(input.get_usize()?);
        }
        if !valid_segmentation(&segmentation, series_length) {
            return Err(Error::InvalidSnapshot(format!(
                "segmentation {segmentation:?} is not strictly increasing up to {series_length}"
            )));
        }
        Ok(segmentation)
    }

    fn write_synopsis(out: &mut dyn SnapshotSink, synopsis: &NodeSynopsis) -> Result<()> {
        out.put_usize(synopsis.segments.len())?;
        for s in &synopsis.segments {
            out.put_f32(s.min_mean)?;
            out.put_f32(s.max_mean)?;
            out.put_f32(s.min_std)?;
            out.put_f32(s.max_std)?;
        }
        Ok(())
    }

    fn read_synopsis(input: &mut dyn SnapshotSource) -> Result<NodeSynopsis> {
        let count = input.get_count(16)?;
        let mut segments = Vec::with_capacity(count);
        for _ in 0..count {
            let min_mean = input.get_f32()?;
            let max_mean = input.get_f32()?;
            let min_std = input.get_f32()?;
            let max_std = input.get_f32()?;
            segments.push(crate::node::SegmentSynopsis {
                min_mean,
                max_mean,
                min_std,
                max_std,
            });
        }
        Ok(NodeSynopsis { segments })
    }
}

impl PersistentIndex for DsTree {
    type Context = Arc<DatasetStore>;

    fn snapshot_kind() -> &'static str {
        "dstree/v1"
    }

    fn save_payload(&self, out: &mut dyn SnapshotSink) -> Result<()> {
        out.put_usize(self.store.series_length())?;
        out.put_usize(self.initial_segments)?;
        out.put_usize(self.leaf_capacity)?;
        out.put_usize(self.nodes.len())?;
        for node in &self.nodes {
            out.put_usize(node.depth)?;
            Self::write_segmentation(out, &node.segmentation)?;
            Self::write_synopsis(out, &node.synopsis)?;
            match &node.kind {
                NodeKind::Internal { split, left, right } => {
                    out.put_u8(0)?;
                    Self::write_segmentation(out, &split.segmentation)?;
                    out.put_usize(split.segment)?;
                    out.put_u8(match split.attribute {
                        SplitAttribute::Mean => 0,
                        SplitAttribute::StdDev => 1,
                    })?;
                    out.put_f32(split.threshold)?;
                    out.put_u8(split.is_vertical as u8)?;
                    out.put_usize(*left)?;
                    out.put_usize(*right)?;
                }
                NodeKind::Leaf { entries } => {
                    out.put_u8(1)?;
                    out.put_usize(entries.len())?;
                    for e in entries {
                        out.put_u32(e.id)?;
                        for seg in &e.eapca.segments {
                            out.put_f32(seg.mean)?;
                            out.put_f32(seg.std_dev)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn load_payload(store: Arc<DatasetStore>, input: &mut dyn SnapshotSource) -> Result<Self> {
        let invalid = Error::InvalidSnapshot;
        let series_length = input.get_usize()?;
        if series_length != store.series_length() {
            return Err(invalid(format!(
                "tree summarizes series of length {series_length}, store holds {}",
                store.series_length()
            )));
        }
        let initial_segments = input.get_usize()?;
        if initial_segments == 0 || initial_segments > series_length {
            return Err(invalid(format!(
                "initial segmentation of {initial_segments} segments over length {series_length}"
            )));
        }
        let leaf_capacity = input.get_usize()?;
        if leaf_capacity == 0 {
            return Err(invalid("tree has zero leaf capacity".to_string()));
        }
        let num_nodes = input.get_count(2)?;
        let n = store.len();
        let mut seen = vec![false; n];
        let mut nodes = Vec::with_capacity(num_nodes);
        for _ in 0..num_nodes {
            let depth = input.get_usize()?;
            let segmentation = Self::read_segmentation(input, series_length)?;
            let synopsis = Self::read_synopsis(input)?;
            if synopsis.segments.len() != segmentation.len() {
                return Err(invalid(format!(
                    "synopsis covers {} segments, segmentation has {}",
                    synopsis.segments.len(),
                    segmentation.len()
                )));
            }
            let kind = match input.get_u8()? {
                0 => {
                    let split_segmentation = Self::read_segmentation(input, series_length)?;
                    let segment = input.get_usize()?;
                    if segment >= split_segmentation.len() {
                        return Err(invalid(format!(
                            "split tests segment {segment} of a {}-segment segmentation",
                            split_segmentation.len()
                        )));
                    }
                    let attribute = match input.get_u8()? {
                        0 => SplitAttribute::Mean,
                        1 => SplitAttribute::StdDev,
                        tag => return Err(invalid(format!("unknown split attribute tag {tag}"))),
                    };
                    let threshold = input.get_f32()?;
                    let is_vertical = input.get_u8()? != 0;
                    let left = input.get_usize()?;
                    let right = input.get_usize()?;
                    if left >= num_nodes || right >= num_nodes {
                        return Err(invalid(format!(
                            "internal node references children {left},{right} outside the \
                             arena of {num_nodes}"
                        )));
                    }
                    NodeKind::Internal {
                        split: crate::node::SplitSpec {
                            segmentation: split_segmentation,
                            segment,
                            attribute,
                            threshold,
                            is_vertical,
                        },
                        left,
                        right,
                    }
                }
                1 => {
                    let entry_bytes = 4 + segmentation.len() * 8;
                    let count = input.get_count(entry_bytes)?;
                    let mut entries = Vec::with_capacity(count);
                    for _ in 0..count {
                        let id = input.get_u32()?;
                        if id as usize >= n || seen[id as usize] {
                            return Err(invalid(format!(
                                "leaf entry id {id} is out of range or duplicated (store holds {n})"
                            )));
                        }
                        seen[id as usize] = true;
                        let mut segments = Vec::with_capacity(segmentation.len());
                        for _ in 0..segmentation.len() {
                            let mean = input.get_f32()?;
                            let std_dev = input.get_f32()?;
                            segments.push(EapcaSegment { mean, std_dev });
                        }
                        entries.push(LeafEntry {
                            id,
                            eapca: Eapca { segments },
                        });
                    }
                    NodeKind::Leaf { entries }
                }
                tag => return Err(invalid(format!("unknown node tag {tag}"))),
            };
            nodes.push(Node {
                segmentation,
                synopsis,
                kind,
                depth,
            });
        }
        if nodes.is_empty() {
            return Err(invalid("tree has no nodes".to_string()));
        }
        if !seen.iter().all(|&s| s) {
            return Err(invalid(format!(
                "tree does not cover every series of the store ({n})"
            )));
        }
        Ok(Self {
            store,
            nodes,
            leaf_capacity,
            initial_segments,
        })
    }
}

impl ExactIndex for DsTree {
    fn build(dataset: &Dataset, options: &BuildOptions) -> Result<Self> {
        Self::build_on_store(Arc::new(DatasetStore::new(dataset.clone())), options)
    }

    fn footprint(&self) -> IndexFootprint {
        let mut leaf_fill_factors = Vec::new();
        let mut leaf_depths = Vec::new();
        let mut leaf_nodes = 0usize;
        let mut disk_bytes = 0usize;
        let mut memory_bytes = 0usize;
        for n in &self.nodes {
            memory_bytes += std::mem::size_of::<Node>()
                + n.segmentation.len() * std::mem::size_of::<usize>()
                + n.synopsis.segments.len() * std::mem::size_of::<crate::node::SegmentSynopsis>();
            if let NodeKind::Leaf { entries } = &n.kind {
                leaf_nodes += 1;
                leaf_fill_factors.push(entries.len() as f64 / self.leaf_capacity as f64);
                leaf_depths.push(n.depth);
                disk_bytes += entries.len() * self.store.series_bytes();
                memory_bytes +=
                    entries.len() * (std::mem::size_of::<LeafEntry>() + n.segmentation.len() * 8);
            }
        }
        IndexFootprint {
            total_nodes: self.nodes.len(),
            leaf_nodes,
            memory_bytes,
            disk_bytes,
            leaf_fill_factors,
            leaf_depths,
        }
    }

    fn num_series(&self) -> usize {
        self.store.len()
    }

    fn series_length(&self) -> usize {
        self.store.series_length()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_data::RandomWalkGenerator;
    use hydra_scan::ucr::brute_force_knn;

    fn build(count: usize, len: usize, leaf: usize) -> (Arc<DatasetStore>, DsTree) {
        let store = Arc::new(DatasetStore::new(
            RandomWalkGenerator::new(91, len).dataset(count),
        ));
        let options = BuildOptions::default()
            .with_segments(8.min(len))
            .with_leaf_capacity(leaf);
        let index = DsTree::build_on_store(store.clone(), &options).unwrap();
        (store, index)
    }

    #[test]
    fn descriptor_matches_table1() {
        let (_, idx) = build(40, 32, 16);
        assert_eq!(idx.descriptor().name, "DSTree");
        assert_eq!(idx.descriptor().representation, "EAPCA");
        assert!(idx.descriptor().is_index);
    }

    #[test]
    fn every_series_is_indexed_and_leaves_respect_capacity() {
        let (_, idx) = build(500, 64, 25);
        assert_eq!(idx.num_entries(), 500);
        let fp = idx.footprint();
        assert!(
            fp.total_nodes > 1,
            "a 500-series tree with capacity 25 must split"
        );
        assert!(fp.leaf_fill_factors.iter().all(|&f| f <= 1.0 + 1e-9));
        assert_eq!(fp.disk_bytes, 500 * 64 * 4);
    }

    #[test]
    fn splits_adapt_segmentation_somewhere() {
        // At least one node should have refined its segmentation (vertical
        // split) or used a std-based split on a non-trivial dataset.
        let (_, idx) = build(800, 64, 20);
        let has_adaptive = idx.nodes.iter().any(|n| match &n.kind {
            NodeKind::Internal { split, .. } => {
                split.is_vertical || split.attribute == SplitAttribute::StdDev
            }
            _ => false,
        });
        assert!(
            has_adaptive || idx.num_nodes() < 3,
            "expected at least one vertical or std-based split in a large tree"
        );
    }

    #[test]
    fn exactness_against_brute_force() {
        let (store, idx) = build(400, 64, 20);
        for q in RandomWalkGenerator::new(191, 64).series_batch(12) {
            for k in [1usize, 5] {
                let expected = brute_force_knn(store.dataset(), q.values(), k);
                let got = idx.answer_simple(&Query::knn(q.clone(), k)).unwrap();
                assert!(got.distances_match(&expected, 1e-4), "k={k}");
            }
        }
    }

    #[test]
    fn exactness_on_deep_like_length() {
        let (store, idx) = build(200, 96, 10);
        let q = RandomWalkGenerator::new(92, 96).series(5);
        let expected = brute_force_knn(store.dataset(), q.values(), 1);
        let got = idx.answer_simple(&Query::nearest_neighbor(q)).unwrap();
        assert!(got.distances_match(&expected, 1e-4));
    }

    #[test]
    fn self_queries_prune_heavily() {
        let (store, idx) = build(1000, 64, 50);
        let q = store.dataset().series(700).to_owned_series();
        let mut stats = QueryStats::default();
        let ans = idx.answer(&Query::nearest_neighbor(q), &mut stats).unwrap();
        assert_eq!(ans.nearest().unwrap().id, 700);
        assert!(
            stats.pruning_ratio(1000) > 0.8,
            "ratio {}",
            stats.pruning_ratio(1000)
        );
        assert!(stats.leaves_visited >= 1);
    }

    #[test]
    fn ng_approximate_visits_one_leaf_and_is_upper_bound_of_exact() {
        let (_, idx) = build(500, 64, 25);
        for q in RandomWalkGenerator::new(291, 64).series_batch(5) {
            let mut s1 = QueryStats::default();
            let approx = idx
                .answer(
                    &Query::nearest_neighbor(q.clone()).with_mode(AnswerMode::NgApproximate),
                    &mut s1,
                )
                .unwrap();
            assert!(s1.leaves_visited <= 1);
            assert_eq!(approx.guarantee(), hydra_core::Guarantee::None);
            let exact = idx.answer_simple(&Query::nearest_neighbor(q)).unwrap();
            if let (Some(a), Some(e)) = (approx.nearest(), exact.nearest()) {
                assert!(a.distance + 1e-9 >= e.distance);
            }
        }
    }

    #[test]
    fn epsilon_zero_is_bit_identical_to_exact_and_epsilon_bounds_hold() {
        let (_, idx) = build(500, 64, 25);
        for q in RandomWalkGenerator::new(391, 64).series_batch(5) {
            let exact_q = Query::knn(q.clone(), 3);
            let mut exact_stats = QueryStats::default();
            let exact = idx.answer(&exact_q, &mut exact_stats).unwrap();

            let zero_q = exact_q
                .clone()
                .with_mode(AnswerMode::EpsilonApproximate { epsilon: 0.0 });
            let mut zero_stats = QueryStats::default();
            let zero = idx.answer(&zero_q, &mut zero_stats).unwrap();
            assert_eq!(zero.answers(), exact.answers(), "ε=0 must be exact");
            assert_eq!(
                exact_stats.raw_series_examined,
                zero_stats.raw_series_examined
            );
            assert_eq!(
                exact_stats.lower_bounds_computed,
                zero_stats.lower_bounds_computed
            );
            assert_eq!(exact_stats.leaves_visited, zero_stats.leaves_visited);

            // ε > 0: never better than exact, never worse than (1+ε)·exact,
            // and never more work.
            let eps = 1.0;
            let relaxed = idx
                .answer_simple(
                    &exact_q
                        .clone()
                        .with_mode(AnswerMode::EpsilonApproximate { epsilon: eps }),
                )
                .unwrap();
            assert_eq!(
                relaxed.guarantee(),
                hydra_core::Guarantee::EpsilonBound { epsilon: eps }
            );
            let (a, e) = (relaxed.nearest().unwrap(), exact.nearest().unwrap());
            assert!(a.distance + 1e-9 >= e.distance);
            assert!(a.distance <= (1.0 + eps) * e.distance + 1e-9);
        }
    }

    #[test]
    fn intra_query_search_is_bit_identical_to_serial() {
        let (store, idx) = build(500, 64, 25);
        let mut queries: Vec<Query> = RandomWalkGenerator::new(491, 64)
            .series_batch(5)
            .into_iter()
            .map(|q| Query::knn(q, 3))
            .collect();
        queries.push(Query::knn(store.dataset().series(222).to_owned_series(), 3));
        queries.push(
            Query::knn(store.dataset().series(7).to_owned_series(), 3)
                .with_mode(AnswerMode::EpsilonApproximate { epsilon: 0.5 }),
        );
        for query in &queries {
            let mut serial_stats = QueryStats::default();
            let serial = idx.answer(query, &mut serial_stats).unwrap();
            for threads in [2usize, 4] {
                let mut stats = QueryStats::default();
                let got = idx
                    .intra_answering()
                    .unwrap()
                    .answer_intra(query, threads, &mut stats)
                    .unwrap();
                assert_eq!(serial, got, "threads={threads}");
                assert_eq!(serial_stats.raw_series_examined, stats.raw_series_examined);
                assert_eq!(serial_stats.early_abandons, stats.early_abandons);
                assert_eq!(serial_stats.leaves_visited, stats.leaves_visited);
                assert_eq!(
                    serial_stats.lower_bounds_computed,
                    stats.lower_bounds_computed
                );
                assert_eq!(serial_stats.bytes_read, stats.bytes_read);
            }
        }
    }

    #[test]
    fn parallel_build_produces_the_identical_tree() {
        let data = RandomWalkGenerator::new(91, 64).dataset(600);
        let options = BuildOptions::default()
            .with_segments(8)
            .with_leaf_capacity(20);
        let serial = DsTree::build_on_store(
            Arc::new(DatasetStore::new(data.clone())),
            &options.clone().with_build_threads(1),
        )
        .unwrap();
        for threads in [2usize, 4] {
            let parallel = DsTree::build_on_store(
                Arc::new(DatasetStore::new(data.clone())),
                &options.clone().with_build_threads(threads),
            )
            .unwrap();
            assert_eq!(parallel.num_entries(), 600);
            assert_eq!(
                parallel.num_nodes(),
                serial.num_nodes(),
                "threads={threads}"
            );
            // Shape: identical leaf (depth, occupancy) multiset.
            let leaf_shape = |t: &DsTree| {
                let mut v: Vec<(usize, usize)> = t
                    .nodes
                    .iter()
                    .filter_map(|n| match &n.kind {
                        NodeKind::Leaf { entries } => Some((n.depth, entries.len())),
                        _ => None,
                    })
                    .collect();
                v.sort();
                v
            };
            assert_eq!(leaf_shape(&parallel), leaf_shape(&serial));
            // Synopses: the frozen internals got their deferred absorbs, so
            // lower bounds — and therefore search behaviour — are identical.
            for q in RandomWalkGenerator::new(991, 64).series_batch(6) {
                let mut s_stats = QueryStats::default();
                let mut p_stats = QueryStats::default();
                let a = serial
                    .answer(&Query::knn(q.clone(), 3), &mut s_stats)
                    .unwrap();
                let b = parallel.answer(&Query::knn(q, 3), &mut p_stats).unwrap();
                assert!(a.distances_match(&b, 1e-12));
                assert_eq!(s_stats.raw_series_examined, p_stats.raw_series_examined);
                assert_eq!(s_stats.lower_bounds_computed, p_stats.lower_bounds_computed);
            }
        }
    }

    #[test]
    fn identical_series_do_not_hang_the_build() {
        let mut data = Dataset::empty(32);
        let series = vec![1.0f32; 32];
        for _ in 0..50 {
            data.push(&series);
        }
        let idx = DsTree::build(
            &data,
            &BuildOptions::default()
                .with_segments(4)
                .with_leaf_capacity(8),
        )
        .unwrap();
        assert_eq!(idx.num_entries(), 50);
        // All identical: search still returns an exact answer.
        let ans = idx
            .answer_simple(&Query::nearest_neighbor(hydra_core::Series::new(series)))
            .unwrap();
        assert!(ans.nearest().unwrap().distance < 1e-6);
    }

    #[test]
    fn rejects_empty_dataset_and_bad_query() {
        assert!(DsTree::build(&Dataset::empty(8), &BuildOptions::default()).is_err());
        let (_, idx) = build(20, 64, 8);
        assert!(idx
            .answer_simple(&Query::nearest_neighbor(hydra_core::Series::new(vec![
                0.0;
                8
            ])))
            .is_err());
    }
}

//! # hydra-dstree
//!
//! The DSTree: a data-adaptive index based on the EAPCA summarization.
//!
//! Unlike SAX-based indexes, whose summarization grid is fixed up front, the
//! DSTree adapts its per-node segmentation as the tree grows: a node can be
//! split *horizontally* (on the mean or the standard deviation of an existing
//! segment) or *vertically* (by refining the segmentation itself and then
//! splitting on one of the new, shorter segments). Every node keeps a synopsis
//! — the min/max of the segment means and standard deviations over the series
//! it covers — from which a lower-bounding distance to any query is computed:
//!
//! ```text
//! LB²(Q, node) = Σ_i w_i · ( dist(μ_i(Q), [minμ_i, maxμ_i])²
//!                          + dist(σ_i(Q), [minσ_i, maxσ_i])² )
//! ```
//!
//! which follows from the per-segment inequality
//! `Σ_j (x_j − y_j)² ≥ w·(μx − μy)² + w·(σx − σy)²`.
//!
//! Exact search is a best-first traversal with this bound, seeded by an
//! approximate descent to the most promising leaf — the structure responsible
//! for the DSTree's paper-reported profile: expensive (CPU-bound) index
//! construction, excellent query-time clustering and pruning.

pub mod index;
pub mod node;

pub use index::DsTree;

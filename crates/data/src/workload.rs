//! Query workload generation.
//!
//! The paper uses two kinds of 100-query workloads:
//!
//! * **Synth-Rand** — queries produced by the same random-walk generator as
//!   the dataset, with a different seed. These queries tend to be far from
//!   their nearest neighbour and are easy to prune.
//! * **Controlled (`*-Ctrl`)** — queries created by extracting series from the
//!   dataset and adding progressively larger amounts of Gaussian noise, so the
//!   workload contains queries of varying, controlled difficulty (harder
//!   queries are less similar to their nearest neighbour).
//!
//! The workload also supports the paper's *Easy-20* / *Hard-20* scenarios:
//! queries are classified by their average pruning ratio across methods, and
//! the 20 easiest / hardest are averaged separately (Table 2).

use crate::randomwalk::{RandomWalkGenerator, StandardNormal};
use hydra_core::series::{z_normalize, Dataset, Series};
use hydra_core::Query;
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The amount of noise added to a dataset series to form a controlled query.
///
/// `fraction` is the standard deviation of the added Gaussian noise relative
/// to the (unit, Z-normalized) standard deviation of the original series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseLevel {
    /// Relative noise standard deviation (0 = exact copy of a dataset series).
    pub fraction: f64,
}

impl NoiseLevel {
    /// The default ladder of noise levels used to build controlled workloads,
    /// from near-duplicates (very easy) to noise-dominated (very hard).
    pub const LADDER: [NoiseLevel; 10] = [
        NoiseLevel { fraction: 0.0 },
        NoiseLevel { fraction: 0.01 },
        NoiseLevel { fraction: 0.02 },
        NoiseLevel { fraction: 0.05 },
        NoiseLevel { fraction: 0.1 },
        NoiseLevel { fraction: 0.2 },
        NoiseLevel { fraction: 0.4 },
        NoiseLevel { fraction: 0.8 },
        NoiseLevel { fraction: 1.6 },
        NoiseLevel { fraction: 3.2 },
    ];
}

/// The two workload generation strategies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Independent queries from the dataset's generative model (Synth-Rand).
    Random,
    /// Noise-controlled queries derived from dataset series (`*-Ctrl`).
    Controlled,
}

/// Specification of a query workload.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Generation strategy.
    pub kind: WorkloadKind,
    /// Number of queries to generate (the paper uses 100).
    pub num_queries: usize,
    /// Seed for query generation (distinct from the dataset seed).
    pub seed: u64,
}

impl WorkloadSpec {
    /// A 100-query random workload (Synth-Rand) with the given seed.
    pub fn random(seed: u64) -> Self {
        Self {
            kind: WorkloadKind::Random,
            num_queries: 100,
            seed,
        }
    }

    /// A 100-query controlled workload (`*-Ctrl`) with the given seed.
    pub fn controlled(seed: u64) -> Self {
        Self {
            kind: WorkloadKind::Controlled,
            num_queries: 100,
            seed,
        }
    }

    /// Overrides the number of queries.
    pub fn with_num_queries(mut self, num_queries: usize) -> Self {
        self.num_queries = num_queries;
        self
    }
}

/// A generated workload: the query series plus, for controlled workloads, the
/// noise level each query was generated with.
#[derive(Clone, Debug)]
pub struct QueryWorkload {
    name: String,
    queries: Vec<Series>,
    noise_levels: Vec<Option<NoiseLevel>>,
}

impl QueryWorkload {
    /// Generates a workload for `dataset` according to `spec`.
    ///
    /// For [`WorkloadKind::Random`], the dataset is only used for its series
    /// length; queries come from an independent random-walk generator seeded
    /// with `spec.seed` (matching Synth-Rand). For
    /// [`WorkloadKind::Controlled`], queries are dataset series with added
    /// noise, cycling through [`NoiseLevel::LADDER`] so difficulty is spread
    /// evenly across the workload.
    pub fn generate(name: impl Into<String>, dataset: &Dataset, spec: &WorkloadSpec) -> Self {
        assert!(
            spec.num_queries > 0,
            "workload must contain at least one query"
        );
        assert!(
            !dataset.is_empty(),
            "cannot build a workload for an empty dataset"
        );
        match spec.kind {
            WorkloadKind::Random => {
                let gen = RandomWalkGenerator::new(spec.seed, dataset.series_length());
                let queries = gen.series_batch(spec.num_queries);
                let noise_levels = vec![None; spec.num_queries];
                Self {
                    name: name.into(),
                    queries,
                    noise_levels,
                }
            }
            WorkloadKind::Controlled => {
                let mut rng = StdRng::seed_from_u64(spec.seed);
                let normal = StandardNormal;
                let mut queries = Vec::with_capacity(spec.num_queries);
                let mut noise_levels = Vec::with_capacity(spec.num_queries);
                for q in 0..spec.num_queries {
                    let level = NoiseLevel::LADDER[q % NoiseLevel::LADDER.len()];
                    let source = rng.gen_range(0..dataset.len());
                    let mut values: Vec<f32> = dataset.series(source).values().to_vec();
                    if level.fraction > 0.0 {
                        for v in values.iter_mut() {
                            *v += (level.fraction * normal.sample(&mut rng)) as f32;
                        }
                    }
                    z_normalize(&mut values);
                    queries.push(Series::new(values));
                    noise_levels.push(Some(level));
                }
                Self {
                    name: name.into(),
                    queries,
                    noise_levels,
                }
            }
        }
    }

    /// The workload's display name (e.g. `"Synth-Rand"`, `"Astro-Ctrl"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of queries in the workload.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The query series.
    pub fn queries(&self) -> &[Series] {
        &self.queries
    }

    /// The noise level of the `i`-th query (`None` for random workloads).
    pub fn noise_level(&self, i: usize) -> Option<NoiseLevel> {
        self.noise_levels.get(i).copied().flatten()
    }

    /// Iterates the workload as 1-NN whole-matching [`Query`] values.
    pub fn knn_queries(&self, k: usize) -> impl Iterator<Item = Query> + '_ {
        self.queries.iter().map(move |s| Query::knn(s.clone(), k))
    }

    /// The paper's 10 000-query extrapolation rule: drop the 5 best and 5
    /// worst per-query times, average the rest, multiply by `target_queries`.
    ///
    /// Returns `None` when fewer than 11 per-query observations are provided.
    pub fn extrapolate_total_seconds(
        per_query_seconds: &[f64],
        target_queries: usize,
    ) -> Option<f64> {
        if per_query_seconds.len() < 11 {
            return None;
        }
        let mut v = per_query_seconds.to_vec();
        v.sort_by(|a, b| a.total_cmp(b));
        let trimmed = &v[5..v.len() - 5];
        let mean = trimmed.iter().sum::<f64>() / trimmed.len() as f64;
        Some(mean * target_queries as f64)
    }

    /// Splits query indices into the `n` easiest and `n` hardest according to
    /// a per-query difficulty score (higher = easier, e.g. average pruning
    /// ratio across methods), mirroring Easy-20 / Hard-20 of Table 2.
    ///
    /// Returns `(easy, hard)` index vectors of length `min(n, len)`.
    pub fn split_easy_hard(scores: &[f64], n: usize) -> (Vec<usize>, Vec<usize>) {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        let n = n.min(idx.len());
        let easy = idx[..n].to_vec();
        let hard = idx[idx.len() - n..].to_vec();
        (easy, hard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randomwalk::RandomWalkGenerator;
    use hydra_core::distance::euclidean;

    fn dataset() -> Dataset {
        RandomWalkGenerator::new(1, 64).dataset(200)
    }

    #[test]
    fn random_workload_has_requested_size_and_length() {
        let d = dataset();
        let w = QueryWorkload::generate("Synth-Rand", &d, &WorkloadSpec::random(99));
        assert_eq!(w.len(), 100);
        assert_eq!(w.name(), "Synth-Rand");
        assert!(!w.is_empty());
        assert_eq!(w.queries()[0].len(), 64);
        assert_eq!(w.noise_level(0), None);
    }

    #[test]
    fn random_workload_differs_from_dataset_seed() {
        let d = dataset();
        let w = QueryWorkload::generate("Synth-Rand", &d, &WorkloadSpec::random(2));
        // Query 0 should not coincide with any dataset series.
        let q = &w.queries()[0];
        assert!(d.iter().all(|s| s.values() != q.values()));
    }

    #[test]
    fn controlled_workload_tracks_noise_ladder() {
        let d = dataset();
        let w = QueryWorkload::generate(
            "Synth-Ctrl",
            &d,
            &WorkloadSpec::controlled(7).with_num_queries(20),
        );
        assert_eq!(w.len(), 20);
        assert_eq!(w.noise_level(0).unwrap().fraction, 0.0);
        assert_eq!(w.noise_level(1).unwrap().fraction, 0.01);
        assert_eq!(w.noise_level(10).unwrap().fraction, 0.0);
    }

    #[test]
    fn controlled_difficulty_grows_with_noise() {
        // Queries with more noise should (on average) be farther from their NN.
        let d = dataset();
        let w = QueryWorkload::generate(
            "Synth-Ctrl",
            &d,
            &WorkloadSpec::controlled(3).with_num_queries(100),
        );
        let nn_dist = |q: &Series| {
            d.iter()
                .map(|s| euclidean(q.values(), s.values()))
                .fold(f64::INFINITY, f64::min)
        };
        let mut easy_sum = 0.0;
        let mut easy_n = 0;
        let mut hard_sum = 0.0;
        let mut hard_n = 0;
        for i in 0..w.len() {
            let f = w.noise_level(i).unwrap().fraction;
            let dist = nn_dist(&w.queries()[i]);
            if f <= 0.02 {
                easy_sum += dist;
                easy_n += 1;
            } else if f >= 1.6 {
                hard_sum += dist;
                hard_n += 1;
            }
        }
        assert!((easy_sum / easy_n as f64) < (hard_sum / hard_n as f64));
    }

    #[test]
    fn zero_noise_queries_are_dataset_members() {
        let d = dataset();
        let w = QueryWorkload::generate(
            "Synth-Ctrl",
            &d,
            &WorkloadSpec::controlled(5).with_num_queries(10),
        );
        // Query 0 has zero noise: its distance to some dataset series is ~0.
        let q = &w.queries()[0];
        let min = d
            .iter()
            .map(|s| euclidean(q.values(), s.values()))
            .fold(f64::INFINITY, f64::min);
        assert!(
            min < 1e-3,
            "zero-noise query should match a dataset series, got {min}"
        );
    }

    #[test]
    fn knn_queries_iterator_sets_k() {
        let d = dataset();
        let w = QueryWorkload::generate("w", &d, &WorkloadSpec::random(1).with_num_queries(3));
        let qs: Vec<Query> = w.knn_queries(5).collect();
        assert_eq!(qs.len(), 3);
        assert!(qs.iter().all(|q| q.k() == Some(5)));
    }

    #[test]
    fn extrapolation_trims_outliers() {
        let mut times = vec![1.0; 100];
        times[0] = 1000.0; // outliers that must be trimmed
        times[1] = 0.0001;
        let total = QueryWorkload::extrapolate_total_seconds(&times, 10_000).unwrap();
        assert!((total - 10_000.0).abs() < 1e-6);
        assert!(QueryWorkload::extrapolate_total_seconds(&[1.0; 5], 10).is_none());
    }

    #[test]
    fn easy_hard_split() {
        let scores = vec![0.9, 0.1, 0.5, 0.99, 0.3];
        let (easy, hard) = QueryWorkload::split_easy_hard(&scores, 2);
        assert_eq!(easy, vec![3, 0]);
        assert_eq!(hard, vec![4, 1]);
        let (e, h) = QueryWorkload::split_easy_hard(&scores, 10);
        assert_eq!(e.len(), 5);
        assert_eq!(h.len(), 5);
    }

    #[test]
    fn workload_generation_is_deterministic() {
        let d = dataset();
        let a = QueryWorkload::generate("w", &d, &WorkloadSpec::controlled(9));
        let b = QueryWorkload::generate("w", &d, &WorkloadSpec::controlled(9));
        assert_eq!(a.queries()[13], b.queries()[13]);
    }
}

//! On-disk dataset format: flat little-endian `f32` binary files.
//!
//! Every implementation compared in the paper consumes the same raw format: a
//! file of `count * series_length` single-precision values with no header.
//! This module provides a writer and a reader for that format, plus a helper
//! that reports the dataset size in the "GB" units the paper uses to label
//! its experiments.

use hydra_core::series::Dataset;
use hydra_core::{Error, Result};
// hydra-lint: allow(uncounted-fs) pre-measurement ingest; counted I/O starts at DatasetStore
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes a dataset to `path` in the flat binary format.
pub fn write_dataset(dataset: &Dataset, path: &Path) -> Result<()> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    for &v in dataset.flat_values() {
        writer.write_all(&v.to_le_bytes())?;
    }
    writer.flush()?;
    Ok(())
}

/// Reads a dataset of the given series length from `path`.
///
/// Returns an error if the file size is not a multiple of
/// `series_length * 4` bytes.
pub fn read_dataset(path: &Path, series_length: usize) -> Result<Dataset> {
    if series_length == 0 {
        return Err(Error::invalid_parameter(
            "series_length",
            "must be positive",
        ));
    }
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    if bytes.len() % 4 != 0 {
        return Err(Error::invalid_parameter(
            "file",
            format!("file size {} is not a multiple of 4 bytes", bytes.len()),
        ));
    }
    let values: Vec<f32> = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    if !values.len().is_multiple_of(series_length) {
        return Err(Error::invalid_parameter(
            "series_length",
            format!(
                "{} values is not a multiple of series length {series_length}",
                values.len()
            ),
        ));
    }
    Ok(Dataset::from_flat(values, series_length))
}

/// The number of series a dataset of `gigabytes` GB holds at the given series
/// length, using the paper's convention (single-precision values).
pub fn series_count_for_gigabytes(gigabytes: f64, series_length: usize) -> usize {
    let bytes = gigabytes * 1024.0 * 1024.0 * 1024.0;
    (bytes / (series_length as f64 * 4.0)).round() as usize
}

/// The dataset payload size in gigabytes (the unit the paper labels datasets
/// with).
pub fn dataset_gigabytes(dataset: &Dataset) -> f64 {
    dataset.size_bytes() as f64 / (1024.0 * 1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randomwalk::RandomWalkGenerator;

    #[test]
    fn write_then_read_round_trips() {
        let dir = std::env::temp_dir().join("hydra_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.bin");
        let d = RandomWalkGenerator::new(3, 32).dataset(50);
        write_dataset(&d, &path).unwrap();
        let back = read_dataset(&path, 32).unwrap();
        assert_eq!(d, back);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_rejects_mismatched_length() {
        let dir = std::env::temp_dir().join("hydra_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mismatch.bin");
        let d = RandomWalkGenerator::new(3, 32).dataset(3);
        write_dataset(&d, &path).unwrap();
        assert!(read_dataset(&path, 7).is_err());
        assert!(read_dataset(&path, 0).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_missing_file_is_io_error() {
        let err = read_dataset(Path::new("/nonexistent/hydra.bin"), 8).unwrap_err();
        assert!(matches!(err, Error::Io { .. }));
    }

    #[test]
    fn gigabyte_conversions_are_consistent() {
        // The paper's 100GB dataset of length-256 series has ~100M series.
        let count = series_count_for_gigabytes(100.0, 256);
        assert!((count as f64 - 104_857_600.0).abs() < 1.0);
        let d = RandomWalkGenerator::new(1, 256).dataset(1000);
        let gb = dataset_gigabytes(&d);
        assert!((gb - 1000.0 * 256.0 * 4.0 / 1024f64.powi(3)).abs() < 1e-12);
    }
}

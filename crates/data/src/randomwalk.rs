//! Random-walk (cumulative Gaussian sum) dataset generation.
//!
//! The paper's synthetic data series are "generated as random-walks (i.e.,
//! cumulative sums) of steps that follow a Gaussian distribution (0,1)" — the
//! classic model for stock-price-like sequences used since Faloutsos et al.
//! Every generated series is Z-normalized, as in the paper's framework (all
//! datasets were normalized in advance).

use hydra_core::series::{z_normalize, Dataset, Series};
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A standard-normal sampler based on the Box–Muller transform.
///
/// Implemented locally so the only external dependency is `rand`'s uniform
/// source (keeping the dependency footprint to the allowed crate set).
#[derive(Clone, Copy, Debug, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms -> one normal deviate (we discard the pair).
        loop {
            let u1: f64 = rng.gen::<f64>();
            let u2: f64 = rng.gen::<f64>();
            if u1 > f64::MIN_POSITIVE {
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }
}

/// Deterministic random-walk data series generator.
#[derive(Clone, Debug)]
pub struct RandomWalkGenerator {
    seed: u64,
    series_length: usize,
    z_normalize: bool,
}

impl RandomWalkGenerator {
    /// Creates a generator for series of length `series_length` with the given
    /// seed. Output is Z-normalized by default.
    pub fn new(seed: u64, series_length: usize) -> Self {
        assert!(series_length > 0, "series length must be positive");
        Self {
            seed,
            series_length,
            z_normalize: true,
        }
    }

    /// Disables Z-normalization of generated series.
    pub fn without_normalization(mut self) -> Self {
        self.z_normalize = false;
        self
    }

    /// The configured series length.
    pub fn series_length(&self) -> usize {
        self.series_length
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates a single series (deterministic in `(seed, index)`).
    pub fn series(&self, index: u64) -> Series {
        let mut rng = StdRng::seed_from_u64(self.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let normal = StandardNormal;
        let mut values = Vec::with_capacity(self.series_length);
        let mut level = 0.0f64;
        for _ in 0..self.series_length {
            level += normal.sample(&mut rng);
            values.push(level as f32);
        }
        if self.z_normalize {
            z_normalize(&mut values);
        }
        Series::new(values)
    }

    /// Generates a dataset of `count` series.
    pub fn dataset(&self, count: usize) -> Dataset {
        let mut data = Dataset::empty(self.series_length);
        for i in 0..count {
            data.push(self.series(i as u64).values());
        }
        data
    }

    /// Generates `count` series as owned [`Series`] values (used for query
    /// workloads).
    pub fn series_batch(&self, count: usize) -> Vec<Series> {
        (0..count as u64).map(|i| self.series(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_seed_and_index() {
        let g = RandomWalkGenerator::new(7, 64);
        assert_eq!(g.series(3), g.series(3));
        assert_ne!(g.series(3), g.series(4));
        let g2 = RandomWalkGenerator::new(8, 64);
        assert_ne!(g.series(3), g2.series(3));
    }

    #[test]
    fn generated_series_are_z_normalized() {
        let g = RandomWalkGenerator::new(42, 256);
        let s = g.series(0);
        assert_eq!(s.len(), 256);
        assert!(s.mean().abs() < 1e-4);
        assert!((s.std_dev() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn without_normalization_preserves_walk_shape() {
        let g = RandomWalkGenerator::new(42, 128).without_normalization();
        let s = g.series(0);
        // A raw random walk of 128 standard normal steps almost surely has a
        // standard deviation far from 1 and a non-zero mean.
        assert!(s.std_dev() > 0.0);
        assert!(!s.is_z_normalized(1e-3));
    }

    #[test]
    fn dataset_has_requested_shape() {
        let g = RandomWalkGenerator::new(1, 32);
        let d = g.dataset(100);
        assert_eq!(d.len(), 100);
        assert_eq!(d.series_length(), 32);
        // Series must differ from each other.
        assert_ne!(d.series(0).values(), d.series(99).values());
    }

    #[test]
    fn series_batch_matches_individual_generation() {
        let g = RandomWalkGenerator::new(5, 16);
        let batch = g.series_batch(4);
        assert_eq!(batch.len(), 4);
        for (i, s) in batch.iter().enumerate() {
            assert_eq!(s, &g.series(i as u64));
        }
    }

    #[test]
    fn accessors_report_configuration() {
        let g = RandomWalkGenerator::new(9, 100);
        assert_eq!(g.seed(), 9);
        assert_eq!(g.series_length(), 100);
    }

    #[test]
    fn standard_normal_has_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| StandardNormal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }
}

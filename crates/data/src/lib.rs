//! # hydra-data
//!
//! Dataset and query-workload generation for the hydra similarity search
//! benchmark, mirroring Section 4.2 of the paper:
//!
//! * **Synthetic datasets** are random walks — cumulative sums of standard
//!   Gaussian steps — the generator used throughout the data series indexing
//!   literature ([`randomwalk`]).
//! * **Real datasets** (Seismic, Astro, SALD, Deep1B) are not redistributable;
//!   [`domains`] provides domain-flavoured synthetic stand-ins that span the
//!   same range of "summarizability" (easy to hard pruning), which is the
//!   property the paper's per-dataset results hinge on.
//! * **Query workloads** come in two flavours ([`workload`]): `Synth-Rand`
//!   queries drawn from the same random-walk generator with a different seed,
//!   and noise-controlled `*-Ctrl` workloads produced by taking dataset series
//!   and adding progressively larger amounts of Gaussian noise so that query
//!   difficulty is controlled.
//! * **On-disk format** ([`io`]): the flat single-precision binary format used
//!   by all the original implementations, plus readers/writers.

pub mod domains;
pub mod io;
pub mod randomwalk;
pub mod workload;

pub use domains::{DomainDataset, DomainGenerator};
pub use randomwalk::RandomWalkGenerator;
pub use workload::{NoiseLevel, QueryWorkload, WorkloadKind, WorkloadSpec};

//! Domain-flavoured synthetic stand-ins for the paper's four real datasets.
//!
//! The paper evaluates on Seismic (IRIS), Astro (celestial light curves), SALD
//! (MRI) and Deep1B (CNN embeddings). Those collections are 100 GB each and
//! not redistributable, so this module generates synthetic datasets whose
//! *summarizability profile* — how well segment-mean / frequency summaries
//! capture them, and therefore how much pruning an index achieves — spans the
//! same spectrum the real datasets did:
//!
//! * [`DomainDataset::Seismic`]: mostly-quiet series with band-limited
//!   oscillatory bursts (events) — moderately summarizable.
//! * [`DomainDataset::Astro`]: smooth periodic light curves with occasional
//!   transit-like dips — highly summarizable.
//! * [`DomainDataset::Sald`]: smooth, low-frequency, strongly autocorrelated
//!   signals (fMRI-like) — highly summarizable.
//! * [`DomainDataset::Deep`]: high-entropy, nearly i.i.d. vectors (CNN
//!   embedding-like) — poorly summarizable, the hardest case for every index,
//!   matching the paper's finding that sequential scan wins on Deep1B's hard
//!   queries.

use crate::randomwalk::StandardNormal;
use hydra_core::series::{z_normalize, Dataset, Series};
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The four real-dataset stand-ins.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DomainDataset {
    /// Seismic-instrument-like recordings (event bursts over noise).
    Seismic,
    /// Astronomical light-curve-like series (periodic with transient dips).
    Astro,
    /// MRI / fMRI-like smooth low-frequency signals.
    Sald,
    /// Deep-embedding-like high-entropy vectors.
    Deep,
}

impl DomainDataset {
    /// All domain datasets, in the order the paper lists them.
    pub const ALL: [DomainDataset; 4] = [
        DomainDataset::Seismic,
        DomainDataset::Astro,
        DomainDataset::Sald,
        DomainDataset::Deep,
    ];

    /// The display name used in result tables.
    pub fn name(&self) -> &'static str {
        match self {
            DomainDataset::Seismic => "Seismic",
            DomainDataset::Astro => "Astro",
            DomainDataset::Sald => "SALD",
            DomainDataset::Deep => "Deep1B",
        }
    }

    /// The series length the paper's corresponding real dataset uses.
    pub fn paper_series_length(&self) -> usize {
        match self {
            DomainDataset::Seismic | DomainDataset::Astro => 256,
            DomainDataset::Sald => 128,
            DomainDataset::Deep => 96,
        }
    }
}

/// Generator for domain-flavoured synthetic datasets.
#[derive(Clone, Debug)]
pub struct DomainGenerator {
    domain: DomainDataset,
    seed: u64,
    series_length: usize,
}

impl DomainGenerator {
    /// Creates a generator for `domain` with the paper's series length.
    pub fn new(domain: DomainDataset, seed: u64) -> Self {
        Self {
            domain,
            seed,
            series_length: domain.paper_series_length(),
        }
    }

    /// Overrides the series length (used for length sweeps).
    pub fn with_series_length(mut self, series_length: usize) -> Self {
        assert!(series_length > 0, "series length must be positive");
        self.series_length = series_length;
        self
    }

    /// The configured series length.
    pub fn series_length(&self) -> usize {
        self.series_length
    }

    /// The domain being generated.
    pub fn domain(&self) -> DomainDataset {
        self.domain
    }

    /// Generates the `index`-th series (deterministic).
    pub fn series(&self, index: u64) -> Series {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ index.wrapping_mul(0xD6E8_FEB8_6659_FD93) ^ ((self.domain as u64) << 56),
        );
        let mut values = match self.domain {
            DomainDataset::Seismic => self.seismic(&mut rng),
            DomainDataset::Astro => self.astro(&mut rng),
            DomainDataset::Sald => self.sald(&mut rng),
            DomainDataset::Deep => self.deep(&mut rng),
        };
        z_normalize(&mut values);
        Series::new(values)
    }

    /// Generates a dataset of `count` series.
    pub fn dataset(&self, count: usize) -> Dataset {
        let mut data = Dataset::empty(self.series_length);
        for i in 0..count {
            data.push(self.series(i as u64).values());
        }
        data
    }

    fn seismic(&self, rng: &mut StdRng) -> Vec<f32> {
        let n = self.series_length;
        let normal = StandardNormal;
        // Background microseismic noise.
        let mut v: Vec<f64> = (0..n).map(|_| 0.1 * normal.sample(rng)).collect();
        // 1-3 band-limited bursts (events) with exponential decay envelopes.
        let bursts = rng.gen_range(1..=3);
        for _ in 0..bursts {
            let onset = rng.gen_range(0..n);
            let freq = rng.gen_range(0.05..0.35);
            let amp = rng.gen_range(1.0..4.0);
            let decay = rng.gen_range(0.01..0.08);
            let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            for (offset, value) in v.iter_mut().enumerate().skip(onset) {
                let t = (offset - onset) as f64;
                *value +=
                    amp * (-decay * t).exp() * (std::f64::consts::TAU * freq * t + phase).sin();
            }
        }
        v.into_iter().map(|x| x as f32).collect()
    }

    fn astro(&self, rng: &mut StdRng) -> Vec<f32> {
        let n = self.series_length;
        let normal = StandardNormal;
        // Smooth periodic light curve plus photometric noise and occasional
        // box-shaped transit dips.
        let period = rng.gen_range(16.0..(n as f64 / 2.0).max(17.0));
        let amp = rng.gen_range(0.5..2.0);
        let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let mut v: Vec<f64> = (0..n)
            .map(|i| {
                amp * (std::f64::consts::TAU * i as f64 / period + phase).sin()
                    + 0.05 * normal.sample(rng)
            })
            .collect();
        if rng.gen_bool(0.5) {
            let dip_start = rng.gen_range(0..n);
            let dip_len = rng.gen_range(2..(n / 8).max(3));
            let depth = rng.gen_range(0.5..2.0);
            for value in v.iter_mut().skip(dip_start).take(dip_len) {
                *value -= depth;
            }
        }
        v.into_iter().map(|x| x as f32).collect()
    }

    fn sald(&self, rng: &mut StdRng) -> Vec<f32> {
        let n = self.series_length;
        let normal = StandardNormal;
        // Sum of a few slow sinusoids (hemodynamic-like drifts) plus a heavily
        // smoothed AR(1) component.
        let mut v = vec![0.0f64; n];
        for _ in 0..3 {
            let freq = rng.gen_range(0.005..0.04);
            let amp = rng.gen_range(0.5..1.5);
            let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            for (i, value) in v.iter_mut().enumerate() {
                *value += amp * (std::f64::consts::TAU * freq * i as f64 + phase).sin();
            }
        }
        let mut ar = 0.0f64;
        for value in v.iter_mut() {
            ar = 0.97 * ar + 0.1 * normal.sample(rng);
            *value += ar;
        }
        v.into_iter().map(|x| x as f32).collect()
    }

    fn deep(&self, rng: &mut StdRng) -> Vec<f32> {
        let normal = StandardNormal;
        // Nearly independent dimensions: ReLU-like sparse positive activations.
        (0..self.series_length)
            .map(|_| {
                let x = normal.sample(rng);
                (if x > 0.0 { x } else { 0.05 * x }) as f32
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_domains_generate_normalized_series() {
        for domain in DomainDataset::ALL {
            let g = DomainGenerator::new(domain, 11);
            let s = g.series(0);
            assert_eq!(s.len(), domain.paper_series_length());
            assert!(s.mean().abs() < 1e-3, "{} mean", domain.name());
            assert!((s.std_dev() - 1.0).abs() < 1e-2, "{} sd", domain.name());
        }
    }

    #[test]
    fn generation_is_deterministic_per_domain() {
        for domain in DomainDataset::ALL {
            let g = DomainGenerator::new(domain, 3);
            assert_eq!(g.series(5), g.series(5));
            assert_ne!(g.series(5), g.series(6));
        }
    }

    #[test]
    fn domains_differ_from_each_other() {
        let a = DomainGenerator::new(DomainDataset::Seismic, 3)
            .with_series_length(128)
            .series(0);
        let b = DomainGenerator::new(DomainDataset::Deep, 3)
            .with_series_length(128)
            .series(0);
        assert_ne!(a, b);
    }

    #[test]
    fn dataset_shape_and_length_override() {
        let g = DomainGenerator::new(DomainDataset::Astro, 1).with_series_length(64);
        let d = g.dataset(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.series_length(), 64);
        assert_eq!(g.series_length(), 64);
        assert_eq!(g.domain(), DomainDataset::Astro);
    }

    #[test]
    fn deep_is_less_smooth_than_sald() {
        // Lag-1 autocorrelation: SALD (smooth) should be much higher than Deep.
        fn lag1(s: &Series) -> f64 {
            let v = s.values();
            let n = v.len();
            let mut num = 0.0;
            let mut den = 0.0;
            for i in 0..n - 1 {
                num += (v[i] as f64) * (v[i + 1] as f64);
            }
            for &x in v {
                den += (x as f64) * (x as f64);
            }
            num / den
        }
        let sald = DomainGenerator::new(DomainDataset::Sald, 2)
            .with_series_length(128)
            .series(0);
        let deep = DomainGenerator::new(DomainDataset::Deep, 2)
            .with_series_length(128)
            .series(0);
        assert!(
            lag1(&sald) > 0.8,
            "SALD should be smooth, got {}",
            lag1(&sald)
        );
        assert!(
            lag1(&deep) < 0.5,
            "Deep should be rough, got {}",
            lag1(&deep)
        );
    }

    #[test]
    fn names_and_lengths_match_paper() {
        assert_eq!(DomainDataset::Seismic.name(), "Seismic");
        assert_eq!(DomainDataset::Deep.paper_series_length(), 96);
        assert_eq!(DomainDataset::Sald.paper_series_length(), 128);
    }
}

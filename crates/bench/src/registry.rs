//! A registry of the ten evaluated methods, buildable by name.
//!
//! [`MethodKind::build_boxed`] constructs any method as a
//! `Box<dyn AnsweringMethod>`, and [`MethodKind::engine`] wraps the result in
//! a measuring [`QueryEngine`] wired to the instrumented store — the single
//! code path the harness, the experiment binaries and the examples all drive.

use hydra_core::persist::PersistentIndex;
use hydra_core::{
    AnswerMode, AnsweringMethod, BuildOptions, Dataset, ModeCapabilities, QueryEngine, Result,
    RunClock,
};
use hydra_dstree::DsTree;
use hydra_isax::{AdsPlus, Isax2Plus};
use hydra_mtree::MTree;
use hydra_rtree::RStarTree;
use hydra_scan::{MassScan, Stepwise, UcrScan};
use hydra_serve::{QueryService, ServeConfig};
use hydra_sfa::SfaTrie;
use hydra_storage::{snapshot, DatasetStore};
use hydra_vafile::VaPlusFile;
use std::path::Path;
use std::sync::Arc;

/// The ten similarity search methods of the study.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// The optimized serial-scan baseline.
    UcrSuite,
    /// FFT-based whole-matching scan.
    Mass,
    /// Level-wise DHWT filter.
    Stepwise,
    /// DFT + non-uniform quantization filter file.
    VaPlusFile,
    /// iSAX tree with materialized leaves.
    Isax2Plus,
    /// Adaptive iSAX tree with SIMS skip-sequential exact search.
    AdsPlus,
    /// EAPCA-based adaptive tree.
    DsTree,
    /// Symbolic Fourier Approximation trie.
    SfaTrie,
    /// Spatial index over PAA summaries.
    RStarTree,
    /// Metric-space index.
    MTree,
}

impl MethodKind {
    /// All ten methods, in the order Table 1 lists them.
    pub const ALL: [MethodKind; 10] = [
        MethodKind::AdsPlus,
        MethodKind::DsTree,
        MethodKind::Isax2Plus,
        MethodKind::MTree,
        MethodKind::RStarTree,
        MethodKind::SfaTrie,
        MethodKind::VaPlusFile,
        MethodKind::UcrSuite,
        MethodKind::Mass,
        MethodKind::Stepwise,
    ];

    /// The six methods that survive the paper's individual evaluation
    /// (Section 4.3.2) and are compared in detail in Section 4.3.3.
    pub const BEST_SIX: [MethodKind; 6] = [
        MethodKind::AdsPlus,
        MethodKind::DsTree,
        MethodKind::Isax2Plus,
        MethodKind::SfaTrie,
        MethodKind::UcrSuite,
        MethodKind::VaPlusFile,
    ];

    /// The canonical display name.
    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::UcrSuite => "UCR-Suite",
            MethodKind::Mass => "MASS",
            MethodKind::Stepwise => "Stepwise",
            MethodKind::VaPlusFile => "VA+file",
            MethodKind::Isax2Plus => "iSAX2+",
            MethodKind::AdsPlus => "ADS+",
            MethodKind::DsTree => "DSTree",
            MethodKind::SfaTrie => "SFA trie",
            MethodKind::RStarTree => "R*-tree",
            MethodKind::MTree => "M-tree",
        }
    }

    /// Looks a method up by its canonical display name (the inverse of
    /// [`MethodKind::name`], which also matches the built method's
    /// `descriptor().name`).
    pub fn from_name(name: &str) -> Option<MethodKind> {
        MethodKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// True if the method builds a persistent index (false for scans and
    /// multi-step filters).
    pub fn is_index(&self) -> bool {
        !matches!(
            self,
            MethodKind::UcrSuite | MethodKind::Mass | MethodKind::Stepwise
        )
    }

    /// The answering modes this method supports (matches the built method's
    /// `descriptor().modes`, checked in the tests): the scans and multi-step
    /// filters are exact-only; the tree indexes and the VA+file answer every
    /// mode.
    pub fn modes(&self) -> ModeCapabilities {
        match self {
            MethodKind::UcrSuite | MethodKind::Mass | MethodKind::Stepwise => {
                ModeCapabilities::exact_only()
            }
            _ => ModeCapabilities::all(),
        }
    }

    /// Whether this method can answer queries in `mode`.
    pub fn supports_mode(&self, mode: AnswerMode) -> bool {
        self.modes().supports(mode)
    }

    /// Whether this method has a native batch kernel (matches the built
    /// method's `batch_answering()`, checked in the tests): the three scans
    /// amortize their sequential pass, the VA+file its filter-file sweep and
    /// ADS+ its SIMS summary-array sweep; the tree indexes answer batches
    /// through the engine's per-query fallback.
    pub fn supports_batch(&self) -> bool {
        matches!(
            self,
            MethodKind::UcrSuite
                | MethodKind::Mass
                | MethodKind::Stepwise
                | MethodKind::VaPlusFile
                | MethodKind::AdsPlus
        )
    }

    /// Whether this method has a native intra-query parallel kernel (matches
    /// the built method's `intra_answering()`, checked in the tests): the
    /// three scans partition their candidate range, the VA+file and ADS+ their
    /// summary sweeps, and the three data-series trees fan their candidate
    /// leaves out over workers; the R*-tree and M-tree answer through the
    /// engine's serial fallback.
    pub fn supports_intra(&self) -> bool {
        matches!(
            self,
            MethodKind::UcrSuite
                | MethodKind::Mass
                | MethodKind::Stepwise
                | MethodKind::VaPlusFile
                | MethodKind::AdsPlus
                | MethodKind::DsTree
                | MethodKind::Isax2Plus
                | MethodKind::SfaTrie
        )
    }

    /// Method-appropriate build options derived from shared defaults: the SFA
    /// trie uses the paper's tuned alphabet of 8, the R*-tree a smaller
    /// dimensionality, the M-tree a smaller leaf.
    pub fn tuned_options(&self, base: &BuildOptions, series_length: usize) -> BuildOptions {
        let mut o = base.clone();
        o.segments = o.segments.min(series_length);
        match self {
            MethodKind::SfaTrie => o.with_alphabet_size(8),
            MethodKind::RStarTree => {
                let segments = o.segments.min(8);
                o.with_segments(segments)
                    .with_leaf_capacity(base.leaf_capacity.clamp(2, 64))
            }
            MethodKind::MTree => o.with_leaf_capacity(base.leaf_capacity.clamp(2, 64)),
            _ => o,
        }
    }

    /// Builds this method over an instrumented store with (method-tuned)
    /// options, as the uniform dyn-dispatch interface.
    pub fn build_boxed_on_store(
        &self,
        store: Arc<DatasetStore>,
        options: &BuildOptions,
    ) -> Result<Box<dyn AnsweringMethod>> {
        let tuned = self.tuned_options(options, store.series_length());
        Ok(match self {
            MethodKind::UcrSuite => Box::new(UcrScan::new(store)),
            MethodKind::Mass => Box::new(MassScan::new(store)),
            MethodKind::Stepwise => Box::new(Stepwise::build(store)?),
            MethodKind::VaPlusFile => Box::new(VaPlusFile::build_on_store(store, &tuned)?),
            MethodKind::Isax2Plus => Box::new(Isax2Plus::build_on_store(store, &tuned)?),
            MethodKind::AdsPlus => Box::new(AdsPlus::build_on_store(store, &tuned)?),
            MethodKind::DsTree => Box::new(DsTree::build_on_store(store, &tuned)?),
            MethodKind::SfaTrie => Box::new(SfaTrie::build_on_store(store, &tuned)?),
            MethodKind::RStarTree => Box::new(RStarTree::build_on_store(store, &tuned)?),
            MethodKind::MTree => Box::new(MTree::build_on_store(store, &tuned)?),
        })
    }

    /// Builds this method over `dataset` (wrapping it in a fresh instrumented
    /// store) as the uniform dyn-dispatch interface.
    pub fn build_boxed(
        &self,
        dataset: &Dataset,
        options: &BuildOptions,
    ) -> Result<Box<dyn AnsweringMethod>> {
        self.build_boxed_on_store(Arc::new(DatasetStore::new(dataset.clone())), options)
    }

    /// Builds this method over an instrumented store and wraps it in a
    /// [`QueryEngine`] wired to the store's I/O counters.
    ///
    /// Construction time and I/O are measured and recorded on the engine, and
    /// the counters are reset afterwards so the first query starts clean.
    pub fn engine_on_store(
        &self,
        store: Arc<DatasetStore>,
        options: &BuildOptions,
    ) -> Result<QueryEngine> {
        store.reset_io();
        let clock = RunClock::start();
        let method = self.build_boxed_on_store(store.clone(), options)?;
        let build_time = clock.elapsed();
        let build_io = store.io_snapshot();
        store.reset_io();
        Ok(QueryEngine::new(method, store.len())
            .with_io_source(store)
            .with_build_measurement(build_time, build_io))
    }

    /// Builds this method over `dataset` and wraps it in a measuring
    /// [`QueryEngine`] (see [`MethodKind::engine_on_store`]).
    pub fn engine(&self, dataset: &Dataset, options: &BuildOptions) -> Result<QueryEngine> {
        self.engine_on_store(Arc::new(DatasetStore::new(dataset.clone())), options)
    }

    /// Whether this method can persist its built index as an on-disk snapshot
    /// (see [`hydra_core::persist::PersistentIndex`]).
    pub fn supports_snapshots(&self) -> bool {
        matches!(
            self,
            MethodKind::VaPlusFile
                | MethodKind::Isax2Plus
                | MethodKind::AdsPlus
                | MethodKind::DsTree
                | MethodKind::SfaTrie
        )
    }

    /// Builds this method with the snapshot cache under `index_dir`: a valid
    /// snapshot (matching dataset fingerprint and tuned build options) is
    /// loaded instead of rebuilding; otherwise the method is built fresh and
    /// a snapshot is saved for the next run. Methods without snapshot support
    /// always build fresh.
    ///
    /// Snapshot reads and writes go through real file I/O charged to the
    /// store's counters, so they show up in the build measurement exactly
    /// like the modelled index writes they replace.
    pub fn build_boxed_with_snapshot(
        &self,
        store: Arc<DatasetStore>,
        options: &BuildOptions,
        index_dir: &Path,
    ) -> Result<(Box<dyn AnsweringMethod>, SnapshotOutcome)> {
        let tuned = self.tuned_options(options, store.series_length());
        match self {
            MethodKind::VaPlusFile => {
                snapshot_cycle(store, &tuned, index_dir, VaPlusFile::build_on_store)
            }
            MethodKind::Isax2Plus => {
                snapshot_cycle(store, &tuned, index_dir, Isax2Plus::build_on_store)
            }
            MethodKind::AdsPlus => {
                snapshot_cycle(store, &tuned, index_dir, AdsPlus::build_on_store)
            }
            MethodKind::DsTree => snapshot_cycle(store, &tuned, index_dir, DsTree::build_on_store),
            MethodKind::SfaTrie => {
                snapshot_cycle(store, &tuned, index_dir, SfaTrie::build_on_store)
            }
            _ => {
                debug_assert!(
                    !self.supports_snapshots(),
                    "{}: supports_snapshots() promises a snapshot path this match does not provide",
                    self.name()
                );
                Ok((
                    self.build_boxed_on_store(store, options)?,
                    SnapshotOutcome::Unsupported,
                ))
            }
        }
    }

    /// Like [`MethodKind::engine_on_store`], but routed through the snapshot
    /// cache under `index_dir` (see [`MethodKind::build_boxed_with_snapshot`]).
    /// The engine's build measurement covers whichever path ran: a counted
    /// snapshot load, or a fresh build plus the snapshot save.
    pub fn engine_with_snapshot(
        &self,
        store: Arc<DatasetStore>,
        options: &BuildOptions,
        index_dir: &Path,
    ) -> Result<(QueryEngine, SnapshotOutcome)> {
        store.reset_io();
        let clock = RunClock::start();
        let (method, outcome) =
            self.build_boxed_with_snapshot(store.clone(), options, index_dir)?;
        let build_time = clock.elapsed();
        let build_io = store.io_snapshot();
        store.reset_io();
        let engine = QueryEngine::new(method, store.len())
            .with_io_source(store)
            .with_build_measurement(build_time, build_io);
        Ok((engine, outcome))
    }

    /// Builds a sharded [`QueryService`] serving this method: the dataset is
    /// partitioned into `config.shards` contiguous ranges and a fresh
    /// per-shard engine (see [`MethodKind::engine_on_store`]) is built over
    /// each partition.
    pub fn service(
        &self,
        dataset: &Dataset,
        options: &BuildOptions,
        config: ServeConfig,
    ) -> Result<QueryService> {
        let kind = *self;
        let options = options.clone();
        QueryService::build(dataset, config, move |_, store| {
            kind.engine_on_store(store, &options)
        })
    }

    /// Like [`MethodKind::service`], but each shard's engine goes through the
    /// snapshot cache (see [`MethodKind::engine_with_snapshot`]) under its own
    /// `<index_dir>/shard-<i>-of-<n>` directory, so a restarted service
    /// reloads its per-shard indexes instead of rebuilding them. The shard
    /// count is part of the directory name because each shard's snapshot is
    /// fingerprinted over its *partition*, not the full dataset: snapshots
    /// from different shard counts must not shadow each other.
    pub fn service_with_snapshot(
        &self,
        dataset: &Dataset,
        options: &BuildOptions,
        config: ServeConfig,
        index_dir: &Path,
    ) -> Result<QueryService> {
        let kind = *self;
        let options = options.clone();
        let index_dir = index_dir.to_path_buf();
        let shard_count = config.shards;
        QueryService::build(dataset, config, move |shard, store| {
            let shard_dir = index_dir.join(format!("shard-{shard}-of-{shard_count}"));
            kind.engine_with_snapshot(store, &options, &shard_dir)
                .map(|(engine, _)| engine)
        })
    }
}

/// How a snapshot-aware build satisfied the request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotOutcome {
    /// The method does not persist snapshots; it was built fresh.
    Unsupported,
    /// A valid snapshot of `bytes` bytes was loaded; the rebuild was skipped.
    Loaded {
        /// Size of the snapshot file read.
        bytes: u64,
    },
    /// No snapshot existed yet; the index was built fresh and a snapshot of
    /// `bytes` bytes was saved.
    Saved {
        /// Size of the snapshot file written.
        bytes: u64,
    },
    /// A snapshot existed but was corrupt or stale: the damaged file was
    /// quarantined (renamed `*.corrupt`), the index rebuilt fresh, and a
    /// replacement snapshot of `bytes` bytes saved.
    Recovered {
        /// Size of the replacement snapshot file written.
        bytes: u64,
    },
}

impl SnapshotOutcome {
    /// Whether a snapshot load satisfied the build (the rebuild was skipped).
    pub fn loaded(&self) -> bool {
        matches!(self, SnapshotOutcome::Loaded { .. })
    }

    /// Whether a damaged snapshot was quarantined and replaced.
    pub fn recovered(&self) -> bool {
        matches!(self, SnapshotOutcome::Recovered { .. })
    }
}

/// One load-or-build-and-save round through the snapshot cache. A missing
/// file falls back to a fresh build and save; a damaged or stale file is
/// first quarantined (renamed `*.corrupt`) so the rebuilt snapshot replaces
/// it cleanly and the evidence survives for inspection, and the outcome is
/// reported as [`SnapshotOutcome::Recovered`].
fn snapshot_cycle<I, F>(
    store: Arc<DatasetStore>,
    tuned: &BuildOptions,
    index_dir: &Path,
    build: F,
) -> Result<(Box<dyn AnsweringMethod>, SnapshotOutcome)>
where
    I: PersistentIndex<Context = Arc<DatasetStore>> + 'static,
    F: FnOnce(Arc<DatasetStore>, &BuildOptions) -> Result<I>,
{
    // hydra-lint: allow(uncounted-fs) dir setup only; index bytes use the counted SnapshotSink
    std::fs::create_dir_all(index_dir)?;
    // Hash the dataset exactly once per cycle: the same fingerprints name the
    // file and validate its header on load / stamp it on save.
    let dataset_fp = snapshot::dataset_fingerprint(store.dataset());
    let options_fp = snapshot::options_fingerprint(tuned);
    let path = index_dir.join(snapshot::snapshot_file_name(
        I::snapshot_kind(),
        dataset_fp,
        options_fp,
    ));
    match snapshot::load_index_with::<I>(store.clone(), dataset_fp, options_fp, &path) {
        Ok((index, bytes)) => Ok((Box::new(index), SnapshotOutcome::Loaded { bytes })),
        Err(load_err) => {
            let damaged = matches!(
                load_err,
                hydra_core::Error::InvalidSnapshot(_) | hydra_core::Error::StaleSnapshot(_)
            );
            if damaged {
                snapshot::quarantine(&path)?;
            }
            let index = build(store.clone(), tuned)?;
            let bytes = snapshot::save_index_with(&index, &store, dataset_fp, options_fp, &path)?;
            let outcome = if damaged {
                SnapshotOutcome::Recovered { bytes }
            } else {
                SnapshotOutcome::Saved { bytes }
            };
            Ok((Box::new(index), outcome))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::Query;
    use hydra_data::RandomWalkGenerator;

    #[test]
    fn every_registered_method_builds_and_answers() {
        let data = RandomWalkGenerator::new(1, 64).dataset(120);
        let options = BuildOptions::default()
            .with_leaf_capacity(16)
            .with_train_samples(50);
        let query = Query::nearest_neighbor(data.series(3).to_owned_series());
        for kind in MethodKind::ALL {
            let mut engine = kind.engine(&data, &options).unwrap();
            assert_eq!(engine.descriptor().name, kind.name());
            assert_eq!(
                engine.footprint().is_some(),
                kind.is_index(),
                "{}",
                kind.name()
            );
            let ans = engine.answer_simple(&query).unwrap();
            assert_eq!(
                ans.nearest().unwrap().id,
                3,
                "{} missed the member query",
                kind.name()
            );
            assert_eq!(engine.queries_answered(), 1);
        }
    }

    #[test]
    fn all_ten_methods_match_the_ucr_baseline_through_build_boxed() {
        // The registry smoke test: every MethodKind built through the uniform
        // dyn interface must answer k-NN queries with exactly the brute-force
        // scan's distances (the paper's exactness invariant).
        let data = RandomWalkGenerator::new(7, 96).dataset(250);
        let options = BuildOptions::default()
            .with_leaf_capacity(25)
            .with_train_samples(100);
        let baseline = MethodKind::UcrSuite.build_boxed(&data, &options).unwrap();
        let queries: Vec<Query> = RandomWalkGenerator::new(1234, 96)
            .series_batch(4)
            .into_iter()
            .map(|s| Query::knn(s, 5))
            .collect();
        let expected_answers: Vec<_> = queries
            .iter()
            .map(|q| baseline.answer_simple(q).unwrap())
            .collect();
        for kind in MethodKind::ALL {
            let method = kind.build_boxed(&data, &options).unwrap();
            for (qi, (query, expected)) in queries.iter().zip(&expected_answers).enumerate() {
                let got = method.answer_simple(query).unwrap();
                assert!(
                    got.distances_match(expected, 1e-4),
                    "{} diverged from UCR-Suite on query {qi}: {:?} vs {:?}",
                    kind.name(),
                    got.answers(),
                    expected.answers(),
                );
            }
        }
    }

    #[test]
    fn snapshot_support_matches_the_snapshot_build_path() {
        // supports_snapshots() must agree with what build_boxed_with_snapshot
        // actually does for every method, or snapshot_check would silently
        // skip a persistent method's verification.
        let data = RandomWalkGenerator::new(1, 32).dataset(60);
        let options = BuildOptions::default()
            .with_leaf_capacity(10)
            .with_train_samples(30);
        let dir = std::env::temp_dir().join(format!("hydra-registry-snap-{}", std::process::id()));
        for kind in MethodKind::ALL {
            let store = Arc::new(DatasetStore::new(data.clone()));
            let (_, outcome) = kind.engine_with_snapshot(store, &options, &dir).unwrap();
            assert_eq!(
                outcome != SnapshotOutcome::Unsupported,
                kind.supports_snapshots(),
                "{}",
                kind.name()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_is_quarantined_and_the_next_run_loads_clean() {
        let data = RandomWalkGenerator::new(5, 32).dataset(80);
        let options = BuildOptions::default()
            .with_leaf_capacity(10)
            .with_train_samples(30);
        let dir =
            std::env::temp_dir().join(format!("hydra-registry-quarantine-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kind = MethodKind::DsTree;
        let store = || Arc::new(DatasetStore::new(data.clone()));

        // First run: no snapshot yet, built fresh and saved.
        let (_, first) = kind.engine_with_snapshot(store(), &options, &dir).unwrap();
        assert!(matches!(first, SnapshotOutcome::Saved { .. }));

        // Damage the snapshot file in place.
        let snap_path = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_none_or(|e| e != "corrupt"))
            .expect("snapshot file exists");
        let mut bytes = std::fs::read(&snap_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&snap_path, &bytes).unwrap();

        // Second run: the damaged file is quarantined and replaced.
        let (_, second) = kind.engine_with_snapshot(store(), &options, &dir).unwrap();
        assert!(second.recovered(), "got {second:?}");
        let mut quarantined = snap_path.clone().into_os_string();
        quarantined.push(".corrupt");
        assert!(
            std::path::Path::new(&quarantined).exists(),
            "damaged file kept for inspection"
        );

        // Third run: the replacement snapshot loads clean.
        let (_, third) = kind.engine_with_snapshot(store(), &options, &dir).unwrap();
        assert!(third.loaded(), "got {third:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn registry_mode_capabilities_match_the_built_descriptors() {
        let data = RandomWalkGenerator::new(1, 32).dataset(60);
        let options = BuildOptions::default()
            .with_leaf_capacity(10)
            .with_train_samples(30);
        for kind in MethodKind::ALL {
            let method = kind.build_boxed(&data, &options).unwrap();
            assert_eq!(
                method.descriptor().modes,
                kind.modes(),
                "{} capability drift between registry and descriptor",
                kind.name()
            );
            assert!(kind.supports_mode(AnswerMode::Exact), "{}", kind.name());
        }
    }

    #[test]
    fn registry_batch_capability_matches_the_built_methods() {
        let data = RandomWalkGenerator::new(1, 32).dataset(60);
        let options = BuildOptions::default()
            .with_leaf_capacity(10)
            .with_train_samples(30);
        for kind in MethodKind::ALL {
            let method = kind.build_boxed(&data, &options).unwrap();
            assert_eq!(
                method.batch_answering().is_some(),
                kind.supports_batch(),
                "{} batch-capability drift between registry and method",
                kind.name()
            );
        }
    }

    #[test]
    fn registry_intra_capability_matches_the_built_methods() {
        let data = RandomWalkGenerator::new(1, 32).dataset(60);
        let options = BuildOptions::default()
            .with_leaf_capacity(10)
            .with_train_samples(30);
        for kind in MethodKind::ALL {
            let method = kind.build_boxed(&data, &options).unwrap();
            assert_eq!(
                method.intra_answering().is_some(),
                kind.supports_intra(),
                "{} intra-capability drift between registry and method",
                kind.name()
            );
        }
    }

    #[test]
    fn sharded_services_build_and_answer_for_any_method() {
        let data = RandomWalkGenerator::new(11, 48).dataset(90);
        let options = BuildOptions::default()
            .with_leaf_capacity(10)
            .with_train_samples(40);
        let query = Query::knn(data.series(7).to_owned_series(), 3);
        for kind in [MethodKind::UcrSuite, MethodKind::AdsPlus] {
            let unsharded = kind
                .engine(&data, &options)
                .unwrap()
                .answer(&query)
                .unwrap();
            let config = ServeConfig {
                shards: 3,
                ..ServeConfig::default()
            };
            let service = kind.service(&data, &options, config).unwrap();
            assert_eq!(service.shards().len(), 3, "{}", kind.name());
            let served = service.answer(query.clone()).unwrap();
            assert_eq!(
                served.answers,
                unsharded.answers,
                "{}: exact scatter-gather must match the unsharded engine",
                kind.name()
            );
        }
    }

    #[test]
    fn snapshot_backed_services_reload_per_shard_indexes() {
        let data = RandomWalkGenerator::new(13, 32).dataset(60);
        let options = BuildOptions::default()
            .with_leaf_capacity(10)
            .with_train_samples(30);
        let dir =
            std::env::temp_dir().join(format!("hydra-registry-serve-snap-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = || ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        };
        let query = Query::knn(data.series(5).to_owned_series(), 4);
        let kind = MethodKind::DsTree;
        let cold = kind
            .service_with_snapshot(&data, &options, config(), &dir)
            .unwrap();
        let cold_answer = cold.answer(query.clone()).unwrap();
        // Each shard persisted under its own directory, keyed by shard count.
        for shard in 0..2 {
            let shard_dir = dir.join(format!("shard-{shard}-of-2"));
            assert!(shard_dir.is_dir(), "missing {}", shard_dir.display());
        }
        // A rebuilt service loads the per-shard snapshots and answers the same.
        let warm = kind
            .service_with_snapshot(&data, &options, config(), &dir)
            .unwrap();
        let warm_answer = warm.answer(query).unwrap();
        assert_eq!(warm_answer.answers, cold_answer.answers);
        assert_eq!(warm_answer.guarantee, cold_answer.guarantee);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn names_are_unique_and_best_six_is_a_subset() {
        let mut names: Vec<&str> = MethodKind::ALL.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 10);
        for k in MethodKind::BEST_SIX {
            assert!(MethodKind::ALL.contains(&k));
        }
    }

    #[test]
    fn tuned_options_respect_method_quirks() {
        let base = BuildOptions::default()
            .with_segments(16)
            .with_leaf_capacity(1000);
        assert_eq!(
            MethodKind::SfaTrie.tuned_options(&base, 256).alphabet_size,
            8
        );
        assert!(
            MethodKind::RStarTree
                .tuned_options(&base, 256)
                .leaf_capacity
                <= 64
        );
        assert!(MethodKind::MTree.tuned_options(&base, 256).leaf_capacity <= 64);
        assert_eq!(MethodKind::DsTree.tuned_options(&base, 8).segments, 8);
    }
}

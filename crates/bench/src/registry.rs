//! A registry of the ten evaluated methods, buildable by name.

use hydra_core::{AnsweringMethod, BuildOptions, ExactIndex, IndexFootprint, Result};
use hydra_dstree::DsTree;
use hydra_isax::{AdsPlus, Isax2Plus};
use hydra_mtree::MTree;
use hydra_rtree::RStarTree;
use hydra_scan::{MassScan, Stepwise, UcrScan};
use hydra_sfa::SfaTrie;
use hydra_storage::DatasetStore;
use hydra_vafile::VaPlusFile;
use std::sync::Arc;

/// The ten similarity search methods of the study.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// The optimized serial-scan baseline.
    UcrSuite,
    /// FFT-based whole-matching scan.
    Mass,
    /// Level-wise DHWT filter.
    Stepwise,
    /// DFT + non-uniform quantization filter file.
    VaPlusFile,
    /// iSAX tree with materialized leaves.
    Isax2Plus,
    /// Adaptive iSAX tree with SIMS skip-sequential exact search.
    AdsPlus,
    /// EAPCA-based adaptive tree.
    DsTree,
    /// Symbolic Fourier Approximation trie.
    SfaTrie,
    /// Spatial index over PAA summaries.
    RStarTree,
    /// Metric-space index.
    MTree,
}

impl MethodKind {
    /// All ten methods, in the order Table 1 lists them.
    pub const ALL: [MethodKind; 10] = [
        MethodKind::AdsPlus,
        MethodKind::DsTree,
        MethodKind::Isax2Plus,
        MethodKind::MTree,
        MethodKind::RStarTree,
        MethodKind::SfaTrie,
        MethodKind::VaPlusFile,
        MethodKind::UcrSuite,
        MethodKind::Mass,
        MethodKind::Stepwise,
    ];

    /// The six methods that survive the paper's individual evaluation
    /// (Section 4.3.2) and are compared in detail in Section 4.3.3.
    pub const BEST_SIX: [MethodKind; 6] = [
        MethodKind::AdsPlus,
        MethodKind::DsTree,
        MethodKind::Isax2Plus,
        MethodKind::SfaTrie,
        MethodKind::UcrSuite,
        MethodKind::VaPlusFile,
    ];

    /// The canonical display name.
    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::UcrSuite => "UCR-Suite",
            MethodKind::Mass => "MASS",
            MethodKind::Stepwise => "Stepwise",
            MethodKind::VaPlusFile => "VA+file",
            MethodKind::Isax2Plus => "iSAX2+",
            MethodKind::AdsPlus => "ADS+",
            MethodKind::DsTree => "DSTree",
            MethodKind::SfaTrie => "SFA",
            MethodKind::RStarTree => "R*-tree",
            MethodKind::MTree => "M-tree",
        }
    }

    /// True if the method builds a persistent index (false for scans and
    /// multi-step filters).
    pub fn is_index(&self) -> bool {
        !matches!(self, MethodKind::UcrSuite | MethodKind::Mass | MethodKind::Stepwise)
    }

    /// Method-appropriate build options derived from shared defaults: the SFA
    /// trie uses the paper's tuned alphabet of 8, the R*-tree a smaller
    /// dimensionality, the M-tree a smaller leaf.
    pub fn tuned_options(&self, base: &BuildOptions, series_length: usize) -> BuildOptions {
        let mut o = base.clone();
        o.segments = o.segments.min(series_length);
        match self {
            MethodKind::SfaTrie => o.with_alphabet_size(8),
            MethodKind::RStarTree => {
                let segments = o.segments.min(8);
                o.with_segments(segments).with_leaf_capacity(base.leaf_capacity.clamp(2, 64))
            }
            MethodKind::MTree => o.with_leaf_capacity(base.leaf_capacity.clamp(2, 64)),
            _ => o,
        }
    }
}

/// A built method: the answering interface plus optional index metadata.
pub struct BuiltMethod {
    /// Which method this is.
    pub kind: MethodKind,
    /// The query-answering interface.
    pub method: Box<dyn AnsweringMethod>,
    /// The index footprint, when the method builds an index.
    pub footprint: Option<IndexFootprint>,
}

/// Builds a method over an instrumented store with (method-tuned) options.
pub fn build_method(
    kind: MethodKind,
    store: Arc<DatasetStore>,
    options: &BuildOptions,
) -> Result<BuiltMethod> {
    let tuned = kind.tuned_options(options, store.series_length());
    let (method, footprint): (Box<dyn AnsweringMethod>, Option<IndexFootprint>) = match kind {
        MethodKind::UcrSuite => (Box::new(UcrScan::new(store)), None),
        MethodKind::Mass => (Box::new(MassScan::new(store)), None),
        MethodKind::Stepwise => (Box::new(Stepwise::build(store)?), None),
        MethodKind::VaPlusFile => {
            let idx = VaPlusFile::build_on_store(store, &tuned)?;
            let fp = idx.footprint();
            (Box::new(idx), Some(fp))
        }
        MethodKind::Isax2Plus => {
            let idx = Isax2Plus::build_on_store(store, &tuned)?;
            let fp = idx.footprint();
            (Box::new(idx), Some(fp))
        }
        MethodKind::AdsPlus => {
            let idx = AdsPlus::build_on_store(store, &tuned)?;
            let fp = idx.footprint();
            (Box::new(idx), Some(fp))
        }
        MethodKind::DsTree => {
            let idx = DsTree::build_on_store(store, &tuned)?;
            let fp = idx.footprint();
            (Box::new(idx), Some(fp))
        }
        MethodKind::SfaTrie => {
            let idx = SfaTrie::build_on_store(store, &tuned)?;
            let fp = idx.footprint();
            (Box::new(idx), Some(fp))
        }
        MethodKind::RStarTree => {
            let idx = RStarTree::build_on_store(store, &tuned)?;
            let fp = idx.footprint();
            (Box::new(idx), Some(fp))
        }
        MethodKind::MTree => {
            let idx = MTree::build_on_store(store, &tuned)?;
            let fp = idx.footprint();
            (Box::new(idx), Some(fp))
        }
    };
    Ok(BuiltMethod { kind, method, footprint })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::Query;
    use hydra_data::RandomWalkGenerator;

    #[test]
    fn every_registered_method_builds_and_answers() {
        let data = RandomWalkGenerator::new(1, 64).dataset(120);
        let options = BuildOptions::default().with_leaf_capacity(16).with_train_samples(50);
        let query = Query::nearest_neighbor(data.series(3).to_owned_series());
        for kind in MethodKind::ALL {
            let store = Arc::new(DatasetStore::new(data.clone()));
            let built = build_method(kind, store, &options).unwrap();
            assert_eq!(built.kind, kind);
            assert_eq!(built.footprint.is_some(), kind.is_index(), "{}", kind.name());
            let ans = built.method.answer_simple(&query).unwrap();
            assert_eq!(ans.nearest().unwrap().id, 3, "{} missed the member query", kind.name());
        }
    }

    #[test]
    fn names_are_unique_and_best_six_is_a_subset() {
        let mut names: Vec<&str> = MethodKind::ALL.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 10);
        for k in MethodKind::BEST_SIX {
            assert!(MethodKind::ALL.contains(&k));
        }
    }

    #[test]
    fn tuned_options_respect_method_quirks() {
        let base = BuildOptions::default().with_segments(16).with_leaf_capacity(1000);
        assert_eq!(MethodKind::SfaTrie.tuned_options(&base, 256).alphabet_size, 8);
        assert!(MethodKind::RStarTree.tuned_options(&base, 256).leaf_capacity <= 64);
        assert!(MethodKind::MTree.tuned_options(&base, 256).leaf_capacity <= 64);
        assert_eq!(MethodKind::DsTree.tuned_options(&base, 8).segments, 8);
    }
}

//! The experiment runner: timed builds, timed query workloads, extrapolation,
//! and platform cost models.

use crate::registry::{build_method, BuiltMethod, MethodKind};
use hydra_core::{BuildOptions, Dataset, Query, QueryStats, Result};
use hydra_data::QueryWorkload;
use hydra_storage::{CostModel, DatasetStore, IoSnapshot, StorageProfile};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The hardware platform an experiment models (the paper's two servers plus
/// an in-memory setting).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Platform {
    /// RAID0 HDD server (fast sequential, expensive seeks).
    Hdd,
    /// SATA SSD server (cheap seeks, lower sequential throughput).
    Ssd,
    /// Dataset fits in memory.
    InMemory,
}

impl Platform {
    /// The cost model for this platform.
    pub fn cost_model(&self) -> CostModel {
        match self {
            Platform::Hdd => CostModel::for_profile(StorageProfile::Hdd),
            Platform::Ssd => CostModel::for_profile(StorageProfile::Ssd),
            Platform::InMemory => CostModel::for_profile(StorageProfile::InMemory),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Platform::Hdd => "HDD",
            Platform::Ssd => "SSD",
            Platform::InMemory => "in-memory",
        }
    }
}

/// Measurement of one index-construction run.
#[derive(Clone, Debug)]
pub struct BuildMeasurement {
    /// Which method was built.
    pub kind: MethodKind,
    /// Measured CPU (wall) time of the build.
    pub cpu_time: Duration,
    /// I/O counted during the build (one sequential read pass plus writes).
    pub io: IoSnapshot,
    /// The footprint of the built structure, if it is an index.
    pub footprint: Option<hydra_core::IndexFootprint>,
}

impl BuildMeasurement {
    /// The modelled total build time on `platform` (CPU + read I/O + writes).
    pub fn total_time(&self, platform: Platform) -> Duration {
        self.cpu_time + platform.cost_model().total_time(&self.io)
    }
}

/// Measurement of one query.
#[derive(Clone, Debug)]
pub struct QueryMeasurement {
    /// Measured CPU time.
    pub cpu_time: Duration,
    /// Counted I/O.
    pub io: IoSnapshot,
    /// Work counters (pruning, leaf visits, ...).
    pub stats: QueryStats,
}

impl QueryMeasurement {
    /// The modelled total time of this query on `platform`.
    pub fn total_time(&self, platform: Platform) -> Duration {
        self.cpu_time + platform.cost_model().io_time(&self.io)
    }
}

/// Aggregated measurement of a query workload run.
#[derive(Clone, Debug)]
pub struct WorkloadMeasurement {
    /// Which method answered the workload.
    pub kind: MethodKind,
    /// Per-query measurements, in workload order.
    pub queries: Vec<QueryMeasurement>,
    /// The dataset size the workload ran against (for pruning ratios).
    pub dataset_size: usize,
}

impl WorkloadMeasurement {
    /// Total modelled time of the workload on `platform`.
    pub fn total_time(&self, platform: Platform) -> Duration {
        self.queries.iter().map(|q| q.total_time(platform)).sum()
    }

    /// Total CPU time.
    pub fn cpu_time(&self) -> Duration {
        self.queries.iter().map(|q| q.cpu_time).sum()
    }

    /// Total modelled I/O time on `platform`.
    pub fn io_time(&self, platform: Platform) -> Duration {
        self.queries.iter().map(|q| platform.cost_model().io_time(&q.io)).sum()
    }

    /// Summed I/O counters across the workload.
    pub fn total_io(&self) -> IoSnapshot {
        let mut io = IoSnapshot::default();
        for q in &self.queries {
            io.sequential_pages += q.io.sequential_pages;
            io.random_pages += q.io.random_pages;
            io.bytes_read += q.io.bytes_read;
            io.bytes_written += q.io.bytes_written;
        }
        io
    }

    /// Mean pruning ratio over the workload.
    pub fn mean_pruning_ratio(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries.iter().map(|q| q.stats.pruning_ratio(self.dataset_size)).sum::<f64>()
            / self.queries.len() as f64
    }

    /// Per-query pruning ratios.
    pub fn pruning_ratios(&self) -> Vec<f64> {
        self.queries.iter().map(|q| q.stats.pruning_ratio(self.dataset_size)).collect()
    }

    /// The paper's extrapolation to a larger workload: drop the 5 best / 5
    /// worst per-query times and multiply the trimmed mean by
    /// `target_queries`. Falls back to a plain mean when there are fewer than
    /// 11 queries.
    pub fn extrapolated_time(&self, platform: Platform, target_queries: usize) -> Duration {
        let times: Vec<f64> =
            self.queries.iter().map(|q| q.total_time(platform).as_secs_f64()).collect();
        let total = QueryWorkload::extrapolate_total_seconds(&times, target_queries)
            .unwrap_or_else(|| {
                let mean = times.iter().sum::<f64>() / times.len().max(1) as f64;
                mean * target_queries as f64
            });
        Duration::from_secs_f64(total)
    }

    /// The average total time of the queries at the given indices (used for
    /// the Easy-20 / Hard-20 scenarios).
    pub fn mean_time_of(&self, indices: &[usize], platform: Platform) -> Duration {
        if indices.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = indices.iter().map(|&i| self.queries[i].total_time(platform)).sum();
        total / indices.len() as u32
    }
}

/// Builds a method over `dataset`, measuring build time and I/O.
pub fn run_build(
    kind: MethodKind,
    dataset: &Dataset,
    options: &BuildOptions,
) -> Result<(Arc<DatasetStore>, BuiltMethod, BuildMeasurement)> {
    let store = Arc::new(DatasetStore::new(dataset.clone()));
    let clock = Instant::now();
    let built = build_method(kind, store.clone(), options)?;
    let cpu_time = clock.elapsed();
    let io = store.io_snapshot();
    store.reset_io();
    let measurement =
        BuildMeasurement { kind, cpu_time, io, footprint: built.footprint.clone() };
    Ok((store, built, measurement))
}

/// Runs a 1-NN query workload against a built method, measuring each query.
pub fn run_queries(
    built: &BuiltMethod,
    store: &DatasetStore,
    workload: &QueryWorkload,
) -> Result<WorkloadMeasurement> {
    let mut queries = Vec::with_capacity(workload.len());
    for series in workload.queries() {
        store.reset_io();
        let mut stats = QueryStats::default();
        let clock = Instant::now();
        built.method.answer(&Query::nearest_neighbor(series.clone()), &mut stats)?;
        let cpu_time = clock.elapsed();
        // Methods report I/O through their stats (leaf reads are charged
        // there); the store counters cover raw-file traffic. Use whichever
        // recorded more pages so neither accounting path is lost.
        let store_io = store.io_snapshot();
        let stats_io = IoSnapshot {
            sequential_pages: stats.sequential_page_accesses,
            random_pages: stats.random_page_accesses,
            bytes_read: stats.bytes_read,
            bytes_written: 0,
        };
        let io = if stats_io.total_pages() >= store_io.total_pages() { stats_io } else { store_io };
        queries.push(QueryMeasurement { cpu_time, io, stats });
    }
    Ok(WorkloadMeasurement { kind: built.kind, queries, dataset_size: store.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_data::{RandomWalkGenerator, WorkloadSpec};

    fn small_setup() -> (Dataset, QueryWorkload, BuildOptions) {
        let data = RandomWalkGenerator::new(3, 64).dataset(200);
        let workload = QueryWorkload::generate(
            "w",
            &data,
            &WorkloadSpec::controlled(5).with_num_queries(12),
        );
        let options = BuildOptions::default().with_leaf_capacity(20).with_train_samples(50);
        (data, workload, options)
    }

    #[test]
    fn build_and_query_measurements_are_populated() {
        let (data, workload, options) = small_setup();
        let (store, built, build) = run_build(MethodKind::DsTree, &data, &options).unwrap();
        assert!(build.cpu_time > Duration::ZERO);
        assert!(build.io.bytes_written > 0, "index construction must write");
        assert!(build.footprint.is_some());
        let run = run_queries(&built, &store, &workload).unwrap();
        assert_eq!(run.queries.len(), 12);
        assert!(run.total_time(Platform::Hdd) >= run.cpu_time());
        assert!(run.mean_pruning_ratio() > 0.0);
        assert_eq!(run.pruning_ratios().len(), 12);
        assert!(run.total_io().total_pages() > 0);
    }

    #[test]
    fn scan_has_zero_pruning_and_finite_times() {
        let (data, workload, options) = small_setup();
        let (store, built, _) = run_build(MethodKind::UcrSuite, &data, &options).unwrap();
        let run = run_queries(&built, &store, &workload).unwrap();
        assert_eq!(run.mean_pruning_ratio(), 0.0);
        let t10k = run.extrapolated_time(Platform::Hdd, 10_000);
        let t100 = run.total_time(Platform::Hdd);
        assert!(t10k > t100);
    }

    #[test]
    fn platform_models_order_io_costs_sensibly() {
        let (data, workload, options) = small_setup();
        let (store, built, _) = run_build(MethodKind::AdsPlus, &data, &options).unwrap();
        let run = run_queries(&built, &store, &workload).unwrap();
        // ADS+ is seek-heavy: the HDD I/O model must charge it more than SSD.
        assert!(run.io_time(Platform::Hdd) >= run.io_time(Platform::Ssd));
        assert_eq!(Platform::Hdd.name(), "HDD");
        assert_eq!(Platform::InMemory.name(), "in-memory");
    }

    #[test]
    fn mean_time_of_subsets() {
        let (data, workload, options) = small_setup();
        let (store, built, _) = run_build(MethodKind::VaPlusFile, &data, &options).unwrap();
        let run = run_queries(&built, &store, &workload).unwrap();
        let all: Vec<usize> = (0..run.queries.len()).collect();
        let mean_all = run.mean_time_of(&all, Platform::Ssd);
        assert!(mean_all > Duration::ZERO);
        assert_eq!(run.mean_time_of(&[], Platform::Ssd), Duration::ZERO);
    }
}

//! The experiment runner: timed builds, timed query workloads, extrapolation,
//! and platform cost models.
//!
//! Every method is driven through the uniform [`QueryEngine`] built by the
//! registry; the harness only adds workload iteration, extrapolation and the
//! platform cost models on top.

use crate::registry::{MethodKind, SnapshotOutcome};
use hydra_core::{
    AnswerMode, BuildOptions, Dataset, IoSnapshot, Parallelism, Query, QueryEngine, QueryStats,
    Result, RetryPolicy,
};
use hydra_data::QueryWorkload;
use hydra_storage::{CostModel, DatasetStore, FaultConfig, FaultPlan, StorageProfile};
use std::sync::Arc;
use std::time::Duration;

/// The hardware platform an experiment models (the paper's two servers plus
/// an in-memory setting).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Platform {
    /// RAID0 HDD server (fast sequential, expensive seeks).
    Hdd,
    /// SATA SSD server (cheap seeks, lower sequential throughput).
    Ssd,
    /// Dataset fits in memory.
    InMemory,
}

impl Platform {
    /// The cost model for this platform.
    pub fn cost_model(&self) -> CostModel {
        match self {
            Platform::Hdd => CostModel::for_profile(StorageProfile::Hdd),
            Platform::Ssd => CostModel::for_profile(StorageProfile::Ssd),
            Platform::InMemory => CostModel::for_profile(StorageProfile::InMemory),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Platform::Hdd => "HDD",
            Platform::Ssd => "SSD",
            Platform::InMemory => "in-memory",
        }
    }
}

/// Measurement of one index-construction run.
#[derive(Clone, Debug)]
pub struct BuildMeasurement {
    /// Which method was built.
    pub kind: MethodKind,
    /// Measured CPU (wall) time of the build (or of the snapshot load that
    /// replaced it).
    pub cpu_time: Duration,
    /// I/O counted during the build: one sequential read pass plus index
    /// writes for a fresh build, or the counted snapshot read for a load.
    pub io: IoSnapshot,
    /// The footprint of the built structure, if it is an index.
    pub footprint: Option<hydra_core::IndexFootprint>,
    /// How the snapshot cache participated (always
    /// [`SnapshotOutcome::Unsupported`] when no index directory is set).
    pub snapshot: SnapshotOutcome,
}

impl BuildMeasurement {
    /// The modelled total build time on `platform` (CPU + read I/O + writes).
    pub fn total_time(&self, platform: Platform) -> Duration {
        self.cpu_time + platform.cost_model().total_time(&self.io)
    }
}

/// Measurement of one query.
#[derive(Clone, Debug)]
pub struct QueryMeasurement {
    /// Measured CPU time.
    pub cpu_time: Duration,
    /// Work counters (pruning, leaf visits, I/O — reconciled by the engine).
    pub stats: QueryStats,
}

impl QueryMeasurement {
    /// The query's I/O, as reconciled into the stats by the engine.
    pub fn io(&self) -> IoSnapshot {
        self.stats.io_snapshot()
    }

    /// The modelled total time of this query on `platform`.
    pub fn total_time(&self, platform: Platform) -> Duration {
        self.cpu_time + platform.cost_model().io_time(&self.io())
    }
}

/// Aggregated measurement of a query workload run.
#[derive(Clone, Debug)]
pub struct WorkloadMeasurement {
    /// Which method answered the workload.
    pub kind: MethodKind,
    /// Per-query measurements, in workload order.
    pub queries: Vec<QueryMeasurement>,
    /// The dataset size the workload ran against (for pruning ratios).
    pub dataset_size: usize,
}

impl WorkloadMeasurement {
    /// Total modelled time of the workload on `platform`.
    pub fn total_time(&self, platform: Platform) -> Duration {
        self.queries.iter().map(|q| q.total_time(platform)).sum()
    }

    /// Total CPU time.
    pub fn cpu_time(&self) -> Duration {
        self.queries.iter().map(|q| q.cpu_time).sum()
    }

    /// Total modelled I/O time on `platform`.
    pub fn io_time(&self, platform: Platform) -> Duration {
        self.queries
            .iter()
            .map(|q| platform.cost_model().io_time(&q.io()))
            .sum()
    }

    /// Summed I/O counters across the workload.
    pub fn total_io(&self) -> IoSnapshot {
        let mut io = IoSnapshot::default();
        // Query-side writes are never charged (bytes_written stays zero).
        for q in &self.queries {
            let q_io = q.io();
            io.sequential_pages += q_io.sequential_pages;
            io.random_pages += q_io.random_pages;
            io.bytes_read += q_io.bytes_read;
        }
        io
    }

    /// Mean pruning ratio over the workload.
    pub fn mean_pruning_ratio(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries
            .iter()
            .map(|q| q.stats.pruning_ratio(self.dataset_size))
            .sum::<f64>()
            / self.queries.len() as f64
    }

    /// Per-query pruning ratios.
    pub fn pruning_ratios(&self) -> Vec<f64> {
        self.queries
            .iter()
            .map(|q| q.stats.pruning_ratio(self.dataset_size))
            .collect()
    }

    /// The paper's extrapolation to a larger workload: drop the 5 best / 5
    /// worst per-query times and multiply the trimmed mean by
    /// `target_queries`. Falls back to a plain mean when there are fewer than
    /// 11 queries.
    pub fn extrapolated_time(&self, platform: Platform, target_queries: usize) -> Duration {
        let times: Vec<f64> = self
            .queries
            .iter()
            .map(|q| q.total_time(platform).as_secs_f64())
            .collect();
        let total = QueryWorkload::extrapolate_total_seconds(&times, target_queries)
            .unwrap_or_else(|| {
                let mean = times.iter().sum::<f64>() / times.len().max(1) as f64;
                mean * target_queries as f64
            });
        Duration::from_secs_f64(total)
    }

    /// The average total time of the queries at the given indices (used for
    /// the Easy-20 / Hard-20 scenarios).
    pub fn mean_time_of(&self, indices: &[usize], platform: Platform) -> Duration {
        if indices.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = indices
            .iter()
            .map(|&i| self.queries[i].total_time(platform))
            .sum();
        total / indices.len() as u32
    }
}

/// Builds a method over `dataset` through the registry, returning the
/// measuring engine plus the build measurement.
///
/// When an index snapshot directory is configured (`HYDRA_INDEX_DIR`, set by
/// the binaries' `--index-dir` flag), index methods load a valid snapshot
/// instead of rebuilding — keyed on the dataset fingerprint and the tuned
/// build options — and save one after a fresh build, so repeated sweeps pay
/// the construction cost once.
///
/// When a fault seed is configured (`HYDRA_FAULT_SEED`, set by the binaries'
/// `--fault-seed` flag; 0 disables), the store is built with a seeded
/// [`FaultPlan`] at [`FaultConfig::standard`] rates and the engine gets a
/// default retry policy that outlasts every planned transient, so any
/// experiment binary runs under chaos without code changes.
pub fn run_build(
    kind: MethodKind,
    dataset: &Dataset,
    options: &BuildOptions,
) -> Result<(QueryEngine, BuildMeasurement)> {
    let store = Arc::new(fault_planned_store(dataset));
    let chaos = store.fault_plan().is_active();
    let (engine, snapshot) = match crate::cli::index_dir_from_env() {
        Some(dir) => kind.engine_with_snapshot(store, options, &dir)?,
        None => (
            kind.engine_on_store(store, options)?,
            SnapshotOutcome::Unsupported,
        ),
    };
    let engine = if chaos {
        engine.with_retry_policy(RetryPolicy::new(4, 2))
    } else {
        engine
    };
    let measurement = BuildMeasurement {
        kind,
        cpu_time: engine.build_time(),
        io: engine.build_io(),
        footprint: engine.footprint(),
        snapshot,
    };
    Ok((engine, measurement))
}

/// A store over `dataset`, fault-planned when `HYDRA_FAULT_SEED` is set to a
/// nonzero seed (see [`run_build`]).
fn fault_planned_store(dataset: &Dataset) -> DatasetStore {
    let store = DatasetStore::new(dataset.clone());
    match crate::cli::fault_seed_from_env() {
        0 => store,
        seed => store.with_fault_plan(FaultPlan::seeded(seed, FaultConfig::standard())),
    }
}

/// Runs a 1-NN query workload through an engine, measuring each query.
///
/// The worker-thread count comes from the environment (`HYDRA_THREADS`, set
/// by the binaries' `--threads` flag; serial when unset), so does the
/// answering mode (`HYDRA_MODE`, set by `--mode`; exact when unset), and so
/// does the query-batch size (`HYDRA_BATCH`, set by `--batch`; per-query when
/// unset) — every existing experiment runs parallel, mode-aware and batched
/// without code changes. See [`run_queries_with_batch`] for the measurement
/// rules.
pub fn run_queries(
    engine: &mut QueryEngine,
    workload: &QueryWorkload,
) -> Result<WorkloadMeasurement> {
    run_queries_with_batch(
        engine,
        workload,
        Parallelism::from_env(),
        crate::cli::mode_from_env(),
        crate::cli::batch_from_env(),
    )
}

/// Runs a 1-NN query workload through an engine with an explicit thread
/// count in exact mode, measuring each query (see
/// [`run_queries_with_mode`]).
pub fn run_queries_with(
    engine: &mut QueryEngine,
    workload: &QueryWorkload,
    parallelism: Parallelism,
) -> Result<WorkloadMeasurement> {
    run_queries_with_mode(engine, workload, parallelism, AnswerMode::Exact)
}

/// Runs a 1-NN query workload through an engine with an explicit thread
/// count and answering mode, measuring each query.
///
/// The engine resets each worker's counter shard before each query and
/// reconciles store-side traffic with the stats the method recorded itself,
/// so the measurement here is a straight read-out, and per-query work
/// counters are identical for every `parallelism` (only wall-clock `cpu_time`
/// varies with scheduling). The method kind is recovered from the engine's
/// descriptor, so it cannot drift from the engine the caller passes. A mode
/// outside the method's capabilities is a typed `UnsupportedMode` error
/// (the engine's strict fallback policy), never a silent exact run.
pub fn run_queries_with_mode(
    engine: &mut QueryEngine,
    workload: &QueryWorkload,
    parallelism: Parallelism,
    mode: AnswerMode,
) -> Result<WorkloadMeasurement> {
    run_queries_with_batch(engine, workload, parallelism, mode, 0)
}

/// Runs a 1-NN query workload through an engine with an explicit thread
/// count, answering mode and query-batch size, measuring each query.
///
/// With `batch == 0` the workload runs through the per-query
/// `answer_workload` driver; with `batch == N > 0` it runs through
/// `QueryEngine::answer_batch` in chunks of `N` queries, so methods with a
/// native batch kernel amortize one data pass per chunk. Either way the
/// engine guarantees answers and per-query work counters identical to the
/// serial per-query loop for every `parallelism` and batch size (only
/// wall-clock `cpu_time` varies — batched runs report the amortized
/// per-query share). The method kind is recovered from the engine's
/// descriptor, so it cannot drift from the engine the caller passes. A mode
/// outside the method's capabilities is a typed `UnsupportedMode` error
/// (the engine's strict fallback policy), never a silent exact run.
///
/// Every query additionally carries the environment's answering budget
/// (`HYDRA_BUDGET`, set by the binaries' `--budget` flag; unlimited when
/// unset), so deadline-bounded anytime runs need no code changes either.
pub fn run_queries_with_batch(
    engine: &mut QueryEngine,
    workload: &QueryWorkload,
    parallelism: Parallelism,
    mode: AnswerMode,
    batch: usize,
) -> Result<WorkloadMeasurement> {
    let name = engine.descriptor().name;
    let kind = MethodKind::from_name(name).ok_or_else(|| {
        hydra_core::Error::invalid_parameter("engine", format!("unknown method {name:?}"))
    })?;
    let dataset_size = engine.dataset_size();
    let budget = crate::cli::budget_from_env();
    let query_list: Vec<Query> = workload
        .queries()
        .iter()
        .map(|series| {
            Ok(Query::nearest_neighbor(series.clone())
                .try_with_mode(mode)?
                .with_budget(budget))
        })
        .collect::<Result<_>>()?;
    let answered = if batch == 0 {
        engine.answer_workload(&query_list, parallelism)?
    } else {
        let mut all = Vec::with_capacity(query_list.len());
        for chunk in query_list.chunks(batch) {
            all.extend(engine.answer_batch(chunk, parallelism)?);
        }
        all
    };
    let queries = answered
        .into_iter()
        .map(|answered| QueryMeasurement {
            cpu_time: answered.wall_time,
            stats: answered.stats,
        })
        .collect();
    Ok(WorkloadMeasurement {
        kind,
        queries,
        dataset_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_data::{RandomWalkGenerator, WorkloadSpec};

    fn small_setup() -> (Dataset, QueryWorkload, BuildOptions) {
        let data = RandomWalkGenerator::new(3, 64).dataset(200);
        let workload = QueryWorkload::generate(
            "w",
            &data,
            &WorkloadSpec::controlled(5).with_num_queries(12),
        );
        let options = BuildOptions::default()
            .with_leaf_capacity(20)
            .with_train_samples(50);
        (data, workload, options)
    }

    #[test]
    fn build_and_query_measurements_are_populated() {
        let (data, workload, options) = small_setup();
        let (mut engine, build) = run_build(MethodKind::DsTree, &data, &options).unwrap();
        assert!(build.cpu_time > Duration::ZERO);
        assert!(build.io.bytes_written > 0, "index construction must write");
        assert!(build.footprint.is_some());
        let run = run_queries(&mut engine, &workload).unwrap();
        assert_eq!(run.kind, MethodKind::DsTree);
        assert_eq!(run.queries.len(), 12);
        assert!(run.total_time(Platform::Hdd) >= run.cpu_time());
        assert!(run.mean_pruning_ratio() > 0.0);
        assert_eq!(run.pruning_ratios().len(), 12);
        assert!(run.total_io().total_pages() > 0);
        // The engine aggregates the same workload internally.
        assert_eq!(engine.queries_answered(), 12);
        assert!((engine.mean_pruning_ratio() - run.mean_pruning_ratio()).abs() < 1e-9);
    }

    #[test]
    fn scan_has_zero_pruning_and_finite_times() {
        let (data, workload, options) = small_setup();
        let (mut engine, _) = run_build(MethodKind::UcrSuite, &data, &options).unwrap();
        let run = run_queries(&mut engine, &workload).unwrap();
        assert_eq!(run.mean_pruning_ratio(), 0.0);
        let t10k = run.extrapolated_time(Platform::Hdd, 10_000);
        let t100 = run.total_time(Platform::Hdd);
        assert!(t10k > t100);
    }

    #[test]
    fn platform_models_order_io_costs_sensibly() {
        let (data, workload, options) = small_setup();
        let (mut engine, _) = run_build(MethodKind::AdsPlus, &data, &options).unwrap();
        let run = run_queries(&mut engine, &workload).unwrap();
        // ADS+ is seek-heavy: the HDD I/O model must charge it more than SSD.
        assert!(run.io_time(Platform::Hdd) >= run.io_time(Platform::Ssd));
        assert_eq!(Platform::Hdd.name(), "HDD");
        assert_eq!(Platform::InMemory.name(), "in-memory");
    }

    #[test]
    fn parallel_workload_run_matches_serial_counters() {
        let (data, workload, options) = small_setup();
        let (mut serial_engine, _) = run_build(MethodKind::Isax2Plus, &data, &options).unwrap();
        let serial = run_queries_with(&mut serial_engine, &workload, Parallelism::Serial).unwrap();
        serial_engine.reset_totals();
        let parallel =
            run_queries_with(&mut serial_engine, &workload, Parallelism::Threads(4)).unwrap();
        assert_eq!(parallel.queries.len(), serial.queries.len());
        for (s, p) in serial.queries.iter().zip(&parallel.queries) {
            assert_eq!(s.stats.raw_series_examined, p.stats.raw_series_examined);
            assert_eq!(s.stats.leaves_visited, p.stats.leaves_visited);
            assert_eq!(s.io(), p.io());
        }
        assert_eq!(parallel.total_io(), serial.total_io());
        assert!((parallel.mean_pruning_ratio() - serial.mean_pruning_ratio()).abs() < 1e-12);
    }

    #[test]
    fn batched_runs_match_per_query_runs() {
        let (data, workload, options) = small_setup();
        for kind in [MethodKind::UcrSuite, MethodKind::VaPlusFile] {
            let (mut engine, _) = run_build(kind, &data, &options).unwrap();
            let per_query = run_queries_with(&mut engine, &workload, Parallelism::Serial).unwrap();
            engine.reset_totals();
            // A batch size that does not divide the workload exercises the
            // remainder chunk too.
            let batched = run_queries_with_batch(
                &mut engine,
                &workload,
                Parallelism::Serial,
                AnswerMode::Exact,
                5,
            )
            .unwrap();
            assert_eq!(batched.queries.len(), per_query.queries.len());
            for (a, b) in per_query.queries.iter().zip(&batched.queries) {
                assert_eq!(
                    a.stats.raw_series_examined,
                    b.stats.raw_series_examined,
                    "{}",
                    kind.name()
                );
                assert_eq!(a.io(), b.io(), "{}", kind.name());
            }
            assert_eq!(batched.total_io(), per_query.total_io(), "{}", kind.name());
        }
    }

    #[test]
    fn mode_aware_runs_route_through_the_engine() {
        let (data, workload, options) = small_setup();
        // A capable index answers ng-approximate with far less work.
        let (mut engine, _) = run_build(MethodKind::DsTree, &data, &options).unwrap();
        let exact = run_queries_with(&mut engine, &workload, Parallelism::Serial).unwrap();
        let ng = run_queries_with_mode(
            &mut engine,
            &workload,
            Parallelism::Serial,
            AnswerMode::NgApproximate,
        )
        .unwrap();
        let exact_examined: u64 = exact
            .queries
            .iter()
            .map(|q| q.stats.raw_series_examined)
            .sum();
        let ng_examined: u64 = ng.queries.iter().map(|q| q.stats.raw_series_examined).sum();
        assert!(
            ng_examined < exact_examined,
            "{ng_examined} vs {exact_examined}"
        );
        // A scan rejects the mode with a typed error, never a silent run.
        let (mut scan, _) = run_build(MethodKind::UcrSuite, &data, &options).unwrap();
        assert!(matches!(
            run_queries_with_mode(
                &mut scan,
                &workload,
                Parallelism::Serial,
                AnswerMode::NgApproximate
            ),
            Err(hydra_core::Error::UnsupportedMode { .. })
        ));
    }

    #[test]
    fn mean_time_of_subsets() {
        let (data, workload, options) = small_setup();
        let (mut engine, _) = run_build(MethodKind::VaPlusFile, &data, &options).unwrap();
        let run = run_queries(&mut engine, &workload).unwrap();
        let all: Vec<usize> = (0..run.queries.len()).collect();
        let mean_all = run.mean_time_of(&all, Platform::Ssd);
        assert!(mean_all > Duration::ZERO);
        assert_eq!(run.mean_time_of(&[], Platform::Ssd), Duration::ZERO);
    }
}

//! Result-table formatting: aligned plain text for the terminal plus CSV
//! files under `results/` so the experiment outputs can be plotted.

// hydra-lint: allow(uncounted-fs) result-table CSV output is harness reporting
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A simple column-oriented result table.
#[derive(Clone, Debug)]
pub struct ResultTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Appends a row; its length must match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
    }

    /// Renders the table as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:<width$}", h, width = widths[i]))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering into `<dir>/<file_stem>.csv` and returns the
    /// path written.
    pub fn write_csv(&self, dir: &Path, file_stem: &str) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{file_stem}.csv"));
        let mut file = fs::File::create(&path)?;
        file.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }
}

/// Writes a bench bin's JSON artifact to `BENCH_<name>.json` in the current
/// directory (the workspace root under CI, where the workflow uploads them),
/// returning the path written. Every bench bin routes its artifact through
/// here so the naming scheme lives in exactly one place.
pub fn write_bench_artifact(name: &str, json: &str) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(format!("BENCH_{name}.json"));
    let mut file = fs::File::create(&path)?;
    file.write_all(json.as_bytes())?;
    Ok(path)
}

/// The default output directory for experiment results (`results/` at the
/// workspace root, overridable with `HYDRA_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("HYDRA_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Formats a `Duration` with millisecond precision in seconds.
pub fn fmt_secs(d: std::time::Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Formats a ratio as a percentage with one decimal.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn text_rendering_is_aligned_and_complete() {
        let mut t = ResultTable::new("demo", &["method", "time"]);
        t.push_row(vec!["ADS+".into(), "1.5".into()]);
        t.push_row(vec!["a-very-long-method-name".into(), "2".into()]);
        let text = t.to_text();
        assert!(text.contains("## demo"));
        assert!(text.contains("ADS+"));
        assert!(text.contains("a-very-long-method-name"));
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.title(), "demo");
    }

    #[test]
    fn csv_rendering_escapes_commas() {
        let mut t = ResultTable::new("demo", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_are_rejected() {
        let mut t = ResultTable::new("demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_files_are_written() {
        let dir = std::env::temp_dir().join("hydra_bench_report_test");
        let mut t = ResultTable::new("demo", &["a"]);
        t.push_row(vec!["1".into()]);
        let path = t.write_csv(&dir, "demo").unwrap();
        assert!(path.exists());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn bench_artifacts_are_named_uniformly() {
        let path = write_bench_artifact("report_test_demo", "{\"ok\":true}").unwrap();
        assert_eq!(path, PathBuf::from("BENCH_report_test_demo.json"));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":true}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(Duration::from_millis(1500)), "1.5000");
        assert_eq!(fmt_pct(0.725), "72.5%");
        assert!(results_dir().to_string_lossy().contains("results"));
    }
}

//! The experiment implementations, one function per table / figure of the
//! paper's evaluation section. Each returns [`ResultTable`]s that the
//! corresponding binary prints and writes to `results/*.csv`.
//!
//! The experiments run on laptop-scale datasets; sizes are controlled by
//! [`ExperimentScale`] (override with the `HYDRA_SCALE` environment variable:
//! `smoke`, `small` (default), or `full`). Absolute numbers therefore differ
//! from the paper's multi-hundred-GB runs, but the *shapes* — which method
//! wins where, how access patterns change with size, length and hardware —
//! are what `EXPERIMENTS.md` tracks.

use crate::harness::{run_build, run_queries, Platform, WorkloadMeasurement};
use crate::registry::MethodKind;
use crate::report::{fmt_pct, fmt_secs, ResultTable};
use hydra_core::{AnswerMode, BuildOptions, Dataset, Parallelism, Query};
use hydra_data::{
    DomainDataset, DomainGenerator, QueryWorkload, RandomWalkGenerator, WorkloadSpec,
};
use hydra_transforms::eapca::{uniform_segmentation, Eapca};
use hydra_transforms::fft::{dft_lower_bound, dft_summary};
use hydra_transforms::sax::SaxParams;
use hydra_transforms::sfa::{SfaParams, SfaQuantizer};
use hydra_transforms::vaplus::VaPlusQuantizer;
use hydra_transforms::Paa;
use std::time::Duration;

/// Controls how large the experiment datasets are.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExperimentScale {
    /// The number of series in the "100GB-equivalent" reference dataset.
    pub base_series: usize,
    /// The number of queries per workload (the paper uses 100).
    pub queries: usize,
}

impl ExperimentScale {
    /// Tiny datasets for CI smoke runs.
    pub fn smoke() -> Self {
        Self {
            base_series: 1_000,
            queries: 10,
        }
    }

    /// The default laptop-scale setting.
    pub fn small() -> Self {
        Self {
            base_series: 10_000,
            queries: 50,
        }
    }

    /// A larger setting for longer runs.
    pub fn full() -> Self {
        Self {
            base_series: 50_000,
            queries: 100,
        }
    }

    /// Reads the scale from the `HYDRA_SCALE` environment variable.
    pub fn from_env() -> Self {
        match std::env::var("HYDRA_SCALE").as_deref() {
            Ok("smoke") => Self::smoke(),
            Ok("full") => Self::full(),
            _ => Self::small(),
        }
    }

    /// The ladder of dataset sizes standing in for the paper's 25GB → 1TB
    /// sweep: 1/4×, 1/2×, 1×, 2.5× of the reference size.
    pub fn size_ladder(&self) -> Vec<usize> {
        vec![
            self.base_series / 4,
            self.base_series / 2,
            self.base_series,
            self.base_series * 5 / 2,
        ]
    }

    /// The series-length ladder standing in for the paper's 128 → 16384 sweep.
    pub fn length_ladder(&self) -> Vec<usize> {
        vec![64, 128, 256, 512]
    }
}

/// Default build options shared by the experiments.
///
/// The paper fixes 16 segments/coefficients for all fixed summarizations on
/// its 100M-series datasets. At laptop scale (10³–10⁵ series) a 16-segment
/// iSAX root has 2¹⁶ potential children — far more than there are series — so
/// every SAX-family leaf would hold a handful of series and query cost would
/// be dominated by per-leaf seeks, an artifact of the scale-down rather than
/// of the methods. The harness therefore scales the word length to 8 segments
/// (root fanout 256), keeping the ratio of fanout to collection size in the
/// same regime as the paper's setup; `fig8_tlb` keeps the paper's 16
/// coefficients since TLB is independent of tree geometry.
pub fn default_options() -> BuildOptions {
    BuildOptions::default()
        .with_segments(8)
        .with_leaf_capacity(100)
        .with_train_samples(1_000)
        // Index builds use the same worker count as the query workloads
        // (`--threads` / HYDRA_THREADS); the built indexes are identical for
        // every thread count, so measurements stay comparable.
        .with_build_threads(hydra_core::Parallelism::from_env().worker_threads())
}

fn synth_dataset(count: usize, length: usize) -> Dataset {
    RandomWalkGenerator::new(0xDA7A, length).dataset(count)
}

fn rand_workload(dataset: &Dataset, queries: usize) -> QueryWorkload {
    QueryWorkload::generate(
        "Synth-Rand",
        dataset,
        &WorkloadSpec::random(0x5EED).with_num_queries(queries),
    )
}

fn ctrl_workload(name: &str, dataset: &Dataset, queries: usize) -> QueryWorkload {
    QueryWorkload::generate(
        name,
        dataset,
        &WorkloadSpec::controlled(0xC7A1).with_num_queries(queries),
    )
}

/// Table 1: the method property matrix, extended with the answering-mode
/// capability columns of the sequel study.
pub fn methods_table() -> ResultTable {
    let mut table = ResultTable::new(
        "Table 1 — similarity search methods and answering-mode capabilities",
        &[
            "method",
            "representation",
            "kind",
            "exact",
            "ng-approximate",
            "eps-approximate",
            "delta-eps-approximate",
        ],
    );
    let yes_no = |b: bool| if b { "yes" } else { "no" }.to_string();
    let data = synth_dataset(200, 64);
    for kind in MethodKind::ALL {
        let (engine, _) = run_build(kind, &data, &default_options()).expect("build");
        let d = engine.descriptor();
        table.push_row(vec![
            d.name.to_string(),
            d.representation.to_string(),
            if d.is_index {
                "index"
            } else {
                "sequential/multi-step"
            }
            .to_string(),
            yes_no(d.modes.exact),
            yes_no(d.modes.ng_approximate),
            yes_no(d.modes.epsilon_approximate),
            yes_no(d.modes.delta_epsilon),
        ]);
    }
    table
}

/// Figure 2: leaf-size parametrization. For each tunable index, sweep the
/// leaf capacity and report (normalized) build and query times.
pub fn fig2_leaf_size(scale: ExperimentScale) -> ResultTable {
    let mut table = ResultTable::new(
        "Figure 2 — leaf size parametrization (HDD model, times normalized per method)",
        &[
            "method",
            "leaf_capacity",
            "idx_time_s",
            "query_time_s",
            "normalized_total",
        ],
    );
    let dataset = synth_dataset(scale.base_series, 256);
    let workload = rand_workload(&dataset, scale.queries.min(20));
    let methods = [
        (MethodKind::AdsPlus, vec![50usize, 100, 500, 1000]),
        (MethodKind::DsTree, vec![50, 100, 500, 1000]),
        (MethodKind::Isax2Plus, vec![50, 100, 500, 1000]),
        (MethodKind::MTree, vec![2, 10, 25, 50]),
        (MethodKind::RStarTree, vec![8, 16, 32, 64]),
        (MethodKind::SfaTrie, vec![100, 500, 1000, 2000]),
    ];
    for (kind, capacities) in methods {
        let mut rows = Vec::new();
        let mut max_total = 0.0f64;
        for capacity in capacities {
            let options = default_options().with_leaf_capacity(capacity);
            let (mut engine, build) = run_build(kind, &dataset, &options).expect("build");
            let run = run_queries(&mut engine, &workload).expect("queries");
            let idx = build.total_time(Platform::Hdd).as_secs_f64();
            let query = run.total_time(Platform::Hdd).as_secs_f64();
            max_total = max_total.max(idx + query);
            rows.push((capacity, idx, query));
        }
        for (capacity, idx, query) in rows {
            table.push_row(vec![
                kind.name().to_string(),
                capacity.to_string(),
                format!("{idx:.4}"),
                format!("{query:.4}"),
                format!("{:.3}", (idx + query) / max_total.max(1e-12)),
            ]);
        }
    }
    table
}

/// Figure 3: per-method scalability with dataset size, with the CPU vs I/O
/// breakdown of build + 100-query workloads (HDD model).
pub fn fig3_scalability(scale: ExperimentScale) -> ResultTable {
    let mut table = ResultTable::new(
        "Figure 3 — scalability with increasing dataset sizes (HDD model)",
        &[
            "method",
            "dataset_series",
            "idx_cpu_s",
            "idx_io_s",
            "query_cpu_s",
            "query_io_s",
            "total_s",
        ],
    );
    let model = Platform::Hdd;
    for kind in MethodKind::ALL {
        for &size in &scale.size_ladder() {
            // The paper stops M-tree / R*-tree / Stepwise / MASS runs beyond a
            // day; here everything completes, but keep the slow methods on the
            // smaller sizes so the full sweep stays fast.
            let slow = matches!(
                kind,
                MethodKind::MTree | MethodKind::RStarTree | MethodKind::Mass | MethodKind::Stepwise
            );
            if slow && size > scale.base_series {
                continue;
            }
            let dataset = synth_dataset(size, 256);
            let workload = rand_workload(&dataset, scale.queries.min(20));
            let (mut engine, build) = run_build(kind, &dataset, &default_options()).expect("build");
            let run = run_queries(&mut engine, &workload).expect("queries");
            let idx_io = model.cost_model().total_time(&build.io);
            let total = build.cpu_time + idx_io + run.total_time(model);
            table.push_row(vec![
                kind.name().to_string(),
                size.to_string(),
                fmt_secs(build.cpu_time),
                fmt_secs(idx_io),
                fmt_secs(run.cpu_time()),
                fmt_secs(run.io_time(model)),
                fmt_secs(total),
            ]);
        }
    }
    table
}

/// Figure 4: number of sequential and random disk accesses per query for the
/// best six methods, across dataset sizes and series lengths.
pub fn fig4_disk_accesses(scale: ExperimentScale) -> (ResultTable, ResultTable) {
    let headers = &[
        "method",
        "x_value",
        "seq_pages_min",
        "seq_pages_median",
        "seq_pages_max",
        "rand_pages_min",
        "rand_pages_median",
        "rand_pages_max",
    ];
    let mut by_size = ResultTable::new(
        "Figure 4a/4c — disk accesses vs dataset size (series length 256)",
        headers,
    );
    let mut by_length = ResultTable::new(
        "Figure 4b/4d — disk accesses vs series length (reference dataset size)",
        headers,
    );
    let quantiles = |mut values: Vec<u64>| {
        values.sort_unstable();
        let min = *values.first().unwrap_or(&0);
        let max = *values.last().unwrap_or(&0);
        let median = values.get(values.len() / 2).copied().unwrap_or(0);
        (min, median, max)
    };
    let record =
        |table: &mut ResultTable, kind: MethodKind, x: String, run: &WorkloadMeasurement| {
            let seq: Vec<u64> = run
                .queries
                .iter()
                .map(|q| q.io().sequential_pages)
                .collect();
            let rand: Vec<u64> = run.queries.iter().map(|q| q.io().random_pages).collect();
            let (smin, smed, smax) = quantiles(seq);
            let (rmin, rmed, rmax) = quantiles(rand);
            table.push_row(vec![
                kind.name().to_string(),
                x,
                smin.to_string(),
                smed.to_string(),
                smax.to_string(),
                rmin.to_string(),
                rmed.to_string(),
                rmax.to_string(),
            ]);
        };
    for kind in MethodKind::BEST_SIX {
        for &size in &scale.size_ladder() {
            let dataset = synth_dataset(size, 256);
            let workload = rand_workload(&dataset, scale.queries.min(20));
            let (mut engine, _) = run_build(kind, &dataset, &default_options()).expect("build");
            let run = run_queries(&mut engine, &workload).expect("queries");
            record(&mut by_size, kind, size.to_string(), &run);
        }
        for &length in &scale.length_ladder() {
            // Like the paper, the dataset *size in bytes* stays fixed while
            // the length varies, so longer series mean fewer of them.
            let count = (scale.base_series / 2 * 256 / length).max(200);
            let dataset = synth_dataset(count, length);
            let workload = rand_workload(&dataset, scale.queries.min(20));
            let (mut engine, _) = run_build(kind, &dataset, &default_options()).expect("build");
            let run = run_queries(&mut engine, &workload).expect("queries");
            record(&mut by_length, kind, length.to_string(), &run);
        }
    }
    (by_size, by_length)
}

/// Figure 5: scalability with increasing series lengths (fixed dataset size,
/// 16 segments for all summarizations), Idx+Exact100 and Idx+Exact10K.
pub fn fig5_lengths(scale: ExperimentScale) -> ResultTable {
    let mut table = ResultTable::new(
        "Figure 5 — scalability with increasing series lengths (HDD model)",
        &[
            "method",
            "series_length",
            "idx_plus_100_s",
            "idx_plus_10k_s",
        ],
    );
    let model = Platform::Hdd;
    for kind in MethodKind::BEST_SIX {
        for &length in &scale.length_ladder() {
            // Fixed dataset size in bytes (the paper's 100GB), so longer
            // series mean proportionally fewer of them.
            let count = (scale.base_series / 2 * 256 / length).max(200);
            let dataset = synth_dataset(count, length);
            let workload = rand_workload(&dataset, scale.queries.min(20));
            let (mut engine, build) = run_build(kind, &dataset, &default_options()).expect("build");
            let run = run_queries(&mut engine, &workload).expect("queries");
            let idx = build.total_time(model);
            let q100 = run.extrapolated_time(model, 100);
            let q10k = run.extrapolated_time(model, 10_000);
            table.push_row(vec![
                kind.name().to_string(),
                length.to_string(),
                fmt_secs(idx + q100),
                fmt_secs(idx + q10k),
            ]);
        }
    }
    table
}

/// Figures 6 and 7: the scalability comparison of the best six methods for
/// the four scenarios (Idx, Exact100, Idx+Exact100, Idx+Exact10K) on a given
/// platform model.
pub fn fig6_fig7_platform_comparison(scale: ExperimentScale, platform: Platform) -> ResultTable {
    let mut table = ResultTable::new(
        format!(
            "Figures 6/7 — scalability comparison ({} model)",
            platform.name()
        ),
        &[
            "method",
            "dataset_series",
            "idx_s",
            "exact100_s",
            "idx_plus_100_s",
            "idx_plus_10k_s",
        ],
    );
    for kind in MethodKind::BEST_SIX {
        for &size in &scale.size_ladder() {
            let dataset = synth_dataset(size, 256);
            let workload = rand_workload(&dataset, scale.queries.min(20));
            let (mut engine, build) = run_build(kind, &dataset, &default_options()).expect("build");
            let run = run_queries(&mut engine, &workload).expect("queries");
            let idx = build.total_time(platform);
            let exact100 = run.extrapolated_time(platform, 100);
            let exact10k = run.extrapolated_time(platform, 10_000);
            table.push_row(vec![
                kind.name().to_string(),
                size.to_string(),
                fmt_secs(idx),
                fmt_secs(exact100),
                fmt_secs(idx + exact100),
                fmt_secs(idx + exact10k),
            ]);
        }
    }
    table
}

/// Figure 8a–8e: index footprint (node counts, sizes, fill factors) across
/// dataset sizes.
pub fn fig8_footprint(scale: ExperimentScale) -> ResultTable {
    let mut table = ResultTable::new(
        "Figure 8a-8e — index footprint vs dataset size",
        &[
            "method",
            "dataset_series",
            "total_nodes",
            "leaf_nodes",
            "memory_MB",
            "disk_MB",
            "median_fill",
            "max_depth",
        ],
    );
    let indexes = [
        MethodKind::AdsPlus,
        MethodKind::DsTree,
        MethodKind::Isax2Plus,
        MethodKind::SfaTrie,
        MethodKind::VaPlusFile,
    ];
    for kind in indexes {
        for &size in &scale.size_ladder() {
            let dataset = synth_dataset(size, 256);
            let (_, build) = run_build(kind, &dataset, &default_options()).expect("build");
            let fp = build.footprint.expect("index footprint");
            table.push_row(vec![
                kind.name().to_string(),
                size.to_string(),
                fp.total_nodes.to_string(),
                fp.leaf_nodes.to_string(),
                format!("{:.2}", fp.memory_bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.2}", fp.disk_bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.3}", fp.median_fill_factor()),
                fp.max_leaf_depth().to_string(),
            ]);
        }
    }
    table
}

/// Figure 8f: tightness of the lower bound per summarization, across series
/// lengths (16 segments / coefficients, as in the paper).
///
/// The TLB here is measured per (query, candidate) pair — the ratio of the
/// summarization's lower bound to the true distance, averaged over a sample —
/// which preserves the ordering the paper reports (VA+/ADS+ tightest, SFA with
/// alphabet 8 loosest, DSTree/iSAX in between).
pub fn fig8_tlb(scale: ExperimentScale) -> ResultTable {
    let mut table = ResultTable::new(
        "Figure 8f — tightness of the lower bound vs series length",
        &["method", "series_length", "tlb"],
    );
    let pairs = scale.queries.max(20);
    for &length in &scale.length_ladder() {
        let dataset = synth_dataset(2_000.min(scale.base_series), length);
        let workload = rand_workload(&dataset, pairs);
        let segments = 16.min(length);
        // Train the learned quantizers on a dataset sample.
        let sample: Vec<&[f32]> = (0..500.min(dataset.len()))
            .map(|i| dataset.series(i).values())
            .collect();
        let sfa = SfaQuantizer::train(
            SfaParams::new(length, segments).with_alphabet_size(8),
            sample.iter().copied(),
        );
        let va = VaPlusQuantizer::train(length, segments, segments * 8, sample.iter().copied());
        let sax = SaxParams::new(length, segments, 8);
        let paa = Paa::new(length, segments);
        let segmentation = uniform_segmentation(length, segments);

        let mut sums = [0.0f64; 6];
        let mut count = 0u64;
        for (qi, q) in workload.queries().iter().enumerate() {
            let cand = dataset.series((qi * 37) % dataset.len());
            let true_dist = hydra_core::distance::euclidean(q.values(), cand.values());
            if true_dist <= 0.0 {
                continue;
            }
            count += 1;
            let q_paa = paa.transform(q.values());
            let c_word = sax.sax_word(cand.values());
            // ADS+ / iSAX2+ use iSAX at full resolution.
            sums[0] += sax.mindist_paa_to_isax(&q_paa, &c_word.to_isax(8, 8)) / true_dist;
            // DSTree: EAPCA bound on the uniform segmentation.
            let qe = Eapca::compute(q.values(), &segmentation);
            let ce = Eapca::compute(cand.values(), &segmentation);
            sums[1] += qe.lower_bound(&ce, &segmentation) / true_dist;
            // SFA (alphabet 8).
            sums[2] += sfa.mindist(&sfa.dft(q.values()), &sfa.word(cand.values())) / true_dist;
            // VA+file.
            sums[3] += va.lower_bound(&va.dft(q.values()), &va.cell(cand.values())) / true_dist;
            // R*-tree: plain PAA bound.
            sums[4] += paa.lower_bound(&q_paa, &paa.transform(cand.values())) / true_dist;
            // DFT summary at 16 coefficients (MASS-style reference).
            sums[5] += dft_lower_bound(
                &dft_summary(q.values(), segments),
                &dft_summary(cand.values(), segments),
            ) / true_dist;
        }
        let names = [
            "ADS+/iSAX2+",
            "DSTree",
            "SFA",
            "VA+file",
            "R*-tree (PAA)",
            "DFT-16",
        ];
        for (i, name) in names.iter().enumerate() {
            table.push_row(vec![
                name.to_string(),
                length.to_string(),
                format!("{:.4}", (sums[i] / count as f64).min(1.0)),
            ]);
        }
    }
    table
}

/// Figure 9: pruning ratio of the five indexes across workloads (Synth-Rand,
/// Synth-Ctrl and the four domain-flavoured controlled workloads).
pub fn fig9_pruning(scale: ExperimentScale) -> ResultTable {
    let mut table = ResultTable::new(
        "Figure 9 — pruning ratio per method and workload",
        &["method", "workload", "mean_pruning", "p25", "median", "p75"],
    );
    let indexes = [
        MethodKind::AdsPlus,
        MethodKind::Isax2Plus,
        MethodKind::DsTree,
        MethodKind::SfaTrie,
        MethodKind::VaPlusFile,
    ];
    let size = (scale.base_series / 2).max(1_000);
    // (name, dataset) pairs: synthetic plus the four domain stand-ins.
    let mut workloads: Vec<(String, Dataset, QueryWorkload)> = Vec::new();
    let synth = synth_dataset(size, 256);
    workloads.push((
        "Synth-Rand".to_string(),
        synth.clone(),
        rand_workload(&synth, scale.queries.min(30)),
    ));
    workloads.push((
        "Synth-Ctrl".to_string(),
        synth.clone(),
        ctrl_workload("Synth-Ctrl", &synth, scale.queries.min(30)),
    ));
    for domain in DomainDataset::ALL {
        let data = DomainGenerator::new(domain, 0xD0).dataset(size);
        let name = format!("{}-Ctrl", domain.name());
        let wl = ctrl_workload(&name, &data, scale.queries.min(30));
        workloads.push((name, data, wl));
    }
    for kind in indexes {
        for (name, dataset, workload) in &workloads {
            let (mut engine, _) = run_build(kind, dataset, &default_options()).expect("build");
            let run = run_queries(&mut engine, workload).expect("queries");
            let mut ratios = run.pruning_ratios();
            ratios.sort_by(f64::total_cmp);
            let q = |p: f64| ratios[((ratios.len() - 1) as f64 * p).round() as usize];
            table.push_row(vec![
                kind.name().to_string(),
                name.clone(),
                fmt_pct(run.mean_pruning_ratio()),
                fmt_pct(q(0.25)),
                fmt_pct(q(0.5)),
                fmt_pct(q(0.75)),
            ]);
        }
    }
    table
}

/// One Table-2 scenario outcome: the winning method for each scenario column.
#[derive(Clone, Debug)]
pub struct ScenarioWinners {
    /// The dataset label ("Small", "Large", "Astro", ...).
    pub dataset: String,
    /// The platform the times were modelled for.
    pub platform: Platform,
    /// (scenario name, winning method name) pairs.
    pub winners: Vec<(&'static str, &'static str)>,
}

/// Table 2: the best method per {platform × dataset × scenario}.
pub fn table2_winners(scale: ExperimentScale) -> (ResultTable, Vec<ScenarioWinners>) {
    let mut table = ResultTable::new(
        "Table 2 — best method per scenario",
        &[
            "platform",
            "dataset",
            "Idx",
            "Exact100",
            "Idx+Exact100",
            "Idx+Exact10K",
            "Easy-20",
            "Hard-20",
        ],
    );
    // Datasets: a small (in-memory-like) and a large synthetic one, plus the
    // four domain stand-ins, all with controlled workloads as in the paper.
    let mut datasets: Vec<(String, Dataset)> = vec![
        (
            "Small".to_string(),
            synth_dataset(scale.base_series / 4, 256),
        ),
        ("Large".to_string(), synth_dataset(scale.base_series, 256)),
    ];
    for domain in DomainDataset::ALL {
        datasets.push((
            domain.name().to_string(),
            DomainGenerator::new(domain, 0xD1).dataset(scale.base_series / 2),
        ));
    }
    let mut all_winners = Vec::new();
    for platform in [Platform::Hdd, Platform::Ssd] {
        for (name, dataset) in &datasets {
            let workload = ctrl_workload(&format!("{name}-Ctrl"), dataset, scale.queries.min(30));
            // Run every candidate method once.
            let mut runs: Vec<(MethodKind, Duration, WorkloadMeasurement)> = Vec::new();
            for kind in MethodKind::BEST_SIX {
                let (mut engine, build) =
                    run_build(kind, dataset, &default_options()).expect("build");
                let run = run_queries(&mut engine, &workload).expect("queries");
                runs.push((kind, build.total_time(platform), run));
            }
            // Easy/hard query split by average pruning ratio across methods.
            let num_queries = workload.len();
            let mut scores = vec![0.0f64; num_queries];
            for (_, _, run) in &runs {
                for (i, r) in run.pruning_ratios().iter().enumerate() {
                    scores[i] += r / runs.len() as f64;
                }
            }
            let n_split = (num_queries / 5).max(1);
            let (easy, hard) = QueryWorkload::split_easy_hard(&scores, n_split);

            let winner_by = |key: &dyn Fn(&(MethodKind, Duration, WorkloadMeasurement)) -> f64| {
                runs.iter()
                    .min_by(|a, b| key(a).total_cmp(&key(b)))
                    .map(|(k, _, _)| k.name())
                    .unwrap_or("-")
            };
            let winners: Vec<(&'static str, &'static str)> = vec![
                ("Idx", winner_by(&|r| r.1.as_secs_f64())),
                (
                    "Exact100",
                    winner_by(&|r| r.2.extrapolated_time(platform, 100).as_secs_f64()),
                ),
                (
                    "Idx+Exact100",
                    winner_by(&|r| (r.1 + r.2.extrapolated_time(platform, 100)).as_secs_f64()),
                ),
                (
                    "Idx+Exact10K",
                    winner_by(&|r| (r.1 + r.2.extrapolated_time(platform, 10_000)).as_secs_f64()),
                ),
                (
                    "Easy-20",
                    winner_by(&|r| r.2.mean_time_of(&easy, platform).as_secs_f64()),
                ),
                (
                    "Hard-20",
                    winner_by(&|r| r.2.mean_time_of(&hard, platform).as_secs_f64()),
                ),
            ];
            table.push_row(vec![
                platform.name().to_string(),
                name.clone(),
                winners[0].1.to_string(),
                winners[1].1.to_string(),
                winners[2].1.to_string(),
                winners[3].1.to_string(),
                winners[4].1.to_string(),
                winners[5].1.to_string(),
            ]);
            all_winners.push(ScenarioWinners {
                dataset: name.clone(),
                platform,
                winners,
            });
        }
    }
    (table, all_winners)
}

/// Figure 10: the recommendation matrix (short/long series × in-memory/disk-
/// resident collections) for the Idx+Exact10K scenario on the HDD model.
pub fn fig10_recommendations(scale: ExperimentScale) -> ResultTable {
    let mut table = ResultTable::new(
        "Figure 10 — recommended method (Idx + 10K queries, HDD model)",
        &["series_length", "collection", "recommended", "runner_up"],
    );
    let platform = Platform::Hdd;
    let cells = [
        (
            "short (256)",
            "in-memory (small)",
            256usize,
            scale.base_series / 4,
        ),
        (
            "short (256)",
            "disk-resident (large)",
            256,
            scale.base_series,
        ),
        (
            "long (2048)",
            "in-memory (small)",
            2048,
            scale.base_series / 16,
        ),
        (
            "long (2048)",
            "disk-resident (large)",
            2048,
            scale.base_series / 4,
        ),
    ];
    for (length_label, collection_label, length, size) in cells {
        let dataset = synth_dataset(size.max(500), length);
        let workload = rand_workload(&dataset, scale.queries.min(20));
        let mut totals: Vec<(&'static str, f64)> = Vec::new();
        for kind in MethodKind::BEST_SIX {
            let (mut engine, build) = run_build(kind, &dataset, &default_options()).expect("build");
            let run = run_queries(&mut engine, &workload).expect("queries");
            let total = build.total_time(platform) + run.extrapolated_time(platform, 10_000);
            totals.push((kind.name(), total.as_secs_f64()));
        }
        totals.sort_by(|a, b| a.1.total_cmp(&b.1));
        table.push_row(vec![
            length_label.to_string(),
            collection_label.to_string(),
            totals[0].0.to_string(),
            totals[1].0.to_string(),
        ]);
    }
    table
}

/// The mode ladder the approximate-answering trade-off sweeps: ng-approximate,
/// an ε ladder, and one δ-ε point (the sequel's headline figure shape).
pub fn approx_mode_ladder() -> Vec<AnswerMode> {
    vec![
        AnswerMode::NgApproximate,
        AnswerMode::EpsilonApproximate { epsilon: 0.05 },
        AnswerMode::EpsilonApproximate { epsilon: 0.1 },
        AnswerMode::EpsilonApproximate { epsilon: 0.25 },
        AnswerMode::EpsilonApproximate { epsilon: 0.5 },
        AnswerMode::EpsilonApproximate { epsilon: 1.0 },
        AnswerMode::DeltaEpsilon {
            delta: 0.9,
            epsilon: 0.5,
        },
    ]
}

/// The approximate-answering trade-off (the sequel study's headline figure):
/// for every mode-capable method, sweep ε (plus the ng and δ-ε points) and
/// report the mean error ratio and the speedup against the same method's
/// exact run — wall-clock and, deterministically, the ratio of raw series
/// examined. Exact results are validated unchanged on the way: the ε = 0 run
/// must answer bit-identically to the exact run, or this function panics.
///
/// Returns the result table plus a JSON rendering (written by the
/// `exp_approx_tradeoff` binary and uploaded as a CI artifact).
pub fn approx_tradeoff(scale: ExperimentScale) -> (ResultTable, String) {
    use std::fmt::Write as _;

    let dataset = synth_dataset(scale.base_series, 128);
    let workload = rand_workload(&dataset, scale.queries.min(20));
    let queries: Vec<Query> = workload
        .queries()
        .iter()
        .map(|s| Query::nearest_neighbor(s.clone()))
        .collect();
    let parallelism = Parallelism::from_env();

    let mut table = ResultTable::new(
        "Approximate answering trade-off — error ratio and speedup vs exact",
        &[
            "method",
            "mode",
            "mean_error_ratio",
            "speedup_wall",
            "examined_ratio",
            "mean_pruning",
        ],
    );
    let mut json_rows = String::new();
    for kind in MethodKind::ALL {
        if !kind.modes().any_approximate() {
            continue;
        }
        let mut engine = kind.engine(&dataset, &default_options()).expect("build");

        let exact = engine
            .answer_workload(&queries, parallelism)
            .expect("exact workload");
        let exact_wall: f64 = exact.iter().map(|a| a.wall_time.as_secs_f64()).sum();
        let exact_examined: u64 = exact.iter().map(|a| a.stats.raw_series_examined).sum();

        // Exact results validated unchanged: ε = 0 must be bit-identical.
        let zero_queries: Vec<Query> = queries
            .iter()
            .map(|q| {
                q.clone()
                    .with_mode(AnswerMode::EpsilonApproximate { epsilon: 0.0 })
            })
            .collect();
        let zero = engine
            .answer_workload(&zero_queries, parallelism)
            .expect("eps:0 workload");
        for (qi, (e, z)) in exact.iter().zip(&zero).enumerate() {
            assert_eq!(
                e.answers.answers(),
                z.answers.answers(),
                "{}: eps:0 diverged from exact on query {qi}",
                kind.name()
            );
            assert_eq!(
                e.stats.raw_series_examined,
                z.stats.raw_series_examined,
                "{}: eps:0 work diverged from exact on query {qi}",
                kind.name()
            );
        }

        for mode in approx_mode_ladder() {
            let mode_queries: Vec<Query> =
                queries.iter().map(|q| q.clone().with_mode(mode)).collect();
            let run = engine
                .answer_workload(&mode_queries, parallelism)
                .unwrap_or_else(|e| panic!("{} {mode} workload: {e}", kind.name()));
            let wall: f64 = run.iter().map(|a| a.wall_time.as_secs_f64()).sum();
            let examined: u64 = run.iter().map(|a| a.stats.raw_series_examined).sum();
            let mean_error_ratio = run
                .iter()
                .zip(&exact)
                .filter_map(|(a, e)| a.answers.error_ratio_vs(&e.answers))
                .sum::<f64>()
                / run.len().max(1) as f64;
            let speedup_wall = exact_wall / wall.max(1e-12);
            let examined_ratio = examined as f64 / exact_examined.max(1) as f64;
            let mean_pruning = run
                .iter()
                .map(|a| a.stats.pruning_ratio(dataset.len()))
                .sum::<f64>()
                / run.len().max(1) as f64;
            table.push_row(vec![
                kind.name().to_string(),
                mode.to_string(),
                format!("{mean_error_ratio:.4}"),
                format!("{speedup_wall:.2}"),
                format!("{examined_ratio:.4}"),
                fmt_pct(mean_pruning),
            ]);
            if !json_rows.is_empty() {
                json_rows.push_str(",\n");
            }
            let _ = write!(
                json_rows,
                r#"    {{"method": "{}", "mode": "{mode}", "mean_error_ratio": {mean_error_ratio:.6}, "speedup_wall": {speedup_wall:.4}, "examined_ratio": {examined_ratio:.6}, "mean_pruning": {mean_pruning:.6}}}"#,
                kind.name()
            );
        }
    }
    let json = format!(
        r#"{{
  "bench": "approx_tradeoff",
  "generated_by": "cargo run --release --bin exp_approx_tradeoff",
  "dataset": {{"kind": "random-walk", "series": {}, "length": 128}},
  "queries": {},
  "exact_validated": true,
  "rows": [
{json_rows}
  ]
}}
"#,
        scale.base_series,
        scale.queries.min(20),
    );
    (table, json)
}

/// The batch-size ladder of the batched-execution baseline (`0` is the
/// per-query loop the speedups are measured against).
pub const BATCH_LADDER: [usize; 4] = [1, 8, 64, 256];

/// The methods with native batch kernels, in ladder order: the three scans
/// (one amortized sequential pass), the VA+file (shared filter-file sweep)
/// and ADS+ (shared SIMS summary-array sweep).
pub fn batch_capable_methods() -> Vec<MethodKind> {
    MethodKind::ALL
        .into_iter()
        .filter(|k| k.supports_batch())
        .collect()
}

/// The batched-execution baseline: for every method with a native batch
/// kernel, run the same workload through the per-query loop and through
/// `QueryEngine::answer_batch` at each ladder batch size, reporting
/// throughput and the **physical** store traffic per query (the amortization
/// the batch kernels exist for: a scan's sequential pages per query shrink
/// ~1/B with batch size B, while per-query logical counters stay identical).
///
/// Answers are validated bit-identical to the per-query loop at every batch
/// size on the way — this function panics on any divergence.
///
/// Returns the result table plus a JSON rendering (written to
/// `BENCH_batch.json` by the `bench_batch` binary and uploaded as a CI
/// artifact).
pub fn batch_amortization(scale: ExperimentScale) -> (ResultTable, String) {
    use std::fmt::Write as _;

    // Enough queries that the larger ladder steps actually form full
    // batches at the default scales, without blowing up smoke runs.
    let num_queries = (scale.queries * 8).clamp(32, 256);
    let dataset = synth_dataset(scale.base_series, 128);
    let workload = rand_workload(&dataset, num_queries);
    let queries: Vec<Query> = workload
        .queries()
        .iter()
        .map(|s| Query::nearest_neighbor(s.clone()))
        .collect();
    let parallelism = Parallelism::from_env();

    let mut table = ResultTable::new(
        "Batched query execution — throughput and physical pages per query",
        &[
            "method",
            "batch",
            "wall_s",
            "queries_per_s",
            "speedup_vs_per_query",
            "seq_pages_per_query",
            "rand_pages_per_query",
        ],
    );
    let mut json_rows = String::new();
    for kind in batch_capable_methods() {
        let mut engine = kind.engine(&dataset, &default_options()).expect("build");

        // The per-query baseline wall time. Its physical traffic is emitted
        // from the batch=1 measurement below: batch 1 performs store reads
        // identical to the per-query loop (the determinism contract), and
        // using the store-observed counters keeps every row of a method on
        // the same physical scale (the logical per-query counters also
        // charge modelled filter-file passes that never touch the store).
        let clock = hydra_core::RunClock::start();
        let reference = engine
            .answer_workload(&queries, parallelism)
            .expect("per-query workload");
        let base_wall = clock.elapsed().as_secs_f64();
        let mut emit = |batch: usize, wall: f64, io: hydra_core::IoSnapshot| {
            let qps = num_queries as f64 / wall.max(1e-12);
            let speedup = base_wall / wall.max(1e-12);
            let seq_per_query = io.sequential_pages as f64 / num_queries as f64;
            let rand_per_query = io.random_pages as f64 / num_queries as f64;
            table.push_row(vec![
                kind.name().to_string(),
                if batch == 0 {
                    "per-query".to_string()
                } else {
                    batch.to_string()
                },
                format!("{wall:.4}"),
                format!("{qps:.1}"),
                format!("{speedup:.2}"),
                format!("{seq_per_query:.1}"),
                format!("{rand_per_query:.2}"),
            ]);
            if !json_rows.is_empty() {
                json_rows.push_str(",\n");
            }
            let _ = write!(
                json_rows,
                r#"    {{"method": "{}", "batch": {batch}, "wall_seconds": {wall:.6}, "queries_per_second": {qps:.2}, "speedup_vs_per_query": {speedup:.4}, "seq_pages_per_query": {seq_per_query:.4}, "rand_pages_per_query": {rand_per_query:.4}}}"#,
                kind.name()
            );
        };
        let mut ladder_rows: Vec<(usize, f64, hydra_core::IoSnapshot)> = Vec::new();
        for batch in BATCH_LADDER {
            engine.reset_totals();
            let mut physical = hydra_core::IoSnapshot::default();
            let mut answered = Vec::with_capacity(num_queries);
            let clock = hydra_core::RunClock::start();
            for chunk in queries.chunks(batch) {
                answered.extend(
                    engine
                        .answer_batch(chunk, parallelism)
                        .unwrap_or_else(|e| panic!("{} batch={batch}: {e}", kind.name())),
                );
                let io = engine
                    .last_batch_io()
                    .expect("batch-capable methods run their native kernel");
                physical.sequential_pages += io.sequential_pages;
                physical.random_pages += io.random_pages;
                physical.bytes_read += io.bytes_read;
            }
            let wall = clock.elapsed().as_secs_f64();
            // The determinism contract, validated on the way: every batch
            // size answers bit-identically to the per-query loop.
            for (qi, (r, b)) in reference.iter().zip(&answered).enumerate() {
                assert_eq!(
                    r.answers.answers(),
                    b.answers.answers(),
                    "{} batch={batch} diverged from the per-query loop on query {qi}",
                    kind.name()
                );
                assert_eq!(
                    r.stats.raw_series_examined,
                    b.stats.raw_series_examined,
                    "{} batch={batch} work counters diverged on query {qi}",
                    kind.name()
                );
            }
            ladder_rows.push((batch, wall, physical));
        }
        emit(0, base_wall, ladder_rows[0].2);
        for (batch, wall, physical) in ladder_rows {
            emit(batch, wall, physical);
        }
    }
    let json = format!(
        r#"{{
  "bench": "batch_execution",
  "generated_by": "cargo run --release --bin bench_batch",
  "host_cpus": {},
  "dataset": {{"kind": "random-walk", "series": {}, "length": 128}},
  "queries": {num_queries},
  "batch_ladder": [{}],
  "answers_validated_bit_identical": true,
  "rows": [
{json_rows}
  ]
}}
"#,
        hydra_core::parallel::available_threads(),
        scale.base_series,
        BATCH_LADDER
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    (table, json)
}

/// The per-read fault-rate ladder of the robustness study. `0.0` is the
/// fault-free control lane that must reproduce today's behaviour
/// bit-identically.
pub const FAULT_RATE_LADDER: [f64; 3] = [0.0, 0.02, 0.08];

/// The methods the robustness study sweeps: the three scans plus the two
/// snapshot-capable filter methods (VA+file and ADS+), covering both pure
/// sequential access and index-guided random access under faults.
pub fn robustness_methods() -> Vec<MethodKind> {
    vec![
        MethodKind::UcrSuite,
        MethodKind::Mass,
        MethodKind::Stepwise,
        MethodKind::VaPlusFile,
        MethodKind::AdsPlus,
    ]
}

/// The robustness study: a fault-rate × retry-policy × budget ladder under a
/// seeded deterministic [`hydra_storage::FaultPlan`], reporting per-cell
/// success rate, mean attempts per answered query, truncation fraction and
/// the error ratio of degraded answers against the fault-free exact baseline
/// — plus a snapshot-recovery phase that corrupts on-disk snapshots and
/// counts quarantine-and-rebuild recoveries across repeated load cycles.
///
/// Two contracts are asserted on the way (the function panics on violation):
/// the fault-free unbudgeted cell answers bit-identically to the baseline
/// with identical work counters, and every failed query in a faulted cell
/// surfaces as a typed I/O or internal error — never a panic.
///
/// Returns the result table plus a JSON rendering (written to
/// `BENCH_robust.json` and `results/robustness.json` by the `exp_robustness`
/// binary and uploaded as a CI artifact).
pub fn robustness(scale: ExperimentScale) -> (ResultTable, String) {
    use crate::registry::SnapshotOutcome;
    use hydra_core::{Budget, Completion, Error, RetryPolicy};
    use hydra_storage::{DatasetStore, FaultConfig, FaultPlan};
    use std::fmt::Write as _;
    use std::sync::Arc;

    const FAULT_SEED: u64 = 0xC1A05;
    let config_at = |rate: f64| FaultConfig {
        read_error: rate,
        bit_flip: rate / 2.0,
        latency: rate,
        latency_pages: 4,
        snapshot_corruption: (rate * 10.0).min(1.0),
        max_transient_attempts: 2,
    };

    let dataset = synth_dataset(scale.base_series, 128);
    let num_queries = scale.queries.min(20);
    let workload = rand_workload(&dataset, num_queries);
    let base_queries: Vec<Query> = workload
        .queries()
        .iter()
        .map(|s| Query::nearest_neighbor(s.clone()))
        .collect();

    // Retries beyond the planned max_transient_attempts always recover, so
    // the second lane demonstrates full degradation-free operation.
    let retry_ladder = [RetryPolicy::none(), RetryPolicy::new(4, 2)];
    let budget_ladder: [Option<Budget>; 2] = [
        None,
        Some(Budget::raw_reads((dataset.len() as u64 / 10).max(1))),
    ];
    let budget_label =
        |b: &Option<Budget>| b.map_or_else(|| "inf".to_string(), |b| b.limit().to_string());

    let mut table = ResultTable::new(
        "Robustness — fault rate × retry policy × budget (seeded deterministic faults)",
        &[
            "phase",
            "method",
            "fault_rate",
            "retries",
            "budget",
            "success_rate",
            "mean_attempts",
            "truncated",
            "err_vs_exact",
            "recovered_snapshots",
        ],
    );
    let mut json_rows = String::new();
    let mut json_snapshots = String::new();

    for kind in robustness_methods() {
        // The fault-free exact baseline every degraded cell is scored against.
        let mut baseline = kind.engine(&dataset, &default_options()).expect("build");
        let exact: Vec<_> = base_queries
            .iter()
            .map(|q| baseline.answer(q).expect("fault-free query"))
            .collect();

        for rate in FAULT_RATE_LADDER {
            for retry in retry_ladder {
                // Without faults the retry policy never engages — skip the
                // duplicate cells.
                if rate == 0.0 && retry.max_attempts > 1 {
                    continue;
                }
                for budget in budget_ladder {
                    let plan = if rate == 0.0 {
                        FaultPlan::disabled()
                    } else {
                        FaultPlan::seeded(FAULT_SEED, config_at(rate))
                    };
                    let store = Arc::new(DatasetStore::new(dataset.clone()).with_fault_plan(plan));
                    let mut engine = kind
                        .engine_on_store(store, &default_options())
                        .expect("build")
                        .with_retry_policy(retry);

                    let (mut ok, mut attempts, mut truncated) = (0usize, 0u64, 0usize);
                    let (mut err_sum, mut err_count) = (0.0f64, 0usize);
                    for (qi, q) in base_queries.iter().enumerate() {
                        match engine.answer(&q.clone().with_budget(budget)) {
                            Ok(a) => {
                                ok += 1;
                                attempts += u64::from(a.attempts);
                                if a.completion() == Completion::Truncated {
                                    truncated += 1;
                                }
                                if let Some(r) = a.answers.error_ratio_vs(&exact[qi].answers) {
                                    err_sum += r;
                                    err_count += 1;
                                }
                                if rate == 0.0 && budget.is_none() {
                                    assert_eq!(
                                        a.answers.answers(),
                                        exact[qi].answers.answers(),
                                        "{}: fault-free run diverged on query {qi}",
                                        kind.name()
                                    );
                                    assert_eq!(
                                        a.stats.raw_series_examined,
                                        exact[qi].stats.raw_series_examined,
                                        "{}: fault-free work counters diverged on query {qi}",
                                        kind.name()
                                    );
                                }
                            }
                            Err(e) => assert!(
                                matches!(e, Error::Io { .. } | Error::Internal(_)),
                                "{}: query {qi} failed with an untyped error: {e}",
                                kind.name()
                            ),
                        }
                    }
                    let total = base_queries.len();
                    let success_rate = ok as f64 / total.max(1) as f64;
                    let mean_attempts = attempts as f64 / ok.max(1) as f64;
                    let truncated_frac = truncated as f64 / ok.max(1) as f64;
                    let err_vs_exact = err_sum / err_count.max(1) as f64;
                    table.push_row(vec![
                        "queries".to_string(),
                        kind.name().to_string(),
                        format!("{rate}"),
                        retry.max_attempts.to_string(),
                        budget_label(&budget),
                        fmt_pct(success_rate),
                        format!("{mean_attempts:.2}"),
                        fmt_pct(truncated_frac),
                        format!("{err_vs_exact:.4}"),
                        "-".to_string(),
                    ]);
                    if !json_rows.is_empty() {
                        json_rows.push_str(",\n");
                    }
                    let _ = write!(
                        json_rows,
                        r#"    {{"method": "{}", "fault_rate": {rate}, "max_attempts": {}, "budget": "{}", "success_rate": {success_rate:.6}, "mean_attempts": {mean_attempts:.4}, "truncated_fraction": {truncated_frac:.6}, "err_vs_exact": {err_vs_exact:.6}}}"#,
                        kind.name(),
                        retry.max_attempts,
                        budget_label(&budget),
                    );
                }
            }
        }

        // Snapshot-recovery phase: under planned snapshot corruption a load
        // cycle must quarantine the damaged file, rebuild and re-save — never
        // serve a corrupt index or fail outright.
        if !kind.supports_snapshots() {
            continue;
        }
        for rate in FAULT_RATE_LADDER {
            if rate == 0.0 {
                continue;
            }
            let dir = std::env::temp_dir().join(format!(
                "hydra-robust-snap-{}-{}-{}",
                std::process::id(),
                kind.name(),
                (rate * 1000.0) as u64
            ));
            // hydra-lint: allow(uncounted-fs) harness scratch: clears snapshot dir between cycles
            let _ = std::fs::remove_dir_all(&dir);
            let cycles = 3usize;
            let mut recovered = 0usize;
            for cycle in 0..cycles {
                let store = Arc::new(
                    DatasetStore::new(dataset.clone())
                        .with_fault_plan(FaultPlan::seeded(FAULT_SEED, config_at(rate))),
                );
                let (_, outcome) = kind
                    .engine_with_snapshot(store, &default_options(), &dir)
                    .expect("snapshot cycle");
                match outcome {
                    SnapshotOutcome::Recovered { .. } => recovered += 1,
                    SnapshotOutcome::Saved { .. } => assert_eq!(
                        cycle,
                        0,
                        "{}: a later cycle rebuilt without quarantining",
                        kind.name()
                    ),
                    SnapshotOutcome::Loaded { .. } => {}
                    SnapshotOutcome::Unsupported => {
                        unreachable!("{} supports snapshots", kind.name())
                    }
                }
            }
            // hydra-lint: allow(uncounted-fs) harness scratch: removes snapshot dir afterwards
            let _ = std::fs::remove_dir_all(&dir);
            table.push_row(vec![
                "snapshot".to_string(),
                kind.name().to_string(),
                format!("{rate}"),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                format!("{recovered}/{}", cycles - 1),
            ]);
            if !json_snapshots.is_empty() {
                json_snapshots.push_str(",\n");
            }
            let _ = write!(
                json_snapshots,
                r#"    {{"method": "{}", "fault_rate": {rate}, "load_cycles": {}, "recovered": {recovered}}}"#,
                kind.name(),
                cycles - 1,
            );
        }
    }

    let json = format!(
        r#"{{
  "bench": "robustness",
  "generated_by": "cargo run --release --bin exp_robustness",
  "fault_seed": {FAULT_SEED},
  "dataset": {{"kind": "random-walk", "series": {}, "length": 128}},
  "queries": {num_queries},
  "fault_rate_ladder": [{}],
  "fault_free_validated_bit_identical": true,
  "rows": [
{json_rows}
  ],
  "snapshot_recovery": [
{json_snapshots}
  ]
}}
"#,
        scale.base_series,
        FAULT_RATE_LADDER
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    (table, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            base_series: 400,
            queries: 8,
        }
    }

    #[test]
    fn scale_parsing_and_ladders() {
        assert_eq!(ExperimentScale::smoke().base_series, 1_000);
        assert!(ExperimentScale::full().base_series > ExperimentScale::small().base_series);
        let ladder = ExperimentScale::small().size_ladder();
        assert_eq!(ladder.len(), 4);
        assert!(ladder.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(
            ExperimentScale::small().length_ladder(),
            vec![64, 128, 256, 512]
        );
    }

    #[test]
    fn methods_table_lists_all_ten() {
        let t = methods_table();
        assert_eq!(t.num_rows(), 10);
        let text = t.to_text();
        assert!(text.contains("UCR-Suite"));
        assert!(text.contains("iSAX2+"));
        assert!(text.contains("delta-eps-approximate"));
    }

    #[test]
    fn approx_tradeoff_covers_every_capable_method_and_mode() {
        let (t, json) = approx_tradeoff(tiny());
        let capable = MethodKind::ALL
            .iter()
            .filter(|k| k.modes().any_approximate())
            .count();
        assert_eq!(t.num_rows(), capable * approx_mode_ladder().len());
        assert!(json.contains("\"bench\": \"approx_tradeoff\""));
        assert!(json.contains("\"mode\": \"ng\""));
        assert!(json.contains("deltaeps:0.9,0.5"));
        // Every error ratio is at least 1 (approximate answers are never
        // better than exact). Index from the end of the line: the deltaeps
        // mode cell itself contains a (quoted) comma.
        for line in t.to_csv().lines().skip(1) {
            let ratio: f64 = line.rsplit(',').nth(3).unwrap().parse().unwrap();
            assert!(ratio >= 1.0 - 1e-9, "{line}");
        }
    }

    #[test]
    fn batch_amortization_shows_the_single_amortized_pass() {
        let (t, json) = batch_amortization(tiny());
        // One per-query baseline row plus one row per ladder step, for each
        // batch-capable method.
        assert_eq!(
            t.num_rows(),
            batch_capable_methods().len() * (BATCH_LADDER.len() + 1)
        );
        assert!(json.contains("\"bench\": \"batch_execution\""));
        assert!(json.contains("\"answers_validated_bit_identical\": true"));
        // The scan's physical sequential pages per query must shrink ~1/B:
        // at batch 8 the per-query share is at most a quarter of the
        // per-query loop's (it would be exactly 1/8th with perfectly
        // divisible chunks).
        let csv = t.to_csv();
        let seq_of = |batch: &str| -> f64 {
            csv.lines()
                .skip(1)
                .map(|l| l.split(',').collect::<Vec<_>>())
                .find(|c| c[0] == "UCR-Suite" && c[1] == batch)
                .map(|c| c[5].parse::<f64>().unwrap())
                .unwrap()
        };
        let per_query = seq_of("per-query");
        assert!(per_query > 0.0);
        // Each batch of B costs min(threads, B) physical passes (one per
        // thread chunk) instead of B, so the per-query share shrinks by
        // B / min(threads, B).
        let threads = Parallelism::from_env().worker_threads() as f64;
        let expected_8 = per_query * threads.min(8.0) / 8.0;
        assert!(
            seq_of("8") <= expected_8 + 1.0,
            "batch=8 sequential pages per query did not amortize: {} vs {expected_8}",
            seq_of("8")
        );
        assert!(seq_of("64") < seq_of("8"));
        // No regression at batch 1: identical physical traffic.
        assert!((seq_of("1") - per_query).abs() < 1.0);
    }

    #[test]
    fn fig9_pruning_produces_rows_for_every_method_and_workload() {
        let t = fig9_pruning(tiny());
        // 5 indexes x 6 workloads
        assert_eq!(t.num_rows(), 30);
    }

    #[test]
    fn fig8_tlb_orders_va_above_sfa() {
        let t = fig8_tlb(ExperimentScale {
            base_series: 600,
            queries: 20,
        });
        let csv = t.to_csv();
        // Extract the length-256 rows and compare VA+file vs SFA TLB.
        let mut va = 0.0;
        let mut sfa = 0.0;
        for line in csv.lines().skip(1) {
            let cols: Vec<&str> = line.split(',').collect();
            if cols[1] == "256" {
                if cols[0] == "VA+file" {
                    va = cols[2].parse::<f64>().unwrap();
                }
                if cols[0] == "SFA" {
                    sfa = cols[2].parse::<f64>().unwrap();
                }
            }
        }
        assert!(va > 0.0 && sfa > 0.0);
        assert!(
            va > sfa,
            "VA+file TLB ({va}) should exceed SFA's with alphabet 8 ({sfa})"
        );
    }

    #[test]
    fn table2_produces_winners_for_all_cells() {
        let scale = ExperimentScale {
            base_series: 300,
            queries: 6,
        };
        let (table, winners) = table2_winners(scale);
        // 2 platforms x 6 datasets
        assert_eq!(table.num_rows(), 12);
        assert_eq!(winners.len(), 12);
        for w in &winners {
            assert_eq!(w.winners.len(), 6);
            assert!(!w.dataset.is_empty());
        }
    }
}

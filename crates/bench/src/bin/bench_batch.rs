//! BENCH-BATCH: the batched-execution baseline.
//!
//! Runs the batch-size ladder (per-query loop, then batches of 1/8/64/256)
//! over every method with a native batch kernel — the three scans, the
//! VA+file and ADS+ — reporting throughput and the *physical* store pages
//! per query. The scans' sequential pages per query shrink ~1/B with batch
//! size B (one amortized pass per batch chunk), while answers and per-query
//! logical counters are validated bit-identical to the per-query loop on the
//! way. Results go to stdout and to `BENCH_batch.json` so later PRs have a
//! throughput trajectory to compare against.
//!
//! Takes the shared flags: `--threads N` (batches run thread-parallel across
//! chunks), `--index-dir DIR`, and `HYDRA_SCALE` for the dataset size.

use hydra_bench::experiments as exp;

fn main() {
    hydra_bench::cli::init_threads();
    hydra_bench::cli::init_index_dir();
    let scale = exp::ExperimentScale::from_env();
    let (table, json) = exp::batch_amortization(scale);
    println!("{}", table.to_text());
    let path = hydra_bench::report::write_bench_artifact("batch", &json).expect("write json");
    println!("wrote {}", path.display());
}

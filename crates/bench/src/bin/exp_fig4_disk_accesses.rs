//! EXP-F4: regenerates Figure 4 (sequential and random disk accesses vs
//! dataset size and series length).

use hydra_bench::experiments::{fig4_disk_accesses, ExperimentScale};
use hydra_bench::report::results_dir;

fn main() {
    hydra_bench::cli::init_threads();
    hydra_bench::cli::init_index_dir();
    hydra_bench::cli::init_mode();
    hydra_bench::cli::init_batch();
    let (by_size, by_length) = fig4_disk_accesses(ExperimentScale::from_env());
    println!("{}", by_size.to_text());
    println!("{}", by_length.to_text());
    let dir = results_dir();
    println!(
        "wrote {}",
        by_size
            .write_csv(&dir, "fig4_disk_accesses_by_size")
            .expect("csv")
            .display()
    );
    println!(
        "wrote {}",
        by_length
            .write_csv(&dir, "fig4_disk_accesses_by_length")
            .expect("csv")
            .display()
    );
}

//! BENCH-SERVE: the query-serving service-layer baseline.
//!
//! Drives open-loop arrival ladders against [`hydra_serve::QueryService`]:
//! requests arrive on a fixed schedule (independent of completions, so
//! queueing pressure is real), the executor drains between arrivals, and
//! each completed request's arrival-to-completion latency is recorded. Every
//! (shard count × offered load) cell serves a fresh service over the same
//! dataset and reports p50/p99 latency, completions, sheds and the answer
//! cache's hit rate; a second lane sweeps a deadline ladder and asserts that
//! deadline-bounded requests degrade to `Guarantee::Truncated` answers
//! instead of erroring; a third, chaos lane re-runs the shard ladder with
//! per-shard fault injection, circuit breakers and hedged retries, and
//! reports availability, degraded-answer counts and breaker activity.
//! Results go to stdout and to `BENCH_serve.json` so later PRs have a
//! serving trajectory to compare against.
//!
//! Takes the shared flags: `--shards N` replaces the default 1/2/4 shard
//! ladder with the single count N, `--deadline-ms D` replaces the default
//! deadline ladder with the single deadline D (`0` skips the deadline
//! lane), `--quorum P` (`all` / `best-effort` / a count) overrides the
//! chaos lane's best-effort merge policy, and `--shard-fault-seed S`
//! overrides its fault seed (`0` runs the lane fault-free). Latencies
//! include scheduler queueing on the host, so absolute numbers are only
//! comparable within one machine.

use hydra_bench::registry::MethodKind;
use hydra_core::{parallel, BuildOptions, Error, Guarantee, Query, RetryPolicy, RunClock};
use hydra_data::{QueryWorkload, RandomWalkGenerator, WorkloadSpec};
use hydra_serve::{
    deadline_budget, BreakerConfig, HedgeConfig, QueryService, QuorumPolicy, RequestHandle,
    ResilienceConfig, ServeConfig,
};
use hydra_storage::{FaultConfig, FaultPlan};
use std::fmt::Write as _;
use std::time::Duration;

const SERIES: usize = 2_000;
const LENGTH: usize = 128;
/// Distinct queries in the pool; requests cycle through it, so every pass
/// after the first can hit the answer cache.
const QUERY_POOL: usize = 16;
/// Requests per (shards, offered load) cell: three passes over the pool.
const REQUESTS: usize = 48;
const QUEUE_CAPACITY: usize = 32;
const CACHE_CAPACITY: usize = 256;
const SHARD_LADDER: [usize; 3] = [1, 2, 4];
const LOAD_LADDER: [f64; 3] = [100.0, 400.0, 1600.0];
const DEADLINE_LADDER: [u64; 3] = [1, 5, 1000];
const DEADLINE_REQUESTS: usize = 8;
/// Requests per chaos cell: three passes over the pool, closed-loop.
const CHAOS_REQUESTS: usize = 48;
/// Default per-shard fault seed for the chaos lane when `--shard-fault-seed`
/// is not given; the flag replaces it (`0` runs the lane fault-free).
const CHAOS_FAULT_SEED: u64 = 0xC4A05;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Takes every finished request out of `pending`, recording its
/// arrival-to-completion latency in milliseconds.
fn harvest(
    pending: &mut Vec<(RequestHandle, Duration)>,
    latencies: &mut Vec<f64>,
    clock: &RunClock,
) {
    pending.retain(|(handle, arrival)| match handle.try_take() {
        Some(result) => {
            result.expect("admitted request failed");
            latencies.push((clock.elapsed().saturating_sub(*arrival)).as_secs_f64() * 1e3);
            false
        }
        None => true,
    });
}

struct CellResult {
    completed: usize,
    shed: u64,
    cache_hit_rate: f64,
    p50_ms: f64,
    p99_ms: f64,
}

struct ChaosCell {
    full: usize,
    partial: usize,
    errors: usize,
    availability: f64,
    p99_ms: f64,
    breaker_opens: u64,
    breaker_denied: u64,
    hedges_launched: u64,
    hedges_won: u64,
}

/// One closed-loop chaos cell: every request runs to completion against a
/// faulted service; outcomes are either full answers, `Guarantee::Partial`
/// degraded answers, or typed errors — never panics.
fn run_chaos_cell(service: &QueryService, queries: &[Query]) -> ChaosCell {
    let mut full = 0usize;
    let mut partial = 0usize;
    let mut errors = 0usize;
    let mut latencies: Vec<f64> = Vec::new();
    for i in 0..CHAOS_REQUESTS {
        let clock = RunClock::start();
        match service.answer(queries[i % queries.len()].clone()) {
            Ok(answer) => {
                match answer.guarantee {
                    Guarantee::Partial { .. } => partial += 1,
                    _ => full += 1,
                }
                latencies.push(clock.elapsed().as_secs_f64() * 1e3);
            }
            Err(_) => errors += 1,
        }
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    let reports = service.resilience_report();
    ChaosCell {
        full,
        partial,
        errors,
        availability: (full + partial) as f64 / CHAOS_REQUESTS as f64,
        p99_ms: percentile(&latencies, 0.99),
        breaker_opens: reports.iter().map(|r| r.breaker_opened).sum(),
        breaker_denied: reports.iter().map(|r| r.breaker_denied).sum(),
        hedges_launched: reports.iter().map(|r| r.hedges_launched).sum(),
        hedges_won: reports.iter().map(|r| r.hedges_won).sum(),
    }
}

/// One open-loop cell: submits `REQUESTS` queries at `offered_qps` against a
/// fresh service, draining the executor between arrivals.
fn run_cell(service: &QueryService, queries: &[Query], offered_qps: f64) -> CellResult {
    let interarrival = Duration::from_secs_f64(1.0 / offered_qps);
    let clock = RunClock::start();
    let mut pending: Vec<(RequestHandle, Duration)> = Vec::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut shed = 0u64;
    for i in 0..REQUESTS {
        let due = interarrival.mul_f64(i as f64);
        // Open loop: the arrival clock never waits for completions, only the
        // executor drains while we wait for the next arrival.
        while clock.elapsed() < due {
            if !service.run_one() {
                std::thread::sleep(Duration::from_micros(20));
            }
            harvest(&mut pending, &mut latencies, &clock);
        }
        let arrival = clock.elapsed();
        match service.submit(queries[i % queries.len()].clone()) {
            Ok(handle) => pending.push((handle, arrival)),
            Err(Error::Overloaded { .. }) => shed += 1,
            Err(other) => panic!("unexpected serve error: {other}"),
        }
    }
    service.drive();
    harvest(&mut pending, &mut latencies, &clock);
    assert!(pending.is_empty(), "drive() left requests unfinished");
    latencies.sort_by(|a, b| a.total_cmp(b));
    CellResult {
        completed: latencies.len(),
        shed,
        cache_hit_rate: service.cache_stats().hit_rate(),
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
    }
}

fn main() {
    let shards_flag = hydra_bench::cli::init_shards();
    let shard_ladder: Vec<usize> = if std::env::var("HYDRA_SHARDS").is_ok() {
        vec![shards_flag]
    } else {
        SHARD_LADDER.to_vec()
    };
    let deadline_flag = hydra_bench::cli::init_deadline_ms();
    let deadline_ladder: Vec<u64> = if std::env::var("HYDRA_DEADLINE_MS").is_ok() {
        deadline_flag.into_iter().collect()
    } else {
        DEADLINE_LADDER.to_vec()
    };

    let data = RandomWalkGenerator::new(0xDA7A, LENGTH).dataset(SERIES);
    let workload = QueryWorkload::generate(
        "Synth-Rand",
        &data,
        &WorkloadSpec::random(0x5EED).with_num_queries(QUERY_POOL),
    );
    let queries: Vec<Query> = workload
        .queries()
        .iter()
        .map(|s| Query::nearest_neighbor(s.clone()))
        .collect();
    let options = BuildOptions::default()
        .with_segments(8)
        .with_leaf_capacity(100)
        .with_train_samples(1_000);
    let host_cpus = parallel::available_threads();
    let method = MethodKind::AdsPlus;
    println!(
        "serve baseline: {SERIES} series x {LENGTH}, {} via {REQUESTS} requests/cell \
         ({QUERY_POOL} distinct), queue {QUEUE_CAPACITY}, cache {CACHE_CAPACITY}, \
         {host_cpus} CPU(s)\n",
        method.name()
    );

    let mut serving_rows = String::new();
    for &shards in &shard_ladder {
        for &offered_qps in &LOAD_LADDER {
            // A fresh service per cell: cold cache, zeroed counters, so cells
            // are independent of ladder order.
            let config = ServeConfig {
                shards,
                queue_capacity: QUEUE_CAPACITY,
                cache_capacity: CACHE_CAPACITY,
                ..ServeConfig::default()
            };
            let service = method
                .service(&data, &options, config)
                .expect("build service");
            let cell = run_cell(&service, &queries, offered_qps);
            assert_eq!(
                cell.completed + cell.shed as usize,
                REQUESTS,
                "every request must complete or shed"
            );
            println!(
                "shards={shards}  offered {offered_qps:>6.0} q/s  completed {:>2}  shed {:>2}  \
                 hit-rate {:>5.1}%  p50 {:>8.3} ms  p99 {:>8.3} ms",
                cell.completed,
                cell.shed,
                cell.cache_hit_rate * 100.0,
                cell.p50_ms,
                cell.p99_ms
            );
            if !serving_rows.is_empty() {
                serving_rows.push_str(",\n");
            }
            let _ = write!(
                serving_rows,
                r#"    {{"shards": {shards}, "offered_qps": {offered_qps:.1}, "requests": {REQUESTS}, "completed": {}, "shed": {}, "cache_hit_rate": {:.4}, "p50_ms": {:.4}, "p99_ms": {:.4}}}"#,
                cell.completed, cell.shed, cell.cache_hit_rate, cell.p50_ms, cell.p99_ms
            );
        }
        println!();
    }

    // Deadline lane: a scan method under a per-request deadline must answer
    // every query (no errors); tight deadlines price to budgets below the
    // dataset size and so must degrade to Guarantee::Truncated.
    let mut deadline_rows = String::new();
    let deadline_method = MethodKind::UcrSuite;
    for &deadline_ms in &deadline_ladder {
        let config = ServeConfig {
            shards: 1,
            queue_capacity: QUEUE_CAPACITY,
            cache_capacity: 0, // hits would mask the deadline path
            deadline_ms: Some(deadline_ms),
            ..ServeConfig::default()
        };
        let budget_reads = deadline_budget(
            deadline_ms,
            (LENGTH * std::mem::size_of::<f32>()) as u64,
            &config.cost_model,
        )
        .limit();
        let service = deadline_method
            .service(&data, &options, config)
            .expect("build service");
        let mut truncated = 0usize;
        let mut exact = 0usize;
        for query in queries.iter().take(DEADLINE_REQUESTS) {
            let answer = service
                .answer(query.clone())
                .expect("deadline-bounded requests degrade, they do not error");
            match answer.guarantee {
                Guarantee::Truncated { .. } => truncated += 1,
                Guarantee::Exact => exact += 1,
                other => panic!("unexpected guarantee under deadline: {other:?}"),
            }
        }
        if budget_reads < SERIES as u64 {
            assert_eq!(
                truncated, DEADLINE_REQUESTS,
                "a budget below the dataset size must truncate every answer"
            );
        }
        println!(
            "deadline {deadline_ms:>4} ms  budget {budget_reads:>7} reads  \
             truncated {truncated}/{DEADLINE_REQUESTS}  exact {exact}/{DEADLINE_REQUESTS}"
        );
        if !deadline_rows.is_empty() {
            deadline_rows.push_str(",\n");
        }
        let _ = write!(
            deadline_rows,
            r#"    {{"deadline_ms": {deadline_ms}, "budget_reads": {budget_reads}, "requests": {DEADLINE_REQUESTS}, "truncated": {truncated}, "exact": {exact}, "errors": 0}}"#,
        );
    }

    // Chaos lane: the same service under per-shard fault injection. Each
    // shard draws from its own seeded fault domain; a circuit breaker and
    // hedged retries guard the scatter, and the quorum policy decides how
    // much of the fleet must answer. `--quorum` overrides the lane's
    // best-effort default, `--shard-fault-seed` the default seed (0 runs the
    // lane fault-free as a plumbing check).
    let quorum_flag = hydra_bench::cli::init_quorum();
    let quorum = if std::env::var("HYDRA_QUORUM").is_ok() {
        quorum_flag
    } else {
        QuorumPolicy::BestEffort
    };
    let seed_flag = hydra_bench::cli::init_shard_fault_seed();
    let fault_seed = if std::env::var("HYDRA_SHARD_FAULT_SEED").is_ok() {
        seed_flag
    } else {
        CHAOS_FAULT_SEED
    };
    println!("\nchaos lane: quorum {quorum}, shard-fault seed {fault_seed:#x}");
    let mut chaos_rows = String::new();
    for &shards in &shard_ladder {
        let shard_faults = if fault_seed == 0 {
            FaultPlan::disabled()
        } else {
            FaultPlan::seeded(fault_seed, FaultConfig::standard())
        };
        let config = ServeConfig {
            shards,
            queue_capacity: QUEUE_CAPACITY,
            cache_capacity: CACHE_CAPACITY,
            resilience: ResilienceConfig {
                quorum,
                breaker: Some(BreakerConfig::default()),
                hedge: Some(HedgeConfig::default()),
                shard_faults,
                // Standard faults clear within 2 failed attempts; a 2-attempt
                // budget deliberately under-provisions so roughly half the
                // faulted keys persist into the breaker/quorum path instead
                // of every cell trivially reporting 100% availability.
                retry: Some(RetryPolicy::new(2, 4)),
            },
            ..ServeConfig::default()
        };
        let service = method
            .service(&data, &options, config)
            .expect("build service");
        let cell = run_chaos_cell(&service, &queries);
        assert_eq!(
            cell.full + cell.partial + cell.errors,
            CHAOS_REQUESTS,
            "every chaos request must answer or fail typed"
        );
        println!(
            "shards={shards}  full {:>2}  partial {:>2}  errors {:>2}  availability {:>5.1}%  \
             p99 {:>8.3} ms  breaker opens {:>2} denied {:>2}  hedges {:>2}/{:>2} won",
            cell.full,
            cell.partial,
            cell.errors,
            cell.availability * 100.0,
            cell.p99_ms,
            cell.breaker_opens,
            cell.breaker_denied,
            cell.hedges_won,
            cell.hedges_launched,
        );
        if !chaos_rows.is_empty() {
            chaos_rows.push_str(",\n");
        }
        let _ = write!(
            chaos_rows,
            r#"    {{"shards": {shards}, "requests": {CHAOS_REQUESTS}, "full": {}, "partial": {}, "errors": {}, "availability": {:.4}, "p99_ms": {:.4}, "breaker_opens": {}, "breaker_denied": {}, "hedges_launched": {}, "hedges_won": {}}}"#,
            cell.full,
            cell.partial,
            cell.errors,
            cell.availability,
            cell.p99_ms,
            cell.breaker_opens,
            cell.breaker_denied,
            cell.hedges_launched,
            cell.hedges_won
        );
    }

    let shard_list = shard_ladder
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let load_list = LOAD_LADDER
        .iter()
        .map(|l| format!("{l:.1}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        r#"{{
  "bench": "serve_open_loop",
  "generated_by": "cargo run --release --bin bench_serve",
  "host_cpus": {host_cpus},
  "note": "open-loop arrivals; latencies include host scheduler queueing, comparable only within one machine",
  "dataset": {{"kind": "random-walk", "series": {SERIES}, "length": {LENGTH}}},
  "method": "{}",
  "queue_capacity": {QUEUE_CAPACITY},
  "cache_capacity": {CACHE_CAPACITY},
  "shard_ladder": [{shard_list}],
  "offered_load_ladder_qps": [{load_list}],
  "serving": [
{serving_rows}
  ],
  "deadline_method": "{}",
  "deadline": [
{deadline_rows}
  ],
  "chaos_quorum": "{quorum}",
  "chaos_fault_seed": {fault_seed},
  "chaos": [
{chaos_rows}
  ]
}}
"#,
        method.name(),
        deadline_method.name()
    );
    let path = hydra_bench::report::write_bench_artifact("serve", &json).expect("write json");
    println!("\nwrote {}", path.display());
}

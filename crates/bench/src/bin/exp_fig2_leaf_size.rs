//! EXP-F2: regenerates Figure 2 (leaf-size parametrization).

use hydra_bench::experiments::{fig2_leaf_size, ExperimentScale};
use hydra_bench::report::results_dir;

fn main() {
    hydra_bench::cli::init_threads();
    hydra_bench::cli::init_index_dir();
    hydra_bench::cli::init_mode();
    hydra_bench::cli::init_batch();
    let table = fig2_leaf_size(ExperimentScale::from_env());
    println!("{}", table.to_text());
    let path = table
        .write_csv(&results_dir(), "fig2_leaf_size")
        .expect("write csv");
    println!("wrote {}", path.display());
}

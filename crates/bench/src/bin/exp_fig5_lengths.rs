//! EXP-F5: regenerates Figure 5 (scalability with increasing series lengths).

use hydra_bench::experiments::{fig5_lengths, ExperimentScale};
use hydra_bench::report::results_dir;

fn main() {
    hydra_bench::cli::init_threads();
    hydra_bench::cli::init_index_dir();
    hydra_bench::cli::init_mode();
    hydra_bench::cli::init_batch();
    let table = fig5_lengths(ExperimentScale::from_env());
    println!("{}", table.to_text());
    let path = table
        .write_csv(&results_dir(), "fig5_lengths")
        .expect("write csv");
    println!("wrote {}", path.display());
}

//! EXP-F9: regenerates Figure 9 (pruning ratio per method and workload).

use hydra_bench::experiments::{fig9_pruning, ExperimentScale};
use hydra_bench::report::results_dir;

fn main() {
    hydra_bench::cli::init_threads();
    hydra_bench::cli::init_index_dir();
    hydra_bench::cli::init_mode();
    hydra_bench::cli::init_batch();
    let table = fig9_pruning(ExperimentScale::from_env());
    println!("{}", table.to_text());
    let path = table
        .write_csv(&results_dir(), "fig9_pruning")
        .expect("write csv");
    println!("wrote {}", path.display());
}

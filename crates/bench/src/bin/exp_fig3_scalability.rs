//! EXP-F3: regenerates Figure 3 (per-method scalability with dataset size,
//! CPU vs I/O breakdown).

use hydra_bench::experiments::{fig3_scalability, ExperimentScale};
use hydra_bench::report::results_dir;

fn main() {
    hydra_bench::cli::init_threads();
    hydra_bench::cli::init_index_dir();
    hydra_bench::cli::init_mode();
    hydra_bench::cli::init_batch();
    let table = fig3_scalability(ExperimentScale::from_env());
    println!("{}", table.to_text());
    let path = table
        .write_csv(&results_dir(), "fig3_scalability")
        .expect("write csv");
    println!("wrote {}", path.display());
}

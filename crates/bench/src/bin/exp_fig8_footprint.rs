//! EXP-F8: regenerates Figure 8 (index footprint and tightness of the lower
//! bound).

use hydra_bench::experiments::{fig8_footprint, fig8_tlb, ExperimentScale};
use hydra_bench::report::results_dir;

fn main() {
    hydra_bench::cli::init_threads();
    hydra_bench::cli::init_index_dir();
    hydra_bench::cli::init_mode();
    hydra_bench::cli::init_batch();
    let scale = ExperimentScale::from_env();
    let footprint = fig8_footprint(scale);
    let tlb = fig8_tlb(scale);
    println!("{}", footprint.to_text());
    println!("{}", tlb.to_text());
    let dir = results_dir();
    println!(
        "wrote {}",
        footprint
            .write_csv(&dir, "fig8_footprint")
            .expect("csv")
            .display()
    );
    println!(
        "wrote {}",
        tlb.write_csv(&dir, "fig8_tlb").expect("csv").display()
    );
}

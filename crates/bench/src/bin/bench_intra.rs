//! BENCH-INTRA: the intra-query parallelism latency baseline.
//!
//! Measures single-query latency — the metric intra-query parallelism exists
//! to improve — at 1/2/4 worker threads for every method with a native intra
//! kernel, on the random-walk workload. Each (method, threads) cell reports
//! mean/p50/p99 latency over the query set and the speedup against the same
//! method's serial run. Results go to stdout and to `BENCH_intra.json` so
//! later PRs have a performance trajectory to compare against.
//!
//! Speedups are bounded by the CPUs actually available to the process (the
//! `host_cpus` field): on a single-core container every thread count measures
//! ~1× — the shared-bsf replay protocol keeps answers and per-query counters
//! identical by construction, which this binary re-asserts on every run.

use hydra_bench::registry::MethodKind;
use hydra_core::{parallel, simd, BuildOptions, Parallelism, Query, RunClock};
use hydra_data::{QueryWorkload, RandomWalkGenerator, WorkloadSpec};
use std::fmt::Write as _;

const SERIES: usize = 5_000;
const LENGTH: usize = 256;
const QUERIES: usize = 24;
const THREAD_LADDER: [usize; 3] = [1, 2, 4];

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let data = RandomWalkGenerator::new(0xDA7A, LENGTH).dataset(SERIES);
    let workload = QueryWorkload::generate(
        "Synth-Rand",
        &data,
        &WorkloadSpec::random(0x5EED).with_num_queries(QUERIES),
    );
    let queries: Vec<Query> = workload
        .queries()
        .iter()
        .map(|s| Query::nearest_neighbor(s.clone()))
        .collect();
    let options = BuildOptions::default()
        .with_segments(8)
        .with_leaf_capacity(100)
        .with_train_samples(1_000);
    let host_cpus = parallel::available_threads();
    let kernel = simd::active_kernel().name();
    println!(
        "intra-query latency baseline: {SERIES} series x {LENGTH}, {QUERIES} queries, \
         {host_cpus} CPU(s) available, SIMD kernel {kernel}\n"
    );

    let methods: Vec<MethodKind> = MethodKind::ALL
        .into_iter()
        .filter(|k| k.supports_intra())
        .collect();
    let mut rows = String::new();
    for kind in methods {
        let mut engine = kind.engine(&data, &options).expect("build");
        let serial_answers: Vec<_> = queries
            .iter()
            .map(|q| engine.answer(q).expect("serial query").answers)
            .collect();
        let mut serial_mean = 0.0f64;
        for threads in THREAD_LADDER {
            engine.reset_totals();
            let mut latencies = Vec::with_capacity(QUERIES);
            for (q, expected) in queries.iter().zip(&serial_answers) {
                let clock = RunClock::start();
                let got = engine
                    .answer_intra(q, Parallelism::Threads(threads))
                    .expect("intra query");
                latencies.push(clock.elapsed().as_secs_f64() * 1e3);
                assert_eq!(
                    &got.answers,
                    expected,
                    "{} intra answers diverged from serial at {threads} threads",
                    kind.name()
                );
            }
            latencies.sort_by(|a, b| a.total_cmp(b));
            let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
            let p50 = percentile(&latencies, 0.50);
            let p99 = percentile(&latencies, 0.99);
            if threads == 1 {
                serial_mean = mean;
            }
            let speedup = serial_mean / mean;
            println!(
                "{:<10} threads={threads}  mean {mean:>7.3} ms  p50 {p50:>7.3} ms  p99 {p99:>7.3} ms  speedup {speedup:.2}x",
                kind.name()
            );
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            let _ = write!(
                rows,
                r#"    {{"method": "{}", "threads": {threads}, "mean_ms": {mean:.4}, "p50_ms": {p50:.4}, "p99_ms": {p99:.4}, "speedup_vs_serial": {speedup:.3}}}"#,
                kind.name()
            );
        }
        println!();
    }

    let ladder = THREAD_LADDER
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        r#"{{
  "bench": "intra_query_latency",
  "generated_by": "cargo run --release --bin bench_intra",
  "host_cpus": {host_cpus},
  "simd_kernel": "{kernel}",
  "note": "speedup is bounded by host_cpus; on a 1-CPU container every thread count measures ~1x while answers and counters stay bit-identical to serial",
  "dataset": {{"kind": "random-walk", "series": {SERIES}, "length": {LENGTH}}},
  "queries": {QUERIES},
  "thread_ladder": [{ladder}],
  "single_query_latency": [
{rows}
  ]
}}
"#
    );
    let path = hydra_bench::report::write_bench_artifact("intra", &json).expect("write json");
    println!("wrote {}", path.display());
}

//! EXP-T1: regenerates Table 1 (the method property matrix).

use hydra_bench::experiments::methods_table;
use hydra_bench::report::results_dir;

fn main() {
    hydra_bench::cli::init_threads();
    hydra_bench::cli::init_index_dir();
    hydra_bench::cli::init_mode();
    hydra_bench::cli::init_batch();
    let table = methods_table();
    println!("{}", table.to_text());
    let path = table
        .write_csv(&results_dir(), "table1_methods")
        .expect("write csv");
    println!("wrote {}", path.display());
}

//! EXP-F6: regenerates Figure 6 (scalability comparison, HDD model).

use hydra_bench::experiments::{fig6_fig7_platform_comparison, ExperimentScale};
use hydra_bench::harness::Platform;
use hydra_bench::report::results_dir;

fn main() {
    hydra_bench::cli::init_threads();
    hydra_bench::cli::init_index_dir();
    hydra_bench::cli::init_mode();
    hydra_bench::cli::init_batch();
    let table = fig6_fig7_platform_comparison(ExperimentScale::from_env(), Platform::Hdd);
    println!("{}", table.to_text());
    let path = table
        .write_csv(&results_dir(), "fig6_hdd")
        .expect("write csv");
    println!("wrote {}", path.display());
}

//! EXP-F10: regenerates Figure 10 (the recommendation matrix).

use hydra_bench::experiments::{fig10_recommendations, ExperimentScale};
use hydra_bench::report::results_dir;

fn main() {
    hydra_bench::cli::init_threads();
    hydra_bench::cli::init_index_dir();
    hydra_bench::cli::init_mode();
    hydra_bench::cli::init_batch();
    let table = fig10_recommendations(ExperimentScale::from_env());
    println!("{}", table.to_text());
    let path = table
        .write_csv(&results_dir(), "fig10_recommendations")
        .expect("write csv");
    println!("wrote {}", path.display());
}

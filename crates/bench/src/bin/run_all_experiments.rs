//! Runs every experiment in sequence (the full reproduction pass) and writes
//! all CSVs under `results/`. Control dataset sizes with `HYDRA_SCALE`
//! (`smoke`, `small`, `full`).

use hydra_bench::experiments as exp;
use hydra_bench::harness::Platform;
use hydra_bench::report::results_dir;

fn main() {
    hydra_bench::cli::init_threads();
    hydra_bench::cli::init_index_dir();
    hydra_bench::cli::init_mode();
    hydra_bench::cli::init_batch();
    let scale = exp::ExperimentScale::from_env();
    let dir = results_dir();
    println!(
        "running all experiments at scale {scale:?}; writing CSVs to {}\n",
        dir.display()
    );

    let t1 = exp::methods_table();
    println!("{}", t1.to_text());
    t1.write_csv(&dir, "table1_methods").unwrap();

    let f2 = exp::fig2_leaf_size(scale);
    println!("{}", f2.to_text());
    f2.write_csv(&dir, "fig2_leaf_size").unwrap();

    let f3 = exp::fig3_scalability(scale);
    println!("{}", f3.to_text());
    f3.write_csv(&dir, "fig3_scalability").unwrap();

    let (f4a, f4b) = exp::fig4_disk_accesses(scale);
    println!("{}", f4a.to_text());
    println!("{}", f4b.to_text());
    f4a.write_csv(&dir, "fig4_disk_accesses_by_size").unwrap();
    f4b.write_csv(&dir, "fig4_disk_accesses_by_length").unwrap();

    let f5 = exp::fig5_lengths(scale);
    println!("{}", f5.to_text());
    f5.write_csv(&dir, "fig5_lengths").unwrap();

    let f6 = exp::fig6_fig7_platform_comparison(scale, Platform::Hdd);
    println!("{}", f6.to_text());
    f6.write_csv(&dir, "fig6_hdd").unwrap();

    let f7 = exp::fig6_fig7_platform_comparison(scale, Platform::Ssd);
    println!("{}", f7.to_text());
    f7.write_csv(&dir, "fig7_ssd").unwrap();

    let f8 = exp::fig8_footprint(scale);
    println!("{}", f8.to_text());
    f8.write_csv(&dir, "fig8_footprint").unwrap();

    let f8f = exp::fig8_tlb(scale);
    println!("{}", f8f.to_text());
    f8f.write_csv(&dir, "fig8_tlb").unwrap();

    let f9 = exp::fig9_pruning(scale);
    println!("{}", f9.to_text());
    f9.write_csv(&dir, "fig9_pruning").unwrap();

    let (t2, _) = exp::table2_winners(scale);
    println!("{}", t2.to_text());
    t2.write_csv(&dir, "table2_winners").unwrap();

    let f10 = exp::fig10_recommendations(scale);
    println!("{}", f10.to_text());
    f10.write_csv(&dir, "fig10_recommendations").unwrap();

    let (approx, approx_json) = exp::approx_tradeoff(scale);
    println!("{}", approx.to_text());
    approx.write_csv(&dir, "approx_tradeoff").unwrap();
    std::fs::write(dir.join("approx_tradeoff.json"), approx_json).unwrap();

    let (batch, batch_json) = exp::batch_amortization(scale);
    println!("{}", batch.to_text());
    batch.write_csv(&dir, "batch_amortization").unwrap();
    std::fs::write(dir.join("batch_amortization.json"), batch_json).unwrap();

    println!("all experiments complete; CSVs in {}", dir.display());
}

//! BENCH-PAR: the parallel-execution throughput baseline.
//!
//! Measures, on the random-walk workload, (a) query throughput of the
//! multi-threaded workload driver at 1/2/4/8 worker threads for a scan method
//! and a tree index, and (b) index-construction wall time serial vs parallel
//! for the four tree methods. Results go to stdout and to
//! `BENCH_parallel.json` so later PRs have a performance trajectory to compare
//! against.
//!
//! Speedups are bounded by the CPUs actually available to the process (the
//! `host_cpus` field): on a single-core container every thread count measures
//! ~1×, while the answers and per-query counters stay identical by
//! construction.

use hydra_bench::registry::MethodKind;
use hydra_core::{parallel, BuildOptions, Parallelism, Query, RunClock};
use hydra_data::{QueryWorkload, RandomWalkGenerator, WorkloadSpec};
use std::fmt::Write as _;

const SERIES: usize = 5_000;
const LENGTH: usize = 256;
const QUERIES: usize = 64;
const THREAD_LADDER: [usize; 4] = [1, 2, 4, 8];

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let data = RandomWalkGenerator::new(0xDA7A, LENGTH).dataset(SERIES);
    let workload = QueryWorkload::generate(
        "Synth-Rand",
        &data,
        &WorkloadSpec::random(0x5EED).with_num_queries(QUERIES),
    );
    let queries: Vec<Query> = workload
        .queries()
        .iter()
        .map(|s| Query::nearest_neighbor(s.clone()))
        .collect();
    let options = BuildOptions::default()
        .with_segments(8)
        .with_leaf_capacity(100)
        .with_train_samples(1_000);
    let host_cpus = parallel::available_threads();
    println!("parallel throughput baseline: {SERIES} series x {LENGTH}, {QUERIES} queries, {host_cpus} CPU(s) available\n");

    let mut throughput_rows = String::new();
    for kind in [MethodKind::UcrSuite, MethodKind::DsTree] {
        let mut engine = kind.engine(&data, &options).expect("build");
        let mut serial_qps = 0.0f64;
        for threads in THREAD_LADDER {
            engine.reset_totals();
            let clock = RunClock::start();
            let answers = engine
                .answer_workload(&queries, Parallelism::Threads(threads))
                .expect("workload");
            let wall = clock.elapsed().as_secs_f64();
            assert_eq!(answers.len(), QUERIES);
            let qps = QUERIES as f64 / wall;
            if threads == 1 {
                serial_qps = qps;
            }
            let speedup = qps / serial_qps;
            // Per-query latency distribution from the engine's own per-query
            // measurements (CPU + modelled I/O time, not queueing delay).
            let mut latencies: Vec<f64> = answers
                .iter()
                .map(|a| a.stats.total_time().as_secs_f64() * 1e3)
                .collect();
            latencies.sort_by(|a, b| a.total_cmp(b));
            let p50 = percentile(&latencies, 0.50);
            let p99 = percentile(&latencies, 0.99);
            println!(
                "{:<10} threads={threads}  {:>8.1} queries/s  p50 {p50:.3} ms  p99 {p99:.3} ms  speedup {speedup:.2}x",
                kind.name(),
                qps
            );
            if !throughput_rows.is_empty() {
                throughput_rows.push_str(",\n");
            }
            let _ = write!(
                throughput_rows,
                r#"    {{"method": "{}", "threads": {threads}, "wall_seconds": {wall:.6}, "queries_per_second": {qps:.2}, "latency_p50_ms": {p50:.4}, "latency_p99_ms": {p99:.4}, "speedup_vs_serial": {speedup:.3}}}"#,
                kind.name()
            );
        }
        println!();
    }

    let mut build_rows = String::new();
    for kind in [
        MethodKind::DsTree,
        MethodKind::Isax2Plus,
        MethodKind::AdsPlus,
        MethodKind::SfaTrie,
    ] {
        let mut serial_secs = 0.0f64;
        for threads in [1usize, 8] {
            let clock = RunClock::start();
            let engine = kind
                .engine(&data, &options.clone().with_build_threads(threads))
                .expect("build");
            let wall = clock.elapsed().as_secs_f64();
            drop(engine);
            if threads == 1 {
                serial_secs = wall;
            }
            let speedup = serial_secs / wall;
            println!(
                "{:<10} build threads={threads}  {wall:.3}s  speedup {speedup:.2}x",
                kind.name()
            );
            if !build_rows.is_empty() {
                build_rows.push_str(",\n");
            }
            let _ = write!(
                build_rows,
                r#"    {{"method": "{}", "threads": {threads}, "wall_seconds": {wall:.6}, "speedup_vs_serial": {speedup:.3}}}"#,
                kind.name()
            );
        }
    }

    let ladder = THREAD_LADDER
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        r#"{{
  "bench": "parallel_workload",
  "generated_by": "cargo run --release --bin bench_parallel",
  "host_cpus": {host_cpus},
  "dataset": {{"kind": "random-walk", "series": {SERIES}, "length": {LENGTH}}},
  "queries": {QUERIES},
  "thread_ladder": [{ladder}],
  "query_throughput": [
{throughput_rows}
  ],
  "index_build": [
{build_rows}
  ]
}}
"#
    );
    let path = hydra_bench::report::write_bench_artifact("parallel", &json).expect("write json");
    println!("\nwrote {}", path.display());
}

//! EXP-APPROX: the approximate-answering trade-off (the sequel study's
//! headline figure) — ε sweep plus ng and δ-ε points over every mode-capable
//! method, reporting mean error ratio and speedup vs exact. Exact results are
//! validated unchanged along the way (the ε = 0 run must answer
//! bit-identically, or the binary aborts).
//!
//! Writes `results/approx_tradeoff.csv` and `results/approx_tradeoff.json`
//! (the JSON is uploaded as a CI artifact by the `approx-smoke` job).
//!
//! This binary sweeps the whole mode ladder itself, so it takes no `--mode`
//! flag (unlike the per-figure binaries).

use hydra_bench::experiments::{approx_tradeoff, ExperimentScale};
use hydra_bench::report::results_dir;
use std::io::Write as _;

fn main() {
    hydra_bench::cli::init_threads();
    hydra_bench::cli::init_index_dir();
    let (table, json) = approx_tradeoff(ExperimentScale::from_env());
    println!("{}", table.to_text());
    let dir = results_dir();
    let csv_path = table.write_csv(&dir, "approx_tradeoff").expect("write csv");
    println!("wrote {}", csv_path.display());
    let json_path = dir.join("approx_tradeoff.json");
    let mut file = std::fs::File::create(&json_path).expect("create approx_tradeoff.json");
    file.write_all(json.as_bytes()).expect("write json");
    println!("wrote {}", json_path.display());
}

//! EXP-T2: regenerates Table 2 (the best method per platform, dataset and
//! scenario).

use hydra_bench::experiments::{table2_winners, ExperimentScale};
use hydra_bench::report::results_dir;

fn main() {
    hydra_bench::cli::init_threads();
    hydra_bench::cli::init_index_dir();
    hydra_bench::cli::init_mode();
    hydra_bench::cli::init_batch();
    let (table, _winners) = table2_winners(ExperimentScale::from_env());
    println!("{}", table.to_text());
    let path = table
        .write_csv(&results_dir(), "table2_winners")
        .expect("write csv");
    println!("wrote {}", path.display());
}

//! EXP-ROBUST: the robustness study — a fault-rate × retry-policy × budget
//! ladder under seeded deterministic fault injection, over the three scans
//! plus the VA+file and ADS+. Reports per-cell success rate, mean attempts
//! per answered query, truncation fraction and the error ratio of degraded
//! answers against the fault-free exact baseline, plus a snapshot-recovery
//! phase counting quarantine-and-rebuild recoveries of corrupted on-disk
//! snapshots.
//!
//! The fault-free lane is validated bit-identical to today's behaviour on
//! the way (answers and work counters), and any query failure must surface
//! as a typed error — the binary panics otherwise.
//!
//! Writes `BENCH_robust.json` and `results/robustness.{csv,json}` (the JSON
//! is uploaded as a CI artifact by the `chaos-smoke` job).
//!
//! This binary sweeps the fault ladder itself, so it takes no `--fault-seed`
//! or `--budget` flag (those drive the per-figure binaries); `--threads N`
//! and `HYDRA_SCALE` apply as usual.

use hydra_bench::experiments::{robustness, ExperimentScale};
use hydra_bench::report::results_dir;
use std::io::Write as _;

fn main() {
    hydra_bench::cli::init_threads();
    let (table, json) = robustness(ExperimentScale::from_env());
    println!("{}", table.to_text());

    let bench_path =
        hydra_bench::report::write_bench_artifact("robust", &json).expect("write json");
    println!("wrote {}", bench_path.display());

    let dir = results_dir();
    let csv_path = table.write_csv(&dir, "robustness").expect("write csv");
    println!("wrote {}", csv_path.display());
    let json_path = dir.join("robustness.json");
    let mut file = std::fs::File::create(&json_path).expect("create robustness.json");
    file.write_all(json.as_bytes()).expect("write json");
    println!("wrote {}", json_path.display());
}

//! End-to-end check of on-disk index persistence across process invocations.
//!
//! Builds every snapshot-capable method over a fixed seeded dataset through
//! the snapshot cache (`--index-dir`, default `snapshots/`), then rebuilds
//! each method fresh in-process and asserts that the cached engine answers
//! the whole workload with results and work counters **bit-identical** to
//! the rebuild. Run it twice:
//!
//! ```text
//! snapshot_check --index-dir snapshots                  # first run: builds + saves
//! snapshot_check --index-dir snapshots --expect-loaded  # second run: must LOAD every index
//! ```
//!
//! The second invocation is a separate process, so a pass proves the real
//! file round trip — not just an in-memory cache. Any disagreement or an
//! unexpected rebuild exits non-zero.

use hydra_bench::registry::{MethodKind, SnapshotOutcome};
use hydra_bench::run_build;
use hydra_core::{BuildOptions, Parallelism, Query};
use hydra_data::{QueryWorkload, RandomWalkGenerator, WorkloadSpec};

fn main() {
    hydra_bench::cli::init_threads();
    let dir = hydra_bench::cli::init_index_dir().unwrap_or_else(|| {
        std::env::set_var("HYDRA_INDEX_DIR", "snapshots");
        "snapshots".into()
    });
    let expect_loaded = std::env::args().any(|a| a == "--expect-loaded");

    let data = RandomWalkGenerator::new(0xC0FFEE, 96).dataset(600);
    let workload = QueryWorkload::generate(
        "persist",
        &data,
        &WorkloadSpec::controlled(7).with_num_queries(10),
    );
    let queries: Vec<Query> = workload
        .queries()
        .iter()
        .map(|s| Query::knn(s.clone(), 5))
        .collect();
    let options = BuildOptions::default()
        .with_leaf_capacity(25)
        .with_train_samples(150);

    let mut failures = 0usize;
    for kind in MethodKind::ALL {
        if !kind.supports_snapshots() {
            continue;
        }
        let (mut cached_engine, build) =
            run_build(kind, &data, &options).expect("snapshot-aware build");
        let cached = cached_engine
            .answer_workload(&queries, Parallelism::from_env())
            .expect("cached queries");

        // Fresh rebuild, bypassing the cache.
        let mut fresh_engine = kind.engine(&data, &options).expect("fresh build");
        let fresh = fresh_engine
            .answer_workload(&queries, Parallelism::from_env())
            .expect("fresh queries");

        let mut ok = true;
        for (qi, (c, f)) in cached.iter().zip(&fresh).enumerate() {
            if c.answers != f.answers {
                eprintln!("FAIL {}: query {qi} answers diverge", kind.name());
                ok = false;
            }
            let (cs, fs) = (&c.stats, &f.stats);
            if cs.raw_series_examined != fs.raw_series_examined
                || cs.lower_bounds_computed != fs.lower_bounds_computed
                || cs.leaves_visited != fs.leaves_visited
                || cs.internal_nodes_visited != fs.internal_nodes_visited
                || cs.early_abandons != fs.early_abandons
                || cs.sequential_page_accesses != fs.sequential_page_accesses
                || cs.random_page_accesses != fs.random_page_accesses
                || cs.bytes_read != fs.bytes_read
            {
                eprintln!("FAIL {}: query {qi} work counters diverge", kind.name());
                ok = false;
            }
        }
        if expect_loaded && !build.snapshot.loaded() {
            eprintln!(
                "FAIL {}: expected a snapshot load, got {:?}",
                kind.name(),
                build.snapshot
            );
            ok = false;
        }
        let outcome = match build.snapshot {
            SnapshotOutcome::Loaded { bytes } => format!("loaded {bytes} B"),
            SnapshotOutcome::Saved { bytes } => format!("built fresh, saved {bytes} B"),
            SnapshotOutcome::Recovered { bytes } => {
                format!("quarantined damaged snapshot, rebuilt and saved {bytes} B")
            }
            SnapshotOutcome::Unsupported => "unsupported".to_string(),
        };
        let verdict = if ok { "OK" } else { "MISMATCH" };
        println!(
            "{verdict:8} {:10} {outcome} (dir: {})",
            kind.name(),
            dir.display()
        );
        if !ok {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("{failures} method(s) failed the persistence check");
        std::process::exit(1);
    }
    println!("all persistent methods agree with a fresh rebuild");
}

//! Minimal command-line plumbing shared by every experiment binary.
//!
//! The suite avoids external argument-parsing crates; the only cross-cutting
//! flag is `--threads N`, which selects the worker-thread count for query
//! workloads *and* index construction. [`init_threads`] parses it from the
//! process arguments and exports it through the `HYDRA_THREADS` environment
//! variable, which is where the harness ([`crate::harness::run_queries`]) and
//! the shared build options ([`crate::experiments::default_options`]) read it
//! back from — so one call at the top of `main` makes an entire experiment run
//! parallel.

use hydra_core::Parallelism;

/// Parses `--threads N` (or `--threads=N`) from the process arguments,
/// exports the value via `HYDRA_THREADS`, and returns the resolved worker
/// count. Without the flag, an already-set `HYDRA_THREADS` is left alone
/// (defaulting to serial when that is unset too). `--threads 0` means one
/// worker per CPU.
///
/// A `--threads` flag with a missing or unparseable value aborts the process:
/// silently falling back to serial would record benchmark results under the
/// wrong configuration.
pub fn init_threads() -> usize {
    match threads_from(std::env::args()) {
        Some(Ok(requested)) => std::env::set_var("HYDRA_THREADS", requested.to_string()),
        Some(Err(bad)) => {
            eprintln!("error: invalid --threads value {bad:?} (expected a number; 0 = one worker per CPU)");
            std::process::exit(2);
        }
        None => {}
    }
    Parallelism::from_env().worker_threads()
}

/// Extracts the `--threads` value from an argument list: `None` when the flag
/// is absent, `Some(Err(raw))` when it is present but not a number.
fn threads_from(args: impl Iterator<Item = String>) -> Option<std::result::Result<usize, String>> {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let raw = if arg == "--threads" {
            args.peek().cloned().unwrap_or_default()
        } else if let Some(value) = arg.strip_prefix("--threads=") {
            value.to_string()
        } else {
            continue;
        };
        return Some(raw.trim().parse::<usize>().map_err(|_| raw));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> impl Iterator<Item = String> {
        args.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parses_separate_and_joined_forms() {
        assert_eq!(threads_from(argv(&["bin", "--threads", "4"])), Some(Ok(4)));
        assert_eq!(threads_from(argv(&["bin", "--threads=8"])), Some(Ok(8)));
        assert_eq!(threads_from(argv(&["bin", "--threads", "0"])), Some(Ok(0)));
        assert_eq!(threads_from(argv(&["bin"])), None);
    }

    #[test]
    fn missing_or_malformed_values_are_reported_not_ignored() {
        assert_eq!(
            threads_from(argv(&["bin", "--threads"])),
            Some(Err(String::new()))
        );
        assert_eq!(
            threads_from(argv(&["bin", "--threads", "lots"])),
            Some(Err("lots".into()))
        );
        assert_eq!(
            threads_from(argv(&["bin", "--threads="])),
            Some(Err(String::new()))
        );
    }
}

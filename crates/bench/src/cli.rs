//! Minimal command-line plumbing shared by every experiment binary.
//!
//! The suite avoids external argument-parsing crates; the cross-cutting flags
//! are:
//!
//! * `--threads N` — worker-thread count for query workloads *and* index
//!   construction. [`init_threads`] parses it and exports `HYDRA_THREADS`,
//!   which is where the harness ([`crate::harness::run_queries`]) and the
//!   shared build options ([`crate::experiments::default_options`]) read it
//!   back from.
//! * `--index-dir DIR` — the on-disk index snapshot directory.
//!   [`init_index_dir`] parses it and exports `HYDRA_INDEX_DIR`, which
//!   [`crate::harness::run_build`] reads back: with the directory set, a
//!   valid snapshot is *loaded* instead of rebuilding the index, and a fresh
//!   build saves a snapshot for the next run — turning a multi-method sweep
//!   from one rebuild per run into one build ever.
//! * `--mode exact|ng|eps:<v>|deltaeps:<d>,<e>` — the answering mode query
//!   workloads run under. [`init_mode`] parses and validates it and exports
//!   `HYDRA_MODE`, which [`crate::harness::run_queries`] reads back when
//!   constructing its queries. Methods that cannot answer the mode surface a
//!   typed `UnsupportedMode` error (never a silent exact fallback).
//! * `--batch N` — the query-batch size. [`init_batch`] parses it and exports
//!   `HYDRA_BATCH`, which [`crate::harness::run_queries`] reads back: with a
//!   batch size set, workloads run through `QueryEngine::answer_batch` in
//!   batches of `N` queries, amortizing one data pass per batch for methods
//!   with a native batch kernel. `0` (or unset) keeps the per-query loop.
//!   Batches compose with `--mode` and `--threads` (thread-parallel across
//!   batch chunks); answers and per-query counters are identical either way.
//! * `--fault-seed N` — the deterministic fault-injection seed.
//!   [`init_fault_seed`] parses it and exports `HYDRA_FAULT_SEED`, which
//!   robustness binaries read back to construct a seeded
//!   [`hydra_storage::FaultPlan`] on the store. `0` (or unset) runs
//!   fault-free; the same seed reproduces the same fault sequence.
//! * `--budget B` — the per-query anytime budget in raw series reads
//!   (`inf` = unbudgeted). [`init_budget`] parses it and exports
//!   `HYDRA_BUDGET`, which [`crate::harness::run_queries`] reads back when
//!   constructing its queries: on exhaustion a method stops and returns its
//!   best-so-far answer tagged `Guarantee::Truncated`.
//! * `--shards N` — the serving layer's engine-shard count. [`init_shards`]
//!   parses it and exports `HYDRA_SHARDS`, which the `bench_serve` binary
//!   reads back when partitioning the dataset into per-shard engines.
//! * `--deadline-ms D` — the serving layer's per-request deadline in
//!   milliseconds. [`init_deadline_ms`] parses it and exports
//!   `HYDRA_DEADLINE_MS`, which `bench_serve` reads back: the deadline is
//!   mapped onto a raw-read budget under the storage cost model, so late
//!   queries degrade to `Guarantee::Truncated` instead of timing out. `0`
//!   (or unset) serves without deadlines.
//! * `--quorum Q` — the serving layer's quorum policy (`all`, `best-effort`,
//!   or a shard count). [`init_quorum`] parses it through
//!   [`QuorumPolicy::parse`] and exports `HYDRA_QUORUM`, which `bench_serve`
//!   reads back: with fewer than a full quorum answering, the merge over the
//!   survivors is served tagged `Guarantee::Partial` instead of failing.
//! * `--shard-fault-seed N` — the serving layer's shard-fault seed.
//!   [`init_shard_fault_seed`] parses it and exports
//!   `HYDRA_SHARD_FAULT_SEED`, which `bench_serve` reads back to construct a
//!   service-level [`hydra_storage::FaultPlan`]; every shard derives its own
//!   independent fault stream from it. `0` (or unset) serves fault-free.
//!
//! One call to each at the top of `main` wires a whole experiment binary.

use hydra_core::{AnswerMode, Budget, Parallelism};
use hydra_serve::QuorumPolicy;
use std::path::PathBuf;

/// Parses `--threads N` (or `--threads=N`) from the process arguments,
/// exports the value via `HYDRA_THREADS`, and returns the resolved worker
/// count. Without the flag, an already-set `HYDRA_THREADS` is left alone
/// (defaulting to serial when that is unset too). `--threads 0` means one
/// worker per CPU.
///
/// A `--threads` flag with a missing or unparseable value aborts the process:
/// silently falling back to serial would record benchmark results under the
/// wrong configuration.
pub fn init_threads() -> usize {
    match threads_from(std::env::args()) {
        Some(Ok(requested)) => std::env::set_var("HYDRA_THREADS", requested.to_string()),
        Some(Err(bad)) => {
            eprintln!("error: invalid --threads value {bad:?} (expected a number; 0 = one worker per CPU)");
            std::process::exit(2);
        }
        None => {}
    }
    Parallelism::from_env().worker_threads()
}

/// Extracts the `--threads` value from an argument list: `None` when the flag
/// is absent, `Some(Err(raw))` when it is present but not a number.
fn threads_from(args: impl Iterator<Item = String>) -> Option<std::result::Result<usize, String>> {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let raw = if arg == "--threads" {
            args.peek().cloned().unwrap_or_default()
        } else if let Some(value) = arg.strip_prefix("--threads=") {
            value.to_string()
        } else {
            continue;
        };
        return Some(raw.trim().parse::<usize>().map_err(|_| raw));
    }
    None
}

/// Parses `--index-dir DIR` (or `--index-dir=DIR`) from the process
/// arguments, exports the value via `HYDRA_INDEX_DIR`, and returns the
/// directory the run persists index snapshots under. Without the flag, an
/// already-set `HYDRA_INDEX_DIR` is respected; `None` (no persistence, every
/// build is fresh) when that is unset too.
///
/// A `--index-dir` flag with a missing value aborts the process: silently
/// rebuilding everything would defeat the point of asking for persistence.
pub fn init_index_dir() -> Option<PathBuf> {
    match index_dir_from(std::env::args()) {
        Some(Ok(dir)) => std::env::set_var("HYDRA_INDEX_DIR", &dir),
        Some(Err(())) => {
            eprintln!("error: --index-dir requires a directory path");
            std::process::exit(2);
        }
        None => {}
    }
    index_dir_from_env()
}

/// The snapshot directory currently exported through `HYDRA_INDEX_DIR`
/// (empty means unset).
pub fn index_dir_from_env() -> Option<PathBuf> {
    match std::env::var("HYDRA_INDEX_DIR") {
        Ok(dir) if !dir.trim().is_empty() => Some(PathBuf::from(dir)),
        _ => None,
    }
}

/// Extracts the `--index-dir` value from an argument list: `None` when the
/// flag is absent, `Some(Err(()))` when it is present without a value.
fn index_dir_from(args: impl Iterator<Item = String>) -> Option<std::result::Result<String, ()>> {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let raw = if arg == "--index-dir" {
            args.peek().cloned().unwrap_or_default()
        } else if let Some(value) = arg.strip_prefix("--index-dir=") {
            value.to_string()
        } else {
            continue;
        };
        return Some(if raw.trim().is_empty() {
            Err(())
        } else {
            Ok(raw)
        });
    }
    None
}

/// Parses `--mode M` (or `--mode=M`) from the process arguments, validates it
/// through [`AnswerMode::parse`], exports the canonical form via `HYDRA_MODE`,
/// and returns the mode the run's query workloads use. Without the flag, an
/// already-set `HYDRA_MODE` is respected; [`AnswerMode::Exact`] when that is
/// unset too.
///
/// A `--mode` flag with a missing or invalid value aborts the process:
/// silently answering exactly would record results under the wrong mode.
pub fn init_mode() -> AnswerMode {
    match mode_from(std::env::args()) {
        Some(Ok(mode)) => std::env::set_var("HYDRA_MODE", mode.to_string()),
        Some(Err(bad)) => {
            eprintln!(
                "error: invalid --mode value {bad:?} (expected exact | ng | eps:<v> | deltaeps:<d>,<e>)"
            );
            std::process::exit(2);
        }
        None => {}
    }
    mode_from_env()
}

/// The answering mode currently exported through `HYDRA_MODE`
/// ([`AnswerMode::Exact`] when unset).
///
/// A set-but-invalid `HYDRA_MODE` aborts the process, exactly like an
/// invalid `--mode` flag: silently answering exactly would record results
/// under the wrong mode.
pub fn mode_from_env() -> AnswerMode {
    match std::env::var("HYDRA_MODE") {
        Ok(raw) if !raw.trim().is_empty() => AnswerMode::parse(&raw).unwrap_or_else(|_| {
            eprintln!(
                "error: invalid HYDRA_MODE value {raw:?} (expected exact | ng | eps:<v> | deltaeps:<d>,<e>)"
            );
            std::process::exit(2);
        }),
        _ => AnswerMode::Exact,
    }
}

/// Extracts the `--mode` value from an argument list: `None` when the flag is
/// absent, `Some(Err(raw))` when it is present but not a valid mode.
fn mode_from(
    args: impl Iterator<Item = String>,
) -> Option<std::result::Result<AnswerMode, String>> {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let raw = if arg == "--mode" {
            args.peek().cloned().unwrap_or_default()
        } else if let Some(value) = arg.strip_prefix("--mode=") {
            value.to_string()
        } else {
            continue;
        };
        return Some(AnswerMode::parse(&raw).map_err(|_| raw));
    }
    None
}

/// Parses `--batch N` (or `--batch=N`) from the process arguments, exports
/// the value via `HYDRA_BATCH`, and returns the batch size the run's query
/// workloads use. Without the flag, an already-set `HYDRA_BATCH` is
/// respected; `0` (per-query execution, no batching) when that is unset too.
///
/// A `--batch` flag with a missing or unparseable value aborts the process:
/// silently running per-query would record benchmark results under the wrong
/// configuration.
pub fn init_batch() -> usize {
    match batch_from(std::env::args()) {
        Some(Ok(batch)) => std::env::set_var("HYDRA_BATCH", batch.to_string()),
        Some(Err(bad)) => {
            eprintln!(
                "error: invalid --batch value {bad:?} (expected a number; 0 = per-query execution)"
            );
            std::process::exit(2);
        }
        None => {}
    }
    batch_from_env()
}

/// The batch size currently exported through `HYDRA_BATCH` (`0` — per-query
/// execution — when unset).
///
/// A set-but-unparseable `HYDRA_BATCH` falls back to per-query execution with
/// a warning on stderr, mirroring `Parallelism::from_env`.
pub fn batch_from_env() -> usize {
    let Ok(raw) = std::env::var("HYDRA_BATCH") else {
        return 0;
    };
    match raw.trim().parse::<usize>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!(
                "warning: ignoring unparseable HYDRA_BATCH={raw:?}; running per-query \
                 (expected a number; 0 = per-query execution)"
            );
            0
        }
    }
}

/// Extracts the `--batch` value from an argument list: `None` when the flag
/// is absent, `Some(Err(raw))` when it is present but not a number.
fn batch_from(args: impl Iterator<Item = String>) -> Option<std::result::Result<usize, String>> {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let raw = if arg == "--batch" {
            args.peek().cloned().unwrap_or_default()
        } else if let Some(value) = arg.strip_prefix("--batch=") {
            value.to_string()
        } else {
            continue;
        };
        return Some(raw.trim().parse::<usize>().map_err(|_| raw));
    }
    None
}

/// Parses `--fault-seed N` (or `--fault-seed=N`) from the process arguments,
/// exports the value via `HYDRA_FAULT_SEED`, and returns it. The seed
/// deterministically drives the storage layer's [`hydra_storage::FaultPlan`]
/// in binaries that construct one; `0` (or unset) disables fault injection.
///
/// A `--fault-seed` flag with a missing or unparseable value aborts the
/// process: silently running fault-free would record robustness results under
/// the wrong configuration.
pub fn init_fault_seed() -> u64 {
    match fault_seed_from(std::env::args()) {
        Some(Ok(seed)) => std::env::set_var("HYDRA_FAULT_SEED", seed.to_string()),
        Some(Err(bad)) => {
            eprintln!(
                "error: invalid --fault-seed value {bad:?} (expected a number; 0 = no faults)"
            );
            std::process::exit(2);
        }
        None => {}
    }
    fault_seed_from_env()
}

/// The fault seed currently exported through `HYDRA_FAULT_SEED` (`0` — no
/// fault injection — when unset).
///
/// A set-but-unparseable `HYDRA_FAULT_SEED` falls back to fault-free with a
/// warning on stderr, mirroring `batch_from_env`.
pub fn fault_seed_from_env() -> u64 {
    let Ok(raw) = std::env::var("HYDRA_FAULT_SEED") else {
        return 0;
    };
    match raw.trim().parse::<u64>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!(
                "warning: ignoring unparseable HYDRA_FAULT_SEED={raw:?}; running fault-free \
                 (expected a number; 0 = no faults)"
            );
            0
        }
    }
}

/// Extracts the `--fault-seed` value from an argument list: `None` when the
/// flag is absent, `Some(Err(raw))` when it is present but not a number.
fn fault_seed_from(args: impl Iterator<Item = String>) -> Option<std::result::Result<u64, String>> {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let raw = if arg == "--fault-seed" {
            args.peek().cloned().unwrap_or_default()
        } else if let Some(value) = arg.strip_prefix("--fault-seed=") {
            value.to_string()
        } else {
            continue;
        };
        return Some(raw.trim().parse::<u64>().map_err(|_| raw));
    }
    None
}

/// Parses `--budget B` (or `--budget=B`, with `B` either `inf` or a raw-read
/// count) from the process arguments, exports the canonical value via
/// `HYDRA_BUDGET`, and returns the per-query [`Budget`] the run's workloads
/// attach to their queries. Without the flag, an already-set `HYDRA_BUDGET`
/// is respected; `None` (unbudgeted, every query runs to completion) when
/// that is unset too.
///
/// A `--budget` flag with a missing or invalid value aborts the process:
/// silently running unbudgeted would record anytime-answering results under
/// the wrong configuration.
pub fn init_budget() -> Option<Budget> {
    match budget_from(std::env::args()) {
        Some(Ok(budget)) => std::env::set_var(
            "HYDRA_BUDGET",
            budget.map_or("inf".to_string(), |b| b.limit().to_string()),
        ),
        Some(Err(bad)) => {
            eprintln!("error: invalid --budget value {bad:?} (expected `inf` or a raw-read count)");
            std::process::exit(2);
        }
        None => {}
    }
    budget_from_env()
}

/// The per-query budget currently exported through `HYDRA_BUDGET` (`None` —
/// unbudgeted — when unset or `inf`).
///
/// A set-but-invalid `HYDRA_BUDGET` aborts the process, exactly like an
/// invalid `--budget` flag.
pub fn budget_from_env() -> Option<Budget> {
    match std::env::var("HYDRA_BUDGET") {
        Ok(raw) if !raw.trim().is_empty() => Budget::parse(&raw).unwrap_or_else(|_| {
            eprintln!(
                "error: invalid HYDRA_BUDGET value {raw:?} (expected `inf` or a raw-read count)"
            );
            std::process::exit(2);
        }),
        _ => None,
    }
}

/// Extracts the `--budget` value from an argument list: `None` when the flag
/// is absent, `Some(Err(raw))` when it is present but not `inf`/a number.
fn budget_from(
    args: impl Iterator<Item = String>,
) -> Option<std::result::Result<Option<Budget>, String>> {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let raw = if arg == "--budget" {
            args.peek().cloned().unwrap_or_default()
        } else if let Some(value) = arg.strip_prefix("--budget=") {
            value.to_string()
        } else {
            continue;
        };
        return Some(Budget::parse(&raw).map_err(|_| raw));
    }
    None
}

/// Parses `--shards N` (or `--shards=N`) from the process arguments, exports
/// the value via `HYDRA_SHARDS`, and returns the serving layer's shard count.
/// Without the flag, an already-set `HYDRA_SHARDS` is respected; `1` (a
/// single unsharded engine) when that is unset too.
///
/// A `--shards` flag with a missing, unparseable or zero value aborts the
/// process: silently serving unsharded would record results under the wrong
/// configuration.
pub fn init_shards() -> usize {
    match shards_from(std::env::args()) {
        Some(Ok(shards)) => std::env::set_var("HYDRA_SHARDS", shards.to_string()),
        Some(Err(bad)) => {
            eprintln!("error: invalid --shards value {bad:?} (expected a shard count >= 1)");
            std::process::exit(2);
        }
        None => {}
    }
    shards_from_env()
}

/// The shard count currently exported through `HYDRA_SHARDS` (`1` — a single
/// unsharded engine — when unset).
///
/// A set-but-invalid `HYDRA_SHARDS` falls back to unsharded with a warning on
/// stderr, mirroring `batch_from_env`.
pub fn shards_from_env() -> usize {
    let Ok(raw) = std::env::var("HYDRA_SHARDS") else {
        return 1;
    };
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!(
                "warning: ignoring invalid HYDRA_SHARDS={raw:?}; serving unsharded \
                 (expected a shard count >= 1)"
            );
            1
        }
    }
}

/// Extracts the `--shards` value from an argument list: `None` when the flag
/// is absent, `Some(Err(raw))` when it is present but not a count ≥ 1.
fn shards_from(args: impl Iterator<Item = String>) -> Option<std::result::Result<usize, String>> {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let raw = if arg == "--shards" {
            args.peek().cloned().unwrap_or_default()
        } else if let Some(value) = arg.strip_prefix("--shards=") {
            value.to_string()
        } else {
            continue;
        };
        return Some(match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(raw),
        });
    }
    None
}

/// Parses `--deadline-ms D` (or `--deadline-ms=D`) from the process
/// arguments, exports the value via `HYDRA_DEADLINE_MS`, and returns the
/// serving layer's per-request deadline (`None` — no deadline — for `0`).
/// Without the flag, an already-set `HYDRA_DEADLINE_MS` is respected; `None`
/// when that is unset too.
///
/// A `--deadline-ms` flag with a missing or unparseable value aborts the
/// process: silently serving without deadlines would record results under
/// the wrong configuration.
pub fn init_deadline_ms() -> Option<u64> {
    match deadline_ms_from(std::env::args()) {
        Some(Ok(ms)) => std::env::set_var("HYDRA_DEADLINE_MS", ms.to_string()),
        Some(Err(bad)) => {
            eprintln!(
                "error: invalid --deadline-ms value {bad:?} (expected milliseconds; 0 = none)"
            );
            std::process::exit(2);
        }
        None => {}
    }
    deadline_ms_from_env()
}

/// The deadline currently exported through `HYDRA_DEADLINE_MS` (`None` — no
/// deadline — when unset or `0`).
///
/// A set-but-unparseable `HYDRA_DEADLINE_MS` falls back to no deadline with a
/// warning on stderr, mirroring `batch_from_env`.
pub fn deadline_ms_from_env() -> Option<u64> {
    let Ok(raw) = std::env::var("HYDRA_DEADLINE_MS") else {
        return None;
    };
    match raw.trim().parse::<u64>() {
        Ok(0) => None,
        Ok(ms) => Some(ms),
        Err(_) => {
            eprintln!(
                "warning: ignoring unparseable HYDRA_DEADLINE_MS={raw:?}; serving without \
                 deadlines (expected milliseconds; 0 = none)"
            );
            None
        }
    }
}

/// Extracts the `--deadline-ms` value from an argument list: `None` when the
/// flag is absent, `Some(Err(raw))` when it is present but not a number.
fn deadline_ms_from(
    args: impl Iterator<Item = String>,
) -> Option<std::result::Result<u64, String>> {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let raw = if arg == "--deadline-ms" {
            args.peek().cloned().unwrap_or_default()
        } else if let Some(value) = arg.strip_prefix("--deadline-ms=") {
            value.to_string()
        } else {
            continue;
        };
        return Some(raw.trim().parse::<u64>().map_err(|_| raw));
    }
    None
}

/// Parses `--quorum Q` (or `--quorum=Q`, with `Q` one of `all`,
/// `best-effort`, or a shard count) from the process arguments, exports the
/// canonical form via `HYDRA_QUORUM`, and returns the serving layer's quorum
/// policy. Without the flag, an already-set `HYDRA_QUORUM` is respected;
/// [`QuorumPolicy::AllShards`] (the strict pre-resilience behaviour) when
/// that is unset too.
///
/// A `--quorum` flag with a missing or invalid value aborts the process:
/// silently serving strict would record availability results under the wrong
/// configuration.
pub fn init_quorum() -> QuorumPolicy {
    match quorum_from(std::env::args()) {
        Some(Ok(policy)) => std::env::set_var("HYDRA_QUORUM", policy.to_string()),
        Some(Err(bad)) => {
            eprintln!(
                "error: invalid --quorum value {bad:?} (expected `all`, `best-effort`, or a shard count >= 1)"
            );
            std::process::exit(2);
        }
        None => {}
    }
    quorum_from_env()
}

/// The quorum policy currently exported through `HYDRA_QUORUM`
/// ([`QuorumPolicy::AllShards`] when unset).
///
/// A set-but-invalid `HYDRA_QUORUM` falls back to strict quorum with a
/// warning on stderr, mirroring `batch_from_env`.
pub fn quorum_from_env() -> QuorumPolicy {
    let Ok(raw) = std::env::var("HYDRA_QUORUM") else {
        return QuorumPolicy::AllShards;
    };
    match QuorumPolicy::parse(raw.trim()) {
        Ok(policy) => policy,
        Err(_) => {
            eprintln!(
                "warning: ignoring invalid HYDRA_QUORUM={raw:?}; serving strict \
                 (expected `all`, `best-effort`, or a shard count >= 1)"
            );
            QuorumPolicy::AllShards
        }
    }
}

/// Extracts the `--quorum` value from an argument list: `None` when the flag
/// is absent, `Some(Err(raw))` when it is present but invalid.
fn quorum_from(
    args: impl Iterator<Item = String>,
) -> Option<std::result::Result<QuorumPolicy, String>> {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let raw = if arg == "--quorum" {
            args.peek().cloned().unwrap_or_default()
        } else if let Some(value) = arg.strip_prefix("--quorum=") {
            value.to_string()
        } else {
            continue;
        };
        return Some(QuorumPolicy::parse(raw.trim()).map_err(|_| raw));
    }
    None
}

/// Parses `--shard-fault-seed N` (or `--shard-fault-seed=N`) from the
/// process arguments, exports the value via `HYDRA_SHARD_FAULT_SEED`, and
/// returns it. The seed drives the serving layer's per-shard fault domains
/// (each shard derives an independent stream via
/// [`hydra_storage::FaultPlan::for_shard`]); `0` (or unset) serves
/// fault-free, and the same seed reproduces the same degraded run.
///
/// A `--shard-fault-seed` flag with a missing or unparseable value aborts
/// the process: silently serving fault-free would record resilience results
/// under the wrong configuration.
pub fn init_shard_fault_seed() -> u64 {
    match shard_fault_seed_from(std::env::args()) {
        Some(Ok(seed)) => std::env::set_var("HYDRA_SHARD_FAULT_SEED", seed.to_string()),
        Some(Err(bad)) => {
            eprintln!(
                "error: invalid --shard-fault-seed value {bad:?} (expected a number; 0 = no faults)"
            );
            std::process::exit(2);
        }
        None => {}
    }
    shard_fault_seed_from_env()
}

/// The shard-fault seed currently exported through `HYDRA_SHARD_FAULT_SEED`
/// (`0` — fault-free serving — when unset).
///
/// A set-but-unparseable `HYDRA_SHARD_FAULT_SEED` falls back to fault-free
/// with a warning on stderr, mirroring `fault_seed_from_env`.
pub fn shard_fault_seed_from_env() -> u64 {
    let Ok(raw) = std::env::var("HYDRA_SHARD_FAULT_SEED") else {
        return 0;
    };
    match raw.trim().parse::<u64>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!(
                "warning: ignoring unparseable HYDRA_SHARD_FAULT_SEED={raw:?}; serving \
                 fault-free (expected a number; 0 = no faults)"
            );
            0
        }
    }
}

/// Extracts the `--shard-fault-seed` value from an argument list: `None`
/// when the flag is absent, `Some(Err(raw))` when it is present but not a
/// number.
fn shard_fault_seed_from(
    args: impl Iterator<Item = String>,
) -> Option<std::result::Result<u64, String>> {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let raw = if arg == "--shard-fault-seed" {
            args.peek().cloned().unwrap_or_default()
        } else if let Some(value) = arg.strip_prefix("--shard-fault-seed=") {
            value.to_string()
        } else {
            continue;
        };
        return Some(raw.trim().parse::<u64>().map_err(|_| raw));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> impl Iterator<Item = String> {
        args.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parses_shards_forms() {
        assert_eq!(shards_from(argv(&["bin", "--shards", "4"])), Some(Ok(4)));
        assert_eq!(shards_from(argv(&["bin", "--shards=2"])), Some(Ok(2)));
        assert_eq!(shards_from(argv(&["bin"])), None);
        assert_eq!(
            shards_from(argv(&["bin", "--shards", "0"])),
            Some(Err("0".into())),
            "zero shards is invalid"
        );
        assert_eq!(
            shards_from(argv(&["bin", "--shards", "many"])),
            Some(Err("many".into()))
        );
        assert_eq!(
            shards_from(argv(&["bin", "--shards"])),
            Some(Err("".into()))
        );
    }

    #[test]
    fn parses_deadline_ms_forms() {
        assert_eq!(
            deadline_ms_from(argv(&["bin", "--deadline-ms", "250"])),
            Some(Ok(250))
        );
        assert_eq!(
            deadline_ms_from(argv(&["bin", "--deadline-ms=0"])),
            Some(Ok(0)),
            "0 is valid and means no deadline"
        );
        assert_eq!(deadline_ms_from(argv(&["bin"])), None);
        assert_eq!(
            deadline_ms_from(argv(&["bin", "--deadline-ms", "soon"])),
            Some(Err("soon".into()))
        );
        assert_eq!(
            deadline_ms_from(argv(&["bin", "--deadline-ms"])),
            Some(Err("".into()))
        );
    }

    #[test]
    fn parses_quorum_forms() {
        assert_eq!(
            quorum_from(argv(&["bin", "--quorum", "all"])),
            Some(Ok(QuorumPolicy::AllShards))
        );
        assert_eq!(
            quorum_from(argv(&["bin", "--quorum=best-effort"])),
            Some(Ok(QuorumPolicy::BestEffort))
        );
        assert_eq!(
            quorum_from(argv(&["bin", "--quorum", "2"])),
            Some(Ok(QuorumPolicy::AtLeast(2)))
        );
        assert_eq!(quorum_from(argv(&["bin"])), None);
        assert_eq!(
            quorum_from(argv(&["bin", "--quorum", "0"])),
            Some(Err("0".into())),
            "zero-shard quorum is invalid"
        );
        assert_eq!(
            quorum_from(argv(&["bin", "--quorum", "most"])),
            Some(Err("most".into()))
        );
        assert_eq!(
            quorum_from(argv(&["bin", "--quorum"])),
            Some(Err(String::new()))
        );
    }

    #[test]
    fn parses_shard_fault_seed_forms() {
        assert_eq!(
            shard_fault_seed_from(argv(&["bin", "--shard-fault-seed", "42"])),
            Some(Ok(42))
        );
        assert_eq!(
            shard_fault_seed_from(argv(&["bin", "--shard-fault-seed=7"])),
            Some(Ok(7))
        );
        assert_eq!(shard_fault_seed_from(argv(&["bin"])), None);
        assert_eq!(
            shard_fault_seed_from(argv(&["bin", "--shard-fault-seed", "chaos"])),
            Some(Err("chaos".into()))
        );
        assert_eq!(
            shard_fault_seed_from(argv(&["bin", "--shard-fault-seed"])),
            Some(Err(String::new()))
        );
    }

    #[test]
    fn parses_separate_and_joined_forms() {
        assert_eq!(threads_from(argv(&["bin", "--threads", "4"])), Some(Ok(4)));
        assert_eq!(threads_from(argv(&["bin", "--threads=8"])), Some(Ok(8)));
        assert_eq!(threads_from(argv(&["bin", "--threads", "0"])), Some(Ok(0)));
        assert_eq!(threads_from(argv(&["bin"])), None);
    }

    #[test]
    fn parses_index_dir_forms() {
        assert_eq!(
            index_dir_from(argv(&["bin", "--index-dir", "snapshots"])),
            Some(Ok("snapshots".into()))
        );
        assert_eq!(
            index_dir_from(argv(&["bin", "--index-dir=/tmp/idx"])),
            Some(Ok("/tmp/idx".into()))
        );
        assert_eq!(index_dir_from(argv(&["bin"])), None);
        assert_eq!(index_dir_from(argv(&["bin", "--index-dir"])), Some(Err(())));
        assert_eq!(
            index_dir_from(argv(&["bin", "--index-dir="])),
            Some(Err(()))
        );
    }

    #[test]
    fn parses_mode_forms() {
        assert_eq!(
            mode_from(argv(&["bin", "--mode", "ng"])),
            Some(Ok(AnswerMode::NgApproximate))
        );
        assert_eq!(
            mode_from(argv(&["bin", "--mode=eps:0.1"])),
            Some(Ok(AnswerMode::EpsilonApproximate { epsilon: 0.1 }))
        );
        assert_eq!(
            mode_from(argv(&["bin", "--mode", "deltaeps:0.9,0.25"])),
            Some(Ok(AnswerMode::DeltaEpsilon {
                delta: 0.9,
                epsilon: 0.25
            }))
        );
        assert_eq!(mode_from(argv(&["bin"])), None);
        assert_eq!(
            mode_from(argv(&["bin", "--mode", "sloppy"])),
            Some(Err("sloppy".into()))
        );
        assert_eq!(
            mode_from(argv(&["bin", "--mode", "eps:-1"])),
            Some(Err("eps:-1".into()))
        );
        assert_eq!(
            mode_from(argv(&["bin", "--mode"])),
            Some(Err(String::new()))
        );
    }

    #[test]
    fn parses_batch_forms() {
        assert_eq!(batch_from(argv(&["bin", "--batch", "64"])), Some(Ok(64)));
        assert_eq!(batch_from(argv(&["bin", "--batch=8"])), Some(Ok(8)));
        assert_eq!(batch_from(argv(&["bin", "--batch", "0"])), Some(Ok(0)));
        assert_eq!(batch_from(argv(&["bin"])), None);
        assert_eq!(
            batch_from(argv(&["bin", "--batch"])),
            Some(Err(String::new()))
        );
        assert_eq!(
            batch_from(argv(&["bin", "--batch", "many"])),
            Some(Err("many".into()))
        );
    }

    #[test]
    fn parses_fault_seed_forms() {
        assert_eq!(
            fault_seed_from(argv(&["bin", "--fault-seed", "42"])),
            Some(Ok(42))
        );
        assert_eq!(
            fault_seed_from(argv(&["bin", "--fault-seed=7"])),
            Some(Ok(7))
        );
        assert_eq!(fault_seed_from(argv(&["bin"])), None);
        assert_eq!(
            fault_seed_from(argv(&["bin", "--fault-seed", "chaos"])),
            Some(Err("chaos".into()))
        );
        assert_eq!(
            fault_seed_from(argv(&["bin", "--fault-seed"])),
            Some(Err(String::new()))
        );
    }

    #[test]
    fn parses_budget_forms() {
        assert_eq!(
            budget_from(argv(&["bin", "--budget", "500"])),
            Some(Ok(Some(Budget::raw_reads(500))))
        );
        assert_eq!(budget_from(argv(&["bin", "--budget=inf"])), Some(Ok(None)));
        assert_eq!(budget_from(argv(&["bin"])), None);
        assert_eq!(
            budget_from(argv(&["bin", "--budget", "soon"])),
            Some(Err("soon".into()))
        );
        assert_eq!(
            budget_from(argv(&["bin", "--budget"])),
            Some(Err(String::new()))
        );
    }

    #[test]
    fn missing_or_malformed_values_are_reported_not_ignored() {
        assert_eq!(
            threads_from(argv(&["bin", "--threads"])),
            Some(Err(String::new()))
        );
        assert_eq!(
            threads_from(argv(&["bin", "--threads", "lots"])),
            Some(Err("lots".into()))
        );
        assert_eq!(
            threads_from(argv(&["bin", "--threads="])),
            Some(Err(String::new()))
        );
    }
}

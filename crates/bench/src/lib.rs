//! # hydra-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation section (Section 4) on laptop-scale data.
//!
//! The harness is organized as:
//!
//! * [`registry`] — [`MethodKind`]: build any of the ten methods uniformly as
//!   a `Box<dyn AnsweringMethod>`, as a measuring `hydra_core::QueryEngine`
//!   over an instrumented store, or as a sharded `hydra_serve::QueryService`
//!   (fresh-built or loaded from per-shard snapshots);
//! * [`harness`] — the experiment runner: timed index construction, timed
//!   query workloads with per-query statistics, the paper's 10 000-query
//!   extrapolation rule, and platform cost models (HDD / SSD / in-memory);
//! * [`report`] — plain-text / CSV emitters for the result tables plus the
//!   uniform `BENCH_<name>.json` artifact writer every bench bin routes
//!   through;
//! * [`cli`] — the shared flags: `--threads N` (multi-threaded query driver
//!   and parallel index builds), `--index-dir DIR` (snapshot cache),
//!   `--mode exact|ng|eps:<v>|deltaeps:<d>,<e>` (answering mode),
//!   `--batch N` (batched query execution through
//!   `QueryEngine::answer_batch`), `--fault-seed N` (seeded deterministic
//!   fault injection with a recovering retry policy; 0 disables), and
//!   `--budget B` (per-query raw-read budget; `inf` or a count —
//!   exhausted queries return best-so-far answers tagged
//!   `Guarantee::Truncated`), `--shards N` (service-layer shard count) and
//!   `--deadline-ms D` (service-layer request deadline; 0 = none).
//!
//! Every figure and table has a dedicated binary under `src/bin/` (see
//! `DESIGN.md` for the experiment index); Criterion micro-benchmarks for the
//! hot kernels and the ablation studies live under `benches/`.

pub mod cli;
pub mod experiments;
pub mod harness;
pub mod registry;
pub mod report;

pub use harness::{
    run_build, run_queries, run_queries_with, run_queries_with_batch, run_queries_with_mode,
    BuildMeasurement, Platform, QueryMeasurement, WorkloadMeasurement,
};
pub use registry::{MethodKind, SnapshotOutcome};
pub use report::ResultTable;

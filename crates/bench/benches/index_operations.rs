//! Criterion benchmarks of end-to-end index construction and exact 1-NN query
//! answering for every method, on a small fixed dataset — the per-method hot
//! paths that the figure-level experiments aggregate.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_bench::registry::MethodKind;
use hydra_core::{BuildOptions, Query};
use hydra_data::RandomWalkGenerator;
use hydra_storage::DatasetStore;
use std::sync::Arc;

const SERIES: usize = 2_000;
const LENGTH: usize = 256;

fn options() -> BuildOptions {
    BuildOptions::default()
        .with_segments(16)
        .with_leaf_capacity(50)
        .with_train_samples(500)
}

fn bench_index_build(c: &mut Criterion) {
    let dataset = RandomWalkGenerator::new(11, LENGTH).dataset(SERIES);
    let mut group = c.benchmark_group("index_build_2k_series");
    group.sample_size(10);
    for kind in [
        MethodKind::AdsPlus,
        MethodKind::Isax2Plus,
        MethodKind::DsTree,
        MethodKind::SfaTrie,
        MethodKind::VaPlusFile,
        MethodKind::RStarTree,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let store = Arc::new(DatasetStore::new(dataset.clone()));
                    black_box(kind.build_boxed_on_store(store, &options()).unwrap())
                })
            },
        );
    }
    group.finish();
}

fn bench_exact_query(c: &mut Criterion) {
    let dataset = RandomWalkGenerator::new(11, LENGTH).dataset(SERIES);
    let query_series = RandomWalkGenerator::new(99, LENGTH).series(0);
    let mut group = c.benchmark_group("exact_1nn_query_2k_series");
    group.sample_size(20);
    for kind in MethodKind::ALL {
        let store = Arc::new(DatasetStore::new(dataset.clone()));
        let method = kind.build_boxed_on_store(store, &options()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            b.iter(|| {
                black_box(
                    method
                        .answer_simple(&Query::nearest_neighbor(query_series.clone()))
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_build, bench_exact_query);
criterion_main!(benches);

//! Criterion micro-benchmarks of the summarization transforms of Figure 1:
//! PAA, DFT, DHWT, EAPCA, SAX, SFA and VA+ throughput, plus their
//! lower-bound kernels.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_data::RandomWalkGenerator;
use hydra_transforms::eapca::{uniform_segmentation, Eapca};
use hydra_transforms::fft::dft_summary;
use hydra_transforms::sax::SaxParams;
use hydra_transforms::sfa::{SfaParams, SfaQuantizer};
use hydra_transforms::vaplus::VaPlusQuantizer;
use hydra_transforms::{HaarTransform, Paa};

fn bench_transforms(c: &mut Criterion) {
    let mut group = c.benchmark_group("summarize_series");
    group.sample_size(30);
    for &len in &[256usize, 1024] {
        let gen = RandomWalkGenerator::new(3, len);
        let series = gen.series(0);
        let values = series.values();
        let segments = 16;

        let paa = Paa::new(len, segments);
        group.bench_with_input(BenchmarkId::new("paa", len), &len, |b, _| {
            b.iter(|| black_box(paa.transform(values)))
        });
        group.bench_with_input(BenchmarkId::new("dft16", len), &len, |b, _| {
            b.iter(|| black_box(dft_summary(values, segments)))
        });
        let haar = HaarTransform::new(len);
        group.bench_with_input(BenchmarkId::new("dhwt", len), &len, |b, _| {
            b.iter(|| black_box(haar.transform(values)))
        });
        let segmentation = uniform_segmentation(len, segments);
        group.bench_with_input(BenchmarkId::new("eapca", len), &len, |b, _| {
            b.iter(|| black_box(Eapca::compute(values, &segmentation)))
        });
        let sax = SaxParams::new(len, segments, 8);
        group.bench_with_input(BenchmarkId::new("sax", len), &len, |b, _| {
            b.iter(|| black_box(sax.sax_word(values)))
        });
    }
    group.finish();
}

fn bench_lower_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_bound_kernels");
    group.sample_size(30);
    let len = 256;
    let segments = 16;
    let gen = RandomWalkGenerator::new(5, len);
    let sample: Vec<Vec<f32>> = (0..200u64).map(|i| gen.series(i).into_values()).collect();
    let q = gen.series(1000);
    let cand = gen.series(2000);

    let paa = Paa::new(len, segments);
    let q_paa = paa.transform(q.values());
    let c_paa = paa.transform(cand.values());
    group.bench_function("paa_lower_bound", |b| {
        b.iter(|| black_box(paa.lower_bound(&q_paa, &c_paa)))
    });

    let sax = SaxParams::new(len, segments, 8);
    let word = sax.sax_word(cand.values()).to_isax(8, 8);
    group.bench_function("isax_mindist", |b| {
        b.iter(|| black_box(sax.mindist_paa_to_isax(&q_paa, &word)))
    });

    let sfa = SfaQuantizer::train(
        SfaParams::new(len, segments).with_alphabet_size(8),
        sample.iter().map(|s| s.as_slice()),
    );
    let q_dft = sfa.dft(q.values());
    let sfa_word = sfa.word(cand.values());
    group.bench_function("sfa_mindist", |b| {
        b.iter(|| black_box(sfa.mindist(&q_dft, &sfa_word)))
    });

    let va = VaPlusQuantizer::train(
        len,
        segments,
        segments * 8,
        sample.iter().map(|s| s.as_slice()),
    );
    let q_vadft = va.dft(q.values());
    let cell = va.cell(cand.values());
    group.bench_function("vaplus_lower_bound", |b| {
        b.iter(|| black_box(va.lower_bound(&q_vadft, &cell)))
    });
    group.finish();
}

criterion_group!(benches, bench_transforms, bench_lower_bounds);
criterion_main!(benches);

//! Criterion micro-benchmarks of the Euclidean distance kernels, including
//! the ablation of the UCR-Suite optimizations (plain vs early abandoning vs
//! reordered early abandoning) that the paper applies to every method.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_core::distance::{
    euclidean, squared_euclidean, squared_euclidean_early_abandon, squared_euclidean_reordered,
    QueryOrder,
};
use hydra_data::RandomWalkGenerator;

fn bench_distance_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_kernels");
    group.sample_size(40);
    for &len in &[128usize, 256, 1024] {
        let gen = RandomWalkGenerator::new(1, len);
        let q = gen.series(0);
        let cand = gen.series(1);
        // A realistic pruning threshold: half the true distance, so early
        // abandoning actually triggers.
        let threshold = squared_euclidean(q.values(), cand.values()) * 0.25;
        let order = QueryOrder::new(q.values());

        group.bench_with_input(BenchmarkId::new("plain", len), &len, |b, _| {
            b.iter(|| black_box(euclidean(q.values(), cand.values())))
        });
        group.bench_with_input(BenchmarkId::new("squared", len), &len, |b, _| {
            b.iter(|| black_box(squared_euclidean(q.values(), cand.values())))
        });
        group.bench_with_input(BenchmarkId::new("early_abandon", len), &len, |b, _| {
            b.iter(|| {
                black_box(squared_euclidean_early_abandon(
                    q.values(),
                    cand.values(),
                    threshold,
                ))
            })
        });
        group.bench_with_input(
            BenchmarkId::new("reordered_early_abandon", len),
            &len,
            |b, _| {
                b.iter(|| {
                    black_box(squared_euclidean_reordered(
                        q.values(),
                        cand.values(),
                        &order,
                        threshold,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_distance_kernels);
criterion_main!(benches);

//! Criterion micro-benchmarks of the Euclidean distance kernels, including
//! the ablation of the UCR-Suite optimizations (plain vs early abandoning vs
//! reordered early abandoning) that the paper applies to every method, plus
//! the hot-loop allocation sweep (per-candidate allocation vs reused
//! per-query scratch) and the query-major batched kernel.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_core::distance::{
    euclidean, squared_euclidean, squared_euclidean_early_abandon,
    squared_euclidean_multi_reordered, squared_euclidean_reordered, QueryOrder,
};
use hydra_core::{simd, KnnHeap, Parallelism};
use hydra_data::RandomWalkGenerator;
use hydra_transforms::fft::{Complex, Fft};

fn bench_distance_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_kernels");
    group.sample_size(40);
    for &len in &[128usize, 256, 1024] {
        let gen = RandomWalkGenerator::new(1, len);
        let q = gen.series(0);
        let cand = gen.series(1);
        // A realistic pruning threshold: half the true distance, so early
        // abandoning actually triggers.
        let threshold = squared_euclidean(q.values(), cand.values()) * 0.25;
        let order = QueryOrder::new(q.values());

        group.bench_with_input(BenchmarkId::new("plain", len), &len, |b, _| {
            b.iter(|| black_box(euclidean(q.values(), cand.values())))
        });
        group.bench_with_input(BenchmarkId::new("squared", len), &len, |b, _| {
            b.iter(|| black_box(squared_euclidean(q.values(), cand.values())))
        });
        group.bench_with_input(BenchmarkId::new("early_abandon", len), &len, |b, _| {
            b.iter(|| {
                black_box(squared_euclidean_early_abandon(
                    q.values(),
                    cand.values(),
                    threshold,
                ))
            })
        });
        group.bench_with_input(
            BenchmarkId::new("reordered_early_abandon", len),
            &len,
            |b, _| {
                b.iter(|| {
                    black_box(squared_euclidean_reordered(
                        q.values(),
                        cand.values(),
                        &order,
                        threshold,
                    ))
                })
            },
        );
    }
    group.finish();
}

/// The hot-loop allocation sweep: the before/after of reusing per-query
/// scratch (k-NN heap, FFT spectrum buffer) instead of allocating per
/// candidate / per query — the difference the batch kernels bank on.
fn bench_allocation_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation_sweep");
    group.sample_size(40);

    // k-NN heap: fresh allocation per query vs one reset heap.
    let offers: Vec<(usize, f64)> = (0..512)
        .map(|i| (i, ((i * 37) % 101) as f64 + 0.5))
        .collect();
    group.bench_function("knn_heap_fresh_per_query", |b| {
        b.iter(|| {
            let mut h = KnnHeap::new(10);
            for &(id, d) in &offers {
                h.offer(id, d);
            }
            black_box(h.take_answer_set())
        })
    });
    group.bench_function("knn_heap_reset_reused", |b| {
        let mut h = KnnHeap::new(10);
        b.iter(|| {
            h.reset(10);
            for &(id, d) in &offers {
                h.offer(id, d);
            }
            black_box(h.take_answer_set())
        })
    });

    // MASS candidate spectra: allocation per candidate vs reused scratch.
    let len = 256usize;
    let fft = Fft::new(len);
    let candidates: Vec<Vec<f32>> = (0..32)
        .map(|i| {
            RandomWalkGenerator::new(i as u64, len)
                .series(0)
                .into_values()
        })
        .collect();
    group.bench_function("fft_alloc_per_candidate", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for cand in &candidates {
                let spec = fft.forward_real(cand);
                acc += spec[1].re;
            }
            black_box(acc)
        })
    });
    group.bench_function("fft_scratch_reused", |b| {
        let mut spec: Vec<Complex> = Vec::with_capacity(len);
        b.iter(|| {
            let mut acc = 0.0f64;
            for cand in &candidates {
                fft.forward_real_into(cand, &mut spec);
                acc += spec[1].re;
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// The batched scan's inner kernel: evaluating Q queries per candidate
/// (candidate cache-resident, one data pass) vs Q separate passes.
fn bench_batched_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_scan_kernel");
    group.sample_size(30);
    let len = 256usize;
    let num_queries = 16usize;
    let gen = RandomWalkGenerator::new(7, len);
    let candidates: Vec<Vec<f32>> = (0..64)
        .map(|i| gen.series(i as u64).into_values())
        .collect();
    let queries: Vec<Vec<f32>> = (100..100 + num_queries)
        .map(|i| gen.series(i as u64).into_values())
        .collect();
    let query_refs: Vec<&[f32]> = queries.iter().map(|q| q.as_slice()).collect();
    let orders: Vec<QueryOrder> = queries.iter().map(|q| QueryOrder::new(q)).collect();
    let thresholds = vec![f64::INFINITY; num_queries];

    group.bench_function("query_major_one_pass", |b| {
        let mut out = vec![None; num_queries];
        b.iter(|| {
            let mut acc = 0.0f64;
            for cand in &candidates {
                squared_euclidean_multi_reordered(
                    &query_refs,
                    &orders,
                    cand,
                    &thresholds,
                    &mut out,
                );
                acc += out[0].unwrap_or(0.0);
            }
            black_box(acc)
        })
    });
    group.bench_function("per_query_q_passes", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for (q, order) in queries.iter().zip(&orders) {
                for cand in &candidates {
                    acc +=
                        squared_euclidean_reordered(q, cand, order, f64::INFINITY).unwrap_or(0.0);
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// The explicit SIMD kernels against the portable scalar path, at every
/// dispatch tier the host supports: the speedup criterion of the
/// runtime-dispatch layer (`HYDRA_SIMD`), measured on the same inputs the
/// bit-identity tests cover.
fn bench_simd_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd_kernels");
    group.sample_size(60);
    let detected = simd::detected_kernel();
    for &len in &[64usize, 256, 1024] {
        let gen = RandomWalkGenerator::new(3, len);
        let q = gen.series(0);
        let cand = gen.series(1);
        let threshold = simd::squared_euclidean(q.values(), cand.values()) * 0.25;
        let low: Vec<f64> = q.values().iter().map(|&v| v as f64 - 0.5).collect();
        let high: Vec<f64> = q.values().iter().map(|&v| v as f64 + 0.25).collect();
        let weights: Vec<f64> = (0..len).map(|i| 1.0 + (i % 7) as f64).collect();

        for kernel in [simd::Kernel::Portable, detected] {
            let tag = |name: &str| format!("{name}/{}", kernel.name());
            group.bench_with_input(BenchmarkId::new(tag("sq_euclidean"), len), &len, |b, _| {
                b.iter(|| {
                    black_box(simd::squared_euclidean_with(
                        kernel,
                        q.values(),
                        cand.values(),
                    ))
                })
            });
            group.bench_with_input(
                BenchmarkId::new(tag("sq_euclidean_early_abandon"), len),
                &len,
                |b, _| {
                    b.iter(|| {
                        black_box(simd::squared_euclidean_early_abandon_with(
                            kernel,
                            q.values(),
                            cand.values(),
                            threshold,
                        ))
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(tag("interval_mindist"), len),
                &len,
                |b, _| {
                    b.iter(|| {
                        black_box(simd::interval_mindist_sq_with(
                            kernel,
                            q.values(),
                            &low,
                            &high,
                        ))
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(tag("interval_mindist_weighted"), len),
                &len,
                |b, _| {
                    b.iter(|| {
                        black_box(simd::interval_mindist_weighted_sq_with(
                            kernel,
                            q.values(),
                            &low,
                            &high,
                            &weights,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

/// End-to-end single-query latency of the intra-query execution path against
/// the serial path, for a scan and a tree index (speedup is bounded by the
/// CPUs available to the benchmark process).
fn bench_intra_query(c: &mut Criterion) {
    use hydra_bench::MethodKind;
    use hydra_core::{BuildOptions, Query};

    let mut group = c.benchmark_group("intra_query");
    group.sample_size(20);
    let len = 256usize;
    let data = RandomWalkGenerator::new(0xBE7C, len).dataset(2_000);
    let options = BuildOptions::default()
        .with_segments(8)
        .with_leaf_capacity(100)
        .with_train_samples(500);
    let query = Query::nearest_neighbor(RandomWalkGenerator::new(0xF00D, len).series(0));
    for kind in [MethodKind::UcrSuite, MethodKind::DsTree] {
        let mut engine = kind.engine(&data, &options).expect("build");
        group.bench_function(BenchmarkId::new(kind.name(), "serial"), |b| {
            b.iter(|| black_box(engine.answer(&query).expect("serial")))
        });
        for threads in [2usize, 4] {
            group.bench_function(
                BenchmarkId::new(kind.name(), format!("threads-{threads}")),
                |b| {
                    b.iter(|| {
                        black_box(
                            engine
                                .answer_intra(&query, Parallelism::Threads(threads))
                                .expect("intra"),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_distance_kernels,
    bench_allocation_sweep,
    bench_batched_kernel,
    bench_simd_kernels,
    bench_intra_query
);
criterion_main!(benches);

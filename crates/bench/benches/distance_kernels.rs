//! Criterion micro-benchmarks of the Euclidean distance kernels, including
//! the ablation of the UCR-Suite optimizations (plain vs early abandoning vs
//! reordered early abandoning) that the paper applies to every method, plus
//! the hot-loop allocation sweep (per-candidate allocation vs reused
//! per-query scratch) and the query-major batched kernel.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_core::distance::{
    euclidean, squared_euclidean, squared_euclidean_early_abandon,
    squared_euclidean_multi_reordered, squared_euclidean_reordered, QueryOrder,
};
use hydra_core::KnnHeap;
use hydra_data::RandomWalkGenerator;
use hydra_transforms::fft::{Complex, Fft};

fn bench_distance_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_kernels");
    group.sample_size(40);
    for &len in &[128usize, 256, 1024] {
        let gen = RandomWalkGenerator::new(1, len);
        let q = gen.series(0);
        let cand = gen.series(1);
        // A realistic pruning threshold: half the true distance, so early
        // abandoning actually triggers.
        let threshold = squared_euclidean(q.values(), cand.values()) * 0.25;
        let order = QueryOrder::new(q.values());

        group.bench_with_input(BenchmarkId::new("plain", len), &len, |b, _| {
            b.iter(|| black_box(euclidean(q.values(), cand.values())))
        });
        group.bench_with_input(BenchmarkId::new("squared", len), &len, |b, _| {
            b.iter(|| black_box(squared_euclidean(q.values(), cand.values())))
        });
        group.bench_with_input(BenchmarkId::new("early_abandon", len), &len, |b, _| {
            b.iter(|| {
                black_box(squared_euclidean_early_abandon(
                    q.values(),
                    cand.values(),
                    threshold,
                ))
            })
        });
        group.bench_with_input(
            BenchmarkId::new("reordered_early_abandon", len),
            &len,
            |b, _| {
                b.iter(|| {
                    black_box(squared_euclidean_reordered(
                        q.values(),
                        cand.values(),
                        &order,
                        threshold,
                    ))
                })
            },
        );
    }
    group.finish();
}

/// The hot-loop allocation sweep: the before/after of reusing per-query
/// scratch (k-NN heap, FFT spectrum buffer) instead of allocating per
/// candidate / per query — the difference the batch kernels bank on.
fn bench_allocation_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation_sweep");
    group.sample_size(40);

    // k-NN heap: fresh allocation per query vs one reset heap.
    let offers: Vec<(usize, f64)> = (0..512)
        .map(|i| (i, ((i * 37) % 101) as f64 + 0.5))
        .collect();
    group.bench_function("knn_heap_fresh_per_query", |b| {
        b.iter(|| {
            let mut h = KnnHeap::new(10);
            for &(id, d) in &offers {
                h.offer(id, d);
            }
            black_box(h.take_answer_set())
        })
    });
    group.bench_function("knn_heap_reset_reused", |b| {
        let mut h = KnnHeap::new(10);
        b.iter(|| {
            h.reset(10);
            for &(id, d) in &offers {
                h.offer(id, d);
            }
            black_box(h.take_answer_set())
        })
    });

    // MASS candidate spectra: allocation per candidate vs reused scratch.
    let len = 256usize;
    let fft = Fft::new(len);
    let candidates: Vec<Vec<f32>> = (0..32)
        .map(|i| {
            RandomWalkGenerator::new(i as u64, len)
                .series(0)
                .into_values()
        })
        .collect();
    group.bench_function("fft_alloc_per_candidate", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for cand in &candidates {
                let spec = fft.forward_real(cand);
                acc += spec[1].re;
            }
            black_box(acc)
        })
    });
    group.bench_function("fft_scratch_reused", |b| {
        let mut spec: Vec<Complex> = Vec::with_capacity(len);
        b.iter(|| {
            let mut acc = 0.0f64;
            for cand in &candidates {
                fft.forward_real_into(cand, &mut spec);
                acc += spec[1].re;
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// The batched scan's inner kernel: evaluating Q queries per candidate
/// (candidate cache-resident, one data pass) vs Q separate passes.
fn bench_batched_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_scan_kernel");
    group.sample_size(30);
    let len = 256usize;
    let num_queries = 16usize;
    let gen = RandomWalkGenerator::new(7, len);
    let candidates: Vec<Vec<f32>> = (0..64)
        .map(|i| gen.series(i as u64).into_values())
        .collect();
    let queries: Vec<Vec<f32>> = (100..100 + num_queries)
        .map(|i| gen.series(i as u64).into_values())
        .collect();
    let query_refs: Vec<&[f32]> = queries.iter().map(|q| q.as_slice()).collect();
    let orders: Vec<QueryOrder> = queries.iter().map(|q| QueryOrder::new(q)).collect();
    let thresholds = vec![f64::INFINITY; num_queries];

    group.bench_function("query_major_one_pass", |b| {
        let mut out = vec![None; num_queries];
        b.iter(|| {
            let mut acc = 0.0f64;
            for cand in &candidates {
                squared_euclidean_multi_reordered(
                    &query_refs,
                    &orders,
                    cand,
                    &thresholds,
                    &mut out,
                );
                acc += out[0].unwrap_or(0.0);
            }
            black_box(acc)
        })
    });
    group.bench_function("per_query_q_passes", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for (q, order) in queries.iter().zip(&orders) {
                for cand in &candidates {
                    acc +=
                        squared_euclidean_reordered(q, cand, order, f64::INFINITY).unwrap_or(0.0);
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_distance_kernels,
    bench_allocation_sweep,
    bench_batched_kernel
);
criterion_main!(benches);

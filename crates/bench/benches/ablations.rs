//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * SFA binning method (equi-depth vs equi-width) and alphabet size (8 vs 256),
//! * VA+ non-uniform vs uniform bit allocation (approximated by comparing the
//!   trained quantizer against one trained with a minimal budget),
//! * ADS+ vs iSAX2+ construction (adaptive summary-only build vs full leaf
//!   materialization),
//! * DSTree adaptive splitting vs a plain PAA-grid index (R*-tree) at query time.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_bench::registry::MethodKind;
use hydra_core::{AnsweringMethod, BuildOptions, Query};
use hydra_data::RandomWalkGenerator;
use hydra_sfa::SfaTrie;
use hydra_storage::DatasetStore;
use hydra_transforms::BinningMethod;
use std::sync::Arc;

const SERIES: usize = 2_000;
const LENGTH: usize = 256;

fn options() -> BuildOptions {
    BuildOptions::default()
        .with_segments(16)
        .with_leaf_capacity(50)
        .with_train_samples(500)
}

fn bench_sfa_binning_and_alphabet(c: &mut Criterion) {
    let dataset = RandomWalkGenerator::new(21, LENGTH).dataset(SERIES);
    let query = RandomWalkGenerator::new(22, LENGTH).series(0);
    let mut group = c.benchmark_group("ablation_sfa");
    group.sample_size(20);
    for (label, binning, alphabet) in [
        ("equi_depth_a8", BinningMethod::EquiDepth, 8usize),
        ("equi_width_a8", BinningMethod::EquiWidth, 8),
        ("equi_depth_a256", BinningMethod::EquiDepth, 256),
    ] {
        let store = Arc::new(DatasetStore::new(dataset.clone()));
        let index =
            SfaTrie::build_with_binning(store, &options().with_alphabet_size(alphabet), binning)
                .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| {
                black_box(
                    index
                        .answer_simple(&Query::nearest_neighbor(query.clone()))
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_build_strategies(c: &mut Criterion) {
    // ADS+ (summaries only) vs iSAX2+ (leaf materialization): the adaptive
    // build is the design choice ADS+ is built on.
    let dataset = RandomWalkGenerator::new(31, LENGTH).dataset(SERIES);
    let mut group = c.benchmark_group("ablation_build_strategy");
    group.sample_size(10);
    for kind in [MethodKind::AdsPlus, MethodKind::Isax2Plus] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let store = Arc::new(DatasetStore::new(dataset.clone()));
                    black_box(kind.build_boxed_on_store(store, &options()).unwrap())
                })
            },
        );
    }
    group.finish();
}

fn bench_adaptive_vs_fixed_partitioning(c: &mut Criterion) {
    // DSTree's data-adaptive splits vs the fixed PAA grid of the R*-tree:
    // compare query times on the same data (the paper's "data-adaptive
    // partitioning" discussion).
    let dataset = RandomWalkGenerator::new(41, LENGTH).dataset(SERIES);
    let query = RandomWalkGenerator::new(42, LENGTH).series(0);
    let mut group = c.benchmark_group("ablation_partitioning");
    group.sample_size(20);
    for kind in [
        MethodKind::DsTree,
        MethodKind::RStarTree,
        MethodKind::Isax2Plus,
    ] {
        let store = Arc::new(DatasetStore::new(dataset.clone()));
        let method = kind.build_boxed_on_store(store, &options()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            b.iter(|| {
                black_box(
                    method
                        .answer_simple(&Query::nearest_neighbor(query.clone()))
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sfa_binning_and_alphabet,
    bench_build_strategies,
    bench_adaptive_vs_fixed_partitioning
);
criterion_main!(benches);

//! Discrete Fourier Transform (DFT) summaries.
//!
//! The DFT decomposes a series into frequency coefficients; keeping the first
//! `l` coefficients yields a summary whose Euclidean distance lower-bounds the
//! distance between the original series (by Parseval's theorem, when an
//! orthonormal transform is used).
//!
//! This module implements:
//!
//! * an iterative radix-2 FFT for power-of-two lengths,
//! * a direct `O(n²)` DFT fallback for other lengths (the paper's Deep1B
//!   series have length 96),
//! * [`dft_summary`], which produces the real-valued coefficient vector used
//!   by VA+file, SFA and MASS, with the orthonormal scaling that makes the
//!   truncated-coefficient distance a valid lower bound.

use std::f64::consts::PI;

/// A complex number (f64 precision) used by the FFT.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    #[inline]
    fn mul(self, other: Complex) -> Complex {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    #[inline]
    fn add(self, other: Complex) -> Complex {
        Complex {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }

    #[inline]
    fn sub(self, other: Complex) -> Complex {
        Complex {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::add(self, rhs)
    }
}
impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::sub(self, rhs)
    }
}
impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::mul(self, rhs)
    }
}

/// Forward/inverse Fourier transform engine for a fixed length.
#[derive(Clone, Debug)]
pub struct Fft {
    len: usize,
    is_pow2: bool,
}

impl Fft {
    /// Creates a transform for series of length `len`.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "length must be positive");
        Self {
            len,
            is_pow2: len.is_power_of_two(),
        }
    }

    /// The configured length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the configured length is zero (never, kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Forward DFT of a real-valued series; returns `len` complex coefficients
    /// using the engineering convention `X[k] = Σ_t x[t]·e^{-2πi·kt/n}`.
    pub fn forward_real(&self, series: &[f32]) -> Vec<Complex> {
        let mut buf = Vec::with_capacity(self.len);
        self.forward_real_into(series, &mut buf);
        buf
    }

    /// Forward DFT of a real-valued series into a caller-provided buffer,
    /// reusing its allocation.
    ///
    /// Scan loops transform one candidate per iteration; with a per-query
    /// scratch buffer the hot loop performs no per-candidate allocation
    /// (for power-of-two lengths — the direct-DFT fallback for other lengths
    /// still buffers internally).
    pub fn forward_real_into(&self, series: &[f32], out: &mut Vec<Complex>) {
        assert_eq!(series.len(), self.len, "series length mismatch");
        out.clear();
        out.extend(series.iter().map(|&v| Complex::new(v as f64, 0.0)));
        self.forward_in_place(out);
    }

    /// Forward DFT of complex input, in place.
    pub fn forward_in_place(&self, buf: &mut [Complex]) {
        assert_eq!(buf.len(), self.len, "buffer length mismatch");
        if self.is_pow2 {
            fft_radix2(buf, false);
        } else {
            let out = dft_direct(buf, false);
            buf.copy_from_slice(&out);
        }
    }

    /// Inverse DFT, in place (includes the `1/n` scaling so that
    /// `inverse(forward(x)) == x`).
    pub fn inverse_in_place(&self, buf: &mut [Complex]) {
        assert_eq!(buf.len(), self.len, "buffer length mismatch");
        if self.is_pow2 {
            fft_radix2(buf, true);
        } else {
            let out = dft_direct(buf, true);
            buf.copy_from_slice(&out);
        }
        let scale = 1.0 / self.len as f64;
        for c in buf.iter_mut() {
            c.re *= scale;
            c.im *= scale;
        }
    }
}

/// Iterative radix-2 Cooley–Tukey FFT. `inverse` flips the twiddle sign (the
/// `1/n` normalisation is applied by the caller).
fn fft_radix2(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[i + k];
                let v = buf[i + k + len / 2] * w;
                buf[i + k] = u + v;
                buf[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Direct O(n²) DFT for arbitrary lengths.
fn dft_direct(buf: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = buf.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out = vec![Complex::default(); n];
    for (k, out_k) in out.iter_mut().enumerate() {
        let mut acc = Complex::default();
        for (t, &x) in buf.iter().enumerate() {
            let ang = sign * 2.0 * PI * (k * t) as f64 / n as f64;
            acc = acc + x * Complex::new(ang.cos(), ang.sin());
        }
        *out_k = acc;
    }
    out
}

/// Produces the real-valued DFT summary of length `num_coefficients` used by
/// SFA and VA+file.
///
/// The summary interleaves the real and imaginary parts of the low-frequency
/// DFT coefficients `[Re(X₀), Im(X₀), Re(X₁), Im(X₁), …]`, scaled by
/// `sqrt(2/n)` (and `sqrt(1/n)` for the DC and Nyquist terms) so that the
/// plain Euclidean distance between two summaries **lower-bounds** the
/// Euclidean distance between the original series. The scaling follows from
/// Parseval's theorem for real signals: each retained complex coefficient
/// `X_k` (0 < k < n/2) accounts for `2·|X_k|²/n` of the squared series energy.
pub fn dft_summary(series: &[f32], num_coefficients: usize) -> Vec<f32> {
    let n = series.len();
    assert!(n > 0, "series must be non-empty");
    assert!(num_coefficients > 0, "must keep at least one coefficient");
    let fft = Fft::new(n);
    let spectrum = fft.forward_real(series);
    let mut out = Vec::with_capacity(num_coefficients);
    // Walk coefficients X_0, X_1, ... and emit scaled (re, im) pairs until we
    // have num_coefficients real values.
    let mut k = 0usize;
    while out.len() < num_coefficients && k <= n / 2 {
        let is_dc = k == 0;
        let is_nyquist = n.is_multiple_of(2) && k == n / 2;
        let scale = if is_dc || is_nyquist {
            (1.0 / n as f64).sqrt()
        } else {
            (2.0 / n as f64).sqrt()
        };
        out.push((spectrum[k].re * scale) as f32);
        if out.len() < num_coefficients {
            // The imaginary part of DC / Nyquist is always zero for real
            // input; emitting it keeps the layout uniform and adds nothing to
            // the distance.
            out.push((spectrum[k].im * scale) as f32);
        }
        k += 1;
    }
    // If the caller asked for more values than the spectrum provides
    // (num_coefficients > n+2-ish), pad with zeros: distances are unaffected.
    out.resize(num_coefficients, 0.0);
    out
}

/// Euclidean distance between two DFT summaries produced by [`dft_summary`];
/// lower-bounds the true distance between the corresponding series.
pub fn dft_lower_bound(summary_a: &[f32], summary_b: &[f32]) -> f64 {
    debug_assert_eq!(summary_a.len(), summary_b.len());
    let mut sum = 0.0f64;
    for (&a, &b) in summary_a.iter().zip(summary_b.iter()) {
        let d = (a - b) as f64;
        sum += d * d;
    }
    sum.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::distance::euclidean;

    fn lcg_series(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) as f32
            })
            .collect()
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert!((a.norm_sqr() - 5.0).abs() < 1e-12);
        assert!((a.abs() - 5.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let fft = Fft::new(8);
        let mut series = vec![0.0f32; 8];
        series[0] = 1.0;
        let spec = fft.forward_real(&series);
        for c in spec {
            assert!((c.re - 1.0).abs() < 1e-9);
            assert!(c.im.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_of_constant_has_only_dc() {
        let fft = Fft::new(16);
        let spec = fft.forward_real(&[2.0f32; 16]);
        assert!((spec[0].re - 32.0).abs() < 1e-9);
        for c in &spec[1..] {
            assert!(c.abs() < 1e-9);
        }
    }

    #[test]
    fn forward_then_inverse_round_trips_pow2_and_arbitrary() {
        for &n in &[8usize, 16, 96, 100, 33] {
            let fft = Fft::new(n);
            let series = lcg_series(n, 7);
            let mut buf: Vec<Complex> = series
                .iter()
                .map(|&v| Complex::new(v as f64, 0.0))
                .collect();
            fft.forward_in_place(&mut buf);
            fft.inverse_in_place(&mut buf);
            for (orig, c) in series.iter().zip(buf.iter()) {
                assert!(
                    (c.re - *orig as f64).abs() < 1e-6,
                    "round trip failed for n={n}"
                );
                assert!(c.im.abs() < 1e-6);
            }
        }
    }

    #[test]
    fn forward_real_into_reuses_the_buffer_and_matches_forward_real() {
        for &n in &[16usize, 96] {
            let fft = Fft::new(n);
            let mut scratch = Vec::new();
            for seed in 0..3 {
                let series = lcg_series(n, seed);
                fft.forward_real_into(&series, &mut scratch);
                assert_eq!(scratch, fft.forward_real(&series), "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn radix2_matches_direct_dft() {
        let n = 32;
        let series = lcg_series(n, 99);
        let buf: Vec<Complex> = series
            .iter()
            .map(|&v| Complex::new(v as f64, 0.0))
            .collect();
        let direct = dft_direct(&buf, false);
        let fft = Fft::new(n);
        let fast = fft.forward_real(&series);
        for (a, b) in direct.iter().zip(fast.iter()) {
            assert!((a.re - b.re).abs() < 1e-6);
            assert!((a.im - b.im).abs() < 1e-6);
        }
    }

    #[test]
    fn parseval_energy_is_preserved_by_summary_at_full_resolution() {
        // With all coefficients kept, the summary's squared norm equals the
        // series' squared norm (Parseval with orthonormal scaling).
        for &n in &[16usize, 96] {
            let series = lcg_series(n, 3);
            let summary = dft_summary(&series, n + 2);
            let series_energy: f64 = series.iter().map(|&v| (v as f64) * (v as f64)).sum();
            let summary_energy: f64 = summary.iter().map(|&v| (v as f64) * (v as f64)).sum();
            assert!(
                (series_energy - summary_energy).abs() < 1e-4,
                "energy mismatch for n={n}: {series_energy} vs {summary_energy}"
            );
        }
    }

    #[test]
    fn dft_summary_lower_bounds_euclidean_distance() {
        for &n in &[64usize, 96, 256] {
            for &l in &[4usize, 8, 16] {
                for seed in 0..5 {
                    let a = lcg_series(n, seed * 2 + 1);
                    let b = lcg_series(n, seed * 2 + 2);
                    let sa = dft_summary(&a, l);
                    let sb = dft_summary(&b, l);
                    let lb = dft_lower_bound(&sa, &sb);
                    let ed = euclidean(&a, &b);
                    assert!(lb <= ed + 1e-4, "LB {lb} > ED {ed} (n={n}, l={l})");
                }
            }
        }
    }

    #[test]
    fn more_coefficients_give_tighter_bounds() {
        let n = 128;
        let a = lcg_series(n, 5);
        let b = lcg_series(n, 6);
        let lb4 = dft_lower_bound(&dft_summary(&a, 4), &dft_summary(&b, 4));
        let lb16 = dft_lower_bound(&dft_summary(&a, 16), &dft_summary(&b, 16));
        let lb64 = dft_lower_bound(&dft_summary(&a, 64), &dft_summary(&b, 64));
        assert!(lb4 <= lb16 + 1e-9);
        assert!(lb16 <= lb64 + 1e-9);
    }

    #[test]
    fn summary_pads_with_zeros_beyond_spectrum() {
        let s = lcg_series(8, 1);
        let summary = dft_summary(&s, 64);
        assert_eq!(summary.len(), 64);
        assert!(summary[20..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fft_len_accessors() {
        let fft = Fft::new(8);
        assert_eq!(fft.len(), 8);
        assert!(!fft.is_empty());
    }
}

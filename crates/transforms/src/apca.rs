//! Adaptive Piecewise Constant Approximation (APCA).
//!
//! APCA approximates a series with `l` constant segments of *varying* length,
//! choosing segment boundaries adaptively so that smooth regions get long
//! segments and busy regions get short ones. It is the predecessor of EAPCA
//! (which additionally stores per-segment standard deviations) and is included
//! both for completeness of the summarization survey (Figure 1 of the paper)
//! and as the adaptive-segmentation building block reused by the DSTree's
//! split-point selection.
//!
//! This implementation uses a bottom-up merge strategy: start from a fine
//! uniform segmentation and repeatedly merge the adjacent pair whose merge
//! increases the squared reconstruction error the least, until `l` segments
//! remain. This greedy approach is the standard practical APCA construction
//! and runs in `O(n log n)`.

/// One APCA segment: a constant value over `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ApcaSegment {
    /// First point covered by the segment.
    pub start: usize,
    /// One past the last point covered by the segment.
    pub end: usize,
    /// The constant (mean) value of the segment.
    pub value: f32,
}

impl ApcaSegment {
    /// The number of points covered.
    pub fn width(&self) -> usize {
        self.end - self.start
    }
}

/// The APCA representation of a series: `l` variable-length constant segments.
#[derive(Clone, Debug, PartialEq)]
pub struct Apca {
    /// The segments, in series order, covering the whole series.
    pub segments: Vec<ApcaSegment>,
}

impl Apca {
    /// Computes an APCA representation of `series` with at most
    /// `num_segments` segments using bottom-up merging.
    ///
    /// # Panics
    /// Panics if `num_segments == 0` or the series is empty.
    pub fn compute(series: &[f32], num_segments: usize) -> Self {
        assert!(num_segments > 0, "num_segments must be positive");
        assert!(!series.is_empty(), "series must be non-empty");
        let num_segments = num_segments.min(series.len());

        // Running (count, sum, sum of squares) per segment for O(1) merge cost.
        #[derive(Clone, Copy)]
        struct Acc {
            start: usize,
            end: usize,
            sum: f64,
            sum_sq: f64,
        }
        impl Acc {
            fn sse(&self) -> f64 {
                let n = (self.end - self.start) as f64;
                (self.sum_sq - self.sum * self.sum / n).max(0.0)
            }
            fn merged(&self, other: &Acc) -> Acc {
                Acc {
                    start: self.start,
                    end: other.end,
                    sum: self.sum + other.sum,
                    sum_sq: self.sum_sq + other.sum_sq,
                }
            }
        }

        let mut segs: Vec<Acc> = series
            .iter()
            .enumerate()
            .map(|(i, &v)| Acc {
                start: i,
                end: i + 1,
                sum: v as f64,
                sum_sq: (v as f64) * (v as f64),
            })
            .collect();

        while segs.len() > num_segments {
            // Find the adjacent pair whose merge adds the least error.
            let mut best = 0usize;
            let mut best_cost = f64::INFINITY;
            for i in 0..segs.len() - 1 {
                let merged = segs[i].merged(&segs[i + 1]);
                let cost = merged.sse() - segs[i].sse() - segs[i + 1].sse();
                if cost < best_cost {
                    best_cost = cost;
                    best = i;
                }
            }
            let merged = segs[best].merged(&segs[best + 1]);
            segs[best] = merged;
            segs.remove(best + 1);
        }

        let segments = segs
            .into_iter()
            .map(|a| ApcaSegment {
                start: a.start,
                end: a.end,
                value: (a.sum / (a.end - a.start) as f64) as f32,
            })
            .collect();
        Self { segments }
    }

    /// The number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the representation has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Reconstructs the piecewise-constant approximation of the original series.
    pub fn reconstruct(&self, series_length: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; series_length];
        for seg in &self.segments {
            for v in out
                .iter_mut()
                .take(seg.end.min(series_length))
                .skip(seg.start)
            {
                *v = seg.value;
            }
        }
        out
    }

    /// The squared reconstruction error against the original series.
    pub fn reconstruction_error(&self, series: &[f32]) -> f64 {
        let recon = self.reconstruct(series.len());
        series
            .iter()
            .zip(recon.iter())
            .map(|(&a, &b)| {
                let d = (a - b) as f64;
                d * d
            })
            .sum()
    }

    /// Lower bound of the Euclidean distance between a raw query and the
    /// series this APCA summarizes, treating each segment as the PAA bound on
    /// the segment grid: the query is averaged over each candidate segment.
    pub fn lower_bound_to_query(&self, query: &[f32]) -> f64 {
        let mut sum = 0.0f64;
        for seg in &self.segments {
            let w = seg.width() as f64;
            let q_mean: f64 = query[seg.start..seg.end]
                .iter()
                .map(|&v| v as f64)
                .sum::<f64>()
                / w;
            let d = q_mean - seg.value as f64;
            sum += w * d * d;
        }
        sum.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::distance::euclidean;

    fn lcg_series(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) as f32
            })
            .collect()
    }

    #[test]
    fn segments_tile_the_series() {
        let s = lcg_series(100, 1);
        let apca = Apca::compute(&s, 8);
        assert_eq!(apca.len(), 8);
        assert_eq!(apca.segments[0].start, 0);
        assert_eq!(apca.segments.last().unwrap().end, 100);
        for w in apca.segments.windows(2) {
            assert_eq!(w[0].end, w[1].start, "segments must be contiguous");
        }
    }

    #[test]
    fn piecewise_constant_series_is_recovered_exactly() {
        // A series with exactly 3 constant plateaus should be represented with
        // zero error by a 3-segment APCA.
        let mut s = vec![1.0f32; 10];
        s.extend_from_slice(&[5.0; 20]);
        s.extend_from_slice(&[-2.0; 10]);
        let apca = Apca::compute(&s, 3);
        assert!(apca.reconstruction_error(&s) < 1e-9);
        let values: Vec<f32> = apca.segments.iter().map(|x| x.value).collect();
        assert_eq!(values, vec![1.0, 5.0, -2.0]);
        let widths: Vec<usize> = apca.segments.iter().map(|x| x.width()).collect();
        assert_eq!(widths, vec![10, 20, 10]);
    }

    #[test]
    fn adaptive_segments_beat_uniform_on_bursty_data() {
        // A series that is flat for 3/4 of its length and busy in the last
        // quarter: APCA with 4 segments should have lower error than uniform
        // PAA-style reconstruction with 4 equal segments.
        let mut s = vec![0.0f32; 96];
        for i in 0..32 {
            s.push(if i % 2 == 0 { 3.0 } else { -3.0 });
        }
        let apca = Apca::compute(&s, 4);
        let apca_err = apca.reconstruction_error(&s);
        // Uniform 4-segment reconstruction error.
        let paa = crate::paa::Paa::new(128, 4);
        let means = paa.transform(&s);
        let mut uniform_err = 0.0f64;
        for (seg, &mean) in means.iter().enumerate().take(4) {
            let (start, end) = paa.segment_range(seg);
            for &v in &s[start..end] {
                let d = (v - mean) as f64;
                uniform_err += d * d;
            }
        }
        assert!(apca_err <= uniform_err + 1e-9);
    }

    #[test]
    fn reconstruction_and_error() {
        let s = [1.0f32, 1.0, 2.0, 2.0];
        let apca = Apca::compute(&s, 2);
        let recon = apca.reconstruct(4);
        assert_eq!(recon, vec![1.0, 1.0, 2.0, 2.0]);
        assert_eq!(apca.reconstruction_error(&s), 0.0);
        assert!(!apca.is_empty());
    }

    #[test]
    fn more_segments_than_points_is_clamped() {
        let s = [3.0f32, 4.0];
        let apca = Apca::compute(&s, 10);
        assert_eq!(apca.len(), 2);
        assert_eq!(apca.reconstruction_error(&s), 0.0);
    }

    #[test]
    fn lower_bound_to_query_never_exceeds_euclidean() {
        for seed in 0..10u64 {
            let c = lcg_series(64, seed * 2 + 1);
            let q = lcg_series(64, seed * 2 + 2);
            for l in [2usize, 8, 16] {
                let apca = Apca::compute(&c, l);
                let lb = apca.lower_bound_to_query(&q);
                let ed = euclidean(&q, &c);
                assert!(lb <= ed + 1e-5, "LB {lb} > ED {ed} with {l} segments");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_segments_rejected() {
        let _ = Apca::compute(&[1.0, 2.0], 0);
    }
}

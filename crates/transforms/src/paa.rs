//! Piecewise Aggregate Approximation (PAA).
//!
//! PAA divides a series of length `n` into `l` equi-length segments and
//! represents each segment by the mean of its points. Its lower-bounding
//! distance is
//!
//! ```text
//! LB_PAA(Q, C) = sqrt( Σ_i  w_i * (paa(Q)_i - paa(C)_i)^2 )
//! ```
//!
//! where `w_i` is the number of points covered by segment `i`. When `n` is not
//! a multiple of `l` the last segments cover one fewer point; the weights
//! account for that so the bound stays valid.

/// The PAA summarization of series of a fixed length into a fixed number of
/// segments.
#[derive(Clone, Debug, PartialEq)]
pub struct Paa {
    series_length: usize,
    segments: usize,
    /// Start offset of each segment (length `segments + 1`, last = series_length).
    boundaries: Vec<usize>,
}

impl Paa {
    /// Creates a PAA transform for series of length `series_length` reduced to
    /// `segments` segments.
    ///
    /// # Panics
    /// Panics if `segments == 0` or `segments > series_length`.
    pub fn new(series_length: usize, segments: usize) -> Self {
        assert!(segments > 0, "segments must be positive");
        assert!(
            segments <= series_length,
            "cannot have more segments than points"
        );
        // Distribute points as evenly as possible: the first (n % l) segments
        // get one extra point.
        let base = series_length / segments;
        let extra = series_length % segments;
        let mut boundaries = Vec::with_capacity(segments + 1);
        let mut pos = 0usize;
        boundaries.push(0);
        for i in 0..segments {
            pos += base + usize::from(i < extra);
            boundaries.push(pos);
        }
        debug_assert_eq!(pos, series_length);
        Self {
            series_length,
            segments,
            boundaries,
        }
    }

    /// The series length this transform expects.
    pub fn series_length(&self) -> usize {
        self.series_length
    }

    /// The number of segments produced.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// The number of points covered by segment `i`.
    #[inline]
    pub fn segment_width(&self, i: usize) -> usize {
        self.boundaries[i + 1] - self.boundaries[i]
    }

    /// The `[start, end)` point range of segment `i`.
    #[inline]
    pub fn segment_range(&self, i: usize) -> (usize, usize) {
        (self.boundaries[i], self.boundaries[i + 1])
    }

    /// Computes the PAA representation (segment means) of `series`.
    ///
    /// # Panics
    /// Panics (debug) if the series length does not match.
    pub fn transform(&self, series: &[f32]) -> Vec<f32> {
        debug_assert_eq!(series.len(), self.series_length, "series length mismatch");
        let mut out = Vec::with_capacity(self.segments);
        for i in 0..self.segments {
            let (start, end) = self.segment_range(i);
            let sum: f64 = series[start..end].iter().map(|&v| v as f64).sum();
            out.push((sum / (end - start) as f64) as f32);
        }
        out
    }

    /// Lower-bounding distance between two PAA representations.
    ///
    /// Guaranteed not to exceed the Euclidean distance between the original
    /// series (`LB_PAA(Q, C) ≤ ED(Q, C)`).
    pub fn lower_bound(&self, paa_a: &[f32], paa_b: &[f32]) -> f64 {
        debug_assert_eq!(paa_a.len(), self.segments);
        debug_assert_eq!(paa_b.len(), self.segments);
        let mut sum = 0.0f64;
        for i in 0..self.segments {
            let d = (paa_a[i] - paa_b[i]) as f64;
            sum += self.segment_width(i) as f64 * d * d;
        }
        sum.sqrt()
    }

    /// Squared version of [`Paa::lower_bound`].
    pub fn lower_bound_squared(&self, paa_a: &[f32], paa_b: &[f32]) -> f64 {
        let lb = self.lower_bound(paa_a, paa_b);
        lb * lb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::distance::euclidean;

    #[test]
    fn boundaries_cover_series_evenly() {
        let paa = Paa::new(16, 4);
        assert_eq!(paa.segments(), 4);
        assert_eq!(paa.series_length(), 16);
        for i in 0..4 {
            assert_eq!(paa.segment_width(i), 4);
        }
        // Non-divisible case: 10 points in 4 segments -> widths 3,3,2,2.
        let paa = Paa::new(10, 4);
        let widths: Vec<usize> = (0..4).map(|i| paa.segment_width(i)).collect();
        assert_eq!(widths, vec![3, 3, 2, 2]);
        assert_eq!(widths.iter().sum::<usize>(), 10);
    }

    #[test]
    fn transform_computes_segment_means() {
        let paa = Paa::new(8, 4);
        let s = [1.0, 3.0, 5.0, 7.0, 2.0, 2.0, 10.0, 0.0];
        assert_eq!(paa.transform(&s), vec![2.0, 6.0, 2.0, 5.0]);
    }

    #[test]
    fn constant_series_transform_is_constant() {
        let paa = Paa::new(12, 5);
        let s = [3.5f32; 12];
        assert!(paa.transform(&s).iter().all(|&v| (v - 3.5).abs() < 1e-6));
    }

    #[test]
    fn single_segment_is_global_mean() {
        let paa = Paa::new(4, 1);
        assert_eq!(paa.transform(&[1.0, 2.0, 3.0, 6.0]), vec![3.0]);
    }

    #[test]
    fn full_resolution_paa_is_identity() {
        let paa = Paa::new(5, 5);
        let s = [1.0, -2.0, 3.0, 0.5, 9.0];
        assert_eq!(paa.transform(&s), s.to_vec());
        // And its lower bound equals the true distance.
        let t = [0.0, 0.0, 0.0, 0.0, 0.0];
        let lb = paa.lower_bound(&paa.transform(&s), &paa.transform(&t));
        assert!((lb - euclidean(&s, &t)).abs() < 1e-6);
    }

    #[test]
    fn lower_bound_never_exceeds_true_distance() {
        // Deterministic pseudo-random series over several lengths/segments.
        let mut state = 12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) as f32
        };
        for &(n, l) in &[(16usize, 4usize), (100, 7), (256, 16), (96, 16)] {
            let paa = Paa::new(n, l);
            for _ in 0..20 {
                let a: Vec<f32> = (0..n).map(|_| next()).collect();
                let b: Vec<f32> = (0..n).map(|_| next()).collect();
                let lb = paa.lower_bound(&paa.transform(&a), &paa.transform(&b));
                let ed = euclidean(&a, &b);
                assert!(lb <= ed + 1e-6, "LB {lb} > ED {ed} for n={n}, l={l}");
            }
        }
    }

    #[test]
    fn lower_bound_squared_consistency() {
        let paa = Paa::new(8, 2);
        let a = paa.transform(&[1.0; 8]);
        let b = paa.transform(&[0.0; 8]);
        let lb = paa.lower_bound(&a, &b);
        assert!((paa.lower_bound_squared(&a, &b) - lb * lb).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "more segments than points")]
    fn rejects_too_many_segments() {
        let _ = Paa::new(4, 5);
    }

    #[test]
    #[should_panic(expected = "segments must be positive")]
    fn rejects_zero_segments() {
        let _ = Paa::new(4, 0);
    }
}

//! SAX and iSAX symbolic summarization.
//!
//! SAX first reduces a series to its PAA representation, then maps each PAA
//! value to a discrete symbol using equal-probability breakpoints of the
//! standard normal distribution. An *iSAX* word additionally allows each
//! segment to use its own cardinality (number of bits), which is what lets
//! iSAX-family indexes split a node by promoting one segment to a finer
//! resolution.
//!
//! The lower-bounding distance (`MINDIST`) between a query's PAA values and a
//! candidate's (i)SAX word sums, per segment, the squared distance from the
//! query's PAA value to the breakpoint region of the candidate's symbol,
//! weighted by the segment width.

use crate::gaussian::{sax_breakpoints, symbol_for_value};
use crate::paa::Paa;

/// Shared parameters of a SAX summarization: segment layout and the maximum
/// (full) cardinality breakpoint table.
#[derive(Clone, Debug)]
pub struct SaxParams {
    paa: Paa,
    max_bits: u8,
    /// Breakpoints for the full cardinality `2^max_bits` (length `2^max_bits - 1`).
    breakpoints: Vec<f64>,
}

impl SaxParams {
    /// Creates SAX parameters for series of length `series_length`, `segments`
    /// segments and a full alphabet of `2^max_bits` symbols.
    ///
    /// # Panics
    /// Panics if `max_bits` is 0 or greater than 16.
    pub fn new(series_length: usize, segments: usize, max_bits: u8) -> Self {
        assert!((1..=16).contains(&max_bits), "max_bits must be in 1..=16");
        let paa = Paa::new(series_length, segments);
        let breakpoints = sax_breakpoints(1usize << max_bits);
        Self {
            paa,
            max_bits,
            breakpoints,
        }
    }

    /// The PAA layout underlying this SAX summarization.
    pub fn paa(&self) -> &Paa {
        &self.paa
    }

    /// The number of segments (word length).
    pub fn segments(&self) -> usize {
        self.paa.segments()
    }

    /// The maximum number of bits per segment.
    pub fn max_bits(&self) -> u8 {
        self.max_bits
    }

    /// The full alphabet size `2^max_bits`.
    pub fn max_cardinality(&self) -> u32 {
        1u32 << self.max_bits
    }

    /// The series length this summarization expects.
    pub fn series_length(&self) -> usize {
        self.paa.series_length()
    }

    /// Breakpoint `i` of the full-cardinality table.
    #[inline]
    fn full_breakpoint(&self, i: usize) -> f64 {
        self.breakpoints[i]
    }

    /// Computes the full-cardinality SAX word of a series.
    pub fn sax_word(&self, series: &[f32]) -> SaxWord {
        let paa_values = self.paa.transform(series);
        self.sax_word_from_paa(&paa_values)
    }

    /// Computes the full-cardinality SAX word from precomputed PAA values.
    pub fn sax_word_from_paa(&self, paa_values: &[f32]) -> SaxWord {
        debug_assert_eq!(paa_values.len(), self.segments());
        let symbols = paa_values
            .iter()
            .map(|&v| symbol_for_value(v as f64, &self.breakpoints) as u16)
            .collect();
        SaxWord { symbols }
    }

    /// The `(low, high)` value range covered by symbol `symbol` at cardinality
    /// `2^bits` (using the full-cardinality table restricted to the coarser
    /// resolution). `low` may be `-inf` and `high` may be `+inf`.
    pub fn symbol_range(&self, symbol: u16, bits: u8) -> (f64, f64) {
        debug_assert!(bits >= 1 && bits <= self.max_bits);
        // A coarse symbol at `bits` corresponds to a contiguous run of
        // full-resolution symbols; its boundaries are full-table breakpoints
        // at stride 2^(max_bits - bits).
        let stride = 1usize << (self.max_bits - bits);
        let cardinality = 1usize << bits;
        let symbol = symbol as usize;
        debug_assert!(symbol < cardinality);
        let low = if symbol == 0 {
            f64::NEG_INFINITY
        } else {
            self.full_breakpoint(symbol * stride - 1)
        };
        let high = if symbol + 1 == cardinality {
            f64::INFINITY
        } else {
            self.full_breakpoint((symbol + 1) * stride - 1)
        };
        (low, high)
    }

    /// Lower-bounding (MINDIST) distance between a query's PAA values and a
    /// candidate's iSAX word.
    ///
    /// The per-segment gaps and the width-weighted accumulation run through
    /// the runtime-dispatched interval kernel
    /// ([`hydra_core::simd::interval_mindist_weighted_sq`]), so this inner
    /// loop of every iSAX-family traversal vectorizes on SSE2/AVX2 hardware
    /// while staying bit-identical across dispatch kernels.
    pub fn mindist_paa_to_isax(&self, query_paa: &[f32], word: &IsaxWord) -> f64 {
        debug_assert_eq!(query_paa.len(), self.segments());
        debug_assert_eq!(word.len(), self.segments());
        // Segment counts are small (the paper fixes 16), so the interval
        // bounds live on the stack in the common case.
        const STACK_SEGS: usize = 32;
        let segments = self.segments();
        let mut low_buf = [0.0f64; STACK_SEGS];
        let mut high_buf = [0.0f64; STACK_SEGS];
        let mut width_buf = [0.0f64; STACK_SEGS];
        let mut low_vec;
        let mut high_vec;
        let mut width_vec;
        let (low, high, width) = if segments <= STACK_SEGS {
            (
                &mut low_buf[..segments],
                &mut high_buf[..segments],
                &mut width_buf[..segments],
            )
        } else {
            low_vec = vec![0.0f64; segments];
            high_vec = vec![0.0f64; segments];
            width_vec = vec![0.0f64; segments];
            (&mut low_vec[..], &mut high_vec[..], &mut width_vec[..])
        };
        for i in 0..segments {
            let (lo, hi) = self.symbol_range(word.symbols[i], word.bits[i]);
            low[i] = lo;
            high[i] = hi;
            width[i] = self.paa.segment_width(i) as f64;
        }
        hydra_core::simd::interval_mindist_weighted_sq(&query_paa[..segments], low, high, width)
            .sqrt()
    }
}

/// A full-cardinality SAX word: one symbol per segment.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SaxWord {
    /// Symbol of each segment at the full cardinality.
    pub symbols: Vec<u16>,
}

impl SaxWord {
    /// The number of segments.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the word has no segments.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Converts to an iSAX word where every segment uses `bits` bits.
    pub fn to_isax(&self, bits: u8, max_bits: u8) -> IsaxWord {
        assert!(bits >= 1 && bits <= max_bits);
        let shift = max_bits - bits;
        IsaxWord {
            symbols: self.symbols.iter().map(|&s| s >> shift).collect(),
            bits: vec![bits; self.symbols.len()],
            max_bits,
        }
    }
}

/// An iSAX word: per-segment symbols with per-segment cardinalities.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct IsaxWord {
    /// Symbol of each segment, expressed at that segment's own cardinality.
    pub symbols: Vec<u16>,
    /// Number of bits (log2 cardinality) of each segment.
    pub bits: Vec<u8>,
    /// The maximum bits (full cardinality) of the underlying SAX table.
    pub max_bits: u8,
}

impl IsaxWord {
    /// The number of segments.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the word has no segments.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Returns `true` if `full` (a full-cardinality SAX word) falls inside the
    /// region this iSAX word represents.
    pub fn contains(&self, full: &SaxWord) -> bool {
        debug_assert_eq!(full.len(), self.len());
        self.symbols
            .iter()
            .zip(self.bits.iter())
            .zip(full.symbols.iter())
            .all(|((&sym, &bits), &full_sym)| {
                let shift = self.max_bits - bits;
                (full_sym >> shift) == sym
            })
    }

    /// Produces the two children obtained by splitting on `segment`: the
    /// segment's cardinality is doubled and the new bit is set to 0 / 1.
    ///
    /// Returns `None` if the segment is already at full cardinality.
    pub fn split(&self, segment: usize) -> Option<(IsaxWord, IsaxWord)> {
        if self.bits[segment] >= self.max_bits {
            return None;
        }
        let mut left = self.clone();
        let mut right = self.clone();
        left.bits[segment] += 1;
        right.bits[segment] += 1;
        left.symbols[segment] = self.symbols[segment] << 1;
        right.symbols[segment] = (self.symbols[segment] << 1) | 1;
        Some((left, right))
    }

    /// The root word (every segment at 1 bit, symbol taken from `full`).
    pub fn root_of(full: &SaxWord, max_bits: u8) -> IsaxWord {
        full.to_isax(1, max_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::distance::euclidean;

    fn lcg_series(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed;
        let mut v: Vec<f32> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) as f32
            })
            .collect();
        hydra_core::series::z_normalize(&mut v);
        v
    }

    #[test]
    fn sax_word_has_one_symbol_per_segment() {
        let params = SaxParams::new(64, 8, 8);
        let w = params.sax_word(&lcg_series(64, 1));
        assert_eq!(w.len(), 8);
        assert!(!w.is_empty());
        assert!(w
            .symbols
            .iter()
            .all(|&s| (s as u32) < params.max_cardinality()));
    }

    #[test]
    fn extreme_values_map_to_extreme_symbols() {
        let params = SaxParams::new(16, 4, 3);
        let mut series = vec![-10.0f32; 4];
        series.extend_from_slice(&[10.0; 4]);
        series.extend_from_slice(&[-10.0; 4]);
        series.extend_from_slice(&[10.0; 4]);
        let w = params.sax_word(&series);
        assert_eq!(w.symbols, vec![0, 7, 0, 7]);
    }

    #[test]
    fn symbol_range_brackets_the_paa_value() {
        let params = SaxParams::new(64, 8, 8);
        let s = lcg_series(64, 5);
        let paa = params.paa().transform(&s);
        let w = params.sax_word(&s);
        for (i, &p) in paa.iter().enumerate().take(8) {
            let (low, high) = params.symbol_range(w.symbols[i], params.max_bits());
            assert!(low <= p as f64 + 1e-9, "segment {i}: {low} > {p}");
            assert!(p as f64 <= high + 1e-9, "segment {i}: {p} > {high}");
        }
    }

    #[test]
    fn coarse_symbol_ranges_nest_fine_ones() {
        let params = SaxParams::new(32, 4, 8);
        let s = lcg_series(32, 9);
        let full = params.sax_word(&s);
        for bits in 1..=8u8 {
            let w = full.to_isax(bits, 8);
            for i in 0..4 {
                let (lo, hi) = params.symbol_range(w.symbols[i], bits);
                let (flo, fhi) = params.symbol_range(full.symbols[i], 8);
                assert!(lo <= flo + 1e-12);
                assert!(hi + 1e-12 >= fhi);
            }
        }
    }

    #[test]
    fn mindist_lower_bounds_euclidean() {
        let params = SaxParams::new(128, 16, 8);
        for seed in 0..10 {
            let q = lcg_series(128, seed * 2 + 1);
            let c = lcg_series(128, seed * 2 + 2);
            let q_paa = params.paa().transform(&q);
            let ed = euclidean(&q, &c);
            for bits in [1u8, 2, 4, 8] {
                let word = params.sax_word(&c).to_isax(bits, 8);
                let lb = params.mindist_paa_to_isax(&q_paa, &word);
                assert!(lb <= ed + 1e-4, "bits={bits}: LB {lb} > ED {ed}");
            }
        }
    }

    #[test]
    fn finer_cardinality_gives_tighter_mindist() {
        let params = SaxParams::new(256, 16, 8);
        let q = lcg_series(256, 31);
        let c = lcg_series(256, 32);
        let q_paa = params.paa().transform(&q);
        let full = params.sax_word(&c);
        let mut prev = 0.0;
        for bits in 1..=8u8 {
            let lb = params.mindist_paa_to_isax(&q_paa, &full.to_isax(bits, 8));
            assert!(
                lb + 1e-9 >= prev,
                "MINDIST must not decrease with more bits"
            );
            prev = lb;
        }
    }

    #[test]
    fn isax_contains_and_split() {
        let params = SaxParams::new(32, 4, 4);
        let s = lcg_series(32, 77);
        let full = params.sax_word(&s);
        let root = IsaxWord::root_of(&full, 4);
        assert!(root.contains(&full));
        let (left, right) = root.split(0).unwrap();
        // Exactly one of the children contains the word.
        assert_ne!(left.contains(&full), right.contains(&full));
        // Splitting at full cardinality returns None.
        let fine = full.to_isax(4, 4);
        assert!(fine.split(2).is_none());
    }

    #[test]
    fn split_preserves_other_segments() {
        let w = IsaxWord {
            symbols: vec![1, 2, 3],
            bits: vec![2, 2, 2],
            max_bits: 4,
        };
        let (l, r) = w.split(1).unwrap();
        assert_eq!(l.symbols, vec![1, 4, 3]);
        assert_eq!(r.symbols, vec![1, 5, 3]);
        assert_eq!(l.bits, vec![2, 3, 2]);
        assert_eq!(r.bits, vec![2, 3, 2]);
    }

    #[test]
    fn to_isax_at_full_bits_is_identity_on_symbols() {
        let w = SaxWord {
            symbols: vec![200, 3, 128, 255],
        };
        let i = w.to_isax(8, 8);
        assert_eq!(i.symbols, vec![200, 3, 128, 255]);
        assert!(i.contains(&w));
    }

    #[test]
    fn accessors() {
        let params = SaxParams::new(96, 16, 8);
        assert_eq!(params.segments(), 16);
        assert_eq!(params.series_length(), 96);
        assert_eq!(params.max_bits(), 8);
        assert_eq!(params.max_cardinality(), 256);
    }
}

//! APCA-family segment statistics: the Extended Adaptive Piecewise Constant
//! Approximation (EAPCA) used by the DSTree.
//!
//! EAPCA represents a series over a given *segmentation* (a list of split
//! points) by the mean and standard deviation of every segment. Unlike PAA the
//! segmentation does not have to be equi-length, and the DSTree refines the
//! segmentation per node as it splits (adding a new split point = "vertical"
//! split; tightening the mean/std range on an existing segment = "horizontal"
//! split).
//!
//! The lower-bounding distance used here is the per-segment mean distance
//! weighted by segment width, which lower-bounds the Euclidean distance for
//! any segmentation (it is the PAA bound on a non-uniform grid).

/// Per-segment statistics: mean and standard deviation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EapcaSegment {
    /// Mean value of the segment's points.
    pub mean: f32,
    /// Population standard deviation of the segment's points.
    pub std_dev: f32,
}

/// The EAPCA representation of one series under a given segmentation.
#[derive(Clone, Debug, PartialEq)]
pub struct Eapca {
    /// Per-segment statistics, in series order.
    pub segments: Vec<EapcaSegment>,
}

impl Eapca {
    /// Computes the EAPCA of `series` under `segmentation`.
    ///
    /// `segmentation` is the list of segment end offsets (exclusive), strictly
    /// increasing, ending at `series.len()`.
    pub fn compute(series: &[f32], segmentation: &[usize]) -> Self {
        debug_assert!(valid_segmentation(segmentation, series.len()));
        let mut segments = Vec::with_capacity(segmentation.len());
        let mut start = 0usize;
        for &end in segmentation {
            let slice = &series[start..end];
            let n = slice.len() as f64;
            let mean = slice.iter().map(|&v| v as f64).sum::<f64>() / n;
            let var = slice
                .iter()
                .map(|&v| {
                    let d = v as f64 - mean;
                    d * d
                })
                .sum::<f64>()
                / n;
            segments.push(EapcaSegment {
                mean: mean as f32,
                std_dev: var.sqrt() as f32,
            });
            start = end;
        }
        Self { segments }
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the representation has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Lower-bounding distance between two EAPCA representations under the
    /// same `segmentation` (weighted distance between segment means).
    pub fn lower_bound(&self, other: &Eapca, segmentation: &[usize]) -> f64 {
        debug_assert_eq!(self.len(), other.len());
        debug_assert_eq!(self.len(), segmentation.len());
        let mut sum = 0.0f64;
        let mut start = 0usize;
        for (i, &end) in segmentation.iter().enumerate() {
            let w = (end - start) as f64;
            let d = (self.segments[i].mean - other.segments[i].mean) as f64;
            sum += w * d * d;
            start = end;
        }
        sum.sqrt()
    }
}

/// Checks that a segmentation is strictly increasing and ends at `len`.
pub fn valid_segmentation(segmentation: &[usize], len: usize) -> bool {
    if segmentation.is_empty() || *segmentation.last().unwrap() != len {
        return false;
    }
    let mut prev = 0usize;
    for &end in segmentation {
        if end <= prev {
            return false;
        }
        prev = end;
    }
    true
}

/// Builds the equi-width initial segmentation with `segments` segments for
/// series of length `series_length` (the DSTree's starting segmentation).
pub fn uniform_segmentation(series_length: usize, segments: usize) -> Vec<usize> {
    assert!(segments > 0 && segments <= series_length);
    let base = series_length / segments;
    let extra = series_length % segments;
    let mut out = Vec::with_capacity(segments);
    let mut pos = 0usize;
    for i in 0..segments {
        pos += base + usize::from(i < extra);
        out.push(pos);
    }
    out
}

/// Splits segment `segment` of a segmentation at its midpoint, producing a new
/// segmentation with one more segment. Returns `None` if the segment has a
/// single point and cannot be split.
pub fn split_segment(segmentation: &[usize], segment: usize) -> Option<Vec<usize>> {
    let start = if segment == 0 {
        0
    } else {
        segmentation[segment - 1]
    };
    let end = segmentation[segment];
    if end - start < 2 {
        return None;
    }
    let mid = start + (end - start) / 2;
    let mut out = Vec::with_capacity(segmentation.len() + 1);
    out.extend_from_slice(&segmentation[..segment]);
    out.push(mid);
    out.extend_from_slice(&segmentation[segment..]);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::distance::euclidean;

    fn lcg_series(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) as f32
            })
            .collect()
    }

    #[test]
    fn uniform_segmentation_covers_series() {
        let seg = uniform_segmentation(10, 4);
        assert_eq!(seg, vec![3, 6, 8, 10]);
        assert!(valid_segmentation(&seg, 10));
        let seg = uniform_segmentation(16, 4);
        assert_eq!(seg, vec![4, 8, 12, 16]);
    }

    #[test]
    fn segmentation_validation() {
        assert!(valid_segmentation(&[4, 8], 8));
        assert!(!valid_segmentation(&[4, 8], 10), "must end at len");
        assert!(
            !valid_segmentation(&[4, 4, 8], 8),
            "must be strictly increasing"
        );
        assert!(!valid_segmentation(&[], 8), "must be non-empty");
    }

    #[test]
    fn eapca_statistics_are_correct() {
        let series = [1.0, 3.0, 10.0, 10.0, 10.0, 10.0];
        let e = Eapca::compute(&series, &[2, 6]);
        assert_eq!(e.len(), 2);
        assert!(!e.is_empty());
        assert!((e.segments[0].mean - 2.0).abs() < 1e-6);
        assert!((e.segments[0].std_dev - 1.0).abs() < 1e-6);
        assert!((e.segments[1].mean - 10.0).abs() < 1e-6);
        assert!(e.segments[1].std_dev.abs() < 1e-6);
    }

    #[test]
    fn lower_bound_never_exceeds_euclidean() {
        for seed in 0..10u64 {
            let a = lcg_series(100, seed * 2 + 1);
            let b = lcg_series(100, seed * 2 + 2);
            for segs in [1usize, 4, 10, 25] {
                let segmentation = uniform_segmentation(100, segs);
                let ea = Eapca::compute(&a, &segmentation);
                let eb = Eapca::compute(&b, &segmentation);
                let lb = ea.lower_bound(&eb, &segmentation);
                let ed = euclidean(&a, &b);
                assert!(lb <= ed + 1e-5, "LB {lb} > ED {ed} with {segs} segments");
            }
        }
    }

    #[test]
    fn lower_bound_with_nonuniform_segmentation() {
        let a = lcg_series(64, 5);
        let b = lcg_series(64, 6);
        let segmentation = vec![3, 10, 50, 64];
        let ea = Eapca::compute(&a, &segmentation);
        let eb = Eapca::compute(&b, &segmentation);
        assert!(ea.lower_bound(&eb, &segmentation) <= euclidean(&a, &b) + 1e-5);
    }

    #[test]
    fn split_segment_refines_segmentation() {
        let seg = vec![4, 8, 12];
        let refined = split_segment(&seg, 1).unwrap();
        assert_eq!(refined, vec![4, 6, 8, 12]);
        assert!(valid_segmentation(&refined, 12));
        // First segment split.
        assert_eq!(split_segment(&seg, 0).unwrap(), vec![2, 4, 8, 12]);
        // Single-point segment cannot split.
        let seg = vec![1, 2, 12];
        assert!(split_segment(&seg, 0).is_none());
        assert!(split_segment(&seg, 1).is_none());
    }

    #[test]
    fn splitting_tightens_the_bound() {
        let a = lcg_series(128, 9);
        let b = lcg_series(128, 10);
        let coarse = uniform_segmentation(128, 4);
        let mut fine = coarse.clone();
        for seg in (0..4).rev() {
            fine = split_segment(&fine, seg).unwrap();
        }
        let lb_coarse =
            Eapca::compute(&a, &coarse).lower_bound(&Eapca::compute(&b, &coarse), &coarse);
        let lb_fine = Eapca::compute(&a, &fine).lower_bound(&Eapca::compute(&b, &fine), &fine);
        assert!(
            lb_fine + 1e-9 >= lb_coarse,
            "finer segmentation must not loosen the bound"
        );
    }
}

//! # hydra-transforms
//!
//! The summarization (dimensionality reduction) techniques used by the
//! similarity search methods of the paper (Section 3.1, Figure 1), each with
//! its lower-bounding distance:
//!
//! | Technique | Module | Used by |
//! |---|---|---|
//! | Piecewise Aggregate Approximation (PAA) | [`paa`] | SAX/iSAX, R*-tree |
//! | Adaptive Piecewise Constant Approximation (APCA) | [`apca`] | (predecessor of EAPCA) |
//! | Extended APCA (EAPCA: per-segment mean + std) | [`eapca`] | DSTree |
//! | Discrete Fourier Transform (DFT, via FFT) | [`fft`] | VA+file, SFA, MASS |
//! | Discrete Haar Wavelet Transform (DHWT) | [`dhwt`] | Stepwise |
//! | Symbolic Aggregate Approximation (SAX / iSAX) | [`sax`] | iSAX2+, ADS+ |
//! | Symbolic Fourier Approximation (SFA) | [`sfa`] | SFA trie |
//! | Vector Approximation with non-uniform quantization (VA+) | [`vaplus`] | VA+file |
//!
//! The central correctness property — established by unit and property tests
//! in every module — is the **lower-bounding lemma**: the distance computed in
//! the reduced space never exceeds the true Euclidean distance in the original
//! space, which is what lets indexes prune without false dismissals.

pub mod apca;
pub mod dhwt;
pub mod eapca;
pub mod fft;
pub mod gaussian;
pub mod paa;
pub mod sax;
pub mod sfa;
pub mod vaplus;

pub use dhwt::HaarTransform;
pub use eapca::{Eapca, EapcaSegment};
pub use fft::{dft_summary, Complex, Fft};
pub use paa::Paa;
pub use sax::{IsaxWord, SaxParams, SaxWord};
pub use sfa::{BinningMethod, SfaParams, SfaQuantizer, SfaWord};
pub use vaplus::{VaPlusCell, VaPlusQuantizer};

//! VA+ vector approximation: non-uniform bit allocation + per-dimension
//! k-means scalar quantization over DFT coefficients.
//!
//! The VA+file improves the classic VA-file in two ways (Section 3.1/3.2 of
//! the paper): it first decorrelates the series with an energy-compacting
//! transform (the paper substitutes DFT for KLT for efficiency — we do the
//! same), then
//!
//! 1. allocates the total bit budget **non-uniformly**: dimensions with higher
//!    energy (variance) receive more bits;
//! 2. chooses the decision intervals of each dimension by **k-means** (Lloyd's
//!    algorithm on scalars) rather than equi-depth binning.
//!
//! The per-dimension cell boundaries yield a lower-bounding distance from a
//! query to any approximation cell, exactly as in the VA-file.

use crate::fft::dft_summary;

/// A trained VA+ quantizer.
#[derive(Clone, Debug)]
pub struct VaPlusQuantizer {
    series_length: usize,
    dims: usize,
    /// Bits allocated to each dimension (possibly zero).
    bits: Vec<u8>,
    /// Per-dimension sorted cell boundaries (len = 2^bits - 1); dimensions
    /// with zero bits have an empty boundary list (single cell).
    boundaries: Vec<Vec<f64>>,
}

/// The quantized approximation of one series: one cell index per dimension.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct VaPlusCell {
    /// Cell index of each dimension.
    pub cells: Vec<u16>,
}

impl VaPlusCell {
    /// The number of dimensions.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the cell vector is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

impl VaPlusQuantizer {
    /// Trains a VA+ quantizer.
    ///
    /// * `dims` — number of DFT values retained per series (the paper uses
    ///   the same 16 as the other fixed summarizations);
    /// * `total_bits` — total bit budget distributed across dimensions
    ///   (classic VA-file uses 8 bits/dim uniformly; VA+ distributes them by
    ///   energy);
    /// * `sample` — training sample of raw series.
    ///
    /// # Panics
    /// Panics if the sample is empty or parameters are degenerate.
    pub fn train<'a, I>(series_length: usize, dims: usize, total_bits: usize, sample: I) -> Self
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        assert!(dims >= 1, "dims must be at least 1");
        assert!(
            total_bits >= dims,
            "need at least one bit per dimension on average"
        );
        // Gather DFT summaries column-wise.
        let mut columns: Vec<Vec<f64>> = vec![Vec::new(); dims];
        for series in sample {
            assert_eq!(series.len(), series_length, "sample series length mismatch");
            let summary = dft_summary(series, dims);
            for (d, &v) in summary.iter().enumerate() {
                columns[d].push(v as f64);
            }
        }
        assert!(!columns[0].is_empty(), "training sample must be non-empty");

        let bits = allocate_bits(&columns, total_bits);
        let boundaries = columns
            .iter()
            .zip(bits.iter())
            .map(|(col, &b)| {
                if b == 0 {
                    Vec::new()
                } else {
                    kmeans_boundaries(col, 1usize << b)
                }
            })
            .collect();
        Self {
            series_length,
            dims,
            bits,
            boundaries,
        }
    }

    /// Reassembles a quantizer from previously trained state (the inverse of
    /// reading it back through [`VaPlusQuantizer::bits`] and
    /// [`VaPlusQuantizer::boundaries`]) — used by index snapshots, which
    /// persist the trained tables rather than retraining on load.
    ///
    /// # Panics
    /// Panics if the per-dimension vectors disagree with `dims` or a boundary
    /// list has the wrong length for its bit count.
    pub fn from_parts(
        series_length: usize,
        dims: usize,
        bits: Vec<u8>,
        boundaries: Vec<Vec<f64>>,
    ) -> Self {
        assert_eq!(bits.len(), dims, "one bit count per dimension");
        assert_eq!(boundaries.len(), dims, "one boundary list per dimension");
        for (d, (&b, bounds)) in bits.iter().zip(boundaries.iter()).enumerate() {
            let expected = if b == 0 { 0 } else { (1usize << b) - 1 };
            assert_eq!(
                bounds.len(),
                expected,
                "dimension {d}: {b} bits need {expected} boundaries"
            );
        }
        Self {
            series_length,
            dims,
            bits,
            boundaries,
        }
    }

    /// The number of retained dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The sorted decision boundaries of dimension `d` (empty for a zero-bit
    /// dimension).
    pub fn boundaries(&self, d: usize) -> &[f64] {
        &self.boundaries[d]
    }

    /// The series length the quantizer expects.
    pub fn series_length(&self) -> usize {
        self.series_length
    }

    /// Bits allocated per dimension.
    pub fn bits(&self) -> &[u8] {
        &self.bits
    }

    /// The DFT summary of a raw series (the exact representation the cells
    /// quantize).
    pub fn dft(&self, series: &[f32]) -> Vec<f32> {
        debug_assert_eq!(series.len(), self.series_length);
        dft_summary(series, self.dims)
    }

    /// Quantizes a DFT summary into a cell vector.
    pub fn cell_from_dft(&self, dft: &[f32]) -> VaPlusCell {
        debug_assert_eq!(dft.len(), self.dims);
        let cells = dft
            .iter()
            .enumerate()
            .map(|(d, &v)| {
                let b = &self.boundaries[d];
                let mut c = 0usize;
                while c < b.len() && (v as f64) > b[c] {
                    c += 1;
                }
                c as u16
            })
            .collect();
        VaPlusCell { cells }
    }

    /// Quantizes a raw series.
    pub fn cell(&self, series: &[f32]) -> VaPlusCell {
        self.cell_from_dft(&self.dft(series))
    }

    /// The `(low, high)` interval of cell `cell` in dimension `d`.
    pub fn interval(&self, d: usize, cell: u16) -> (f64, f64) {
        let b = &self.boundaries[d];
        let c = cell as usize;
        let low = if c == 0 { f64::NEG_INFINITY } else { b[c - 1] };
        let high = if c >= b.len() { f64::INFINITY } else { b[c] };
        (low, high)
    }

    /// Lower-bounding distance from a query's DFT summary to a candidate cell.
    ///
    /// Never exceeds the Euclidean distance between the corresponding series
    /// (DFT-summary distance lower-bounds true distance, and the cell distance
    /// lower-bounds the summary distance).
    /// The per-dimension interval gaps and the accumulation run through the
    /// runtime-dispatched interval kernel
    /// ([`hydra_core::simd::interval_mindist_sq`]) — this is the hot loop of
    /// the VA+file's full-file cell sweep, and it stays bit-identical across
    /// dispatch kernels.
    pub fn lower_bound(&self, query_dft: &[f32], cell: &VaPlusCell) -> f64 {
        debug_assert_eq!(query_dft.len(), self.dims);
        debug_assert_eq!(cell.len(), self.dims);
        const STACK_DIMS: usize = 32;
        let dims = self.dims;
        let mut low_buf = [0.0f64; STACK_DIMS];
        let mut high_buf = [0.0f64; STACK_DIMS];
        let mut low_vec;
        let mut high_vec;
        let (low, high) = if dims <= STACK_DIMS {
            (&mut low_buf[..dims], &mut high_buf[..dims])
        } else {
            low_vec = vec![0.0f64; dims];
            high_vec = vec![0.0f64; dims];
            (&mut low_vec[..], &mut high_vec[..])
        };
        for d in 0..dims {
            let (lo, hi) = self.interval(d, cell.cells[d]);
            low[d] = lo;
            high[d] = hi;
        }
        hydra_core::simd::interval_mindist_sq(&query_dft[..dims], low, high).sqrt()
    }

    /// Upper-bounding distance from a query's DFT summary to a candidate cell
    /// in the *reduced* space: the farthest corner of the cell. Used to derive
    /// tighter best-so-far seeds before touching raw data. Note this bounds
    /// the summary distance, not the full-resolution distance.
    pub fn summary_upper_bound(&self, query_dft: &[f32], cell: &VaPlusCell) -> f64 {
        let mut sum = 0.0f64;
        for (d, &qv) in query_dft.iter().take(self.dims).enumerate() {
            let (low, high) = self.interval(d, cell.cells[d]);
            let q = qv as f64;
            // Distance to the farthest finite boundary; unbounded cells fall
            // back to the nearest boundary (conservative but finite).
            let far = match (low.is_finite(), high.is_finite()) {
                (true, true) => (q - low).abs().max((q - high).abs()),
                (true, false) => (q - low).abs(),
                (false, true) => (q - high).abs(),
                (false, false) => 0.0,
            };
            sum += far * far;
        }
        sum.sqrt()
    }

    /// Total size in bits of one quantized approximation.
    pub fn bits_per_series(&self) -> usize {
        self.bits.iter().map(|&b| b as usize).sum()
    }
}

/// Allocates `total_bits` across dimensions proportionally to the log of each
/// dimension's variance (energy), greedily assigning one bit at a time to the
/// dimension with the largest marginal benefit, as in the VA+file.
fn allocate_bits(columns: &[Vec<f64>], total_bits: usize) -> Vec<u8> {
    let dims = columns.len();
    let variances: Vec<f64> = columns
        .iter()
        .map(|col| {
            let n = col.len() as f64;
            let mean = col.iter().sum::<f64>() / n;
            (col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n).max(1e-12)
        })
        .collect();
    // Greedy water-filling: each added bit halves a dimension's expected
    // quantization error, so always give the next bit to the dimension with
    // the largest current error = variance / 4^bits.
    let mut bits = vec![0u8; dims];
    const MAX_BITS_PER_DIM: u8 = 12;
    for _ in 0..total_bits {
        let mut best = 0usize;
        let mut best_err = f64::NEG_INFINITY;
        for d in 0..dims {
            if bits[d] >= MAX_BITS_PER_DIM {
                continue;
            }
            let err = variances[d] / 4f64.powi(bits[d] as i32);
            if err > best_err {
                best_err = err;
                best = d;
            }
        }
        bits[best] += 1;
    }
    bits
}

/// One-dimensional k-means (Lloyd) on `values` with `k` clusters; returns the
/// `k - 1` sorted decision boundaries (midpoints between adjacent centroids).
fn kmeans_boundaries(values: &[f64], k: usize) -> Vec<f64> {
    debug_assert!(k >= 2);
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    // Initialize centroids at equi-depth quantiles (good seeds for 1-D data).
    let mut centroids: Vec<f64> = (0..k)
        .map(|i| sorted[((2 * i + 1) * n / (2 * k)).min(n - 1)])
        .collect();
    let mut assignments = vec![0usize; n];
    for _iter in 0..50 {
        let mut changed = false;
        // Assign (values and centroids are sorted, but a simple scan is fine
        // at training-sample sizes).
        for (i, &v) in sorted.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, &ctr) in centroids.iter().enumerate() {
                let d = (v - ctr).abs();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for (i, &v) in sorted.iter().enumerate() {
            sums[assignments[i]] += v;
            counts[assignments[i]] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                centroids[c] = sums[c] / counts[c] as f64;
            }
        }
        centroids.sort_by(|a, b| a.total_cmp(b));
        if !changed {
            break;
        }
    }
    centroids.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::distance::euclidean;
    use hydra_core::series::z_normalize;

    fn lcg_series(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed;
        let mut v: Vec<f32> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) as f32
            })
            .collect();
        z_normalize(&mut v);
        v
    }

    fn walk_series(n: usize, seed: u64) -> Vec<f32> {
        // Random-walk-like: cumulative sum, then z-normalize (energy compacts
        // into low frequencies, so bit allocation should be non-uniform).
        let raw = lcg_series(n, seed);
        let mut acc = 0.0f32;
        let mut v: Vec<f32> = raw
            .iter()
            .map(|&x| {
                acc += x;
                acc
            })
            .collect();
        z_normalize(&mut v);
        v
    }

    fn sample(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n as u64).map(|i| walk_series(len, i + 1)).collect()
    }

    fn train(len: usize, dims: usize, bits: usize, s: &[Vec<f32>]) -> VaPlusQuantizer {
        VaPlusQuantizer::train(len, dims, bits, s.iter().map(|x| x.as_slice()))
    }

    #[test]
    fn bit_budget_is_fully_allocated() {
        let s = sample(100, 64);
        let q = train(64, 16, 64, &s);
        assert_eq!(q.bits_per_series(), 64);
        assert_eq!(q.bits().len(), 16);
        assert_eq!(q.dims(), 16);
        assert_eq!(q.series_length(), 64);
    }

    #[test]
    fn energetic_dimensions_get_more_bits() {
        // Random-walk data concentrates energy in low-frequency coefficients,
        // so dimension 2/3 (first non-DC coefficient pair) should receive at
        // least as many bits as the highest retained frequency.
        let s = sample(200, 128);
        let q = train(128, 16, 48, &s);
        let bits = q.bits();
        let low_freq = bits[2].max(bits[3]);
        let high_freq = bits[14].max(bits[15]);
        assert!(
            low_freq >= high_freq,
            "expected non-uniform allocation favouring low frequencies, got {bits:?}"
        );
        // And the allocation must actually be non-uniform somewhere.
        assert!(
            bits.iter().min() != bits.iter().max(),
            "allocation should not be uniform: {bits:?}"
        );
    }

    #[test]
    fn cells_bracket_the_quantized_values() {
        let s = sample(80, 96);
        let q = train(96, 16, 64, &s);
        let x = walk_series(96, 777);
        let dft = q.dft(&x);
        let cell = q.cell_from_dft(&dft);
        assert_eq!(cell.len(), 16);
        assert!(!cell.is_empty());
        for (d, &v) in dft.iter().enumerate().take(16) {
            let (low, high) = q.interval(d, cell.cells[d]);
            assert!(low <= v as f64 + 1e-9);
            assert!(v as f64 <= high + 1e-9);
        }
    }

    #[test]
    fn lower_bound_never_exceeds_euclidean() {
        let s = sample(150, 64);
        let q = train(64, 16, 64, &s);
        for seed in 0..10u64 {
            let query = walk_series(64, 5000 + seed);
            let cand = walk_series(64, 6000 + seed);
            let lb = q.lower_bound(&q.dft(&query), &q.cell(&cand));
            let ed = euclidean(&query, &cand);
            assert!(lb <= ed + 1e-4, "LB {lb} > ED {ed}");
        }
    }

    #[test]
    fn lower_bound_to_own_cell_is_zero() {
        let s = sample(50, 32);
        let q = train(32, 8, 32, &s);
        let x = walk_series(32, 42);
        assert_eq!(q.lower_bound(&q.dft(&x), &q.cell(&x)), 0.0);
    }

    #[test]
    fn upper_bound_dominates_lower_bound() {
        let s = sample(60, 64);
        let q = train(64, 16, 48, &s);
        let query = walk_series(64, 10);
        let cand = walk_series(64, 11);
        let qd = q.dft(&query);
        let cell = q.cell(&cand);
        assert!(q.summary_upper_bound(&qd, &cell) + 1e-9 >= q.lower_bound(&qd, &cell));
        // The upper bound in the reduced space dominates the summary distance.
        let cd = q.dft(&cand);
        let summary_dist = euclidean(&qd, &cd);
        assert!(q.summary_upper_bound(&qd, &cell) + 1e-6 >= summary_dist);
    }

    #[test]
    fn more_bits_give_tighter_bounds_on_average() {
        let s = sample(150, 64);
        let q_small = train(64, 16, 32, &s);
        let q_large = train(64, 16, 128, &s);
        let mut sum_small = 0.0;
        let mut sum_large = 0.0;
        for seed in 0..20u64 {
            let query = walk_series(64, 9000 + seed);
            let cand = walk_series(64, 9500 + seed);
            sum_small += q_small.lower_bound(&q_small.dft(&query), &q_small.cell(&cand));
            sum_large += q_large.lower_bound(&q_large.dft(&query), &q_large.cell(&cand));
        }
        assert!(
            sum_large >= sum_small,
            "more bits should tighten bounds: {sum_large} vs {sum_small}"
        );
    }

    #[test]
    fn kmeans_boundaries_separate_clear_clusters() {
        let mut values = vec![0.0f64; 50];
        values.extend(vec![10.0f64; 50]);
        let b = kmeans_boundaries(&values, 2);
        assert_eq!(b.len(), 1);
        assert!(
            b[0] > 2.0 && b[0] < 8.0,
            "boundary {b:?} should separate the clusters"
        );
    }

    #[test]
    fn kmeans_boundaries_tolerate_nan_values() {
        // Regression for the PR 3 bug class: the sorts inside k-means use
        // `total_cmp`, so a NaN training value sorts last instead of
        // panicking or scrambling the order. Boundary count is unchanged.
        let mut values = vec![0.0f64; 20];
        values.extend(vec![10.0f64; 20]);
        values.push(f64::NAN);
        let b = kmeans_boundaries(&values, 4);
        assert_eq!(b.len(), 3);
        // Bit-identical across runs: NaN handling cannot depend on probe
        // or hash order.
        let again = kmeans_boundaries(&values, 4);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(bits(&b), bits(&again));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn training_requires_sample() {
        let _ = VaPlusQuantizer::train(8, 4, 8, std::iter::empty());
    }
}

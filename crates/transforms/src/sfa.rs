//! Symbolic Fourier Approximation (SFA).
//!
//! SFA is a symbolic summarization like SAX, but it discretizes the first `l`
//! DFT coefficients of a series instead of its PAA values, and learns a
//! separate breakpoint table ("MCB" — multiple coefficient binning) for every
//! coefficient position from a training sample. Binning can be **equi-depth**
//! (quantiles of the sample, the paper's best-performing choice) or
//! **equi-width** (uniform subdivisions of the sample's value range).
//!
//! The lower-bounding distance from a query to an SFA word is computed per
//! dimension as the distance from the query's DFT value to the breakpoint cell
//! of the candidate's symbol — zero when the query falls inside the cell —
//! which lower-bounds the DFT-summary distance and therefore (by Parseval) the
//! true Euclidean distance.

use crate::fft::dft_summary;

/// The binning strategy used to learn per-dimension breakpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinningMethod {
    /// Breakpoints at sample quantiles (equal number of samples per cell).
    EquiDepth,
    /// Breakpoints evenly spaced across the sample's value range.
    EquiWidth,
}

/// Parameters for an SFA summarization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SfaParams {
    /// Series length the quantizer expects.
    pub series_length: usize,
    /// Number of real DFT values retained (the SFA word length).
    pub word_length: usize,
    /// Alphabet size per dimension (the paper tunes this to 8 for the trie).
    pub alphabet_size: usize,
    /// Binning strategy.
    pub binning: BinningMethod,
}

impl SfaParams {
    /// Creates parameters with the paper's defaults (equi-depth, alphabet 8).
    pub fn new(series_length: usize, word_length: usize) -> Self {
        Self {
            series_length,
            word_length,
            alphabet_size: 8,
            binning: BinningMethod::EquiDepth,
        }
    }

    /// Overrides the alphabet size.
    pub fn with_alphabet_size(mut self, alphabet_size: usize) -> Self {
        self.alphabet_size = alphabet_size;
        self
    }

    /// Overrides the binning method.
    pub fn with_binning(mut self, binning: BinningMethod) -> Self {
        self.binning = binning;
        self
    }
}

/// An SFA word: one symbol per retained DFT dimension.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SfaWord {
    /// Symbols, one per DFT dimension, each in `0..alphabet_size`.
    pub symbols: Vec<u8>,
}

impl SfaWord {
    /// The word length.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the word is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The prefix of the word of length `len` (used by the SFA trie, whose
    /// depth-`d` nodes group words sharing a length-`d` prefix).
    pub fn prefix(&self, len: usize) -> &[u8] {
        &self.symbols[..len.min(self.symbols.len())]
    }
}

/// A trained SFA quantizer: per-dimension breakpoints learned from a sample.
#[derive(Clone, Debug)]
pub struct SfaQuantizer {
    params: SfaParams,
    /// `breakpoints[d]` has `alphabet_size - 1` sorted thresholds for DFT
    /// dimension `d`.
    breakpoints: Vec<Vec<f64>>,
}

impl SfaQuantizer {
    /// Trains a quantizer from a sample of series.
    ///
    /// # Panics
    /// Panics if the sample is empty, or parameters are inconsistent.
    pub fn train<'a, I>(params: SfaParams, sample: I) -> Self
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        assert!(
            params.alphabet_size >= 2,
            "alphabet size must be at least 2"
        );
        assert!(params.word_length >= 1, "word length must be at least 1");
        // Collect the DFT summaries of the sample, one column per dimension.
        let mut columns: Vec<Vec<f64>> = vec![Vec::new(); params.word_length];
        let mut count = 0usize;
        for series in sample {
            assert_eq!(
                series.len(),
                params.series_length,
                "sample series length mismatch"
            );
            let summary = dft_summary(series, params.word_length);
            for (d, &v) in summary.iter().enumerate() {
                columns[d].push(v as f64);
            }
            count += 1;
        }
        assert!(count > 0, "training sample must be non-empty");

        let a = params.alphabet_size;
        let breakpoints = columns
            .into_iter()
            .map(|mut col| match params.binning {
                BinningMethod::EquiDepth => {
                    col.sort_by(|x, y| x.total_cmp(y));
                    (1..a)
                        .map(|i| {
                            let pos = (i * col.len()) / a;
                            col[pos.min(col.len() - 1)]
                        })
                        .collect::<Vec<f64>>()
                }
                BinningMethod::EquiWidth => {
                    let min = col.iter().copied().fold(f64::INFINITY, f64::min);
                    let max = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let width = (max - min).max(1e-12) / a as f64;
                    (1..a).map(|i| min + width * i as f64).collect::<Vec<f64>>()
                }
            })
            .collect();
        Self {
            params,
            breakpoints,
        }
    }

    /// Reassembles a quantizer from previously trained state (the inverse of
    /// reading it back through [`SfaQuantizer::breakpoints`]) — used by index
    /// snapshots, which persist the trained tables rather than retraining on
    /// load.
    ///
    /// # Panics
    /// Panics if the breakpoint table shape disagrees with `params`.
    pub fn from_parts(params: SfaParams, breakpoints: Vec<Vec<f64>>) -> Self {
        assert_eq!(
            breakpoints.len(),
            params.word_length,
            "one breakpoint list per DFT dimension"
        );
        for (d, bp) in breakpoints.iter().enumerate() {
            assert_eq!(
                bp.len(),
                params.alphabet_size - 1,
                "dimension {d}: alphabet {} needs {} breakpoints",
                params.alphabet_size,
                params.alphabet_size - 1
            );
        }
        Self {
            params,
            breakpoints,
        }
    }

    /// The parameters this quantizer was trained with.
    pub fn params(&self) -> &SfaParams {
        &self.params
    }

    /// The breakpoints of dimension `d`.
    pub fn breakpoints(&self, d: usize) -> &[f64] {
        &self.breakpoints[d]
    }

    /// The DFT summary (real values) of a series, of length `word_length`.
    pub fn dft(&self, series: &[f32]) -> Vec<f32> {
        debug_assert_eq!(series.len(), self.params.series_length);
        dft_summary(series, self.params.word_length)
    }

    /// Quantizes a DFT summary into an SFA word.
    pub fn word_from_dft(&self, dft: &[f32]) -> SfaWord {
        debug_assert_eq!(dft.len(), self.params.word_length);
        let symbols = dft
            .iter()
            .enumerate()
            .map(|(d, &v)| {
                let bp = &self.breakpoints[d];
                let mut sym = 0usize;
                while sym < bp.len() && (v as f64) > bp[sym] {
                    sym += 1;
                }
                sym as u8
            })
            .collect();
        SfaWord { symbols }
    }

    /// Computes the SFA word of a raw series.
    pub fn word(&self, series: &[f32]) -> SfaWord {
        self.word_from_dft(&self.dft(series))
    }

    /// The `(low, high)` cell of symbol `symbol` in dimension `d`
    /// (`-inf` / `+inf` at the edges).
    pub fn cell(&self, d: usize, symbol: u8) -> (f64, f64) {
        let bp = &self.breakpoints[d];
        let s = symbol as usize;
        let low = if s == 0 { f64::NEG_INFINITY } else { bp[s - 1] };
        let high = if s >= bp.len() { f64::INFINITY } else { bp[s] };
        (low, high)
    }

    /// Lower-bounding distance from a query's DFT summary to an SFA word
    /// (candidate), considering only the first `prefix_len` dimensions.
    ///
    /// With `prefix_len == word_length` this lower-bounds the true Euclidean
    /// distance between the query and the candidate series.
    pub fn mindist_prefix(&self, query_dft: &[f32], word: &[u8], prefix_len: usize) -> f64 {
        let len = prefix_len.min(word.len()).min(query_dft.len());
        let mut sum = 0.0f64;
        for d in 0..len {
            let (low, high) = self.cell(d, word[d]);
            let q = query_dft[d] as f64;
            let dist = if q < low {
                low - q
            } else if q > high {
                q - high
            } else {
                0.0
            };
            sum += dist * dist;
        }
        sum.sqrt()
    }

    /// Lower-bounding distance over the full word length.
    pub fn mindist(&self, query_dft: &[f32], word: &SfaWord) -> f64 {
        self.mindist_prefix(query_dft, &word.symbols, self.params.word_length)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::distance::euclidean;
    use hydra_core::series::z_normalize;

    fn lcg_series(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed;
        let mut v: Vec<f32> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) as f32
            })
            .collect();
        z_normalize(&mut v);
        v
    }

    fn sample(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n as u64).map(|i| lcg_series(len, i + 1)).collect()
    }

    fn train(params: SfaParams, sample: &[Vec<f32>]) -> SfaQuantizer {
        SfaQuantizer::train(params, sample.iter().map(|s| s.as_slice()))
    }

    #[test]
    fn words_have_expected_shape() {
        let s = sample(50, 64);
        let q = train(SfaParams::new(64, 8), &s);
        let w = q.word(&s[0]);
        assert_eq!(w.len(), 8);
        assert!(!w.is_empty());
        assert!(w.symbols.iter().all(|&x| (x as usize) < 8));
        assert_eq!(w.prefix(3).len(), 3);
        assert_eq!(w.prefix(100).len(), 8);
    }

    #[test]
    fn training_tolerates_nan_values() {
        // Regression: equi-depth binning sorts each DFT column with
        // `total_cmp`, so a NaN sample value must not panic the sort and
        // clean series must still quantize to full-length words.
        let mut s = sample(40, 64);
        s[7][3] = f32::NAN;
        let q = train(SfaParams::new(64, 8), &s);
        let w = q.word(&s[0]);
        assert_eq!(w.len(), 8);
    }

    #[test]
    fn equi_depth_breakpoints_balance_symbols() {
        let s = sample(400, 64);
        let q = train(SfaParams::new(64, 4), &s);
        // Count symbol usage in dimension 2 over the training set itself.
        let mut counts = vec![0usize; 8];
        for series in &s {
            let w = q.word(series);
            counts[w.symbols[2] as usize] += 1;
        }
        let expected = s.len() / 8;
        for &c in &counts {
            assert!(
                c as f64 > expected as f64 * 0.4 && (c as f64) < expected as f64 * 1.8,
                "equi-depth binning should roughly balance symbols, got {counts:?}"
            );
        }
    }

    #[test]
    fn equi_width_breakpoints_are_evenly_spaced() {
        let s = sample(100, 32);
        let q = train(
            SfaParams::new(32, 4).with_binning(BinningMethod::EquiWidth),
            &s,
        );
        for d in 0..4 {
            let bp = q.breakpoints(d);
            assert_eq!(bp.len(), 7);
            let gaps: Vec<f64> = bp.windows(2).map(|w| w[1] - w[0]).collect();
            for g in &gaps {
                assert!((g - gaps[0]).abs() < 1e-9, "equi-width gaps must be equal");
            }
        }
    }

    #[test]
    fn cells_bracket_the_quantized_value() {
        let s = sample(60, 96);
        let q = train(SfaParams::new(96, 8), &s);
        let series = lcg_series(96, 999);
        let dft = q.dft(&series);
        let w = q.word_from_dft(&dft);
        for (d, &v) in dft.iter().enumerate().take(8) {
            let (low, high) = q.cell(d, w.symbols[d]);
            assert!(low <= v as f64 + 1e-9);
            assert!(v as f64 <= high + 1e-9);
        }
    }

    #[test]
    fn mindist_lower_bounds_euclidean() {
        let s = sample(100, 128);
        for binning in [BinningMethod::EquiDepth, BinningMethod::EquiWidth] {
            for alpha in [4usize, 8, 64] {
                let q = train(
                    SfaParams::new(128, 16)
                        .with_alphabet_size(alpha)
                        .with_binning(binning),
                    &s,
                );
                for seed in 0..5u64 {
                    let query = lcg_series(128, 1000 + seed);
                    let cand = lcg_series(128, 2000 + seed);
                    let lb = q.mindist(&q.dft(&query), &q.word(&cand));
                    let ed = euclidean(&query, &cand);
                    assert!(
                        lb <= ed + 1e-4,
                        "LB {lb} > ED {ed} ({binning:?}, a={alpha})"
                    );
                }
            }
        }
    }

    #[test]
    fn prefix_mindist_is_monotone_in_prefix_length() {
        let s = sample(80, 64);
        let q = train(SfaParams::new(64, 8), &s);
        let query = lcg_series(64, 71);
        let cand = lcg_series(64, 72);
        let dft = q.dft(&query);
        let w = q.word(&cand);
        let mut prev = 0.0;
        for p in 0..=8 {
            let lb = q.mindist_prefix(&dft, &w.symbols, p);
            assert!(lb + 1e-12 >= prev);
            prev = lb;
        }
    }

    #[test]
    fn same_series_has_zero_mindist() {
        let s = sample(30, 32);
        let q = train(SfaParams::new(32, 8), &s);
        let x = &s[3];
        assert_eq!(q.mindist(&q.dft(x), &q.word(x)), 0.0);
    }

    #[test]
    fn larger_alphabet_gives_tighter_or_equal_bounds() {
        let s = sample(200, 64);
        let q8 = train(SfaParams::new(64, 8).with_alphabet_size(8), &s);
        let q64 = train(SfaParams::new(64, 8).with_alphabet_size(64), &s);
        let query = lcg_series(64, 555);
        let cand = lcg_series(64, 556);
        let lb8 = q8.mindist(&q8.dft(&query), &q8.word(&cand));
        let lb64 = q64.mindist(&q64.dft(&query), &q64.word(&cand));
        // Not guaranteed pointwise in general, but with equi-depth binning on
        // the same sample the finer quantization is at least as tight here.
        assert!(lb64 + 1e-6 >= lb8 * 0.5, "sanity: bounds are comparable");
    }

    #[test]
    fn params_builders() {
        let p = SfaParams::new(64, 16)
            .with_alphabet_size(32)
            .with_binning(BinningMethod::EquiWidth);
        assert_eq!(p.alphabet_size, 32);
        assert_eq!(p.binning, BinningMethod::EquiWidth);
        assert_eq!(p.word_length, 16);
        assert_eq!(p.series_length, 64);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn training_requires_sample() {
        let _ = SfaQuantizer::train(SfaParams::new(8, 4), std::iter::empty());
    }
}

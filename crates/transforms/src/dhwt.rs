//! Discrete Haar Wavelet Transform (DHWT).
//!
//! The Haar transform decomposes a series into a multi-level hierarchy of
//! averages and details. Using the orthonormal variant, the transform is an
//! isometry: Euclidean distances are preserved exactly, so the distance
//! computed on any *prefix* of coefficients (coarse levels first) is a lower
//! bound of the true distance — the property the Stepwise method exploits by
//! filtering level by level.
//!
//! Series whose length is not a power of two are zero-padded on the right;
//! padding both operands with zeros leaves their Euclidean distance unchanged,
//! so lower-bounding is preserved.

/// The orthonormal Haar wavelet transform for a fixed series length.
#[derive(Clone, Debug)]
pub struct HaarTransform {
    series_length: usize,
    padded_length: usize,
}

impl HaarTransform {
    /// Creates a transform for series of length `series_length`.
    pub fn new(series_length: usize) -> Self {
        assert!(series_length > 0, "series length must be positive");
        let padded_length = series_length.next_power_of_two();
        Self {
            series_length,
            padded_length,
        }
    }

    /// The expected input series length.
    pub fn series_length(&self) -> usize {
        self.series_length
    }

    /// The (power-of-two) length of the produced coefficient vector.
    pub fn coefficient_length(&self) -> usize {
        self.padded_length
    }

    /// The number of resolution levels (log2 of the padded length).
    pub fn levels(&self) -> usize {
        self.padded_length.trailing_zeros() as usize
    }

    /// Computes the full orthonormal Haar coefficient vector of `series`.
    ///
    /// The output is ordered coarse-to-fine: `[overall average, level-1
    /// detail, level-2 details, …]`, so a prefix corresponds to a coarse
    /// approximation.
    pub fn transform(&self, series: &[f32]) -> Vec<f32> {
        assert_eq!(series.len(), self.series_length, "series length mismatch");
        let n = self.padded_length;
        let mut current: Vec<f64> = series.iter().map(|&v| v as f64).collect();
        current.resize(n, 0.0);
        let mut output = vec![0.0f64; n];
        let mut len = n;
        // Repeatedly split into averages and details, storing details at the
        // back half of the active region (standard Mallat ordering).
        let inv_sqrt2 = 1.0 / std::f64::consts::SQRT_2;
        let mut scratch = vec![0.0f64; n];
        while len > 1 {
            let half = len / 2;
            for i in 0..half {
                let a = current[2 * i];
                let b = current[2 * i + 1];
                scratch[i] = (a + b) * inv_sqrt2;
                output[half + i] = (a - b) * inv_sqrt2;
            }
            current[..half].copy_from_slice(&scratch[..half]);
            len = half;
        }
        output[0] = current[0];
        output.into_iter().map(|v| v as f32).collect()
    }

    /// Reconstructs a series from its full coefficient vector (inverse
    /// transform), truncating the padding back to the original length.
    pub fn inverse(&self, coefficients: &[f32]) -> Vec<f32> {
        assert_eq!(
            coefficients.len(),
            self.padded_length,
            "coefficient length mismatch"
        );
        let n = self.padded_length;
        let mut current: Vec<f64> = coefficients.iter().map(|&v| v as f64).collect();
        let inv_sqrt2 = 1.0 / std::f64::consts::SQRT_2;
        let mut scratch = vec![0.0f64; n];
        let mut len = 1usize;
        while len < n {
            // current[..len] holds averages, current[len..2len] holds details.
            for i in 0..len {
                let avg = current[i];
                let det = current[len + i];
                scratch[2 * i] = (avg + det) * inv_sqrt2;
                scratch[2 * i + 1] = (avg - det) * inv_sqrt2;
            }
            current[..2 * len].copy_from_slice(&scratch[..2 * len]);
            len *= 2;
        }
        current
            .into_iter()
            .take(self.series_length)
            .map(|v| v as f32)
            .collect()
    }

    /// The number of coefficients that make up the first `level` resolution
    /// levels (level 0 = just the overall average).
    pub fn prefix_len_for_level(&self, level: usize) -> usize {
        let level = level.min(self.levels());
        1usize << level
    }

    /// Lower bound on the Euclidean distance between the original series
    /// given only the first `prefix_len` coefficients of each.
    pub fn prefix_lower_bound(coeffs_a: &[f32], coeffs_b: &[f32], prefix_len: usize) -> f64 {
        let prefix_len = prefix_len.min(coeffs_a.len()).min(coeffs_b.len());
        let mut sum = 0.0f64;
        for i in 0..prefix_len {
            let d = (coeffs_a[i] - coeffs_b[i]) as f64;
            sum += d * d;
        }
        sum.sqrt()
    }

    /// Upper bound on the Euclidean distance given the first `prefix_len`
    /// coefficients and the exact total energy (squared norm) of each
    /// coefficient vector.
    ///
    /// By the triangle inequality in the orthogonal complement of the prefix,
    /// the distance contributed by the unseen coefficients is at most
    /// `sqrt(rest_a) + sqrt(rest_b)`, where `rest` is the energy outside the
    /// prefix. Stepwise uses this to discard candidates whose *lower* bound
    /// exceeds some other candidate's *upper* bound.
    pub fn prefix_upper_bound(coeffs_a: &[f32], coeffs_b: &[f32], prefix_len: usize) -> f64 {
        let prefix_len = prefix_len.min(coeffs_a.len()).min(coeffs_b.len());
        let mut prefix_sq = 0.0f64;
        for i in 0..prefix_len {
            let d = (coeffs_a[i] - coeffs_b[i]) as f64;
            prefix_sq += d * d;
        }
        let rest_a: f64 = coeffs_a[prefix_len..]
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum();
        let rest_b: f64 = coeffs_b[prefix_len..]
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum();
        let rest = rest_a.sqrt() + rest_b.sqrt();
        (prefix_sq + rest * rest).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::distance::euclidean;

    fn lcg_series(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) as f32
            })
            .collect()
    }

    #[test]
    fn transform_is_orthonormal_isometry() {
        for &n in &[8usize, 64, 256] {
            let t = HaarTransform::new(n);
            let a = lcg_series(n, 1);
            let b = lcg_series(n, 2);
            let ed_original = euclidean(&a, &b);
            let ed_transformed = euclidean(&t.transform(&a), &t.transform(&b));
            assert!(
                (ed_original - ed_transformed).abs() < 1e-4,
                "isometry violated for n={n}: {ed_original} vs {ed_transformed}"
            );
        }
    }

    #[test]
    fn non_power_of_two_lengths_are_padded() {
        let t = HaarTransform::new(96);
        assert_eq!(t.coefficient_length(), 128);
        assert_eq!(t.levels(), 7);
        let a = lcg_series(96, 3);
        let b = lcg_series(96, 4);
        let ed = euclidean(&a, &b);
        let tdist = euclidean(&t.transform(&a), &t.transform(&b));
        assert!((ed - tdist).abs() < 1e-4);
    }

    #[test]
    fn inverse_reconstructs_original() {
        for &n in &[16usize, 96, 100] {
            let t = HaarTransform::new(n);
            let s = lcg_series(n, 9);
            let back = t.inverse(&t.transform(&s));
            assert_eq!(back.len(), n);
            for (x, y) in s.iter().zip(back.iter()) {
                assert!((x - y).abs() < 1e-4, "reconstruction failed for n={n}");
            }
        }
    }

    #[test]
    fn first_coefficient_is_scaled_mean() {
        let t = HaarTransform::new(8);
        let s = [2.0f32; 8];
        let coeffs = t.transform(&s);
        // Orthonormal Haar: c0 = mean * sqrt(n).
        assert!((coeffs[0] - 2.0 * 8.0f32.sqrt()).abs() < 1e-5);
        assert!(coeffs[1..].iter().all(|&c| c.abs() < 1e-6));
    }

    #[test]
    fn prefix_lower_bounds_grow_and_never_exceed_distance() {
        let n = 128;
        let t = HaarTransform::new(n);
        let a = lcg_series(n, 11);
        let b = lcg_series(n, 12);
        let ca = t.transform(&a);
        let cb = t.transform(&b);
        let ed = euclidean(&a, &b);
        let mut prev = 0.0;
        for level in 0..=t.levels() {
            let p = t.prefix_len_for_level(level);
            let lb = HaarTransform::prefix_lower_bound(&ca, &cb, p);
            assert!(lb <= ed + 1e-4, "LB {lb} > ED {ed} at level {level}");
            assert!(
                lb + 1e-9 >= prev,
                "LB must be monotone in the prefix length"
            );
            prev = lb;
        }
        // Full prefix equals the exact distance.
        let full = HaarTransform::prefix_lower_bound(&ca, &cb, ca.len());
        assert!((full - ed).abs() < 1e-4);
    }

    #[test]
    fn prefix_upper_bounds_shrink_and_never_undershoot_distance() {
        let n = 64;
        let t = HaarTransform::new(n);
        let a = lcg_series(n, 21);
        let b = lcg_series(n, 22);
        let ca = t.transform(&a);
        let cb = t.transform(&b);
        let ed = euclidean(&a, &b);
        for level in 0..=t.levels() {
            let p = t.prefix_len_for_level(level);
            let ub = HaarTransform::prefix_upper_bound(&ca, &cb, p);
            assert!(ub + 1e-4 >= ed, "UB {ub} < ED {ed} at level {level}");
        }
        let full = HaarTransform::prefix_upper_bound(&ca, &cb, ca.len());
        assert!((full - ed).abs() < 1e-4);
    }

    #[test]
    fn prefix_len_for_level_saturates() {
        let t = HaarTransform::new(16);
        assert_eq!(t.prefix_len_for_level(0), 1);
        assert_eq!(t.prefix_len_for_level(2), 4);
        assert_eq!(t.prefix_len_for_level(100), 16);
    }

    #[test]
    fn accessors() {
        let t = HaarTransform::new(100);
        assert_eq!(t.series_length(), 100);
        assert_eq!(t.coefficient_length(), 128);
    }
}

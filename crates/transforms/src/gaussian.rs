//! Standard-normal utilities: quantile function and SAX breakpoint tables.
//!
//! SAX discretizes PAA values using breakpoints that divide the standard
//! normal distribution into equal-probability regions (the values of
//! Z-normalized random-walk series are approximately standard normal). The
//! breakpoints are the normal quantiles at `i/a` for `i = 1..a-1`, computed
//! here with the Acklam rational approximation of the inverse normal CDF
//! (absolute error below 1.15e-9, far finer than single-precision data).

/// Inverse cumulative distribution function (quantile) of the standard normal
/// distribution.
///
/// Returns `-inf` for `p <= 0` and `+inf` for `p >= 1`.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    // Acklam's algorithm: rational approximations on three regions.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Complementary error function (Numerical-Recipes-style rational Chebyshev
/// approximation; relative error below 1.2e-7, then used only inside the
/// Halley refinement where full precision is not required).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// The `a - 1` breakpoints dividing the standard normal distribution into `a`
/// equal-probability regions, in increasing order.
///
/// # Panics
/// Panics if `alphabet_size < 2`.
pub fn sax_breakpoints(alphabet_size: usize) -> Vec<f64> {
    assert!(alphabet_size >= 2, "alphabet size must be at least 2");
    (1..alphabet_size)
        .map(|i| inverse_normal_cdf(i as f64 / alphabet_size as f64))
        .collect()
}

/// Maps a value to its symbol (region index in `0..=breakpoints.len()`) for a
/// sorted breakpoint list: symbol `s` covers `(breakpoints[s-1], breakpoints[s]]`.
#[inline]
pub fn symbol_for_value(value: f64, breakpoints: &[f64]) -> usize {
    // Binary search for the first breakpoint >= value. `total_cmp` keeps the
    // probe order total even for NaN input (NaN sorts above +inf, so it maps
    // to the last region deterministically).
    match breakpoints.binary_search_by(|b| b.total_cmp(&value)) {
        Ok(i) => i,
        Err(i) => i,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_cdf_matches_known_quantiles() {
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((inverse_normal_cdf(0.025) + 1.959_963_985).abs() < 1e-6);
        assert!((inverse_normal_cdf(0.841344746) - 1.0).abs() < 1e-6);
        assert_eq!(inverse_normal_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inverse_normal_cdf(1.0), f64::INFINITY);
    }

    #[test]
    fn inverse_cdf_and_cdf_are_inverses() {
        for &p in &[0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999] {
            let x = inverse_normal_cdf(p);
            assert!(
                (normal_cdf(x) - p).abs() < 1e-6,
                "round trip failed at p={p}"
            );
        }
    }

    #[test]
    fn breakpoints_for_small_alphabets_match_literature() {
        // Classic SAX table for a = 4: [-0.6745, 0, 0.6745].
        let bp = sax_breakpoints(4);
        assert_eq!(bp.len(), 3);
        assert!((bp[0] + 0.6745).abs() < 1e-3);
        assert!(bp[1].abs() < 1e-9);
        assert!((bp[2] - 0.6745).abs() < 1e-3);
        // a = 2: single breakpoint at 0.
        let bp = sax_breakpoints(2);
        assert_eq!(bp.len(), 1);
        assert!(bp[0].abs() < 1e-9);
    }

    #[test]
    fn breakpoints_are_sorted_and_symmetric() {
        for &a in &[8usize, 64, 256] {
            let bp = sax_breakpoints(a);
            assert_eq!(bp.len(), a - 1);
            for w in bp.windows(2) {
                assert!(w[0] < w[1], "breakpoints must be strictly increasing");
            }
            // Symmetry of the normal distribution.
            for i in 0..bp.len() {
                assert!((bp[i] + bp[bp.len() - 1 - i]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn symbol_for_value_respects_regions() {
        let bp = sax_breakpoints(4); // [-0.6745, 0, 0.6745]
        assert_eq!(symbol_for_value(-10.0, &bp), 0);
        assert_eq!(symbol_for_value(-0.5, &bp), 1);
        assert_eq!(symbol_for_value(0.5, &bp), 2);
        assert_eq!(symbol_for_value(10.0, &bp), 3);
    }

    #[test]
    fn symbol_for_value_handles_nan_and_infinities() {
        // Regression: the breakpoint probe uses `total_cmp`, under which NaN
        // sorts above +inf — a NaN value lands in the last region every
        // time instead of panicking or varying by probe order.
        let bp = sax_breakpoints(8);
        assert_eq!(symbol_for_value(f64::NAN, &bp), bp.len());
        assert_eq!(symbol_for_value(f64::INFINITY, &bp), bp.len());
        assert_eq!(symbol_for_value(f64::NEG_INFINITY, &bp), 0);
    }

    #[test]
    fn symbol_distribution_is_roughly_uniform_for_normal_data() {
        // Feed standard-normal-ish values through an LCG + Box-Muller-free
        // approach: use the inverse CDF of uniforms (exact by construction).
        let a = 8;
        let bp = sax_breakpoints(a);
        let mut counts = vec![0usize; a];
        let n = 8000;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            let x = inverse_normal_cdf(u);
            counts[symbol_for_value(x, &bp)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - n as f64 / a as f64).abs() < n as f64 * 0.01);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn breakpoints_reject_tiny_alphabet() {
        let _ = sax_breakpoints(1);
    }
}

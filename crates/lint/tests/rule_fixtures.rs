//! Fixture-driven rule tests: for every rule, one snippet that must trip it
//! and one nearby snippet that must not, plus the waiver lifecycle and the
//! README drift check. Snippets live in raw strings, so linting this file
//! itself never produces findings (rules match tokens, not text).

use hydra_lint::{lint_source, RULES};

/// Unwaived rule ids triggered by `src` when classified as `rel_path`.
fn fired(rel_path: &str, src: &str) -> Vec<&'static str> {
    lint_source(rel_path, src)
        .into_iter()
        .filter(|d| d.waived.is_none())
        .map(|d| d.rule)
        .collect()
}

const CORE_PATH: &str = "crates/core/src/sample.rs";
const BENCH_PATH: &str = "crates/bench/src/sample.rs";

// ---------------------------------------------------------------------------
// float-partial-cmp
// ---------------------------------------------------------------------------

#[test]
fn float_partial_cmp_bad() {
    let src = r#"
fn f(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
"#;
    // Linted in the harness crate so lib-unwrap stays out of the picture:
    // this rule has no crate scoping.
    assert_eq!(fired(BENCH_PATH, src), vec!["float-partial-cmp"]);
}

#[test]
fn float_partial_cmp_unwrap_or_variants_bad() {
    let src = r#"
fn f(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}
fn g(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).expect("comparable")
}
"#;
    assert_eq!(
        fired(BENCH_PATH, src),
        vec!["float-partial-cmp", "float-partial-cmp"]
    );
}

#[test]
fn float_partial_cmp_good_total_cmp() {
    let src = r#"
fn f(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.total_cmp(b));
}
"#;
    assert!(fired(CORE_PATH, src).is_empty());
}

#[test]
fn float_partial_cmp_fires_even_in_tests() {
    // A NaN-lossy comparator in a test weakens the oracle, so the rule has
    // no test exemption.
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let mut v = vec![1.0f32];
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
}
"#;
    assert_eq!(fired(BENCH_PATH, src), vec!["float-partial-cmp"]);
}

#[test]
fn float_partial_cmp_definition_is_not_a_call() {
    // Implementing PartialOrd mentions `partial_cmp` as a fn name.
    let src = r#"
impl PartialOrd for Wrapped {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
"#;
    assert!(fired(CORE_PATH, src).is_empty());
}

// ---------------------------------------------------------------------------
// hash-iteration-order
// ---------------------------------------------------------------------------

#[test]
fn hash_iteration_order_bad() {
    let src = r#"
use std::collections::HashMap;
pub struct S {
    map: HashMap<u32, f64>,
}
"#;
    assert_eq!(
        fired(CORE_PATH, src),
        vec!["hash-iteration-order", "hash-iteration-order"]
    );
}

#[test]
fn hash_iteration_order_good_btreemap_and_out_of_scope_crate() {
    let btree = r#"
use std::collections::BTreeMap;
pub struct S {
    map: BTreeMap<u32, f64>,
}
"#;
    assert!(fired(CORE_PATH, btree).is_empty());
    // The bench harness is not a determinism-critical crate.
    let hash = r#"
use std::collections::HashMap;
"#;
    assert!(fired(BENCH_PATH, hash).is_empty());
}

// ---------------------------------------------------------------------------
// uncounted-fs
// ---------------------------------------------------------------------------

#[test]
fn uncounted_fs_bad() {
    let src = r#"
pub fn slurp(p: &std::path::Path) -> Vec<u8> {
    std::fs::read(p).unwrap_or_default()
}
"#;
    assert_eq!(
        fired("crates/scan/src/sample.rs", src),
        vec!["uncounted-fs"]
    );
}

#[test]
fn uncounted_fs_grouped_and_aliased_imports_bad() {
    // Imports that never spell `std::fs` contiguously still bring uncounted
    // file I/O into scope; the rule flags the import site.
    let grouped = r#"
use std::{fs, io};
pub fn f(p: &std::path::Path) -> Vec<u8> {
    fs::read(p).unwrap_or_default()
}
"#;
    assert_eq!(
        fired("crates/scan/src/sample.rs", grouped),
        vec!["uncounted-fs"]
    );
    let aliased = r#"
use std::fs as filesystem;
"#;
    assert_eq!(
        fired("crates/scan/src/sample.rs", aliased),
        vec!["uncounted-fs"]
    );
    // The direct form fires exactly once, not once per detector.
    let direct = r#"
use std::fs;
"#;
    assert_eq!(
        fired("crates/scan/src/sample.rs", direct),
        vec!["uncounted-fs"]
    );
}

#[test]
fn uncounted_fs_good_in_storage_tests_and_bins() {
    let src = r#"
pub fn slurp(p: &std::path::Path) -> Vec<u8> {
    std::fs::read(p).unwrap_or_default()
}
"#;
    // storage is the counted-I/O boundary; tests and bins are harness-side.
    assert!(fired("crates/storage/src/sample.rs", src).is_empty());
    assert!(fired("tests/sample.rs", src).is_empty());
    assert!(fired("crates/bench/src/bin/sample.rs", src).is_empty());
}

// ---------------------------------------------------------------------------
// undocumented-unsafe
// ---------------------------------------------------------------------------

#[test]
fn undocumented_unsafe_bad() {
    let src = r#"
fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
"#;
    assert_eq!(fired(CORE_PATH, src), vec!["undocumented-unsafe"]);
}

#[test]
fn undocumented_unsafe_good_with_safety_comment() {
    let src = r#"
fn f(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}
"#;
    assert!(fired(CORE_PATH, src).is_empty());
}

#[test]
fn undocumented_unsafe_safety_comment_passes_through_attributes() {
    let src = r#"
// SAFETY: callers must run this on a CPU with the feature enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn kernel() {}
"#;
    assert!(fired(CORE_PATH, src).is_empty());
}

// ---------------------------------------------------------------------------
// lib-unwrap
// ---------------------------------------------------------------------------

#[test]
fn lib_unwrap_bad() {
    let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}
pub fn g() {
    panic!("boom");
}
"#;
    assert_eq!(fired(CORE_PATH, src), vec!["lib-unwrap", "lib-unwrap"]);
}

#[test]
fn lib_unwrap_good_in_tests_and_harness() {
    let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        assert_eq!(super::f(Some(1)), 1);
        None::<u32>.unwrap_or_default();
        Some(2u32).unwrap();
    }
}
"#;
    // bench is harness code: panics abort a run, not an answer.
    assert!(fired(BENCH_PATH, src).is_empty());
    // In core, only the non-test fn fires — the #[cfg(test)] module is exempt.
    assert_eq!(fired(CORE_PATH, src), vec!["lib-unwrap"]);
}

// ---------------------------------------------------------------------------
// nondeterministic-source
// ---------------------------------------------------------------------------

#[test]
fn nondeterministic_source_bad() {
    let src = r#"
use std::time::Instant;
pub fn f() -> std::time::Duration {
    let t = Instant::now();
    t.elapsed()
}
"#;
    assert_eq!(fired(CORE_PATH, src), vec!["nondeterministic-source"]);
}

#[test]
fn nondeterministic_source_flags_timed_waits_in_serve() {
    // The hydra-serve executor's contract: single-threaded drives are pure
    // functions of the spawn/wake order, so its clock/queue surface must not
    // wait under a timeout.
    let src = r#"
pub fn f(cv: &std::sync::Condvar, g: std::sync::MutexGuard<'_, bool>) {
    let _ = cv.wait_timeout(g, std::time::Duration::from_millis(1));
}
pub fn g() {
    std::thread::park_timeout(std::time::Duration::from_millis(1));
}
pub fn h(rx: &std::sync::mpsc::Receiver<u32>) {
    let _ = rx.recv_timeout(std::time::Duration::from_millis(1));
}
"#;
    assert_eq!(
        fired("crates/serve/src/sample.rs", src),
        vec![
            "nondeterministic-source",
            "nondeterministic-source",
            "nondeterministic-source"
        ]
    );
    // Harness code may time out freely.
    assert!(fired(BENCH_PATH, src).is_empty());
}

#[test]
fn nondeterministic_source_bans_bare_instant_in_resilience_modules() {
    // The breaker/hedging clock is simulated cost units: merely *holding*
    // an `Instant` (no `::now()` call in sight) is already wall-clock state
    // that could leak into admission decisions, so the strict ban fires on
    // the bare type where ordinary answering-path crates allow it.
    let src = r#"
pub struct S {
    started: std::time::Instant,
}
"#;
    for strict in [
        "crates/serve/src/breaker.rs",
        "crates/serve/src/resilience.rs",
    ] {
        assert_eq!(
            fired(strict, src),
            vec!["nondeterministic-source"],
            "{strict} must ban the bare Instant type"
        );
    }
    // Elsewhere in serve (and in core) the field type alone stays legal;
    // only `Instant::now()` calls are flagged.
    assert!(fired("crates/serve/src/sample.rs", src).is_empty());
    assert!(fired(CORE_PATH, src).is_empty());
    // Under the strict ban both lines fire: the `Instant` return type and
    // the `::now()` call.
    let now = r#"
pub fn f() -> std::time::Instant {
    std::time::Instant::now()
}
"#;
    assert_eq!(
        fired("crates/serve/src/breaker.rs", now),
        vec!["nondeterministic-source", "nondeterministic-source"]
    );
}

#[test]
fn nondeterministic_source_good_in_harness() {
    let src = r#"
use std::time::Instant;
pub fn f() -> std::time::Duration {
    let t = Instant::now();
    t.elapsed()
}
"#;
    assert!(fired(BENCH_PATH, src).is_empty());
}

// ---------------------------------------------------------------------------
// Strings and comments are invisible to rules
// ---------------------------------------------------------------------------

#[test]
fn rules_ignore_strings_and_comments() {
    let src = r##"
// This mentions HashMap, partial_cmp().unwrap() and std::fs::read.
/* unsafe { Instant::now() } */
pub fn f() -> &'static str {
    "HashMap std::fs unsafe partial_cmp unwrap Instant::now()"
}
pub fn g() -> &'static str {
    r#"SystemTime panic!() .expect("...")"#
}
"##;
    assert!(fired(CORE_PATH, src).is_empty());
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

#[test]
fn waiver_suppresses_finding_and_keeps_reason() {
    let src = r#"
// hydra-lint: allow(hash-iteration-order) membership tests only; never iterated
use std::collections::HashSet;
"#;
    let diags = lint_source(CORE_PATH, src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "hash-iteration-order");
    assert_eq!(
        diags[0].waived.as_deref(),
        Some("membership tests only; never iterated")
    );
}

#[test]
fn trailing_waiver_covers_its_own_line() {
    let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap() // hydra-lint: allow(lib-unwrap) invariant: x is Some here
}
"#;
    let diags = lint_source(CORE_PATH, src);
    assert_eq!(diags.len(), 1);
    assert!(diags[0].waived.is_some());
}

#[test]
fn waiver_without_reason_is_bad() {
    let src = r#"
// hydra-lint: allow(lib-unwrap)
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#;
    let mut rules = fired(CORE_PATH, src);
    rules.sort();
    assert_eq!(rules, vec!["bad-waiver", "lib-unwrap"]);
}

#[test]
fn waiver_for_unknown_rule_is_bad() {
    let src = r#"
// hydra-lint: allow(no-such-rule) because reasons
pub fn f() {}
"#;
    assert_eq!(fired(CORE_PATH, src), vec!["bad-waiver"]);
}

#[test]
fn stale_waiver_is_bad() {
    let src = r#"
// hydra-lint: allow(lib-unwrap) nothing here actually unwraps
pub fn f() {}
"#;
    assert_eq!(fired(CORE_PATH, src), vec!["bad-waiver"]);
}

#[test]
fn waiver_does_not_leak_into_a_braced_body() {
    // The waiver covers the next statement — the `fn` header, which ends at
    // its opening brace — not the body below it, so it must not apply,
    // yielding both the finding and a stale-waiver diagnostic.
    let src = r#"
// hydra-lint: allow(lib-unwrap) too far away to count
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#;
    let mut rules = fired(CORE_PATH, src);
    rules.sort();
    assert_eq!(rules, vec!["bad-waiver", "lib-unwrap"]);
}

#[test]
fn waiver_covers_a_multi_line_statement() {
    // Findings anchor to the offending token, which in a chained call can
    // sit lines below the statement head; a waiver above the statement must
    // still reach it.
    let src = r#"
fn f(a: f64, b: f64) -> std::cmp::Ordering {
    // hydra-lint: allow(float-partial-cmp) exercising the lint itself
    a
        .partial_cmp(&b)
        .unwrap()
}
"#;
    let diags = lint_source(BENCH_PATH, src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "float-partial-cmp");
    assert!(diags[0].waived.is_some(), "waiver must span the statement");
}

#[test]
fn stacked_mid_statement_waivers_each_cover_their_own_finding() {
    // Two waivers inside one chained statement: span matching must pair
    // each finding with the *closest* waiver above it, not let the first
    // waiver absorb both findings and leave the second stale.
    let src = r#"
pub fn f(x: std::sync::Mutex<Option<u32>>) -> u32 {
    x.lock()
        // hydra-lint: allow(lib-unwrap) the lock cannot poison
        .expect("never poisoned")
        .take()
        // hydra-lint: allow(lib-unwrap) taken exactly once
        .expect("taken once")
}
"#;
    let diags = lint_source(CORE_PATH, src);
    assert_eq!(diags.len(), 2, "two waived findings, no bad-waiver");
    assert!(diags
        .iter()
        .all(|d| d.rule == "lib-unwrap" && d.waived.is_some()));
}

#[test]
fn test_region_scan_survives_attributed_trailing_expression() {
    // Regression: a `#[cfg(test)]` attribute on a brace-less trailing
    // expression used to underflow the brace counter on the enclosing `}`
    // (a panic in debug builds). The region must end at that brace and
    // scanning must continue, so `g`'s unwrap is still reported.
    let src = r#"
pub fn f() -> u32 {
    #[cfg(test)]
    helper()
}
pub fn g(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#;
    assert_eq!(fired(CORE_PATH, src), vec!["lib-unwrap"]);
}

// ---------------------------------------------------------------------------
// README drift
// ---------------------------------------------------------------------------

#[test]
fn readme_rule_table_matches_registry() {
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"))
        .expect("workspace README is readable");
    let section = readme
        .split("## Contract lints")
        .nth(1)
        .expect("README has a Contract lints section");
    let section = section.split("\n## ").next().unwrap_or(section);
    let documented: Vec<&str> = section
        .lines()
        .filter_map(|l| {
            let rest = l.strip_prefix("| `")?;
            Some(&rest[..rest.find('`')?])
        })
        .collect();
    for rule in RULES {
        assert!(
            documented.contains(&rule.id),
            "rule `{}` is missing from the README contract-lint table",
            rule.id
        );
    }
    for id in &documented {
        assert!(
            RULES.iter().any(|r| r.id == *id),
            "README documents `{id}`, which is not a registered rule"
        );
    }
}

//! The workspace must lint clean: zero unwaived findings, and every waiver
//! carries the reason the rule table demands. This is the same gate CI runs
//! via `cargo run -p hydra-lint -- --workspace`.

use std::path::Path;

#[test]
fn workspace_has_no_unwaived_findings() {
    let root = hydra_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let report = hydra_lint::lint_workspace(&root).expect("workspace lints");
    assert!(report.files_scanned > 50, "walker found the workspace");
    let unwaived: Vec<String> = report.unwaived().map(|d| d.render()).collect();
    assert!(
        unwaived.is_empty(),
        "unwaived contract-lint findings:\n{}",
        unwaived.join("\n")
    );
    // Belt and braces: every waiver that made it through parsing has a
    // nonempty reason (parse rejects empty ones as bad-waiver).
    for d in &report.diagnostics {
        if let Some(reason) = &d.waived {
            assert!(
                !reason.trim().is_empty(),
                "empty waiver reason at {}",
                d.file
            );
        }
    }
}

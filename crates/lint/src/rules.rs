//! The contract rules and the per-file context they run against.
//!
//! Each rule is a pure function from lexed tokens (plus the file's
//! classification and test-region map) to raw findings. Scoping — which
//! crates and which parts of a file a rule applies to — lives here too, so
//! the rule table below is the single source of truth the README mirrors.

use crate::lexer::{Lexed, TokKind, Token};

/// Machine-readable description of one rule.
#[derive(Debug)]
pub struct RuleInfo {
    /// Stable rule id, used in diagnostics and `allow(...)` waivers.
    pub id: &'static str,
    /// One-line description of what the rule flags.
    pub summary: &'static str,
    /// How to fix a finding.
    pub hint: &'static str,
    /// The past bug or contract that motivates the rule.
    pub motivation: &'static str,
}

/// Every rule this linter knows, in reporting order.
///
/// The README "Contract lints" table is asserted against this list by a
/// drift test, so additions must update both.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "float-partial-cmp",
        summary: "NaN-lossy `partial_cmp().unwrap{,_or,_or_else}()` / `.expect()` on float comparisons",
        hint: "use `f32::total_cmp`/`f64::total_cmp` for a total, deterministic order",
        motivation: "PR 3 bug class: a NaN bound made VA+file refinement order nondeterministic",
    },
    RuleInfo {
        id: "hash-iteration-order",
        summary: "`HashMap`/`HashSet` in index/traversal crates, where iteration order can leak into answers or serialized bytes",
        hint: "use `BTreeMap`/`BTreeSet`, or waive with a proof the map is never iterated order-sensitively",
        motivation: "PR 3 moved iSAX root children and SFA trie children to BTreeMap so identical structures traverse identically",
    },
    RuleInfo {
        id: "uncounted-fs",
        summary: "`std::fs` referenced outside `hydra_storage` library code",
        hint: "route file I/O through `DatasetStore`/`hydra_storage::snapshot` so it is counted, or waive measurement-output writes",
        motivation: "the paper's methodology: every byte the answering path touches must appear in the I/O counters",
    },
    RuleInfo {
        id: "undocumented-unsafe",
        summary: "`unsafe` block/fn/impl without an adjacent `// SAFETY:` comment",
        hint: "state the invariant that makes the operation sound in a `// SAFETY:` comment directly above",
        motivation: "the `hydra_core::simd` kernels shipped 18 uncommented unsafe blocks in PR 6",
    },
    RuleInfo {
        id: "lib-unwrap",
        summary: "`unwrap`/`expect`/`panic!` in non-test library code of `hydra-core` and the ten method crates",
        hint: "return a typed `hydra_core::Error` (the boundary contract since PR 7), or waive a documented internal invariant",
        motivation: "PR 7 made typed errors the engine boundary contract; method panics are caught as Error::Internal",
    },
    RuleInfo {
        id: "nondeterministic-source",
        summary: "wall-clock (`Instant::now`/`SystemTime`), thread-identity or timed-wait sources inside answering-path crates",
        hint: "answers must be pure functions of (dataset, query, options); waive measurement-only clocks with a reason",
        motivation: "PR 2/6 determinism contract: bit-identical answers and counters for every thread count",
    },
    RuleInfo {
        id: "bad-waiver",
        summary: "malformed `hydra-lint: allow(...)` waiver: unknown rule, missing reason, or waiving nothing",
        hint: "write `// hydra-lint: allow(<rule-id>) <reason>` directly above the waived line, and delete stale waivers",
        motivation: "waivers are part of the audit trail; an unreasoned or stale waiver hides a contract hole",
    },
];

/// Looks up a rule by id.
pub fn rule_by_id(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Crates whose non-test library code must not panic (`lib-unwrap`):
/// `hydra-core` plus the crates implementing the ten answering methods.
pub const NO_PANIC_CRATES: &[&str] = &[
    "core", "scan", "vafile", "rtree", "mtree", "sfa", "dstree", "isax", "serve",
];

/// Crates on the answering/build/persistence path, where iteration order
/// and nondeterministic sources can leak into answers, counters or
/// snapshot bytes (`hash-iteration-order`, `nondeterministic-source`).
pub const DETERMINISM_CRATES: &[&str] = &[
    "core",
    "storage",
    "scan",
    "vafile",
    "rtree",
    "mtree",
    "sfa",
    "dstree",
    "isax",
    "transforms",
    "serve",
];

/// How a file is classified for rule scoping, derived from its
/// workspace-relative path.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// `Some("core")` for `crates/core/...`, `None` for `tests/`,
    /// `examples/` and anything else.
    pub crate_name: Option<String>,
    /// Binary / bench targets (`src/bin/`, `benches/`): CLI entry points
    /// and measurement harnesses, not library answering paths.
    pub is_bin: bool,
    /// Whole-file test code: the integration `tests/` crate, `examples/`,
    /// and per-crate `tests/` directories.
    pub is_test_file: bool,
    /// The workspace-relative path itself, for the few rules with
    /// module-level scoping (e.g. the resilience wall-clock ban).
    pub rel_path: String,
}

impl FileClass {
    /// Classifies a workspace-relative path (forward slashes).
    pub fn from_rel_path(rel: &str) -> Self {
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(|s| s.to_string());
        let is_bin = rel.contains("/src/bin/") || rel.contains("/benches/");
        let is_test_file =
            rel.starts_with("tests/") || rel.starts_with("examples/") || rel.contains("/tests/");
        FileClass {
            crate_name,
            is_bin,
            is_test_file,
            rel_path: rel.to_string(),
        }
    }

    fn crate_is(&self, set: &[&str]) -> bool {
        self.crate_name.as_deref().is_some_and(|c| set.contains(&c))
    }
}

/// Byte ranges of `#[cfg(test)]` / `#[test]` items, so rules can skip
/// test code inside library files.
pub fn test_regions(lexed: &Lexed) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // Match `#` `[` ... `]` and look for `test` inside the attribute.
        if toks[i].kind == TokKind::Punct && toks[i].text == "#" {
            let attr_start = toks[i].offset;
            let mut j = i + 1;
            // Optional inner-attribute bang `#![...]`.
            if j < toks.len() && toks[j].text == "!" {
                j += 1;
            }
            if j < toks.len() && toks[j].text == "[" {
                let mut depth = 1usize;
                let mut is_test_attr = false;
                let mut saw_cfg = false;
                j += 1;
                while j < toks.len() && depth > 0 {
                    match toks[j].text.as_str() {
                        "[" => depth += 1,
                        "]" => depth -= 1,
                        "cfg" | "cfg_attr" if toks[j].kind == TokKind::Ident => saw_cfg = true,
                        // `#[test]` or `test` appearing inside `#[cfg(...)]`.
                        "test" if toks[j].kind == TokKind::Ident && (saw_cfg || depth == 1) => {
                            is_test_attr = true;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if is_test_attr {
                    // The attached item runs to its matching close brace, or
                    // to the first top-level `;` for brace-less items.
                    let mut k = j;
                    let mut brace_depth = 0usize;
                    let mut end = None;
                    while k < toks.len() {
                        match toks[k].text.as_str() {
                            "{" => brace_depth += 1,
                            "}" => {
                                if brace_depth == 0 {
                                    // The enclosing item's close brace: the
                                    // attribute was attached to a brace-less
                                    // trailing expression, which ends here.
                                    end = Some(toks[k].offset);
                                    break;
                                }
                                brace_depth -= 1;
                                if brace_depth == 0 {
                                    end = Some(toks[k].offset + 1);
                                    break;
                                }
                            }
                            ";" if brace_depth == 0 => {
                                end = Some(toks[k].offset + 1);
                                break;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    let end = end
                        .unwrap_or_else(|| toks.last().map(|t| t.offset + 1).unwrap_or(attr_start));
                    regions.push((attr_start, end));
                    // Continue scanning *after* this region.
                    i = k.max(j);
                }
            }
        }
        i += 1;
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], offset: usize) -> bool {
    regions.iter().any(|&(s, e)| offset >= s && offset < e)
}

/// A raw finding before waiver application.
#[derive(Debug)]
pub struct Finding {
    pub rule: &'static str,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// Context handed to every rule for one file.
pub struct FileContext<'a> {
    pub class: &'a FileClass,
    pub lexed: &'a Lexed,
    pub test_regions: &'a [(usize, usize)],
}

impl FileContext<'_> {
    fn in_test(&self, offset: usize) -> bool {
        self.class.is_test_file || in_regions(self.test_regions, offset)
    }
}

fn ident_at<'t>(toks: &'t [Token], i: usize, text: &str) -> Option<&'t Token> {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Ident && t.text == text)
}

fn punct_at(toks: &[Token], i: usize, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

/// Skips a balanced `(...)` group starting at `open` (which must index a
/// `(`), returning the index just past the matching `)`.
fn skip_parens(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// `float-partial-cmp`: `.partial_cmp(..)` whose result is immediately
/// force-unwrapped, collapsing NaN into an arbitrary ordering.
pub fn check_float_partial_cmp(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ident_at(toks, i, "partial_cmp").is_none() {
            continue;
        }
        // Skip the `fn partial_cmp` definitions of PartialOrd impls.
        if i > 0 && ident_at(toks, i - 1, "fn").is_some() {
            continue;
        }
        if !punct_at(toks, i + 1, "(") {
            continue;
        }
        let after = skip_parens(toks, i + 1);
        if punct_at(toks, after, ".") {
            if let Some(t) = toks.get(after + 1) {
                if t.kind == TokKind::Ident
                    && matches!(
                        t.text.as_str(),
                        "unwrap" | "unwrap_or" | "unwrap_or_else" | "expect"
                    )
                {
                    out.push(Finding {
                        rule: "float-partial-cmp",
                        line: toks[i].line,
                        col: toks[i].col,
                        message: format!(
                            "`partial_cmp(..).{}(..)` loses NaN into an arbitrary ordering",
                            t.text
                        ),
                    });
                }
            }
        }
    }
}

/// `hash-iteration-order`: `HashMap`/`HashSet` mentioned in non-test code
/// of determinism-critical crates.
pub fn check_hash_iteration_order(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !ctx.class.crate_is(DETERMINISM_CRATES) || ctx.class.is_bin {
        return;
    }
    for t in &ctx.lexed.tokens {
        if t.kind == TokKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !ctx.in_test(t.offset)
        {
            out.push(Finding {
                rule: "hash-iteration-order",
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` in a determinism-critical crate: iteration order is seeded per process",
                    t.text
                ),
            });
        }
    }
}

/// `uncounted-fs`: `std::fs` referenced outside `hydra_storage` library
/// code (bins and tests excluded: they are harness entry points).
pub fn check_uncounted_fs(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    match ctx.class.crate_name.as_deref() {
        // The storage crate is the counted-I/O boundary; the lint crate is
        // offline tooling that exists to read sources directly.
        Some("storage") | Some("lint") | None => return,
        _ => {}
    }
    if ctx.class.is_bin || ctx.class.is_test_file {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ident_at(toks, i, "std").is_some()
            && punct_at(toks, i + 1, ":")
            && punct_at(toks, i + 2, ":")
            && ident_at(toks, i + 3, "fs").is_some()
            && !ctx.in_test(toks[i].offset)
        {
            out.push(Finding {
                rule: "uncounted-fs",
                line: toks[i].line,
                col: toks[i].col,
                message: "`std::fs` bypasses the counted-I/O `DatasetStore` boundary".to_string(),
            });
        }
        // Imports that bring `fs` into scope without spelling the
        // `std::fs` path contiguously — `use std::{fs, io};`,
        // `use std::fs as filesystem;` — would otherwise let every later
        // `fs::read(..)` call escape the rule. Flag the import site (the
        // calls themselves are a documented recall gap; see README).
        if ident_at(toks, i, "use").is_some() && !ctx.in_test(toks[i].offset) {
            let mut saw_std = false;
            let mut j = i + 1;
            while j < toks.len() && !punct_at(toks, j, ";") {
                if ident_at(toks, j, "std").is_some() {
                    saw_std = true;
                } else if saw_std && ident_at(toks, j, "fs").is_some() {
                    out.push(Finding {
                        rule: "uncounted-fs",
                        line: toks[i].line,
                        col: toks[i].col,
                        message: "importing `std::fs` bypasses the counted-I/O `DatasetStore` \
                                  boundary"
                            .to_string(),
                    });
                    break;
                }
                j += 1;
            }
        }
    }
}

/// `undocumented-unsafe`: an `unsafe` token with no `// SAFETY:` comment
/// directly above it (attributes and further comments may sit between).
pub fn check_undocumented_unsafe(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let lexed = ctx.lexed;
    for (i, t) in lexed.tokens.iter().enumerate() {
        if !(t.kind == TokKind::Ident && t.text == "unsafe") {
            continue;
        }
        if has_adjacent_safety_comment(lexed, t, i) {
            continue;
        }
        out.push(Finding {
            rule: "undocumented-unsafe",
            line: t.line,
            col: t.col,
            message: "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
        });
    }
}

/// Walks upward from the `unsafe` token over comment and attribute lines
/// looking for a `SAFETY:` comment; also accepts one trailing on the same
/// line. A blank line or an unrelated code line ends the search.
fn has_adjacent_safety_comment(lexed: &Lexed, tok: &Token, tok_idx: usize) -> bool {
    let safety_on = |line: u32| {
        lexed
            .comments
            .iter()
            .any(|c| c.end_line == line && c.text.contains("SAFETY"))
    };
    // Trailing comment on the same line.
    if safety_on(tok.line) {
        return true;
    }
    // The `unsafe` keyword may sit mid-line (`let x = unsafe { .. }`,
    // `Kernel::Sse2 => unsafe { .. }`): adjacency is measured from the line
    // the enclosing expression starts on, so also accept a comment above
    // the first line of the statement. Walk upward from the token line.
    let mut line = tok.line;
    loop {
        if line == 1 {
            return false;
        }
        line -= 1;
        if safety_on(line) {
            return true;
        }
        let has_code = lexed.line_has_code(line);
        let is_comment_line = lexed
            .comments
            .iter()
            .any(|c| c.line <= line && c.end_line >= line);
        if has_code {
            // Attribute lines (`#[...]`) are passable; so is the opening of
            // the statement this `unsafe` belongs to (same statement,
            // detected as: no `;`, `}` or `{` token on that line before our
            // token — approximated by allowing lines whose first token is
            // `#`). Everything else ends the search.
            let first = lexed
                .tokens
                .iter()
                .find(|t2| t2.line == line)
                .map(|t2| t2.text.as_str());
            if first == Some("#") {
                continue;
            }
            // Allow the continuation case: the unsafe token is not the
            // first token of its own line and the previous line is part of
            // the same statement. Only step through it when the current
            // line doesn't terminate a statement.
            let line_of_unsafe_starts_stmt = lexed
                .tokens
                .iter()
                .find(|t2| t2.line == tok.line)
                .map(|t2| t2.offset == tok.offset)
                .unwrap_or(false);
            let _ = tok_idx;
            if !line_of_unsafe_starts_stmt {
                let terminates = lexed
                    .tokens
                    .iter()
                    .filter(|t2| t2.line == line)
                    .any(|t2| matches!(t2.text.as_str(), ";" | "{" | "}"));
                if !terminates {
                    continue;
                }
            }
            return false;
        }
        if !is_comment_line {
            // Blank line: stop.
            return false;
        }
        // Comment line without SAFETY: keep walking up.
    }
}

/// `lib-unwrap`: `.unwrap()` / `.expect(..)` / `panic!(..)` in non-test
/// library code of the no-panic crates.
pub fn check_lib_unwrap(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !ctx.class.crate_is(NO_PANIC_CRATES) || ctx.class.is_bin {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || ctx.in_test(t.offset) {
            continue;
        }
        let flagged = match t.text.as_str() {
            "unwrap" | "expect" => i > 0 && punct_at(toks, i - 1, "."),
            "panic" => punct_at(toks, i + 1, "!"),
            _ => false,
        };
        if flagged {
            out.push(Finding {
                rule: "lib-unwrap",
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` in library code: typed `hydra_core::Error` is the boundary contract",
                    if t.text == "panic" {
                        "panic!"
                    } else {
                        t.text.as_str()
                    }
                ),
            });
        }
    }
}

/// `nondeterministic-source`: wall clocks, thread identity and timed waits
/// in determinism-critical crates. Timed waits (`park_timeout`,
/// `wait_timeout`, `recv_timeout`) matter on the serving path: a scheduler
/// queue drained under a timeout makes task order a function of the wall
/// clock, which the `hydra-serve` executor's deterministic FIFO contract
/// forbids.
pub fn check_nondeterministic_source(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !ctx.class.crate_is(DETERMINISM_CRATES) || ctx.class.is_bin {
        return;
    }
    // The serve resilience modules ban the wall clock outright: the
    // breaker/hedging clock is simulated cost units, so even *holding* an
    // `Instant` field (fine elsewhere as measurement plumbing) would let
    // wall time leak into admission decisions and breaker traces.
    let strict_wall_clock = matches!(
        ctx.class.rel_path.as_str(),
        "crates/serve/src/breaker.rs" | "crates/serve/src/resilience.rs"
    );
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || ctx.in_test(t.offset) {
            continue;
        }
        let what = match t.text.as_str() {
            "Instant" if strict_wall_clock => {
                Some("`Instant` is wall-clock state; the resilience layer's clock is cost units")
            }
            // `Instant::now()` — elsewhere the field type `Instant` alone
            // is fine.
            "Instant"
                if punct_at(toks, i + 1, ":")
                    && punct_at(toks, i + 2, ":")
                    && ident_at(toks, i + 3, "now").is_some() =>
            {
                Some("`Instant::now()` reads the wall clock")
            }
            "SystemTime" => Some("`SystemTime` reads the wall clock"),
            "ThreadId" => Some("`ThreadId` makes logic depend on thread identity"),
            // `thread::current().id()`
            "current"
                if i >= 3
                    && ident_at(toks, i - 3, "thread").is_some()
                    && punct_at(toks, i + 1, "(")
                    && punct_at(toks, i + 2, ")")
                    && punct_at(toks, i + 3, ".")
                    && ident_at(toks, i + 4, "id").is_some() =>
            {
                Some("`thread::current().id()` makes logic depend on thread identity")
            }
            "park_timeout" => Some("`park_timeout` makes scheduling depend on the wall clock"),
            "wait_timeout" => Some("`wait_timeout` makes scheduling depend on the wall clock"),
            "recv_timeout" => Some("`recv_timeout` makes scheduling depend on the wall clock"),
            _ => None,
        };
        if let Some(msg) = what {
            out.push(Finding {
                rule: "nondeterministic-source",
                line: t.line,
                col: t.col,
                message: format!("{msg} inside an answering-path crate"),
            });
        }
    }
}

/// Runs every rule over one file context.
pub fn run_all(ctx: &FileContext<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    check_float_partial_cmp(ctx, &mut out);
    check_hash_iteration_order(ctx, &mut out);
    check_uncounted_fs(ctx, &mut out);
    check_undocumented_unsafe(ctx, &mut out);
    check_lib_unwrap(ctx, &mut out);
    check_nondeterministic_source(ctx, &mut out);
    // One finding per (rule, line): a single waiver covers e.g. both
    // `HashMap` mentions of `let m: HashMap<..> = HashMap::new()`.
    out.sort_by_key(|f| (f.line, f.rule, f.col));
    out.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    out.sort_by_key(|f| (f.line, f.col));
    out
}

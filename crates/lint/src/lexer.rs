//! A small hand-rolled Rust lexer, just precise enough for contract linting.
//!
//! The rules in this crate match *token* patterns, never raw text, so a
//! `partial_cmp` inside a string literal, a `HashMap` inside a doc comment,
//! or a `//` inside a string must not confuse them. This lexer understands:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string literals with escapes, byte strings, C strings, and raw
//!   (byte) strings with arbitrary `#` fences (`r"…"`, `r##"…"##`, `br#"…"#`);
//! * char literals vs lifetimes (`'a'` vs `'a`, including `'\''` escapes);
//! * raw identifiers (`r#type`);
//! * identifiers, numbers and single-character punctuation.
//!
//! It deliberately does **not** parse: no syntax tree, no macro expansion.
//! Rules work over the flat token stream plus the comment list.

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `partial_cmp`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `(`, `#`, …).
    Punct,
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// A char literal `'x'`.
    Char,
    /// A numeric literal (integer part only; `1.5` lexes as `1` `.` `5`).
    Num,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
}

/// One code token with its location (1-based line and column).
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
    /// Byte offset of the token start in the source.
    pub offset: usize,
}

/// One comment (line or block) with its location.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
    pub line: u32,
    pub end_line: u32,
    pub col: u32,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// Source split into lines, for diagnostics' snippets (1-based access
    /// via [`Lexed::line_text`]).
    pub lines: Vec<String>,
}

impl Lexed {
    /// The trimmed text of a 1-based line number (empty if out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim())
            .unwrap_or("")
    }

    /// Whether any code token starts on `line`.
    pub fn line_has_code(&self, line: u32) -> bool {
        self.tokens.iter().any(|t| t.line == line)
    }

    /// The first code line strictly after `line`, if any.
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        self.tokens
            .iter()
            .map(|t| t.line)
            .filter(|&l| l > line)
            .min()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens + comments. Never fails: unterminated literals
/// or comments simply run to end of file.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed {
        lines: src.lines().map(|l| l.to_string()).collect(),
        ..Lexed::default()
    };
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut i = 0usize;
    let mut offset = 0usize; // byte offset of chars[i]
    let mut line = 1u32;
    let mut col = 1u32;

    // Advances one char, maintaining line/col/byte-offset.
    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            offset += chars[i].len_utf8();
            i += 1;
        }};
    }

    while i < n {
        let c = chars[i];
        let (start_line, start_col, start_off) = (line, col, offset);

        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let mut text = String::new();
            while i < n && chars[i] != '\n' {
                text.push(chars[i]);
                bump!();
            }
            out.comments.push(Comment {
                text: text.trim_start_matches('/').trim().to_string(),
                line: start_line,
                end_line: start_line,
                col: start_col,
            });
            continue;
        }
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 0usize;
            let mut text = String::new();
            while i < n {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    text.push(chars[i]);
                    bump!();
                    text.push(chars[i]);
                    bump!();
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    text.push(chars[i]);
                    bump!();
                    text.push(chars[i]);
                    bump!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(chars[i]);
                    bump!();
                }
            }
            let trimmed = text
                .trim_start_matches("/*")
                .trim_end_matches("*/")
                .trim()
                .to_string();
            out.comments.push(Comment {
                text: trimmed,
                line: start_line,
                end_line: line,
                col: start_col,
            });
            continue;
        }

        // Raw strings / raw identifiers / byte strings, all starting with a
        // letter prefix: r"", r#""#, br"", b"", b'', c"".
        if is_ident_start(c) {
            // Collect the identifier first; then check whether it is a
            // string prefix immediately followed by a quote or fence.
            let mut ident = String::new();
            while i < n && is_ident_continue(chars[i]) {
                ident.push(chars[i]);
                bump!();
            }
            let at_quote = i < n && (chars[i] == '"' || chars[i] == '\'' || chars[i] == '#');
            let is_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "c" | "cr" | "rb");
            if is_prefix && at_quote {
                if chars[i] == '#'
                    && ident.starts_with('r')
                    && i + 1 < n
                    && is_ident_start(chars[i + 1])
                {
                    // Raw identifier `r#type`: lex the identifier after the fence.
                    bump!(); // '#'
                    let mut raw = String::new();
                    while i < n && is_ident_continue(chars[i]) {
                        raw.push(chars[i]);
                        bump!();
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Ident,
                        text: raw,
                        line: start_line,
                        col: start_col,
                        offset: start_off,
                    });
                    continue;
                }
                if chars[i] == '#' || chars[i] == '"' {
                    // Raw string with 0+ fences: count '#', expect '"', then
                    // scan for '"' followed by the same number of '#'.
                    let mut fences = 0usize;
                    while i < n && chars[i] == '#' {
                        fences += 1;
                        bump!();
                    }
                    if i < n && chars[i] == '"' {
                        bump!(); // opening quote
                        loop {
                            if i >= n {
                                break;
                            }
                            if chars[i] == '"' {
                                // Check the closing fence.
                                let mut k = 0usize;
                                while k < fences && i + 1 + k < n && chars[i + 1 + k] == '#' {
                                    k += 1;
                                }
                                if k == fences {
                                    bump!(); // closing quote
                                    for _ in 0..fences {
                                        bump!();
                                    }
                                    break;
                                }
                            }
                            bump!();
                        }
                        out.tokens.push(Token {
                            kind: TokKind::Str,
                            text: String::new(),
                            line: start_line,
                            col: start_col,
                            offset: start_off,
                        });
                        continue;
                    }
                    // `r#` not followed by a quote (e.g. `r#[`): emit the
                    // ident we read; the '#' will lex as punctuation later.
                    out.tokens.push(Token {
                        kind: TokKind::Ident,
                        text: ident,
                        line: start_line,
                        col: start_col,
                        offset: start_off,
                    });
                    continue;
                }
                if chars[i] == '\'' && ident == "b" {
                    // Byte char literal b'x'.
                    bump!(); // opening quote
                    if i < n && chars[i] == '\\' {
                        bump!();
                        if i < n {
                            bump!();
                        }
                    } else if i < n {
                        bump!();
                    }
                    if i < n && chars[i] == '\'' {
                        bump!();
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Char,
                        text: String::new(),
                        line: start_line,
                        col: start_col,
                        offset: start_off,
                    });
                    continue;
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: ident,
                line: start_line,
                col: start_col,
                offset: start_off,
            });
            continue;
        }

        // Plain string literal.
        if c == '"' {
            bump!();
            while i < n {
                if chars[i] == '\\' {
                    bump!();
                    if i < n {
                        bump!();
                    }
                } else if chars[i] == '"' {
                    bump!();
                    break;
                } else {
                    bump!();
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Str,
                text: String::new(),
                line: start_line,
                col: start_col,
                offset: start_off,
            });
            continue;
        }

        // Char literal or lifetime.
        if c == '\'' {
            bump!();
            if i < n && chars[i] == '\\' {
                // Escaped char literal '\n', '\'', '\u{..}'.
                bump!(); // backslash
                if i < n {
                    bump!(); // the escaped character itself (may be `'`)
                }
                while i < n && chars[i] != '\'' {
                    bump!();
                }
                if i < n {
                    bump!(); // closing quote
                }
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    text: String::new(),
                    line: start_line,
                    col: start_col,
                    offset: start_off,
                });
            } else if i + 1 < n && chars[i + 1] == '\'' && chars[i] != '\'' {
                // 'x'
                bump!();
                bump!();
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    text: String::new(),
                    line: start_line,
                    col: start_col,
                    offset: start_off,
                });
            } else {
                // Lifetime: 'ident or '_
                let mut name = String::from("'");
                while i < n && is_ident_continue(chars[i]) {
                    name.push(chars[i]);
                    bump!();
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: name,
                    line: start_line,
                    col: start_col,
                    offset: start_off,
                });
            }
            continue;
        }

        // Number: digits plus alphanumeric continuation (covers 0xFF, 1_000,
        // suffixes). `1.5` splits into `1` `.` `5`, which is fine for rules.
        if c.is_ascii_digit() {
            let mut num = String::new();
            while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                num.push(chars[i]);
                bump!();
            }
            out.tokens.push(Token {
                kind: TokKind::Num,
                text: num,
                line: start_line,
                col: start_col,
                offset: start_off,
            });
            continue;
        }

        // Everything else: single-char punctuation.
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line: start_line,
            col: start_col,
            offset: start_off,
        });
        bump!();
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r##"let s = "partial_cmp // not a comment"; let t = s;"##;
        let ids = idents(src);
        assert_eq!(ids, ["let", "s", "let", "t", "s"]);
        // The `//` inside the string must not start a comment.
        assert!(lex(src).comments.is_empty());
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r####"let s = r#"HashMap "quoted" inside"#; let u = r##"x"# still"##; done()"####;
        let ids = idents(src);
        assert_eq!(ids, ["let", "s", "let", "u", "done"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still outer */ b";
        let ids = idents(src);
        assert_eq!(ids, ["a", "b"]);
        assert_eq!(lex(src).comments.len(), 1);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let s = 'static_lt; }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'static_lt"]);
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_identifiers() {
        let ids = idents("let r#type = 1; let r2 = r#type;");
        assert_eq!(ids, ["let", "type", "let", "r2", "type"]);
    }

    #[test]
    fn byte_and_c_strings() {
        let ids = idents(r#"let a = b"bytes"; let c = b'x'; let s = c"cstr"; end()"#);
        assert_eq!(ids, ["let", "a", "let", "c", "let", "s", "end"]);
    }

    #[test]
    fn line_and_column_tracking() {
        let lexed = lex("ab\n  cd");
        assert_eq!(lexed.tokens[0].line, 1);
        assert_eq!(lexed.tokens[0].col, 1);
        assert_eq!(lexed.tokens[1].line, 2);
        assert_eq!(lexed.tokens[1].col, 3);
    }

    #[test]
    fn comment_text_is_captured() {
        let lexed = lex("x // hydra-lint: allow(lib-unwrap) reason here\ny");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(
            lexed.comments[0].text,
            "hydra-lint: allow(lib-unwrap) reason here"
        );
        assert_eq!(lexed.comments[0].line, 1);
    }
}

//! `hydra-lint`: an offline contract checker for the Hydra workspace.
//!
//! Every PR since the seed has shipped hand-enforced invariants —
//! bit-identical answers across thread counts, `total_cmp` over NaN-lossy
//! `partial_cmp`, `BTreeMap` in traversal paths, counted I/O only through
//! `DatasetStore`, typed errors at the engine boundary. This crate turns
//! those conventions into machine-checked rules: a hand-rolled lexer
//! (comment/string/raw-string aware — `syn` is unreachable offline) feeds a
//! rule engine that walks every workspace `.rs` file and reports structured
//! diagnostics.
//!
//! # Waivers
//!
//! A finding is waived in place, with a mandatory reason:
//!
//! ```text
//! // hydra-lint: allow(hash-iteration-order) keyed lookups only; never iterated.
//! let recorded: HashMap<usize, Vec<Outcome>> = ...;
//! ```
//!
//! The waiver covers findings of that rule anywhere in the next *statement*
//! — through its terminating `;` or its opening brace, so a chained call
//! whose offending token sits lines below the statement head is still
//! coverable — or on its own line, for trailing comments. It never reaches
//! into a braced body: a waiver above an `fn` header covers the header
//! only. A waiver with no reason, an unknown rule id, or one that waives
//! nothing is itself a diagnostic (`bad-waiver`), so the audit trail cannot
//! rot silently.
//!
//! # Scope
//!
//! The walker skips `target/` and `vendor/` (the vendored crates are
//! offline stand-ins for external code, not part of the contract surface).
//! Per-rule crate scoping lives in [`rules`]; see [`rules::RULES`] for the
//! table the README mirrors.

pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use rules::{RuleInfo, RULES};

/// One reported finding, after waiver resolution.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule id (always one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// What is wrong at this site.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// How to fix findings of this rule.
    pub hint: &'static str,
    /// `Some(reason)` when an inline waiver covers this finding.
    pub waived: Option<String>,
}

impl Diagnostic {
    /// Human-readable one-finding rendering.
    pub fn render(&self) -> String {
        let status = match &self.waived {
            Some(reason) => format!("waived: {reason}"),
            None => format!("help: {}", self.hint),
        };
        format!(
            "{}:{}:{} [{}] {}\n    | {}\n    = {}",
            self.file, self.line, self.col, self.rule, self.message, self.snippet, status
        )
    }
}

/// An inline `hydra-lint: allow(...)` waiver found in a file.
#[derive(Debug)]
struct Waiver {
    rule: String,
    reason: String,
    /// Line of the waiver comment itself.
    line: u32,
    col: u32,
    /// The inclusive line span this waiver covers: its own line for a
    /// trailing waiver, or the whole next statement for a standalone one.
    covers: Option<(u32, u32)>,
    used: bool,
}

const WAIVER_MARKER: &str = "hydra-lint:";

/// The last line of the statement starting on `start`.
///
/// Findings anchor to the token that trips them, which for a multi-line
/// statement (a chained `.partial_cmp(..)` / `.unwrap()`, say) can sit
/// lines below the statement head — a waiver above the statement must
/// still reach them. The statement ends at the first `;`, `{` or `}`
/// outside parens/brackets, so a waiver above an item header never leaks
/// into the item's braced body.
fn statement_end_line(lexed: &lexer::Lexed, start: u32) -> u32 {
    let mut depth = 0usize;
    let mut last = start;
    for t in lexed.tokens.iter().filter(|t| t.line >= start) {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            ";" | "{" | "}" if depth == 0 => return t.line,
            _ => {}
        }
        last = t.line;
    }
    last
}

/// Parses waivers out of a file's comments; malformed ones become
/// `bad-waiver` findings immediately.
fn parse_waivers(lexed: &lexer::Lexed, diags: &mut Vec<(u32, u32, String)>) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for c in &lexed.comments {
        // Only comments *starting* with the marker are waivers, so prose
        // that merely mentions the syntax (like this crate's docs) is inert.
        let Some(rest) = c.text.strip_prefix(WAIVER_MARKER) else {
            continue;
        };
        let rest = rest.trim();
        let parsed = rest.strip_prefix("allow(").and_then(|r| {
            r.find(')').map(|close| {
                (
                    r[..close].trim().to_string(),
                    r[close + 1..].trim().to_string(),
                )
            })
        });
        let Some((rule, reason)) = parsed else {
            diags.push((
                c.line,
                c.col,
                "waiver must be written `hydra-lint: allow(<rule-id>) <reason>`".to_string(),
            ));
            continue;
        };
        if rules::rule_by_id(&rule).is_none() {
            diags.push((c.line, c.col, format!("waiver names unknown rule `{rule}`")));
            continue;
        }
        if reason.is_empty() {
            diags.push((
                c.line,
                c.col,
                format!("waiver for `{rule}` carries no reason"),
            ));
            continue;
        }
        // A trailing waiver (sharing its line with code) covers its own
        // line; a standalone one covers the next statement.
        let covers = if lexed.line_has_code(c.line) {
            Some((c.line, c.line))
        } else {
            lexed
                .next_code_line(c.end_line)
                .map(|start| (start, statement_end_line(lexed, start)))
        };
        waivers.push(Waiver {
            rule,
            reason,
            line: c.line,
            col: c.col,
            covers,
            used: false,
        });
    }
    waivers
}

/// Lints one file's source. `rel_path` determines rule scoping (see
/// [`rules::FileClass`]); use forward slashes.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let lexed = lexer::lex(src);
    let class = rules::FileClass::from_rel_path(rel_path);
    let regions = rules::test_regions(&lexed);
    let ctx = rules::FileContext {
        class: &class,
        lexed: &lexed,
        test_regions: &regions,
    };
    let findings = rules::run_all(&ctx);

    let mut bad_waivers: Vec<(u32, u32, String)> = Vec::new();
    let mut waivers = parse_waivers(&lexed, &mut bad_waivers);

    let mut out: Vec<Diagnostic> = Vec::new();
    for f in findings {
        // Several waivers can cover one line (mid-statement waivers stack
        // inside a chained call): the closest one above the finding wins,
        // so each waiver pairs with the finding it was written for.
        let waived = waivers
            .iter_mut()
            .filter(|w| {
                w.rule == f.rule && w.covers.is_some_and(|(s, e)| f.line >= s && f.line <= e)
            })
            .max_by_key(|w| w.line)
            .map(|w| {
                w.used = true;
                w.reason.clone()
            });
        let info = rules::rule_by_id(f.rule).expect("findings only use registered rules");
        out.push(Diagnostic {
            rule: f.rule,
            file: rel_path.to_string(),
            line: f.line,
            col: f.col,
            message: f.message,
            snippet: lexed.line_text(f.line).to_string(),
            hint: info.hint,
            waived,
        });
    }
    // Stale waivers waive nothing: surface them so they get deleted.
    for w in &waivers {
        if !w.used {
            bad_waivers.push((
                w.line,
                w.col,
                format!("waiver for `{}` matches no finding (stale?)", w.rule),
            ));
        }
    }
    let bad_info = rules::rule_by_id("bad-waiver").expect("bad-waiver is registered");
    for (line, col, message) in bad_waivers {
        out.push(Diagnostic {
            rule: "bad-waiver",
            file: rel_path.to_string(),
            line,
            col,
            message,
            snippet: lexed.line_text(line).to_string(),
            hint: bad_info.hint,
            waived: None,
        });
    }
    out.sort_by_key(|d| (d.line, d.col));
    out
}

/// A whole-workspace lint run.
#[derive(Debug)]
pub struct Report {
    pub root: PathBuf,
    pub files_scanned: usize,
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Findings not covered by a waiver — these fail the build.
    pub fn unwaived(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.waived.is_none())
    }

    /// Per-rule `(total, waived)` counts, in [`RULES`] order.
    pub fn rule_counts(&self) -> Vec<(&'static str, usize, usize)> {
        RULES
            .iter()
            .map(|r| {
                let total = self.diagnostics.iter().filter(|d| d.rule == r.id).count();
                let waived = self
                    .diagnostics
                    .iter()
                    .filter(|d| d.rule == r.id && d.waived.is_some())
                    .count();
                (r.id, total, waived)
            })
            .collect()
    }

    /// The machine-readable report (uploaded as a CI artifact).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"root\": {},\n  \"files_scanned\": {},\n",
            json_str(&self.root.display().to_string()),
            self.files_scanned
        ));
        s.push_str(&format!(
            "  \"unwaived\": {},\n  \"waived\": {},\n",
            self.unwaived().count(),
            self.diagnostics.len() - self.unwaived().count()
        ));
        s.push_str("  \"rules\": {");
        let counts = self.rule_counts();
        for (i, (id, total, waived)) in counts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {}: {{\"total\": {total}, \"waived\": {waived}}}",
                json_str(id)
            ));
        }
        s.push_str("\n  },\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \
                 \"message\": {}, \"snippet\": {}, \"hint\": {}, \"waived\": {}}}",
                json_str(d.rule),
                json_str(&d.file),
                d.line,
                d.col,
                json_str(&d.message),
                json_str(&d.snippet),
                json_str(d.hint),
                match &d.waived {
                    Some(r) => json_str(r),
                    None => "null".to_string(),
                }
            ));
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Directories the workspace walk never descends into.
const SKIP_DIRS: &[&str] = &[
    "target",
    "vendor",
    ".git",
    ".github",
    "results",
    "snapshots",
];

/// Collects every lintable `.rs` file under `root`, workspace-relative,
/// sorted for deterministic reports.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every workspace `.rs` file under `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let files = workspace_files(root)?;
    let mut diagnostics = Vec::new();
    let files_scanned = files.len();
    for path in files {
        let src = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        diagnostics.extend(lint_source(&rel, &src));
    }
    diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line, a.col).cmp(&(b.file.as_str(), b.line, b.col)));
    Ok(Report {
        root: root.to_path_buf(),
        files_scanned,
        diagnostics,
    })
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}

//! CLI for the workspace contract checker.
//!
//! ```text
//! cargo run -p hydra-lint -- --workspace              # lint the whole tree
//! cargo run -p hydra-lint -- --workspace --json out.json
//! cargo run -p hydra-lint -- crates/core/src/simd.rs  # lint specific files
//! cargo run -p hydra-lint -- --list-rules
//! ```
//!
//! Exit code is `1` when any **unwaived** diagnostic remains (`-D`
//! semantics: the CI `contract-lint` job fails on it), `2` on usage or I/O
//! errors, `0` on a clean tree.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: hydra-lint [--workspace] [--root DIR] [--json FILE] [--list-rules] [paths...]\n\
     \n\
     --workspace   lint every .rs file of the enclosing workspace (default\n\
     \x20             when no paths are given)\n\
     --root DIR    workspace root to scan (default: walk up from cwd)\n\
     --json FILE   also write the full diagnostics report as JSON\n\
     --list-rules  print the rule table and exit"
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut json_path: Option<PathBuf> = None;
    let mut root_arg: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut list_rules = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--list-rules" => list_rules = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json needs a file argument\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a directory argument\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::from(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    if list_rules {
        for r in hydra_lint::RULES {
            println!("{:<24} {}", r.id, r.summary);
            println!("{:<24}   fix: {}", "", r.hint);
            println!("{:<24}   why: {}", "", r.motivation);
        }
        return ExitCode::SUCCESS;
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match root_arg.or_else(|| hydra_lint::find_workspace_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("no workspace root found above {}", cwd.display());
            return ExitCode::from(2);
        }
    };

    let report = if paths.is_empty() {
        match hydra_lint::lint_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("lint walk failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        // Explicit files: lint each against its workspace-relative path so
        // crate scoping still applies.
        let mut diagnostics = Vec::new();
        let files_scanned = paths.len();
        for p in &paths {
            let abs = if p.is_absolute() {
                p.clone()
            } else {
                cwd.join(p)
            };
            let src = match std::fs::read_to_string(&abs) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", abs.display());
                    return ExitCode::from(2);
                }
            };
            let rel = abs
                .strip_prefix(&root)
                .unwrap_or(&abs)
                .to_string_lossy()
                .replace('\\', "/");
            diagnostics.extend(hydra_lint::lint_source(&rel, &src));
        }
        hydra_lint::Report {
            root: root.clone(),
            files_scanned,
            diagnostics,
        }
    };

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let unwaived: Vec<_> = report.unwaived().collect();
    for d in &unwaived {
        println!("{}\n", d.render());
    }
    let waived = report.diagnostics.len() - unwaived.len();
    println!(
        "hydra-lint: {} files scanned, {} unwaived finding(s), {} waived",
        report.files_scanned,
        unwaived.len(),
        waived
    );
    if !unwaived.is_empty() {
        println!("run `cargo run -p hydra-lint -- --list-rules` for fix hints");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

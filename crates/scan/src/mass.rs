//! MASS adapted to exact whole matching.
//!
//! MASS (Mueen's Algorithm for Similarity Search) computes, for subsequence
//! matching, the distance profile between a query and every subsequence of a
//! long series using FFT-based dot products. Following the paper, we adapt it
//! to whole matching: for every candidate series `C` the squared Euclidean
//! distance is computed as
//!
//! ```text
//! ED²(Q, C) = ||Q||² + ||C||² − 2·(Q · C)
//! ```
//!
//! where the dot product `Q · C` is evaluated in the frequency domain
//! (`Q · C = Σ_k conj(F(Q))_k · F(C)_k / n`, by Parseval/correlation theorem).
//! This keeps the spirit of the original algorithm — trading extra CPU
//! (Fourier transforms) for a branch-free, abandon-free computation — and
//! reproduces its observed behaviour in the study: a very high CPU cost and
//! one sequential pass of I/O per query.

use hydra_core::parallel::map_chunks;
use hydra_core::{
    AnswerSet, AnsweringMethod, BatchAnswering, BudgetMeter, Error, IntraAnswering, KnnHeap,
    MethodDescriptor, ModeCapabilities, Query, QueryStats, Result,
};
use hydra_storage::DatasetStore;
use hydra_transforms::fft::{Complex, Fft};
use std::ops::ControlFlow;
use std::sync::Arc;

/// The MASS whole-matching scan.
#[derive(Clone)]
pub struct MassScan {
    store: Arc<DatasetStore>,
    fft: Fft,
}

impl MassScan {
    /// Creates a MASS scan over the given store.
    pub fn new(store: Arc<DatasetStore>) -> Self {
        let fft = Fft::new(store.series_length().max(1));
        Self { store, fft }
    }

    /// The underlying store.
    pub fn store(&self) -> &DatasetStore {
        &self.store
    }

    fn spectrum_and_norm(&self, values: &[f32]) -> (Vec<Complex>, f64) {
        let spectrum = self.fft.forward_real(values);
        let norm_sq: f64 = values.iter().map(|&v| (v as f64) * (v as f64)).sum();
        (spectrum, norm_sq)
    }
}

impl AnsweringMethod for MassScan {
    fn descriptor(&self) -> MethodDescriptor {
        MethodDescriptor {
            name: "MASS",
            representation: "DFT",
            is_index: false,
            modes: ModeCapabilities::exact_only(),
        }
    }

    fn answer(&self, query: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
        if self.store.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let n = self.store.series_length();
        if query.len() != n {
            return Err(Error::LengthMismatch {
                expected: n,
                actual: query.len(),
            });
        }
        if !query.mode().is_exact() {
            return Err(Error::unsupported_mode("MASS", query.mode()));
        }
        let k = query.knn_k("MASS")?;
        let mut heap = KnnHeap::new(k);
        let mut meter = BudgetMeter::new(query.budget(), self.store.len());
        let clock = hydra_core::RunClock::start();
        let (q_spec, q_norm_sq) = self.spectrum_and_norm(query.values());
        // Thread-scoped snapshot: under a parallel workload each worker must
        // observe only its own scan traffic.
        let before = self.store.thread_io_snapshot();
        // One spectrum scratch per query, reused across every candidate: the
        // hot loop performs no per-candidate allocation.
        let mut c_spec: Vec<Complex> = Vec::with_capacity(n);
        self.store.try_scan_all(|id, series| {
            if meter.should_stop(stats.raw_series_examined, !heap.is_empty()) {
                return Ok(ControlFlow::Break(()));
            }
            stats.record_raw_series_examined(1);
            self.fft.forward_real_into(series.values(), &mut c_spec);
            let c_norm_sq: f64 = series
                .values()
                .iter()
                .map(|&v| (v as f64) * (v as f64))
                .sum();
            // Dot product via the spectra: Q·C = (1/n) Σ conj(F(Q))·F(C).
            let mut dot = 0.0f64;
            for (q, c) in q_spec.iter().zip(c_spec.iter()) {
                dot += q.re * c.re + q.im * c.im;
            }
            dot /= n as f64;
            let sq = (q_norm_sq + c_norm_sq - 2.0 * dot).max(0.0);
            heap.offer(id, sq.sqrt());
            Ok(ControlFlow::Continue(()))
        })?;
        stats.cpu_time += clock.elapsed();
        let delta = self.store.thread_io_snapshot().since(&before);
        stats.record_io(delta.sequential_pages, delta.random_pages, delta.bytes_read);
        let guarantee = meter.guarantee(query.mode().guarantee(), stats.raw_series_examined);
        Ok(heap.into_answer_set().with_guarantee(guarantee))
    }

    fn batch_answering(&self) -> Option<&dyn BatchAnswering> {
        Some(self)
    }

    fn intra_answering(&self) -> Option<&dyn IntraAnswering> {
        Some(self)
    }
}

impl IntraAnswering for MassScan {
    /// Intra-query MASS: the distance of each candidate is a fixed, pruning-
    /// free computation (spectrum + dot product), so the candidate range
    /// splits into one contiguous chunk per worker with **no** shared state
    /// at all — each worker keeps its own spectrum scratch and produces the
    /// exact squared distance the serial loop would. A serial replay offers
    /// the precomputed values in storage order inside the counted
    /// [`DatasetStore::scan_all`] pass, reproducing the serial I/O envelope
    /// and heap evolution bit for bit.
    fn answer_intra(
        &self,
        query: &Query,
        threads: usize,
        stats: &mut QueryStats,
    ) -> Result<AnswerSet> {
        if self.store.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let n = self.store.series_length();
        if query.len() != n {
            return Err(Error::LengthMismatch {
                expected: n,
                actual: query.len(),
            });
        }
        if !query.mode().is_exact() {
            return Err(Error::unsupported_mode("MASS", query.mode()));
        }
        let k = query.knn_k("MASS")?;
        let clock = hydra_core::RunClock::start();
        let (q_spec, q_norm_sq) = self.spectrum_and_norm(query.values());
        let before = self.store.thread_io_snapshot();
        let dataset = self.store.dataset();
        let squared: Vec<f64> = map_chunks(self.store.len(), threads, |range| {
            let mut c_spec: Vec<Complex> = Vec::with_capacity(n);
            let mut out = Vec::with_capacity(range.len());
            for id in range {
                let values = dataset.series(id).values();
                self.fft.forward_real_into(values, &mut c_spec);
                let c_norm_sq: f64 = values.iter().map(|&v| (v as f64) * (v as f64)).sum();
                let mut dot = 0.0f64;
                for (q, c) in q_spec.iter().zip(c_spec.iter()) {
                    dot += q.re * c.re + q.im * c.im;
                }
                dot /= n as f64;
                out.push((q_norm_sq + c_norm_sq - 2.0 * dot).max(0.0));
            }
            out
        });
        let mut heap = KnnHeap::new(k);
        self.store.scan_all(|id, _series| {
            stats.record_raw_series_examined(1);
            heap.offer(id, squared[id].sqrt());
        });
        stats.cpu_time += clock.elapsed();
        let delta = self.store.thread_io_snapshot().since(&before);
        stats.record_io(delta.sequential_pages, delta.random_pages, delta.bytes_read);
        Ok(heap.into_answer_set())
    }
}

impl BatchAnswering for MassScan {
    /// The batched MASS scan: one sequential pass over the dataset, and —
    /// the CPU amortization the FFT structure makes possible — **one**
    /// candidate spectrum per candidate shared by every query of the batch,
    /// instead of Q transforms per candidate. Each query's distance is the
    /// same spectra dot product as the serial path, so answers and per-query
    /// counters are bit-identical to the per-query loop.
    fn answer_batch(&self, queries: &[Query], stats: &mut [QueryStats]) -> Result<Vec<AnswerSet>> {
        if self.store.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let n = self.store.series_length();
        hydra_core::method::batch_expect_length(queries, n)?;
        hydra_core::method::batch_expect_exact(queries, "MASS")?;
        let ks = hydra_core::method::batch_knn_ks(queries, "MASS")?;
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let clock = hydra_core::RunClock::start();
        let query_spectra: Vec<(Vec<Complex>, f64)> = queries
            .iter()
            .map(|q| self.spectrum_and_norm(q.values()))
            .collect();
        let mut heaps: Vec<KnnHeap> = ks.iter().map(|&k| KnnHeap::new(k)).collect();
        let mut c_spec: Vec<Complex> = Vec::with_capacity(n);
        self.store.scan_all(|id, series| {
            self.fft.forward_real_into(series.values(), &mut c_spec);
            let c_norm_sq: f64 = series
                .values()
                .iter()
                .map(|&v| (v as f64) * (v as f64))
                .sum();
            for (((q_spec, q_norm_sq), heap), stats) in
                query_spectra.iter().zip(&mut heaps).zip(stats.iter_mut())
            {
                stats.record_raw_series_examined(1);
                let mut dot = 0.0f64;
                for (q, c) in q_spec.iter().zip(c_spec.iter()) {
                    dot += q.re * c.re + q.im * c.im;
                }
                dot /= n as f64;
                let sq = (q_norm_sq + c_norm_sq - 2.0 * dot).max(0.0);
                heap.offer(id, sq.sqrt());
            }
        });
        let pages = self.store.total_pages();
        let bytes = (self.store.len() * self.store.series_bytes()) as u64;
        for stats in stats.iter_mut() {
            stats.record_io(pages - 1, 1, bytes);
        }
        hydra_core::method::share_batch_cpu_time(stats, clock.elapsed());
        Ok(heaps.into_iter().map(KnnHeap::into_answer_set).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ucr::brute_force_knn;
    use hydra_core::Series;
    use hydra_data::RandomWalkGenerator;

    fn store(count: usize, len: usize) -> Arc<DatasetStore> {
        Arc::new(DatasetStore::new(
            RandomWalkGenerator::new(21, len).dataset(count),
        ))
    }

    #[test]
    fn descriptor_matches_table1() {
        let m = MassScan::new(store(5, 16));
        assert_eq!(m.descriptor().name, "MASS");
        assert_eq!(m.descriptor().representation, "DFT");
        assert!(!m.descriptor().is_index);
    }

    #[test]
    fn mass_matches_brute_force_on_power_of_two_lengths() {
        let s = store(200, 64);
        let m = MassScan::new(s.clone());
        for q in RandomWalkGenerator::new(77, 64).series_batch(5) {
            let expected = brute_force_knn(s.dataset(), q.values(), 3);
            let got = m.answer_simple(&Query::knn(q, 3)).unwrap();
            assert!(
                got.distances_match(&expected, 1e-3),
                "distances diverge: {got:?} vs {expected:?}"
            );
        }
    }

    #[test]
    fn mass_matches_brute_force_on_non_power_of_two_lengths() {
        // Deep1B-like length 96 exercises the direct DFT path.
        let s = store(100, 96);
        let m = MassScan::new(s.clone());
        let q = RandomWalkGenerator::new(78, 96).series(0);
        let expected = brute_force_knn(s.dataset(), q.values(), 1);
        let got = m.answer_simple(&Query::nearest_neighbor(q)).unwrap();
        assert!(got.distances_match(&expected, 1e-3));
        assert_eq!(got.nearest().unwrap().id, expected.nearest().unwrap().id);
    }

    #[test]
    fn self_query_returns_zero_distance() {
        let s = store(50, 32);
        let m = MassScan::new(s.clone());
        let target = s.dataset().series(7).to_owned_series();
        let ans = m.answer_simple(&Query::nearest_neighbor(target)).unwrap();
        assert_eq!(ans.nearest().unwrap().id, 7);
        assert!(ans.nearest().unwrap().distance < 1e-3);
    }

    #[test]
    fn io_profile_is_one_sequential_pass() {
        let s = store(100, 128);
        let m = MassScan::new(s.clone());
        let mut stats = QueryStats::default();
        m.answer(
            &Query::nearest_neighbor(RandomWalkGenerator::new(5, 128).series(0)),
            &mut stats,
        )
        .unwrap();
        assert_eq!(stats.raw_series_examined, 100);
        assert_eq!(stats.random_page_accesses, 1);
        assert!(stats.cpu_time.as_nanos() > 0);
    }

    #[test]
    fn batched_mass_matches_the_serial_loop_with_one_shared_spectrum_pass() {
        use hydra_core::{Parallelism, QueryEngine};
        let queries: Vec<Query> = RandomWalkGenerator::new(91, 64)
            .series_batch(5)
            .into_iter()
            .map(|s| Query::knn(s, 2))
            .collect();
        let s1 = store(150, 64);
        let mut serial =
            QueryEngine::new(Box::new(MassScan::new(s1.clone())), s1.len()).with_io_source(s1);
        let serial_answers: Vec<_> = queries.iter().map(|q| serial.answer(q).unwrap()).collect();

        let s2 = store(150, 64);
        let mut batched = QueryEngine::new(Box::new(MassScan::new(s2.clone())), s2.len())
            .with_io_source(s2.clone());
        let batch_answers = batched.answer_batch(&queries, Parallelism::Serial).unwrap();
        for (a, b) in serial_answers.iter().zip(&batch_answers) {
            assert_eq!(a.answers, b.answers, "distances must be bit-identical");
            assert_eq!(a.stats.raw_series_examined, b.stats.raw_series_examined);
            assert_eq!(
                a.stats.sequential_page_accesses,
                b.stats.sequential_page_accesses
            );
            assert_eq!(a.stats.bytes_read, b.stats.bytes_read);
        }
        // One physical pass amortized over the 5 queries.
        assert_eq!(
            batched.last_batch_io().unwrap().total_pages(),
            s2.total_pages()
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let m = MassScan::new(store(10, 64));
        assert!(m
            .answer_simple(&Query::nearest_neighbor(Series::new(vec![0.0; 16])))
            .is_err());
    }
}

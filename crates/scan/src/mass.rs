//! MASS adapted to exact whole matching.
//!
//! MASS (Mueen's Algorithm for Similarity Search) computes, for subsequence
//! matching, the distance profile between a query and every subsequence of a
//! long series using FFT-based dot products. Following the paper, we adapt it
//! to whole matching: for every candidate series `C` the squared Euclidean
//! distance is computed as
//!
//! ```text
//! ED²(Q, C) = ||Q||² + ||C||² − 2·(Q · C)
//! ```
//!
//! where the dot product `Q · C` is evaluated in the frequency domain
//! (`Q · C = Σ_k conj(F(Q))_k · F(C)_k / n`, by Parseval/correlation theorem).
//! This keeps the spirit of the original algorithm — trading extra CPU
//! (Fourier transforms) for a branch-free, abandon-free computation — and
//! reproduces its observed behaviour in the study: a very high CPU cost and
//! one sequential pass of I/O per query.

use hydra_core::{
    AnswerSet, AnsweringMethod, Error, KnnHeap, MethodDescriptor, ModeCapabilities, Query,
    QueryStats, Result,
};
use hydra_storage::DatasetStore;
use hydra_transforms::fft::{Complex, Fft};
use std::sync::Arc;

/// The MASS whole-matching scan.
#[derive(Clone)]
pub struct MassScan {
    store: Arc<DatasetStore>,
    fft: Fft,
}

impl MassScan {
    /// Creates a MASS scan over the given store.
    pub fn new(store: Arc<DatasetStore>) -> Self {
        let fft = Fft::new(store.series_length().max(1));
        Self { store, fft }
    }

    /// The underlying store.
    pub fn store(&self) -> &DatasetStore {
        &self.store
    }

    fn spectrum_and_norm(&self, values: &[f32]) -> (Vec<Complex>, f64) {
        let spectrum = self.fft.forward_real(values);
        let norm_sq: f64 = values.iter().map(|&v| (v as f64) * (v as f64)).sum();
        (spectrum, norm_sq)
    }
}

impl AnsweringMethod for MassScan {
    fn descriptor(&self) -> MethodDescriptor {
        MethodDescriptor {
            name: "MASS",
            representation: "DFT",
            is_index: false,
            modes: ModeCapabilities::exact_only(),
        }
    }

    fn answer(&self, query: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
        if self.store.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let n = self.store.series_length();
        if query.len() != n {
            return Err(Error::LengthMismatch {
                expected: n,
                actual: query.len(),
            });
        }
        if !query.mode().is_exact() {
            return Err(Error::unsupported_mode("MASS", query.mode()));
        }
        let k = query.knn_k("MASS")?;
        let mut heap = KnnHeap::new(k);
        let clock = hydra_core::RunClock::start();
        let (q_spec, q_norm_sq) = self.spectrum_and_norm(query.values());
        // Thread-scoped snapshot: under a parallel workload each worker must
        // observe only its own scan traffic.
        let before = self.store.thread_io_snapshot();
        self.store.scan_all(|id, series| {
            stats.record_raw_series_examined(1);
            let (c_spec, c_norm_sq) = self.spectrum_and_norm(series.values());
            // Dot product via the spectra: Q·C = (1/n) Σ conj(F(Q))·F(C).
            let mut dot = 0.0f64;
            for (q, c) in q_spec.iter().zip(c_spec.iter()) {
                dot += q.re * c.re + q.im * c.im;
            }
            dot /= n as f64;
            let sq = (q_norm_sq + c_norm_sq - 2.0 * dot).max(0.0);
            heap.offer(id, sq.sqrt());
        });
        stats.cpu_time += clock.elapsed();
        let delta = self.store.thread_io_snapshot().since(&before);
        stats.record_io(delta.sequential_pages, delta.random_pages, delta.bytes_read);
        Ok(heap.into_answer_set())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ucr::brute_force_knn;
    use hydra_core::Series;
    use hydra_data::RandomWalkGenerator;

    fn store(count: usize, len: usize) -> Arc<DatasetStore> {
        Arc::new(DatasetStore::new(
            RandomWalkGenerator::new(21, len).dataset(count),
        ))
    }

    #[test]
    fn descriptor_matches_table1() {
        let m = MassScan::new(store(5, 16));
        assert_eq!(m.descriptor().name, "MASS");
        assert_eq!(m.descriptor().representation, "DFT");
        assert!(!m.descriptor().is_index);
    }

    #[test]
    fn mass_matches_brute_force_on_power_of_two_lengths() {
        let s = store(200, 64);
        let m = MassScan::new(s.clone());
        for q in RandomWalkGenerator::new(77, 64).series_batch(5) {
            let expected = brute_force_knn(s.dataset(), q.values(), 3);
            let got = m.answer_simple(&Query::knn(q, 3)).unwrap();
            assert!(
                got.distances_match(&expected, 1e-3),
                "distances diverge: {got:?} vs {expected:?}"
            );
        }
    }

    #[test]
    fn mass_matches_brute_force_on_non_power_of_two_lengths() {
        // Deep1B-like length 96 exercises the direct DFT path.
        let s = store(100, 96);
        let m = MassScan::new(s.clone());
        let q = RandomWalkGenerator::new(78, 96).series(0);
        let expected = brute_force_knn(s.dataset(), q.values(), 1);
        let got = m.answer_simple(&Query::nearest_neighbor(q)).unwrap();
        assert!(got.distances_match(&expected, 1e-3));
        assert_eq!(got.nearest().unwrap().id, expected.nearest().unwrap().id);
    }

    #[test]
    fn self_query_returns_zero_distance() {
        let s = store(50, 32);
        let m = MassScan::new(s.clone());
        let target = s.dataset().series(7).to_owned_series();
        let ans = m.answer_simple(&Query::nearest_neighbor(target)).unwrap();
        assert_eq!(ans.nearest().unwrap().id, 7);
        assert!(ans.nearest().unwrap().distance < 1e-3);
    }

    #[test]
    fn io_profile_is_one_sequential_pass() {
        let s = store(100, 128);
        let m = MassScan::new(s.clone());
        let mut stats = QueryStats::default();
        m.answer(
            &Query::nearest_neighbor(RandomWalkGenerator::new(5, 128).series(0)),
            &mut stats,
        )
        .unwrap();
        assert_eq!(stats.raw_series_examined, 100);
        assert_eq!(stats.random_page_accesses, 1);
        assert!(stats.cpu_time.as_nanos() > 0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let m = MassScan::new(store(10, 64));
        assert!(m
            .answer_simple(&Query::nearest_neighbor(Series::new(vec![0.0; 16])))
            .is_err());
    }
}

//! The UCR-Suite-style optimized sequential scan, adapted to exact whole
//! matching (the paper's baseline method).
//!
//! For every candidate series read sequentially from the store, the scan
//! computes the squared Euclidean distance with reordered early abandoning
//! against the current best-so-far. It performs exactly one full sequential
//! pass over the dataset per query, which makes its I/O profile the reference
//! point every index is compared against.

use hydra_core::distance::{squared_euclidean_reordered, QueryOrder};
use hydra_core::{
    AnswerSet, AnsweringMethod, Error, KnnHeap, MethodDescriptor, ModeCapabilities, Query,
    QueryStats, Result,
};
use hydra_storage::DatasetStore;
use std::sync::Arc;

/// The optimized serial-scan baseline.
#[derive(Clone)]
pub struct UcrScan {
    store: Arc<DatasetStore>,
}

impl UcrScan {
    /// Creates a scan over the given store.
    pub fn new(store: Arc<DatasetStore>) -> Self {
        Self { store }
    }

    /// The underlying store.
    pub fn store(&self) -> &DatasetStore {
        &self.store
    }

    /// The number of series scanned per query.
    pub fn num_series(&self) -> usize {
        self.store.len()
    }
}

impl AnsweringMethod for UcrScan {
    fn descriptor(&self) -> MethodDescriptor {
        MethodDescriptor {
            name: "UCR-Suite",
            representation: "raw",
            is_index: false,
            modes: ModeCapabilities::exact_only(),
        }
    }

    fn answer(&self, query: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
        if self.store.is_empty() {
            return Err(Error::EmptyDataset);
        }
        if query.len() != self.store.series_length() {
            return Err(Error::LengthMismatch {
                expected: self.store.series_length(),
                actual: query.len(),
            });
        }
        if !query.mode().is_exact() {
            return Err(Error::unsupported_mode("UCR-Suite", query.mode()));
        }
        let k = query.knn_k("UCR-Suite")?;
        let mut heap = KnnHeap::new(k);
        let order = QueryOrder::new(query.values());
        // Thread-scoped snapshot: under a parallel workload each worker must
        // observe only its own scan traffic.
        let before = self.store.thread_io_snapshot();
        let clock = hydra_core::RunClock::start();
        self.store.scan_all(|id, series| {
            stats.record_raw_series_examined(1);
            match squared_euclidean_reordered(
                query.values(),
                series.values(),
                &order,
                heap.threshold_squared(),
            ) {
                Some(sq) => {
                    heap.offer(id, sq.sqrt());
                }
                None => stats.record_early_abandon(),
            }
        });
        stats.cpu_time += clock.elapsed();
        let delta = self.store.thread_io_snapshot().since(&before);
        stats.record_io(delta.sequential_pages, delta.random_pages, delta.bytes_read);
        Ok(heap.into_answer_set())
    }
}

/// Brute-force exact k-NN over an in-memory dataset, without any I/O
/// accounting or early abandoning. Used as the ground-truth oracle in tests
/// and experiments.
pub fn brute_force_knn(dataset: &hydra_core::Dataset, query: &[f32], k: usize) -> AnswerSet {
    let mut heap = KnnHeap::new(k);
    for (i, s) in dataset.iter().enumerate() {
        heap.offer(i, hydra_core::distance::euclidean(query, s.values()));
    }
    heap.into_answer_set()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::{Dataset, Series};
    use hydra_data::RandomWalkGenerator;

    fn store(count: usize, len: usize) -> Arc<DatasetStore> {
        Arc::new(DatasetStore::new(
            RandomWalkGenerator::new(11, len).dataset(count),
        ))
    }

    #[test]
    fn descriptor_matches_table1() {
        let scan = UcrScan::new(store(10, 32));
        let d = scan.descriptor();
        assert_eq!(d.name, "UCR-Suite");
        assert!(!d.is_index);
        assert_eq!(scan.num_series(), 10);
    }

    #[test]
    fn scan_matches_brute_force_for_1nn_and_knn() {
        let s = store(300, 64);
        let scan = UcrScan::new(s.clone());
        let queries = RandomWalkGenerator::new(99, 64).series_batch(10);
        for q in &queries {
            for k in [1usize, 5, 10] {
                let expected = brute_force_knn(s.dataset(), q.values(), k);
                let got = scan.answer_simple(&Query::knn(q.clone(), k)).unwrap();
                assert!(got.distances_match(&expected, 1e-6), "k={k} mismatch");
            }
        }
    }

    #[test]
    fn scan_finds_exact_duplicate_at_distance_zero() {
        let s = store(100, 32);
        let scan = UcrScan::new(s.clone());
        let target = s.dataset().series(42).to_owned_series();
        let ans = scan
            .answer_simple(&Query::nearest_neighbor(target))
            .unwrap();
        assert_eq!(ans.nearest().unwrap().id, 42);
        assert!(ans.nearest().unwrap().distance < 1e-6);
    }

    #[test]
    fn scan_reads_whole_dataset_sequentially() {
        let s = store(200, 256);
        let scan = UcrScan::new(s.clone());
        let q = RandomWalkGenerator::new(5, 256).series(0);
        let mut stats = QueryStats::default();
        scan.answer(&Query::nearest_neighbor(q), &mut stats)
            .unwrap();
        assert_eq!(stats.raw_series_examined, 200);
        assert_eq!(
            stats.random_page_accesses, 1,
            "a scan seeks once then streams"
        );
        assert_eq!(stats.bytes_read, 200 * 256 * 4);
        assert!(
            stats.early_abandons > 0,
            "early abandoning should trigger on most candidates"
        );
    }

    #[test]
    fn rejects_wrong_length_and_empty_dataset() {
        let s = store(10, 64);
        let scan = UcrScan::new(s);
        let err = scan.answer_simple(&Query::nearest_neighbor(Series::new(vec![0.0; 32])));
        assert!(matches!(
            err,
            Err(Error::LengthMismatch {
                expected: 64,
                actual: 32
            })
        ));

        let empty = Arc::new(DatasetStore::new(Dataset::empty(8)));
        let scan = UcrScan::new(empty);
        let err = scan.answer_simple(&Query::nearest_neighbor(Series::new(vec![0.0; 8])));
        assert!(matches!(err, Err(Error::EmptyDataset)));
    }

    #[test]
    fn brute_force_returns_sorted_k_answers() {
        let d = RandomWalkGenerator::new(3, 16).dataset(50);
        let q = RandomWalkGenerator::new(4, 16).series(0);
        let ans = brute_force_knn(&d, q.values(), 5);
        assert_eq!(ans.len(), 5);
        let dists: Vec<f64> = ans.iter().map(|a| a.distance).collect();
        let mut sorted = dists.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(dists, sorted);
    }
}

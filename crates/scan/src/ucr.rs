//! The UCR-Suite-style optimized sequential scan, adapted to exact whole
//! matching (the paper's baseline method).
//!
//! For every candidate series read sequentially from the store, the scan
//! computes the squared Euclidean distance with reordered early abandoning
//! against the current best-so-far. It performs exactly one full sequential
//! pass over the dataset per query, which makes its I/O profile the reference
//! point every index is compared against.

use hydra_core::distance::{
    squared_euclidean_multi_reordered, squared_euclidean_reordered, QueryOrder,
};
use hydra_core::parallel::map_chunks;
use hydra_core::{
    replay_outcome, AnswerSet, AnsweringMethod, BatchAnswering, BudgetMeter, Error, IntraAnswering,
    KnnHeap, MethodDescriptor, ModeCapabilities, Outcome, Query, QueryStats, Result, SharedBsf,
};
use hydra_storage::DatasetStore;
use std::ops::ControlFlow;
use std::sync::Arc;

/// The optimized serial-scan baseline.
#[derive(Clone)]
pub struct UcrScan {
    store: Arc<DatasetStore>,
}

impl UcrScan {
    /// Creates a scan over the given store.
    pub fn new(store: Arc<DatasetStore>) -> Self {
        Self { store }
    }

    /// The underlying store.
    pub fn store(&self) -> &DatasetStore {
        &self.store
    }

    /// The number of series scanned per query.
    pub fn num_series(&self) -> usize {
        self.store.len()
    }
}

impl AnsweringMethod for UcrScan {
    fn descriptor(&self) -> MethodDescriptor {
        MethodDescriptor {
            name: "UCR-Suite",
            representation: "raw",
            is_index: false,
            modes: ModeCapabilities::exact_only(),
        }
    }

    fn answer(&self, query: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
        if self.store.is_empty() {
            return Err(Error::EmptyDataset);
        }
        if query.len() != self.store.series_length() {
            return Err(Error::LengthMismatch {
                expected: self.store.series_length(),
                actual: query.len(),
            });
        }
        if !query.mode().is_exact() {
            return Err(Error::unsupported_mode("UCR-Suite", query.mode()));
        }
        let k = query.knn_k("UCR-Suite")?;
        let mut heap = KnnHeap::new(k);
        let mut meter = BudgetMeter::new(query.budget(), self.store.len());
        let order = QueryOrder::new(query.values());
        // Thread-scoped snapshot: under a parallel workload each worker must
        // observe only its own scan traffic.
        let before = self.store.thread_io_snapshot();
        let clock = hydra_core::RunClock::start();
        self.store.try_scan_all(|id, series| {
            if meter.should_stop(stats.raw_series_examined, !heap.is_empty()) {
                return Ok(ControlFlow::Break(()));
            }
            stats.record_raw_series_examined(1);
            match squared_euclidean_reordered(
                query.values(),
                series.values(),
                &order,
                heap.threshold_squared(),
            ) {
                Some(sq) => {
                    heap.offer(id, sq.sqrt());
                }
                None => stats.record_early_abandon(),
            }
            Ok(ControlFlow::Continue(()))
        })?;
        stats.cpu_time += clock.elapsed();
        let delta = self.store.thread_io_snapshot().since(&before);
        stats.record_io(delta.sequential_pages, delta.random_pages, delta.bytes_read);
        let guarantee = meter.guarantee(query.mode().guarantee(), stats.raw_series_examined);
        Ok(heap.into_answer_set().with_guarantee(guarantee))
    }

    fn batch_answering(&self) -> Option<&dyn BatchAnswering> {
        Some(self)
    }

    fn intra_answering(&self) -> Option<&dyn IntraAnswering> {
        Some(self)
    }
}

impl IntraAnswering for UcrScan {
    /// ParIS-style intra-query scan: the candidate range is split into one
    /// contiguous chunk per worker; every worker prunes against the tighter
    /// of its own local heap and the [`SharedBsf`], recording one [`Outcome`]
    /// per candidate from the in-memory dataset (no store traffic). A serial
    /// replay then walks the counted [`DatasetStore::scan_all`] pass in
    /// storage order and decides every candidate from its recorded outcome
    /// via [`replay_outcome`], so answers, `early_abandons`, and the full
    /// logical I/O pass are bit-identical to [`AnsweringMethod::answer`].
    fn answer_intra(
        &self,
        query: &Query,
        threads: usize,
        stats: &mut QueryStats,
    ) -> Result<AnswerSet> {
        if self.store.is_empty() {
            return Err(Error::EmptyDataset);
        }
        if query.len() != self.store.series_length() {
            return Err(Error::LengthMismatch {
                expected: self.store.series_length(),
                actual: query.len(),
            });
        }
        if !query.mode().is_exact() {
            return Err(Error::unsupported_mode("UCR-Suite", query.mode()));
        }
        let k = query.knn_k("UCR-Suite")?;
        let order = QueryOrder::new(query.values());
        let before = self.store.thread_io_snapshot();
        let clock = hydra_core::RunClock::start();
        let dataset = self.store.dataset();
        let bsf = SharedBsf::new(f64::INFINITY);
        let outcomes: Vec<Outcome> = map_chunks(self.store.len(), threads, |range| {
            let mut local = KnnHeap::new(k);
            let mut out = Vec::with_capacity(range.len());
            for id in range {
                let threshold = local.threshold_squared().min(bsf.get());
                match squared_euclidean_reordered(
                    query.values(),
                    dataset.series(id).values(),
                    &order,
                    threshold,
                ) {
                    Some(sq) => {
                        out.push(Outcome::Computed(sq));
                        local.offer(id, sq.sqrt());
                        bsf.update_min(local.threshold_squared());
                    }
                    None => out.push(Outcome::Abandoned { threshold }),
                }
            }
            out
        });
        // Serial replay: the counted scan reproduces the serial pass exactly.
        let mut heap = KnnHeap::new(k);
        self.store.scan_all(|id, series| {
            stats.record_raw_series_examined(1);
            let replayed = replay_outcome(outcomes[id], heap.threshold_squared(), |t| {
                squared_euclidean_reordered(query.values(), series.values(), &order, t)
            });
            match replayed {
                Some(sq) => {
                    heap.offer(id, sq.sqrt());
                }
                None => stats.record_early_abandon(),
            }
        });
        stats.cpu_time += clock.elapsed();
        let delta = self.store.thread_io_snapshot().since(&before);
        stats.record_io(delta.sequential_pages, delta.random_pages, delta.bytes_read);
        Ok(heap.into_answer_set())
    }
}

impl BatchAnswering for UcrScan {
    /// The batched scan: **one** sequential pass over the dataset evaluates
    /// every query of the batch against each candidate (query-major, the
    /// candidate stays cache-resident across the Q inner kernels), with each
    /// query early-abandoning against its own best-so-far.
    ///
    /// Candidates are visited in the same storage order as the serial scan
    /// and each query's best-so-far evolves independently, so answers and
    /// per-query counters (series examined, early abandons, the full logical
    /// pass of I/O) are bit-identical to the per-query loop — only the
    /// *physical* traffic shrinks from Q passes to one.
    fn answer_batch(&self, queries: &[Query], stats: &mut [QueryStats]) -> Result<Vec<AnswerSet>> {
        if self.store.is_empty() {
            return Err(Error::EmptyDataset);
        }
        hydra_core::method::batch_expect_length(queries, self.store.series_length())?;
        hydra_core::method::batch_expect_exact(queries, "UCR-Suite")?;
        let ks = hydra_core::method::batch_knn_ks(queries, "UCR-Suite")?;
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let clock = hydra_core::RunClock::start();
        let query_values: Vec<&[f32]> = queries.iter().map(|q| q.values()).collect();
        let orders: Vec<QueryOrder> = query_values.iter().map(|q| QueryOrder::new(q)).collect();
        let mut heaps: Vec<KnnHeap> = ks.iter().map(|&k| KnnHeap::new(k)).collect();
        let mut thresholds = vec![f64::INFINITY; queries.len()];
        let mut distances: Vec<Option<f64>> = vec![None; queries.len()];
        self.store.scan_all(|id, series| {
            for (threshold, heap) in thresholds.iter_mut().zip(&heaps) {
                *threshold = heap.threshold_squared();
            }
            squared_euclidean_multi_reordered(
                &query_values,
                &orders,
                series.values(),
                &thresholds,
                &mut distances,
            );
            for ((distance, heap), stats) in distances.iter().zip(&mut heaps).zip(stats.iter_mut())
            {
                stats.record_raw_series_examined(1);
                match distance {
                    Some(sq) => {
                        heap.offer(id, sq.sqrt());
                    }
                    None => stats.record_early_abandon(),
                }
            }
        });
        // Each query keeps the logical cost of its own full pass (identical
        // to the serial loop); the shared pass's physical traffic stays on
        // the store counters for the engine's batch-scoped accounting.
        let pages = self.store.total_pages();
        let bytes = (self.store.len() * self.store.series_bytes()) as u64;
        for stats in stats.iter_mut() {
            stats.record_io(pages - 1, 1, bytes);
        }
        hydra_core::method::share_batch_cpu_time(stats, clock.elapsed());
        Ok(heaps.into_iter().map(KnnHeap::into_answer_set).collect())
    }
}

/// Brute-force exact k-NN over an in-memory dataset, without any I/O
/// accounting or early abandoning. Used as the ground-truth oracle in tests
/// and experiments.
pub fn brute_force_knn(dataset: &hydra_core::Dataset, query: &[f32], k: usize) -> AnswerSet {
    let mut heap = KnnHeap::new(k);
    for (i, s) in dataset.iter().enumerate() {
        heap.offer(i, hydra_core::distance::euclidean(query, s.values()));
    }
    heap.into_answer_set()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::{Dataset, Series};
    use hydra_data::RandomWalkGenerator;

    fn store(count: usize, len: usize) -> Arc<DatasetStore> {
        Arc::new(DatasetStore::new(
            RandomWalkGenerator::new(11, len).dataset(count),
        ))
    }

    #[test]
    fn descriptor_matches_table1() {
        let scan = UcrScan::new(store(10, 32));
        let d = scan.descriptor();
        assert_eq!(d.name, "UCR-Suite");
        assert!(!d.is_index);
        assert_eq!(scan.num_series(), 10);
    }

    #[test]
    fn scan_matches_brute_force_for_1nn_and_knn() {
        let s = store(300, 64);
        let scan = UcrScan::new(s.clone());
        let queries = RandomWalkGenerator::new(99, 64).series_batch(10);
        for q in &queries {
            for k in [1usize, 5, 10] {
                let expected = brute_force_knn(s.dataset(), q.values(), k);
                let got = scan.answer_simple(&Query::knn(q.clone(), k)).unwrap();
                assert!(got.distances_match(&expected, 1e-6), "k={k} mismatch");
            }
        }
    }

    #[test]
    fn one_corrupt_nan_series_does_not_poison_knn_answers() {
        // Regression: a NaN distance offered while the heap is under-full
        // (series 0 is scanned first) used to become the heap top once the
        // heap filled, reject every later candidate, and silently corrupt
        // the k-NN answer. The finite k-NN must come back intact.
        let len = 32usize;
        let count = 50usize;
        let mut values = Vec::new();
        for s in RandomWalkGenerator::new(17, len).series_batch(count) {
            values.extend_from_slice(s.values());
        }
        for v in &mut values[..len] {
            *v = f32::NAN;
        }
        let s = Arc::new(DatasetStore::new(Dataset::from_flat(values, len)));
        let q = RandomWalkGenerator::new(4, len).series(0);
        let k = 5;
        let ans = brute_force_knn(s.dataset(), q.values(), k);
        assert_eq!(ans.len(), k);
        assert!(ans.iter().all(|a| a.id != 0 && a.distance.is_finite()));
        // The answers are exactly the k-NN over the 49 finite series.
        let mut expected: Vec<f64> = s
            .dataset()
            .iter()
            .skip(1)
            .map(|series| hydra_core::distance::euclidean(q.values(), series.values()))
            .collect();
        expected.sort_by(f64::total_cmp);
        let got: Vec<f64> = ans.iter().map(|a| a.distance).collect();
        assert_eq!(got, &expected[..k]);
        // The counted early-abandoning scan agrees with the oracle.
        let scan = UcrScan::new(s.clone());
        let scanned = scan.answer_simple(&Query::knn(q, k)).unwrap();
        assert!(scanned.distances_match(&ans, 1e-6));
    }

    #[test]
    fn scan_finds_exact_duplicate_at_distance_zero() {
        let s = store(100, 32);
        let scan = UcrScan::new(s.clone());
        let target = s.dataset().series(42).to_owned_series();
        let ans = scan
            .answer_simple(&Query::nearest_neighbor(target))
            .unwrap();
        assert_eq!(ans.nearest().unwrap().id, 42);
        assert!(ans.nearest().unwrap().distance < 1e-6);
    }

    #[test]
    fn scan_reads_whole_dataset_sequentially() {
        let s = store(200, 256);
        let scan = UcrScan::new(s.clone());
        let q = RandomWalkGenerator::new(5, 256).series(0);
        let mut stats = QueryStats::default();
        scan.answer(&Query::nearest_neighbor(q), &mut stats)
            .unwrap();
        assert_eq!(stats.raw_series_examined, 200);
        assert_eq!(
            stats.random_page_accesses, 1,
            "a scan seeks once then streams"
        );
        assert_eq!(stats.bytes_read, 200 * 256 * 4);
        assert!(
            stats.early_abandons > 0,
            "early abandoning should trigger on most candidates"
        );
    }

    #[test]
    fn batched_scan_is_bit_identical_and_amortizes_the_physical_pass() {
        use hydra_core::{Parallelism, QueryEngine};
        let queries: Vec<Query> = RandomWalkGenerator::new(55, 128)
            .series_batch(6)
            .into_iter()
            .map(|s| Query::knn(s, 3))
            .collect();
        let s1 = Arc::new(DatasetStore::new(
            RandomWalkGenerator::new(11, 128).dataset(200),
        ));
        let mut serial =
            QueryEngine::new(Box::new(UcrScan::new(s1.clone())), s1.len()).with_io_source(s1);
        let serial_answers: Vec<_> = queries.iter().map(|q| serial.answer(q).unwrap()).collect();

        let s2 = Arc::new(DatasetStore::new(
            RandomWalkGenerator::new(11, 128).dataset(200),
        ));
        let mut batched = QueryEngine::new(Box::new(UcrScan::new(s2.clone())), s2.len())
            .with_io_source(s2.clone());
        let batch_answers = batched.answer_batch(&queries, Parallelism::Serial).unwrap();

        for (a, b) in serial_answers.iter().zip(&batch_answers) {
            assert_eq!(a.answers, b.answers);
            assert_eq!(a.stats.raw_series_examined, b.stats.raw_series_examined);
            assert_eq!(a.stats.early_abandons, b.stats.early_abandons);
            assert_eq!(
                a.stats.sequential_page_accesses,
                b.stats.sequential_page_accesses
            );
            assert_eq!(a.stats.random_page_accesses, b.stats.random_page_accesses);
            assert_eq!(a.stats.bytes_read, b.stats.bytes_read);
        }
        // Physically the whole batch cost ONE pass over the file...
        let physical = batched.last_batch_io().expect("native kernel ran");
        assert_eq!(physical.total_pages(), s2.total_pages());
        assert_eq!(physical.random_pages, 1);
        // ...while each query's logical counters keep the full per-query pass.
        assert_eq!(
            batch_answers[0].stats.sequential_page_accesses,
            s2.total_pages() - 1
        );
    }

    #[test]
    fn intra_query_scan_is_bit_identical_to_serial() {
        let s = store(250, 96);
        let scan = UcrScan::new(s);
        for seed in [5u64, 6, 7] {
            let q = Query::knn(RandomWalkGenerator::new(seed, 96).series(0), 3);
            let mut serial_stats = QueryStats::default();
            let serial = scan.answer(&q, &mut serial_stats).unwrap();
            for threads in [2usize, 4] {
                let mut stats = QueryStats::default();
                let got = scan.answer_intra(&q, threads, &mut stats).unwrap();
                assert_eq!(serial, got);
                assert_eq!(serial_stats.raw_series_examined, stats.raw_series_examined);
                assert_eq!(serial_stats.early_abandons, stats.early_abandons);
                assert_eq!(serial_stats.bytes_read, stats.bytes_read);
            }
        }
    }

    #[test]
    fn budget_truncates_with_best_so_far_and_infinite_budget_is_identical() {
        use hydra_core::{Budget, Guarantee};
        let s = store(200, 64);
        let scan = UcrScan::new(s.clone());
        let q = Query::knn(RandomWalkGenerator::new(21, 64).series(0), 3);

        let mut unbudgeted_stats = QueryStats::default();
        let unbudgeted = scan.answer(&q, &mut unbudgeted_stats).unwrap();

        // A tiny budget: non-empty best-so-far, tagged Truncated.
        let tiny = q.clone().with_budget(Some(Budget::raw_reads(10)));
        let mut stats = QueryStats::default();
        let truncated = scan.answer(&tiny, &mut stats).unwrap();
        assert!(!truncated.is_empty());
        assert_eq!(stats.raw_series_examined, 10);
        match truncated.guarantee() {
            Guarantee::Truncated { examined_fraction } => {
                assert!((examined_fraction - 0.05).abs() < 1e-12);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // Even a zero budget examines the first candidate.
        let zero = q.clone().with_budget(Some(Budget::raw_reads(0)));
        let mut stats = QueryStats::default();
        let ans = scan.answer(&zero, &mut stats).unwrap();
        assert!(!ans.is_empty());
        assert_eq!(stats.raw_series_examined, 1);

        // A budget covering the whole dataset is bit-identical to no budget.
        let huge = q.clone().with_budget(Some(Budget::raw_reads(u64::MAX)));
        let mut stats = QueryStats::default();
        let full = scan.answer(&huge, &mut stats).unwrap();
        assert_eq!(full, unbudgeted);
        assert_eq!(
            stats.raw_series_examined,
            unbudgeted_stats.raw_series_examined
        );
        assert_eq!(stats.early_abandons, unbudgeted_stats.early_abandons);
        assert_eq!(stats.bytes_read, unbudgeted_stats.bytes_read);
        assert_eq!(
            stats.sequential_page_accesses,
            unbudgeted_stats.sequential_page_accesses
        );
        assert_eq!(
            stats.random_page_accesses,
            unbudgeted_stats.random_page_accesses
        );
    }

    #[test]
    fn rejects_wrong_length_and_empty_dataset() {
        let s = store(10, 64);
        let scan = UcrScan::new(s);
        let err = scan.answer_simple(&Query::nearest_neighbor(Series::new(vec![0.0; 32])));
        assert!(matches!(
            err,
            Err(Error::LengthMismatch {
                expected: 64,
                actual: 32
            })
        ));

        let empty = Arc::new(DatasetStore::new(Dataset::empty(8)));
        let scan = UcrScan::new(empty);
        let err = scan.answer_simple(&Query::nearest_neighbor(Series::new(vec![0.0; 8])));
        assert!(matches!(err, Err(Error::EmptyDataset)));
    }

    #[test]
    fn brute_force_returns_sorted_k_answers() {
        let d = RandomWalkGenerator::new(3, 16).dataset(50);
        let q = RandomWalkGenerator::new(4, 16).series(0);
        let ans = brute_force_knn(&d, q.values(), 5);
        assert_eq!(ans.len(), 5);
        let dists: Vec<f64> = ans.iter().map(|a| a.distance).collect();
        let mut sorted = dists.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(dists, sorted);
    }
}

//! The Stepwise multi-step filter method.
//!
//! Stepwise pre-processes the collection by storing, for every series, its
//! orthonormal Haar (DHWT) coefficients arranged *vertically*: level 0 of all
//! series first, then level 1 of all series, and so on. At query time the
//! method reads one level at a time and maintains, for every surviving
//! candidate, a lower and an upper bound of its true distance derived from the
//! coefficient prefix seen so far. Candidates whose lower bound exceeds the
//! smallest known upper bound are discarded. After the last level (or when few
//! enough candidates survive) the remaining candidates are refined with the
//! exact Euclidean distance on the raw data, charged as random accesses.
//!
//! Compared with indexes, the method trades tree traversal for level-wise
//! sequential reads plus a final random-access refinement step — the access
//! pattern responsible for its high cost in the paper's evaluation.

use hydra_core::parallel::map_chunks;
use hydra_core::{
    AnswerSet, AnsweringMethod, BatchAnswering, BudgetMeter, Error, IntraAnswering, KnnHeap,
    MethodDescriptor, ModeCapabilities, Query, QueryStats, Result,
};
use hydra_storage::DatasetStore;
use hydra_transforms::HaarTransform;
use std::sync::Arc;

/// The Stepwise method: level-wise DHWT filtering plus raw-data refinement.
pub struct Stepwise {
    store: Arc<DatasetStore>,
    haar: HaarTransform,
    /// Per-level coefficient storage: `levels[l][i]` holds the coefficients of
    /// level `l` (of length `2^(l-1)`, level 0 has length 1) for series `i`.
    levels: Vec<Vec<Vec<f32>>>,
    /// Residual energy of each series beyond each level prefix:
    /// `residual[l][i]` = squared norm of coefficients after level `l`.
    residuals: Vec<Vec<f64>>,
    preprocessing_bytes: u64,
}

impl Stepwise {
    /// Pre-processes the collection: computes and stores the level-wise DHWT
    /// coefficients of every series.
    pub fn build(store: Arc<DatasetStore>) -> Result<Self> {
        if store.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let haar = HaarTransform::new(store.series_length());
        let num_levels = haar.levels() + 1; // level 0 .. levels()
        let n = store.len();
        let mut levels: Vec<Vec<Vec<f32>>> = vec![Vec::with_capacity(n); num_levels];
        let mut residuals: Vec<Vec<f64>> = vec![vec![0.0; n]; num_levels];
        let mut written = 0u64;
        store.scan_all(|id, series| {
            let coeffs = haar.transform(series.values());
            for level in 0..num_levels {
                let lo = if level == 0 { 0 } else { 1usize << (level - 1) };
                let hi = 1usize << level;
                levels[level].push(coeffs[lo..hi.min(coeffs.len())].to_vec());
                let rest: f64 = coeffs[hi.min(coeffs.len())..]
                    .iter()
                    .map(|&v| (v as f64) * (v as f64))
                    .sum();
                residuals[level][id] = rest;
                written += ((hi - lo) * std::mem::size_of::<f32>()) as u64;
            }
        });
        store.record_index_write(written);
        Ok(Self {
            store,
            haar,
            levels,
            residuals,
            preprocessing_bytes: written,
        })
    }

    /// The underlying store.
    pub fn store(&self) -> &DatasetStore {
        &self.store
    }

    /// The number of DHWT levels stored.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Bytes of pre-processed coefficient storage.
    pub fn preprocessing_bytes(&self) -> u64 {
        self.preprocessing_bytes
    }

    /// Runs one filter level for one query: updates its prefix distances and
    /// alive set, records the level's (logical) sequential read and the
    /// lower-bound evaluations. `uppers` is caller-provided scratch, refilled
    /// here — reused across levels (and, in the batched kernel, across
    /// queries) so the filter loop performs no per-level allocation.
    ///
    /// Shared verbatim by the serial path and the batch kernel, so per-query
    /// filtering work is bit-identical between the two.
    #[allow(clippy::too_many_arguments)]
    fn filter_level(
        &self,
        level: usize,
        q_coeffs: &[f32],
        k: usize,
        prefix_sq: &mut [f64],
        alive: &mut [bool],
        alive_count: &mut usize,
        uppers: &mut [f64],
        stats: &mut QueryStats,
    ) {
        let n = self.store.len();
        let lo = if level == 0 { 0 } else { 1usize << (level - 1) };
        let hi = (1usize << level).min(q_coeffs.len());
        let q_rest: f64 = q_coeffs[hi..]
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>();
        // Reading this level's coefficients for the alive candidates is a
        // sequential pass over the level file.
        let level_bytes = (*alive_count * (hi - lo) * std::mem::size_of::<f32>()) as u64;
        let level_pages = level_bytes.div_ceil(self.store.page_bytes() as u64).max(1);
        stats.record_io(level_pages.saturating_sub(1), 1, level_bytes);

        // Update prefix distances and bounds.
        let mut best_upper = f64::INFINITY;
        uppers.fill(f64::INFINITY);
        for id in 0..n {
            if !alive[id] {
                continue;
            }
            let coeffs = &self.levels[level][id];
            let mut add = 0.0f64;
            for (j, &c) in coeffs.iter().enumerate() {
                let d = (q_coeffs[lo + j] - c) as f64;
                add += d * d;
            }
            prefix_sq[id] += add;
            stats.record_lower_bounds(1);
            let rest = self.residuals[level][id].sqrt() + q_rest.sqrt();
            let upper = (prefix_sq[id] + rest * rest).sqrt();
            uppers[id] = upper;
            if upper < best_upper {
                best_upper = upper;
            }
        }
        Self::prune_level(k, best_upper, uppers, prefix_sq, alive, alive_count);
    }

    /// The pruning half of a filter level, shared verbatim by the serial,
    /// batched, and intra-query paths: keep the k best upper bounds as the
    /// pruning threshold (so that a k-NN query never prunes a potential
    /// member of the answer set) and kill every candidate whose lower bound
    /// exceeds it.
    fn prune_level(
        k: usize,
        best_upper: f64,
        uppers: &[f64],
        prefix_sq: &[f64],
        alive: &mut [bool],
        alive_count: &mut usize,
    ) {
        let threshold = if k == 1 {
            best_upper
        } else {
            let mut ub: Vec<f64> = uppers.iter().copied().filter(|u| u.is_finite()).collect();
            ub.sort_by(|a, b| a.total_cmp(b));
            ub.get(k - 1).copied().unwrap_or(best_upper)
        };
        for (flag, p_sq) in alive.iter_mut().zip(prefix_sq.iter()) {
            if *flag && p_sq.sqrt() > threshold + 1e-9 {
                *flag = false;
                *alive_count -= 1;
            }
        }
    }

    /// The intra-query variant of [`Stepwise::filter_level`]: the per-candidate
    /// prefix/upper-bound updates are independent, so they split into one
    /// contiguous chunk per worker; each worker computes `(new_prefix, upper)`
    /// with the serial path's exact arithmetic (the update is pruning-free —
    /// no shared state). The level's I/O charge, counter writes, writeback
    /// and pruning run serially through the same code as the serial level,
    /// so the alive set evolves bit-identically.
    #[allow(clippy::too_many_arguments)]
    fn filter_level_intra(
        &self,
        level: usize,
        q_coeffs: &[f32],
        k: usize,
        threads: usize,
        prefix_sq: &mut [f64],
        alive: &mut [bool],
        alive_count: &mut usize,
        uppers: &mut [f64],
        stats: &mut QueryStats,
    ) {
        let n = self.store.len();
        let lo = if level == 0 { 0 } else { 1usize << (level - 1) };
        let hi = (1usize << level).min(q_coeffs.len());
        let q_rest: f64 = q_coeffs[hi..]
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>();
        let level_bytes = (*alive_count * (hi - lo) * std::mem::size_of::<f32>()) as u64;
        let level_pages = level_bytes.div_ceil(self.store.page_bytes() as u64).max(1);
        stats.record_io(level_pages.saturating_sub(1), 1, level_bytes);

        let updates: Vec<Option<(f64, f64)>> = map_chunks(n, threads, |range| {
            range
                .map(|id| {
                    if !alive[id] {
                        return None;
                    }
                    let coeffs = &self.levels[level][id];
                    let mut add = 0.0f64;
                    for (j, &c) in coeffs.iter().enumerate() {
                        let d = (q_coeffs[lo + j] - c) as f64;
                        add += d * d;
                    }
                    let new_prefix = prefix_sq[id] + add;
                    let rest = self.residuals[level][id].sqrt() + q_rest.sqrt();
                    let upper = (new_prefix + rest * rest).sqrt();
                    Some((new_prefix, upper))
                })
                .collect()
        });

        let mut best_upper = f64::INFINITY;
        uppers.fill(f64::INFINITY);
        for (id, update) in updates.into_iter().enumerate() {
            let Some((new_prefix, upper)) = update else {
                continue;
            };
            prefix_sq[id] = new_prefix;
            stats.record_lower_bounds(1);
            uppers[id] = upper;
            if upper < best_upper {
                best_upper = upper;
            }
        }
        Self::prune_level(k, best_upper, uppers, prefix_sq, alive, alive_count);
    }

    /// Refines the surviving candidates of one query on the raw data
    /// (random accesses through the fallible store path), offering them into
    /// `heap`. Stops early — keeping the best-so-far answers — when the
    /// query's budget meter trips.
    fn refine(
        &self,
        query: &Query,
        alive: &[bool],
        heap: &mut KnnHeap,
        meter: &mut BudgetMeter,
        stats: &mut QueryStats,
    ) -> Result<()> {
        for id in alive
            .iter()
            .enumerate()
            .filter_map(|(id, &a)| a.then_some(id))
        {
            if meter.should_stop(stats.raw_series_examined, !heap.is_empty()) {
                return Ok(());
            }
            let series = self.store.try_read_series(id)?;
            stats.record_raw_series_examined(1);
            let d = hydra_core::distance::euclidean(query.values(), series.values());
            heap.offer(id, d);
        }
        Ok(())
    }
}

impl AnsweringMethod for Stepwise {
    fn descriptor(&self) -> MethodDescriptor {
        MethodDescriptor {
            name: "Stepwise",
            representation: "DHWT",
            is_index: false,
            modes: ModeCapabilities::exact_only(),
        }
    }

    fn answer(&self, query: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
        let n_len = self.store.series_length();
        if query.len() != n_len {
            return Err(Error::LengthMismatch {
                expected: n_len,
                actual: query.len(),
            });
        }
        if !query.mode().is_exact() {
            return Err(Error::unsupported_mode("Stepwise", query.mode()));
        }
        let k = query.knn_k("Stepwise")?;
        let clock = hydra_core::RunClock::start();
        let q_coeffs = self.haar.transform(query.values());
        let n = self.store.len();

        // Running squared prefix distance per candidate, plus alive flags;
        // the upper-bound scratch is allocated once and reused across levels.
        let mut prefix_sq = vec![0.0f64; n];
        let mut alive: Vec<bool> = vec![true; n];
        let mut alive_count = n;
        let mut uppers = vec![f64::INFINITY; n];

        for level in 0..self.levels.len() {
            self.filter_level(
                level,
                &q_coeffs,
                k,
                &mut prefix_sq,
                &mut alive,
                &mut alive_count,
                &mut uppers,
                stats,
            );
        }

        // Refinement: exact distances on the raw data for the survivors,
        // charged as random accesses.
        let mut heap = KnnHeap::new(k);
        let mut meter = BudgetMeter::new(query.budget(), self.store.len());
        self.refine(query, &alive, &mut heap, &mut meter, stats)?;
        stats.cpu_time += clock.elapsed();
        // I/O for the refinement reads was recorded by the store counters;
        // the engine reconciles it into the stats snapshot.
        let guarantee = meter.guarantee(query.mode().guarantee(), stats.raw_series_examined);
        Ok(heap.into_answer_set().with_guarantee(guarantee))
    }

    fn batch_answering(&self) -> Option<&dyn BatchAnswering> {
        Some(self)
    }

    fn intra_answering(&self) -> Option<&dyn IntraAnswering> {
        Some(self)
    }
}

impl IntraAnswering for Stepwise {
    /// Intra-query Stepwise: each filter level's per-candidate bound updates
    /// fan out across workers ([`Stepwise::filter_level_intra`]) while the
    /// level ordering, I/O charges and pruning stay serial; the refinement
    /// distances of the surviving candidates are computed in parallel from
    /// the in-memory dataset, then replayed in id order through counted
    /// [`DatasetStore::read_series`] calls so the random-access profile and
    /// heap evolution match the serial path bit for bit.
    fn answer_intra(
        &self,
        query: &Query,
        threads: usize,
        stats: &mut QueryStats,
    ) -> Result<AnswerSet> {
        let n_len = self.store.series_length();
        if query.len() != n_len {
            return Err(Error::LengthMismatch {
                expected: n_len,
                actual: query.len(),
            });
        }
        if !query.mode().is_exact() {
            return Err(Error::unsupported_mode("Stepwise", query.mode()));
        }
        let k = query.knn_k("Stepwise")?;
        let clock = hydra_core::RunClock::start();
        let q_coeffs = self.haar.transform(query.values());
        let n = self.store.len();

        let mut prefix_sq = vec![0.0f64; n];
        let mut alive: Vec<bool> = vec![true; n];
        let mut alive_count = n;
        let mut uppers = vec![f64::INFINITY; n];

        for level in 0..self.levels.len() {
            self.filter_level_intra(
                level,
                &q_coeffs,
                k,
                threads,
                &mut prefix_sq,
                &mut alive,
                &mut alive_count,
                &mut uppers,
                stats,
            );
        }

        // Parallel refinement distances (exact, threshold-free) from the
        // in-memory dataset, replayed serially with counted reads.
        let survivors: Vec<usize> = alive
            .iter()
            .enumerate()
            .filter_map(|(id, &a)| a.then_some(id))
            .collect();
        let dataset = self.store.dataset();
        let distances: Vec<f64> = map_chunks(survivors.len(), threads, |range| {
            range
                .map(|i| {
                    let id = survivors[i];
                    hydra_core::distance::euclidean(query.values(), dataset.series(id).values())
                })
                .collect()
        });
        let mut heap = KnnHeap::new(k);
        for (&id, &d) in survivors.iter().zip(&distances) {
            let _series = self.store.read_series(id);
            stats.record_raw_series_examined(1);
            heap.offer(id, d);
        }
        stats.cpu_time += clock.elapsed();
        Ok(heap.into_answer_set())
    }
}

impl BatchAnswering for Stepwise {
    /// The batched multi-step filter: the level loop moves outermost, so one
    /// pass over each level's coefficient storage serves every query of the
    /// batch (the level's arrays stay cache-resident across the Q per-query
    /// updates) before the next level is touched. Each query's alive set,
    /// prefix distances and pruning thresholds evolve exactly as on the
    /// serial path, and its refinement reads are individually attributed
    /// through head-invalidated store deltas, so answers and per-query
    /// counters are bit-identical to the per-query loop.
    fn answer_batch(&self, queries: &[Query], stats: &mut [QueryStats]) -> Result<Vec<AnswerSet>> {
        hydra_core::method::batch_expect_length(queries, self.store.series_length())?;
        hydra_core::method::batch_expect_exact(queries, "Stepwise")?;
        let ks = hydra_core::method::batch_knn_ks(queries, "Stepwise")?;
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let clock = hydra_core::RunClock::start();
        let n = self.store.len();
        let q_coeffs: Vec<Vec<f32>> = queries
            .iter()
            .map(|q| self.haar.transform(q.values()))
            .collect();
        let mut prefix_sq: Vec<Vec<f64>> = vec![vec![0.0f64; n]; queries.len()];
        let mut alive: Vec<Vec<bool>> = vec![vec![true; n]; queries.len()];
        let mut alive_counts = vec![n; queries.len()];
        // One upper-bound scratch shared by every (level, query) pass.
        let mut uppers = vec![f64::INFINITY; n];

        for level in 0..self.levels.len() {
            for qi in 0..queries.len() {
                self.filter_level(
                    level,
                    &q_coeffs[qi],
                    ks[qi],
                    &mut prefix_sq[qi],
                    &mut alive[qi],
                    &mut alive_counts[qi],
                    &mut uppers,
                    &mut stats[qi],
                );
            }
        }

        // Per-query refinement: invalidate the simulated disk head first so
        // the store delta classifies this query's reads exactly as the
        // serial path (whose engine-level counter reset freshens the head),
        // then reconcile the observed refinement traffic like the engine
        // does around a serial query.
        let mut answers = Vec::with_capacity(queries.len());
        let mut heap = KnnHeap::new(1);
        for ((query, &k), (alive, stats)) in queries
            .iter()
            .zip(&ks)
            .zip(alive.iter().zip(stats.iter_mut()))
        {
            heap.reset(k);
            self.store.invalidate_head();
            let before = self.store.thread_io_snapshot();
            // Budgeted queries never reach the batch kernel (the engine
            // routes them through the per-query loop), so this meter only
            // carries the fault plan's fallible read path.
            let mut meter = BudgetMeter::new(query.budget(), self.store.len());
            self.refine(query, alive, &mut heap, &mut meter, stats)?;
            let observed = self.store.thread_io_snapshot().since(&before);
            stats.reconcile_io(observed);
            answers.push(heap.take_answer_set());
        }
        hydra_core::method::share_batch_cpu_time(stats, clock.elapsed());
        Ok(answers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ucr::brute_force_knn;
    use hydra_core::Series;
    use hydra_data::RandomWalkGenerator;

    fn store(count: usize, len: usize) -> Arc<DatasetStore> {
        Arc::new(DatasetStore::new(
            RandomWalkGenerator::new(31, len).dataset(count),
        ))
    }

    #[test]
    fn descriptor_matches_table1() {
        let s = Stepwise::build(store(10, 16)).unwrap();
        assert_eq!(s.descriptor().name, "Stepwise");
        assert_eq!(s.descriptor().representation, "DHWT");
    }

    #[test]
    fn build_stores_all_levels() {
        let s = Stepwise::build(store(10, 64)).unwrap();
        assert_eq!(s.num_levels(), 7); // 64 = 2^6 -> levels 0..=6
        assert!(s.preprocessing_bytes() > 0);
    }

    #[test]
    fn exactness_against_brute_force() {
        let st = store(300, 64);
        let s = Stepwise::build(st.clone()).unwrap();
        for q in RandomWalkGenerator::new(87, 64).series_batch(10) {
            for k in [1usize, 3] {
                let expected = brute_force_knn(st.dataset(), q.values(), k);
                let got = s.answer_simple(&Query::knn(q.clone(), k)).unwrap();
                assert!(
                    got.distances_match(&expected, 1e-4),
                    "k={k}: {got:?} vs {expected:?}"
                );
            }
        }
    }

    #[test]
    fn exactness_on_non_power_of_two_length() {
        let st = store(150, 96);
        let s = Stepwise::build(st.clone()).unwrap();
        let q = RandomWalkGenerator::new(88, 96).series(0);
        let expected = brute_force_knn(st.dataset(), q.values(), 1);
        let got = s.answer_simple(&Query::nearest_neighbor(q)).unwrap();
        assert!(got.distances_match(&expected, 1e-4));
    }

    #[test]
    fn filtering_prunes_most_candidates() {
        let st = store(500, 128);
        let s = Stepwise::build(st.clone()).unwrap();
        // A query equal to a dataset member has a zero-distance match, so the
        // filter should discard the overwhelming majority of candidates.
        let q = st.dataset().series(123).to_owned_series();
        let mut stats = QueryStats::default();
        let ans = s.answer(&Query::nearest_neighbor(q), &mut stats).unwrap();
        assert_eq!(ans.nearest().unwrap().id, 123);
        assert!(
            stats.raw_series_examined < 50,
            "expected strong pruning, examined {}",
            stats.raw_series_examined
        );
        assert!(stats.pruning_ratio(500) > 0.9);
    }

    #[test]
    fn refinement_uses_random_accesses() {
        let st = store(200, 64);
        let s = Stepwise::build(st.clone()).unwrap();
        st.reset_io();
        let q = RandomWalkGenerator::new(12, 64).series(1);
        let mut stats = QueryStats::default();
        s.answer(&Query::nearest_neighbor(q), &mut stats).unwrap();
        let io = st.io_snapshot();
        assert!(io.random_pages >= 1, "refinement reads are random accesses");
    }

    #[test]
    fn batched_stepwise_matches_the_serial_loop_counters_included() {
        use hydra_core::{Parallelism, QueryEngine};
        // Mix member queries (strong pruning, few refinement reads) with
        // random ones (many survivors) so the per-query I/O attribution and
        // the engine's reconciliation rule are both exercised.
        let st = store(250, 64);
        let mut queries: Vec<Query> = RandomWalkGenerator::new(92, 64)
            .series_batch(4)
            .into_iter()
            .map(|s| Query::knn(s, 3))
            .collect();
        queries.push(Query::nearest_neighbor(
            st.dataset().series(111).to_owned_series(),
        ));
        let mut serial = QueryEngine::new(Box::new(Stepwise::build(st.clone()).unwrap()), st.len())
            .with_io_source(st);
        let serial_answers: Vec<_> = queries.iter().map(|q| serial.answer(q).unwrap()).collect();

        let st2 = store(250, 64);
        let mut batched =
            QueryEngine::new(Box::new(Stepwise::build(st2.clone()).unwrap()), st2.len())
                .with_io_source(st2);
        let batch_answers = batched.answer_batch(&queries, Parallelism::Serial).unwrap();
        for (qi, (a, b)) in serial_answers.iter().zip(&batch_answers).enumerate() {
            assert_eq!(a.answers, b.answers, "query {qi}");
            assert_eq!(
                a.stats.raw_series_examined, b.stats.raw_series_examined,
                "query {qi}"
            );
            assert_eq!(
                a.stats.lower_bounds_computed, b.stats.lower_bounds_computed,
                "query {qi}"
            );
            assert_eq!(
                a.stats.sequential_page_accesses, b.stats.sequential_page_accesses,
                "query {qi}"
            );
            assert_eq!(
                a.stats.random_page_accesses, b.stats.random_page_accesses,
                "query {qi}"
            );
            assert_eq!(a.stats.bytes_read, b.stats.bytes_read, "query {qi}");
        }
    }

    #[test]
    fn rejects_bad_query_length_and_empty_build() {
        let s = Stepwise::build(store(10, 32)).unwrap();
        assert!(s
            .answer_simple(&Query::nearest_neighbor(Series::new(vec![0.0; 8])))
            .is_err());
        let empty = Arc::new(DatasetStore::new(hydra_core::Dataset::empty(8)));
        assert!(Stepwise::build(empty).is_err());
    }
}

//! # hydra-scan
//!
//! The non-index methods of the study: methods that answer a query in a
//! single pass (or a small number of level-wise passes) over the data rather
//! than by traversing a pre-built tree.
//!
//! * [`ucr::UcrScan`] — the optimized serial scan baseline (squared distances,
//!   early abandoning, reordered early abandoning), adapted to exact whole
//!   matching as in the paper.
//! * [`mass::MassScan`] — MASS adapted to whole matching: distances are
//!   derived from dot products computed with the FFT, trading I/O for CPU.
//! * [`stepwise::Stepwise`] — the multi-step DHWT filter: coefficients are
//!   stored level by level; candidates are pruned with lower/upper bounds as
//!   levels are read, and only survivors are refined on the raw data.

pub mod mass;
pub mod stepwise;
pub mod ucr;

pub use mass::MassScan;
pub use stepwise::Stepwise;
pub use ucr::UcrScan;

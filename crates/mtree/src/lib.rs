//! # hydra-mtree
//!
//! An M-tree: a metric-space access method that organizes series by their
//! mutual Euclidean distances rather than by a coordinate summarization.
//!
//! Every internal node stores routing objects — a pivot series, a covering
//! radius bounding the distance to everything in its subtree, and the distance
//! to its parent pivot. Query answering prunes a subtree whenever
//! `d(query, pivot) − covering_radius` is no smaller than the best-so-far
//! k-th distance (triangle inequality), which is correct for any metric.
//!
//! Construction inserts series one at a time, routing each to the child whose
//! pivot is closest (preferring children that need no radius enlargement), and
//! splits over-full nodes by promoting two far-apart pivots and partitioning
//! the entries by proximity (a generalized-hyperplane split). Because pruning
//! relies only on raw-space distances — there is no dimensionality reduction —
//! the M-tree pays many more distance computations than the summarization
//! indexes, which is exactly the scaling weakness the paper reports.

use hydra_core::{
    AnswerMode, AnswerSet, AnsweringMethod, BudgetMeter, BuildOptions, Dataset, Error, ExactIndex,
    IndexFootprint, KnnHeap, MethodDescriptor, ModeCapabilities, Query, QueryStats, Result,
};
use hydra_storage::DatasetStore;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

#[derive(Clone, Debug)]
struct LeafEntry {
    id: u32,
    /// Distance from this entry to the node's pivot.
    to_parent: f64,
}

#[derive(Clone, Debug)]
enum NodeKind {
    Internal { children: Vec<usize> },
    Leaf { entries: Vec<LeafEntry> },
}

#[derive(Clone, Debug)]
struct Node {
    /// The routing pivot: a series id from the dataset.
    pivot: u32,
    /// Upper bound on the distance from the pivot to anything in the subtree.
    radius: f64,
    /// Distance from this node's pivot to its parent's pivot.
    to_parent: f64,
    kind: NodeKind,
    depth: usize,
}

/// The M-tree metric index.
pub struct MTree {
    store: Arc<DatasetStore>,
    nodes: Vec<Node>,
    root: usize,
    leaf_capacity: usize,
    fanout: usize,
    /// Distance computations performed while building (the M-tree's dominant
    /// construction cost).
    build_distance_computations: u64,
}

struct Frontier {
    lower_bound: f64,
    node: usize,
}
impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.lower_bound == other.lower_bound
    }
}
impl Eq for Frontier {}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        other.lower_bound.total_cmp(&self.lower_bound)
    }
}

impl MTree {
    /// Builds the M-tree over an instrumented store.
    pub fn build_on_store(store: Arc<DatasetStore>, options: &BuildOptions) -> Result<Self> {
        if store.is_empty() {
            return Err(Error::EmptyDataset);
        }
        if options.leaf_capacity == 0 {
            return Err(Error::invalid_parameter(
                "leaf_capacity",
                "must be positive",
            ));
        }
        let mut tree = Self {
            store: store.clone(),
            nodes: Vec::new(),
            root: 0,
            leaf_capacity: options.leaf_capacity.max(2),
            fanout: 16,
            build_distance_computations: 0,
        };
        tree.nodes.push(Node {
            pivot: 0,
            radius: 0.0,
            to_parent: 0.0,
            kind: NodeKind::Leaf {
                entries: Vec::new(),
            },
            depth: 0,
        });
        store.scan_all(|id, _| {
            tree.insert(id as u32);
        });
        store.record_index_write((store.len() * store.series_bytes()) as u64);
        Ok(tree)
    }

    /// The underlying store.
    pub fn store(&self) -> &DatasetStore {
        &self.store
    }

    /// The number of nodes in the tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of indexed entries.
    pub fn num_entries(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Leaf { entries } => entries.len(),
                _ => 0,
            })
            .sum()
    }

    /// Distance computations performed during construction.
    pub fn build_distance_computations(&self) -> u64 {
        self.build_distance_computations
    }

    fn distance_ids(&mut self, a: u32, b: u32) -> f64 {
        self.build_distance_computations += 1;
        let d = self.store.dataset();
        hydra_core::distance::euclidean(
            d.series(a as usize).values(),
            d.series(b as usize).values(),
        )
    }

    fn insert(&mut self, id: u32) {
        // Descend to the most suitable leaf.
        let mut path = vec![self.root];
        let mut current = self.root;
        while let NodeKind::Internal { children } = &self.nodes[current].kind {
            let children = children.clone();
            let mut best = children[0];
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for child in children {
                let d = self.distance_ids(id, self.nodes[child].pivot);
                let enlargement = (d - self.nodes[child].radius).max(0.0);
                let key = (enlargement, d);
                if key < best_key {
                    best_key = key;
                    best = child;
                }
            }
            current = best;
            path.push(current);
        }
        let d_to_pivot = self.distance_ids(id, self.nodes[current].pivot);
        if let NodeKind::Leaf { entries } = &mut self.nodes[current].kind {
            entries.push(LeafEntry {
                id,
                to_parent: d_to_pivot,
            });
        }
        // Grow covering radii along the path.
        for &n in &path {
            let d = self.distance_ids(id, self.nodes[n].pivot);
            if d > self.nodes[n].radius {
                self.nodes[n].radius = d;
            }
        }
        // Split bottom-up.
        for i in (0..path.len()).rev() {
            let node = path[i];
            let overflow = match &self.nodes[node].kind {
                NodeKind::Leaf { entries } => entries.len() > self.leaf_capacity,
                NodeKind::Internal { children } => children.len() > self.fanout,
            };
            if !overflow {
                break;
            }
            let (left, right) = self.split_node(node);
            if i == 0 {
                // New root above the two halves.
                let left_pivot = self.nodes[left].pivot;
                let d = self.distance_ids(left_pivot, self.nodes[right].pivot);
                let radius = (self.nodes[left].radius).max(d + self.nodes[right].radius);
                let new_root = self.nodes.len();
                self.nodes.push(Node {
                    pivot: left_pivot,
                    radius,
                    to_parent: 0.0,
                    kind: NodeKind::Internal {
                        children: vec![left, right],
                    },
                    depth: 0,
                });
                self.nodes[left].to_parent = 0.0;
                self.nodes[right].to_parent = d;
                self.root = new_root;
                self.bump_depths(new_root, 0);
                break;
            } else {
                let parent = path[i - 1];
                let parent_pivot = self.nodes[parent].pivot;
                for half in [left, right] {
                    let d = self.distance_ids(self.nodes[half].pivot, parent_pivot);
                    self.nodes[half].to_parent = d;
                    let needed = d + self.nodes[half].radius;
                    if needed > self.nodes[parent].radius {
                        self.nodes[parent].radius = needed;
                    }
                }
                if let NodeKind::Internal { children } = &mut self.nodes[parent].kind {
                    children.retain(|&c| c != node);
                    children.push(left);
                    children.push(right);
                }
            }
        }
    }

    fn bump_depths(&mut self, node: usize, depth: usize) {
        self.nodes[node].depth = depth;
        if let NodeKind::Internal { children } = self.nodes[node].kind.clone() {
            for c in children {
                self.bump_depths(c, depth + 1);
            }
        }
    }

    /// Splits an over-full node: promote two far-apart pivots and partition
    /// entries by proximity.
    fn split_node(&mut self, node: usize) -> (usize, usize) {
        let depth = self.nodes[node].depth;
        match self.nodes[node].kind.clone() {
            NodeKind::Leaf { entries } => {
                let ids: Vec<u32> = entries.iter().map(|e| e.id).collect();
                let (p1, p2) = self.promote(&ids);
                let mut left_entries = Vec::new();
                let mut right_entries = Vec::new();
                let mut left_radius = 0.0f64;
                let mut right_radius = 0.0f64;
                for e in entries {
                    let d1 = self.distance_ids(e.id, p1);
                    let d2 = self.distance_ids(e.id, p2);
                    if d1 <= d2 {
                        left_radius = left_radius.max(d1);
                        left_entries.push(LeafEntry {
                            id: e.id,
                            to_parent: d1,
                        });
                    } else {
                        right_radius = right_radius.max(d2);
                        right_entries.push(LeafEntry {
                            id: e.id,
                            to_parent: d2,
                        });
                    }
                }
                // Reuse the original slot for the left half so no stale node
                // remains in the arena.
                self.nodes[node] = Node {
                    pivot: p1,
                    radius: left_radius,
                    to_parent: 0.0,
                    kind: NodeKind::Leaf {
                        entries: left_entries,
                    },
                    depth,
                };
                let right_id = self.nodes.len();
                self.nodes.push(Node {
                    pivot: p2,
                    radius: right_radius,
                    to_parent: 0.0,
                    kind: NodeKind::Leaf {
                        entries: right_entries,
                    },
                    depth,
                });
                (node, right_id)
            }
            NodeKind::Internal { children } => {
                let pivots: Vec<u32> = children.iter().map(|&c| self.nodes[c].pivot).collect();
                let (p1, p2) = self.promote(&pivots);
                let mut left_children = Vec::new();
                let mut right_children = Vec::new();
                let mut left_radius = 0.0f64;
                let mut right_radius = 0.0f64;
                for child in children {
                    let d1 = self.distance_ids(self.nodes[child].pivot, p1);
                    let d2 = self.distance_ids(self.nodes[child].pivot, p2);
                    if d1 <= d2 {
                        left_radius = left_radius.max(d1 + self.nodes[child].radius);
                        self.nodes[child].to_parent = d1;
                        left_children.push(child);
                    } else {
                        right_radius = right_radius.max(d2 + self.nodes[child].radius);
                        self.nodes[child].to_parent = d2;
                        right_children.push(child);
                    }
                }
                self.nodes[node] = Node {
                    pivot: p1,
                    radius: left_radius,
                    to_parent: 0.0,
                    kind: NodeKind::Internal {
                        children: left_children,
                    },
                    depth,
                };
                let right_id = self.nodes.len();
                self.nodes.push(Node {
                    pivot: p2,
                    radius: right_radius,
                    to_parent: 0.0,
                    kind: NodeKind::Internal {
                        children: right_children,
                    },
                    depth,
                });
                (node, right_id)
            }
        }
    }

    /// Chooses two far-apart promotion pivots with a linear-time heuristic:
    /// start from the first id, find the farthest from it, then the farthest
    /// from that one.
    fn promote(&mut self, ids: &[u32]) -> (u32, u32) {
        debug_assert!(ids.len() >= 2);
        let first = ids[0];
        let mut p1 = first;
        let mut best = -1.0f64;
        for &id in ids {
            let d = self.distance_ids(first, id);
            if d > best {
                best = d;
                p1 = id;
            }
        }
        let mut p2 = if p1 == first { ids[1] } else { first };
        best = -1.0;
        for &id in ids {
            if id == p1 {
                continue;
            }
            let d = self.distance_ids(p1, id);
            if d > best {
                best = d;
                p2 = id;
            }
        }
        (p1, p2)
    }

    fn scan_leaf(
        &self,
        leaf: usize,
        query: &Query,
        d_query_pivot: f64,
        heap: &mut KnnHeap,
        meter: &mut BudgetMeter,
        stats: &mut QueryStats,
    ) -> Result<()> {
        let NodeKind::Leaf { entries } = &self.nodes[leaf].kind else {
            return Ok(());
        };
        if entries.is_empty() {
            return Ok(());
        }
        // Fault checkpoint for the leaf's materialized payload read, keyed
        // by its first series so an injected fault is stable per leaf.
        self.store.try_access(entries[0].id as u64)?;
        stats.record_leaf_visit();
        let leaf_bytes = (entries.len() * self.store.series_bytes()) as u64;
        let pages = leaf_bytes.div_ceil(self.store.page_bytes() as u64).max(1);
        stats.record_io(pages - 1, 1, leaf_bytes);
        let dataset = self.store.dataset();
        for e in entries {
            // Cheap triangle-inequality filter before the real distance:
            // |d(q, pivot) − d(entry, pivot)| ≤ d(q, entry).
            if heap.is_full() && (d_query_pivot - e.to_parent).abs() >= heap.threshold() {
                continue;
            }
            if meter.should_stop(stats.raw_series_examined, !heap.is_empty()) {
                break;
            }
            stats.record_raw_series_examined(1);
            let series = dataset.series(e.id as usize);
            match hydra_core::distance::squared_euclidean_early_abandon(
                query.values(),
                series.values(),
                heap.threshold_squared(),
            ) {
                Some(sq) => {
                    heap.offer(e.id as usize, sq.sqrt());
                }
                None => stats.record_early_abandon(),
            }
        }
        Ok(())
    }
}

impl AnsweringMethod for MTree {
    fn descriptor(&self) -> MethodDescriptor {
        MethodDescriptor {
            name: "M-tree",
            representation: "raw (metric)",
            is_index: true,
            modes: ModeCapabilities::all(),
        }
    }

    fn index_footprint(&self) -> Option<IndexFootprint> {
        Some(ExactIndex::footprint(self))
    }

    fn answer(&self, query: &Query, stats: &mut QueryStats) -> Result<AnswerSet> {
        if query.len() != self.store.series_length() {
            return Err(Error::LengthMismatch {
                expected: self.store.series_length(),
                actual: query.len(),
            });
        }
        let k = query.knn_k("M-tree")?;
        let mode = query.mode();
        let clock = hydra_core::RunClock::start();
        let dataset = self.store.dataset();
        let dist_to_pivot = |node: &Node| {
            hydra_core::distance::euclidean(
                query.values(),
                dataset.series(node.pivot as usize).values(),
            )
        };
        let mut heap = KnnHeap::new(k);
        let mut meter = BudgetMeter::new(query.budget(), self.store.len());

        if mode == AnswerMode::NgApproximate {
            // ng-approximate: descend to the leaf of the closest pivot at
            // every level and scan only that leaf.
            let mut current = self.root;
            while let NodeKind::Internal { children } = &self.nodes[current].kind {
                stats.record_internal_visit();
                let mut best = children[0];
                let mut best_d = f64::INFINITY;
                for &child in children {
                    let d = dist_to_pivot(&self.nodes[child]);
                    stats.record_lower_bounds(1);
                    if d < best_d {
                        best_d = d;
                        best = child;
                    }
                }
                current = best;
            }
            let d_pivot = dist_to_pivot(&self.nodes[current]);
            self.scan_leaf(current, query, d_pivot, &mut heap, &mut meter, stats)?;
            stats.cpu_time += clock.elapsed();
            let guarantee = meter.guarantee(mode.guarantee(), stats.raw_series_examined);
            return Ok(heap.into_answer_set().with_guarantee(guarantee));
        }

        // Exact / ε-relaxed best-first traversal: a subtree is pruned as soon
        // as its triangle-inequality lower bound reaches `bsf * shrink` with
        // `shrink = δ/(1+ε)` (1 for exact, so ε = 0 is bit-identical). The
        // cheap pre-filters keep the exact threshold: they only skip work
        // that cannot improve the best-so-far, which is always allowed.
        let shrink = mode.prune_shrink();
        let mut frontier = BinaryHeap::new();
        let root_d = dist_to_pivot(&self.nodes[self.root]);
        stats.record_lower_bounds(1);
        frontier.push(Frontier {
            lower_bound: (root_d - self.nodes[self.root].radius).max(0.0),
            node: self.root,
        });
        while let Some(Frontier { lower_bound, node }) = frontier.pop() {
            if meter.is_truncated() {
                break; // budget exhausted: keep the best-so-far
            }
            if heap.is_full() && lower_bound >= heap.threshold() * shrink {
                break;
            }
            let d_pivot = dist_to_pivot(&self.nodes[node]);
            match &self.nodes[node].kind {
                NodeKind::Leaf { .. } => {
                    self.scan_leaf(node, query, d_pivot, &mut heap, &mut meter, stats)?
                }
                NodeKind::Internal { children } => {
                    stats.record_internal_visit();
                    for &child in children {
                        // Cheap pre-filter using the child's distance to this
                        // pivot before computing d(query, child pivot).
                        let child_node = &self.nodes[child];
                        if heap.is_full()
                            && (d_pivot - child_node.to_parent).abs() - child_node.radius
                                >= heap.threshold()
                        {
                            continue;
                        }
                        let d_child = dist_to_pivot(child_node);
                        stats.record_lower_bounds(1);
                        let lb = (d_child - child_node.radius).max(0.0);
                        if !heap.is_full() || lb < heap.threshold() * shrink {
                            frontier.push(Frontier {
                                lower_bound: lb,
                                node: child,
                            });
                        }
                    }
                }
            }
        }
        stats.cpu_time += clock.elapsed();
        let guarantee = meter.guarantee(mode.guarantee(), stats.raw_series_examined);
        Ok(heap.into_answer_set().with_guarantee(guarantee))
    }
}

impl ExactIndex for MTree {
    fn build(dataset: &Dataset, options: &BuildOptions) -> Result<Self> {
        Self::build_on_store(Arc::new(DatasetStore::new(dataset.clone())), options)
    }

    fn footprint(&self) -> IndexFootprint {
        let mut leaf_fill_factors = Vec::new();
        let mut leaf_depths = Vec::new();
        let mut leaf_nodes = 0usize;
        let mut disk_bytes = 0usize;
        for n in &self.nodes {
            if let NodeKind::Leaf { entries } = &n.kind {
                leaf_nodes += 1;
                leaf_fill_factors.push(entries.len() as f64 / self.leaf_capacity as f64);
                leaf_depths.push(n.depth);
                disk_bytes += entries.len() * self.store.series_bytes();
            }
        }
        let memory_bytes = self.nodes.len() * std::mem::size_of::<Node>()
            + self.num_entries() * std::mem::size_of::<LeafEntry>();
        IndexFootprint {
            total_nodes: self.nodes.len(),
            leaf_nodes,
            memory_bytes,
            disk_bytes,
            leaf_fill_factors,
            leaf_depths,
        }
    }

    fn num_series(&self) -> usize {
        self.store.len()
    }

    fn series_length(&self) -> usize {
        self.store.series_length()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_data::RandomWalkGenerator;
    use hydra_scan::ucr::brute_force_knn;

    fn build(count: usize, len: usize, leaf: usize) -> (Arc<DatasetStore>, MTree) {
        let store = Arc::new(DatasetStore::new(
            RandomWalkGenerator::new(19, len).dataset(count),
        ));
        let options = BuildOptions::default().with_leaf_capacity(leaf);
        let index = MTree::build_on_store(store.clone(), &options).unwrap();
        (store, index)
    }

    #[test]
    fn descriptor_matches_table1() {
        let (_, idx) = build(30, 32, 8);
        assert_eq!(idx.descriptor().name, "M-tree");
        assert!(idx.descriptor().is_index);
    }

    #[test]
    fn all_series_indexed_and_radii_cover_entries() {
        let (store, idx) = build(300, 64, 10);
        assert_eq!(idx.num_entries(), 300);
        assert!(idx.num_nodes() > 1);
        assert!(idx.build_distance_computations() > 300);
        // Check the covering-radius invariant on leaves.
        let dataset = store.dataset();
        for n in &idx.nodes {
            if let NodeKind::Leaf { entries } = &n.kind {
                for e in entries {
                    let d = hydra_core::distance::euclidean(
                        dataset.series(n.pivot as usize).values(),
                        dataset.series(e.id as usize).values(),
                    );
                    assert!(d <= n.radius + 1e-6, "entry outside covering radius");
                }
            }
        }
    }

    #[test]
    fn covering_radius_invariant_holds_recursively() {
        let (store, idx) = build(400, 32, 12);
        let dataset = store.dataset();
        // Every series under a subtree must be within the subtree's radius.
        fn collect_ids(tree: &MTree, node: usize, out: &mut Vec<u32>) {
            match &tree.nodes[node].kind {
                NodeKind::Leaf { entries } => out.extend(entries.iter().map(|e| e.id)),
                NodeKind::Internal { children } => {
                    for &c in children {
                        collect_ids(tree, c, out);
                    }
                }
            }
        }
        for (i, n) in idx.nodes.iter().enumerate() {
            let mut ids = Vec::new();
            collect_ids(&idx, i, &mut ids);
            for id in ids {
                let d = hydra_core::distance::euclidean(
                    dataset.series(n.pivot as usize).values(),
                    dataset.series(id as usize).values(),
                );
                assert!(d <= n.radius + 1e-6, "series {id} outside node {i} radius");
            }
        }
    }

    #[test]
    fn exactness_against_brute_force() {
        let (store, idx) = build(300, 64, 10);
        for q in RandomWalkGenerator::new(119, 64).series_batch(10) {
            for k in [1usize, 5] {
                let expected = brute_force_knn(store.dataset(), q.values(), k);
                let got = idx.answer_simple(&Query::knn(q.clone(), k)).unwrap();
                assert!(got.distances_match(&expected, 1e-4), "k={k}");
            }
        }
    }

    #[test]
    fn exactness_on_short_series() {
        let (store, idx) = build(150, 96, 8);
        let q = RandomWalkGenerator::new(120, 96).series(3);
        let expected = brute_force_knn(store.dataset(), q.values(), 1);
        let got = idx.answer_simple(&Query::nearest_neighbor(q)).unwrap();
        assert!(got.distances_match(&expected, 1e-4));
    }

    #[test]
    fn self_queries_return_the_member() {
        let (store, idx) = build(500, 64, 20);
        let q = store.dataset().series(250).to_owned_series();
        let mut stats = QueryStats::default();
        let ans = idx.answer(&Query::nearest_neighbor(q), &mut stats).unwrap();
        assert_eq!(ans.nearest().unwrap().id, 250);
        assert!(ans.nearest().unwrap().distance < 1e-6);
        assert!(stats.leaves_visited >= 1);
    }

    #[test]
    fn ng_visits_one_leaf_and_epsilon_zero_is_bit_identical_to_exact() {
        let (store, idx) = build(400, 64, 12);
        let member = store.dataset().series(200).to_owned_series();
        let mut stats = QueryStats::default();
        let ng = idx
            .answer(
                &Query::nearest_neighbor(member).with_mode(AnswerMode::NgApproximate),
                &mut stats,
            )
            .unwrap();
        assert!(stats.leaves_visited <= 1);
        assert_eq!(ng.guarantee(), hydra_core::Guarantee::None);

        for q in RandomWalkGenerator::new(219, 64).series_batch(4) {
            let exact_q = Query::knn(q, 3);
            let mut s1 = QueryStats::default();
            let mut s2 = QueryStats::default();
            let exact = idx.answer(&exact_q, &mut s1).unwrap();
            let zero = idx
                .answer(
                    &exact_q
                        .clone()
                        .with_mode(AnswerMode::EpsilonApproximate { epsilon: 0.0 }),
                    &mut s2,
                )
                .unwrap();
            assert_eq!(zero.answers(), exact.answers());
            assert_eq!(s1.raw_series_examined, s2.raw_series_examined);
            assert_eq!(s1.lower_bounds_computed, s2.lower_bounds_computed);
        }
    }

    #[test]
    fn rejects_empty_dataset_and_bad_query() {
        assert!(MTree::build(&Dataset::empty(8), &BuildOptions::default()).is_err());
        let (_, idx) = build(20, 64, 8);
        assert!(idx
            .answer_simple(&Query::nearest_neighbor(hydra_core::Series::new(vec![
                0.0;
                8
            ])))
            .is_err());
    }
}
